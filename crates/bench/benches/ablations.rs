//! Criterion benchmarks for the eight ablations of DESIGN.md's experiment
//! index (A1-A8). As with the figure benches, each prints its reproduced
//! table once and then times the regeneration.

use criterion::{criterion_group, criterion_main, Criterion};
use parsched_core::prelude::*;

fn opts() -> FigureOpts {
    FigureOpts {
        parallel: true,
        ..FigureOpts::default()
    }
}

fn bench_ablation(
    c: &mut Criterion,
    id: &str,
    f: fn(&FigureOpts) -> Result<FigureTable, RunError>,
) {
    let o = opts();
    match f(&o) {
        Ok(table) => println!("\n== {id} ==\n{}", table.to_text()),
        Err(e) => panic!("{id} failed: {e}"),
    }
    c.bench_function(id, |b| {
        b.iter(|| f(&o).expect("ablation regenerates"));
    });
}

fn a1_variance(c: &mut Criterion) {
    bench_ablation(c, "ablation_variance", ablation_variance);
}

fn a2_topology(c: &mut Criterion) {
    bench_ablation(c, "ablation_topology", ablation_topology);
}

fn a3_wormhole(c: &mut Criterion) {
    bench_ablation(c, "ablation_wormhole", ablation_wormhole);
}

fn a4_quantum(c: &mut Criterion) {
    bench_ablation(c, "ablation_quantum", ablation_quantum);
}

fn a5_mpl(c: &mut Criterion) {
    bench_ablation(c, "ablation_mpl", ablation_mpl);
}

fn a6_overheads(c: &mut Criterion) {
    bench_ablation(c, "ablation_overheads", ablation_overheads);
}

fn a7_memory(c: &mut Criterion) {
    bench_ablation(c, "ablation_memory", ablation_memory);
}

fn a8_flow_control(c: &mut Criterion) {
    bench_ablation(c, "ablation_flow_control", ablation_flow_control);
}

fn a9_gang(c: &mut Criterion) {
    bench_ablation(c, "ablation_gang", ablation_gang);
}

fn a10_load(c: &mut Criterion) {
    bench_ablation(c, "ablation_load", ablation_load);
}

fn a11_pipeline(c: &mut Criterion) {
    bench_ablation(c, "ablation_pipeline", ablation_pipeline);
}

fn a12_partition_tuning(c: &mut Criterion) {
    bench_ablation(c, "ablation_partition_tuning", ablation_partition_tuning);
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = a1_variance, a2_topology, a3_wormhole, a4_quantum, a5_mpl,
              a6_overheads, a7_memory, a8_flow_control, a9_gang, a10_load, a11_pipeline, a12_partition_tuning
}
criterion_main!(ablations);
