//! Engine microbenchmarks (experiment P1 in DESIGN.md):
//!
//! * pending-event-set throughput: binary heap vs calendar queue, under the
//!   hold-model workload (push one, pop one) and a churn workload;
//! * end-to-end machine event rate on a representative simulation, per
//!   backend — the number every other wall-time figure divides into.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parsched_core::prelude::*;
use parsched_des::prelude::*;
use parsched_topology::TopologyKind;
use parsched_workload::prelude::*;

/// Classic hold model: a queue at steady population `n`; each operation
/// pops the minimum and pushes a successor a pseudo-random delay later.
fn hold_model<Q: EventQueue<u64>>(queue: &mut Q, n: usize, ops: usize) -> u64 {
    let mut seq = 0u64;
    let mut state = 0x243f_6a88_85a3_08d3u64;
    let mut rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % 10_000
    };
    for _ in 0..n {
        queue.push(Scheduled {
            time: SimTime(rand()),
            seq: {
                seq += 1;
                seq
            },
            event: seq,
        });
    }
    let mut acc = 0u64;
    for _ in 0..ops {
        let item = queue.pop().expect("population stays constant");
        acc ^= item.event;
        queue.push(Scheduled {
            time: SimTime(item.time.nanos() + 1 + rand()),
            seq: {
                seq += 1;
                seq
            },
            event: seq,
        });
    }
    acc
}

fn pending_event_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("pending_event_set_hold");
    for &n in &[64usize, 1024, 16384] {
        let ops = 100_000usize;
        group.throughput(Throughput::Elements(ops as u64));
        group.bench_with_input(BenchmarkId::new("binary_heap", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = BinaryHeapQueue::new();
                hold_model(&mut q, n, ops)
            });
        });
        group.bench_with_input(BenchmarkId::new("calendar", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = CalendarQueue::new();
                hold_model(&mut q, n, ops)
            });
        });
    }
    group.finish();
}

fn machine_event_rate(c: &mut Criterion) {
    let sizes = BatchSizes::default();
    let cost = CostModel::default();
    let batch = paper_batch(App::MatMul, Arch::Fixed, 16, &sizes, &cost);
    // How many events one run processes (for the throughput annotation).
    let probe = run_batch(
        &ExperimentConfig::paper(16, TopologyKind::Ring, PolicyKind::TimeSharing),
        batch.clone(),
    )
    .expect("probe run");
    println!(
        "\nmachine_event_rate probe: {} events, simulated {}",
        probe.events, probe.makespan
    );

    let mut group = c.benchmark_group("machine_event_rate");
    group.throughput(Throughput::Elements(probe.events));
    for (name, queue) in [
        ("binary_heap", QueueKind::BinaryHeap),
        ("calendar", QueueKind::Calendar),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg =
                    ExperimentConfig::paper(16, TopologyKind::Ring, PolicyKind::TimeSharing);
                cfg.queue = queue;
                run_batch(&cfg, batch.clone()).expect("bench run")
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = engine;
    config = Criterion::default().sample_size(10);
    targets = pending_event_set, machine_event_rate
}
criterion_main!(engine);
