//! One Criterion benchmark per paper figure: each iteration regenerates
//! the figure's full configuration grid (13 configurations, static and
//! time-sharing each scored over best/worst orderings = 52 simulations)
//! and reports the wall time. The simulated results themselves are printed
//! once per figure so the benchmark log doubles as a reproduction record;
//! the `figures` binary gives the same tables without the timing harness.

use criterion::{criterion_group, criterion_main, Criterion};
use parsched_core::prelude::*;

fn opts() -> FigureOpts {
    FigureOpts {
        parallel: true,
        ..FigureOpts::default()
    }
}

fn bench_figure(
    c: &mut Criterion,
    id: &str,
    f: fn(&FigureOpts) -> Result<FigureTable, RunError>,
) {
    let o = opts();
    // Print the reproduced table once, so the benchmark log is also the
    // reproduction artifact.
    match f(&o) {
        Ok(table) => println!("\n== {id} ==\n{}", table.to_text()),
        Err(e) => panic!("{id} failed: {e}"),
    }
    c.bench_function(id, |b| {
        b.iter(|| f(&o).expect("figure regenerates"));
    });
}

fn fig3_matmul_fixed(c: &mut Criterion) {
    bench_figure(c, "fig3_matmul_fixed", fig3);
}

fn fig4_matmul_adaptive(c: &mut Criterion) {
    bench_figure(c, "fig4_matmul_adaptive", fig4);
}

fn fig5_sort_fixed(c: &mut Criterion) {
    bench_figure(c, "fig5_sort_fixed", fig5);
}

fn fig6_sort_adaptive(c: &mut Criterion) {
    bench_figure(c, "fig6_sort_adaptive", fig6);
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig3_matmul_fixed, fig4_matmul_adaptive, fig5_sort_fixed, fig6_sort_adaptive
}
criterion_main!(figures);
