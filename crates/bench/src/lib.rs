//! # parsched-bench
//!
//! The in-tree benchmark [`harness`] (zero-dependency wall-clock timing:
//! monotonic clock, warmup, median-of-N, JSON report) plus two binaries:
//! `src/bin/figures.rs` regenerates the paper's rows/series, and
//! `src/bin/perf.rs` times the simulator's hot paths against the committed
//! baseline in `BENCH_parsched.json`.

#![warn(missing_docs)]

pub mod harness;
pub mod scale;
