//! # parsched-bench
//!
//! Benchmarks and the `figures` binary. See `benches/` for the Criterion
//! benchmarks (one per paper figure plus ablations and an engine
//! microbenchmark) and `src/bin/figures.rs` for the harness that prints the
//! paper's rows/series.
