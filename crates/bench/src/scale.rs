//! Large-machine cells shared by the `perf` and `shards` binaries.
//!
//! A 1024-node torus (32 x 32, sixteen 64-node partitions) exercises the
//! coordinated sharding classes at a scale where shard parallelism has
//! real work to split: one cell per widened eligibility class — static
//! space-sharing, the hybrid discipline (time-sharing under an MPL cap),
//! and time-sharing under a two-crash fault plan. A 4096-node torus
//! (64 x 64) provides a smoke-size free-mode case.
//!
//! The batch is a synthetic compute-bound fan-out/fan-in job family
//! rather than the paper's matmul: a 64-wide matmul's replicated B matrix
//! makes the batch host-link-bound at this scale (every load ships ~9 MB
//! through the single host link), which serializes the machine behind the
//! loader and erases the scheduling-policy differences the cells exist to
//! pin. The wide jobs ship 600 kB and compute for seconds, so partitions
//! multiprogram and the three cells pin three *different* goldens.

use parsched_core::prelude::*;
use parsched_des::{SimDuration, SimTime};
use parsched_machine::{JobSpec, NodeCrash, Op, ProcSpec, Rank, Tag, Switching};
use parsched_topology::TopologyKind;

/// The three pinned 1024-node cells, one per coordinated sharding class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cell1k {
    /// Static space-sharing (global FCFS queue, MPL 1).
    Static,
    /// Hybrid: time-sharing capped at MPL 2.
    Hybrid,
    /// Uncapped time-sharing under a two-crash fault plan (requeues).
    FaultedTs,
}

impl Cell1k {
    /// Scenario-name fragment (`t1k_<label>_<shards>`).
    pub fn label(self) -> &'static str {
        match self {
            Cell1k::Static => "static",
            Cell1k::Hybrid => "hybrid",
            Cell1k::FaultedTs => "faulted",
        }
    }

    /// All cells, in report order.
    pub fn all() -> [Cell1k; 3] {
        [Cell1k::Static, Cell1k::Hybrid, Cell1k::FaultedTs]
    }
}

/// One job of the wide fan-out/fan-in family: rank 0 scatters 4 kB to
/// every worker, all ranks compute (per-job and per-rank varied, so no
/// two partitions idle in lockstep), workers reply 2 kB. Explicit
/// `ship_bytes` keeps the host-link load chain (~140 ms per job) well
/// under the compute (1.5–4 s), so multiprogramming — and therefore the
/// scheduling policy — matters.
pub fn wide_job(i: usize, width: usize) -> JobSpec {
    let ms = 1_500 + (i % 7) as u64 * 400;
    let mut coord = Vec::new();
    for w in 1..width {
        coord.push(Op::Send { to: Rank(w as u32), bytes: 4_096, tag: Tag(1) });
    }
    coord.push(Op::Compute(SimDuration::from_millis(ms)));
    coord.push(Op::RecvAny { count: (width - 1) as u32, tag: Tag(2) });
    let mut procs = vec![ProcSpec { program: coord, mem_bytes: 96_000 }];
    for w in 1..width {
        procs.push(ProcSpec {
            program: vec![
                Op::Recv { tag: Tag(1) },
                Op::Compute(SimDuration::from_millis(ms / 2 + (w % 5) as u64 * 9)),
                Op::Send { to: Rank(0), bytes: 2_048, tag: Tag(2) },
            ],
            mem_bytes: 64_000,
        });
    }
    JobSpec { name: format!("wide-{i}"), ship_bytes: 600_000, procs }
}

/// A 1024-node cell: 32 x 32 torus, sixteen 64-node partitions, 32 wide
/// jobs (every partition multiprogrammed at depth 2).
pub fn torus1k(cell: Cell1k) -> (ExperimentConfig, Vec<JobSpec>) {
    let (policy, mpl) = match cell {
        Cell1k::Static => (PolicyKind::Static, None),
        Cell1k::Hybrid => (PolicyKind::TimeSharing, Some(2)),
        Cell1k::FaultedTs => (PolicyKind::TimeSharing, None),
    };
    let mut cfg = ExperimentConfig {
        system_size: 1024,
        mpl,
        ..ExperimentConfig::paper(64, TopologyKind::Torus { rows: 32, cols: 32 }, policy)
    };
    if cell == Cell1k::FaultedTs {
        // Both crashes land mid-compute (first jobs load by ~0.2 s and
        // run for seconds): each kills a running job on a different
        // shard-side of the 2/4-way cuts, so requeues cross shards.
        cfg.machine.faults.crashes = vec![
            NodeCrash { node: 70, at: SimTime(900_000_000) },
            NodeCrash { node: 900, at: SimTime(2_600_000_000) },
        ];
    }
    let batch = (0..32).map(|i| wide_job(i, 64)).collect();
    (cfg, batch)
}

/// The t4k interconnect cells (the §5.2 conjecture at scale): one
/// topology family per policy class, each runnable under wormhole and
/// store-and-forward switching. Sizes are the closest partition-tileable
/// machines to 4096 nodes each family admits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cell4k {
    /// 4096 nodes as 64 8x8-torus partitions under static space-sharing
    /// (coordinated sharding).
    Torus,
    /// 4160 nodes as 20 `fat_tree(8)` partitions (208 vertices each)
    /// under the hybrid MPL-2 discipline (coordinated sharding).
    FatTree,
    /// 4160 nodes as 52 `dragonfly(4, 3, 1)` partitions (80 vertices
    /// each) under uncapped time-sharing (free-mode sharding).
    Dragonfly,
}

impl Cell4k {
    /// Scenario-name fragment (`t4k_<label>_<switching>_<shards>`).
    pub fn label(self) -> &'static str {
        match self {
            Cell4k::Torus => "torus",
            Cell4k::FatTree => "fattree",
            Cell4k::Dragonfly => "dragonfly",
        }
    }

    /// All cells, in report order.
    pub fn all() -> [Cell4k; 3] {
        [Cell4k::Torus, Cell4k::FatTree, Cell4k::Dragonfly]
    }
}

/// One job of the t4k relay family. The 1k cells' `wide_job` is
/// compute-dominated, so the scheduling policy is what its goldens pin;
/// here the response is *latency*-dominated instead: a 64 kB baton is
/// relayed through every rank in far-stride order (strides coprime to
/// the width, so each job traces a different multi-hop tour of its
/// partition), and each relay waits for the previous one. Per-hop
/// store-and-forward latency is therefore additive along the whole tour,
/// while a wormhole pipeline pays one serialization plus a flit-time per
/// link — the §5.2 contrast the t4k goldens exist to pin. Injection
/// bandwidth (which switching cannot move) stays out of the critical
/// path because only one baton per job is ever in flight.
pub fn t4k_job(i: usize, width: usize) -> JobSpec {
    let stride = 21 + 2 * (i % 5); // odd: coprime to the power-of-two width
    let ms = 3 + (i % 4) as u64;
    let mut procs: Vec<ProcSpec> = (0..width)
        .map(|_| ProcSpec { program: Vec::new(), mem_bytes: 160_000 })
        .collect();
    let mut r = 0usize;
    for leg in 0..width {
        let next = (r + stride) % width;
        let tag = if next == 0 { Tag(2) } else { Tag(1) };
        if leg > 0 {
            procs[r].program.push(Op::Recv { tag: Tag(1) });
        }
        procs[r].program.push(Op::Compute(SimDuration::from_millis(ms)));
        procs[r].program.push(Op::Send { to: Rank(next as u32), bytes: 65_536, tag });
        r = next;
    }
    assert_eq!(r, 0, "stride must return the baton to rank 0");
    procs[0].program.push(Op::Recv { tag: Tag(2) });
    JobSpec { name: format!("t4k-{i}"), ship_bytes: 200_000, procs }
}

/// One t4k cell under the given switching mode: the wormhole-vs-SAF
/// headline experiment. Each cell pins a golden per (switching, shard
/// count) and the shard counts within a (cell, switching) pair must agree
/// bit for bit.
pub fn t4k(cell: Cell4k, switching: Switching) -> (ExperimentConfig, Vec<JobSpec>) {
    let (kind, partition, parts, policy, mpl) = match cell {
        Cell4k::Torus => (
            TopologyKind::Torus { rows: 8, cols: 8 },
            64,
            64,
            PolicyKind::Static,
            None,
        ),
        Cell4k::FatTree => (
            TopologyKind::FatTree { k: 8 },
            208,
            20,
            PolicyKind::TimeSharing,
            Some(2),
        ),
        Cell4k::Dragonfly => (
            TopologyKind::Dragonfly { a: 4, p: 3, h: 1 },
            80,
            52,
            PolicyKind::TimeSharing,
            None,
        ),
    };
    let mut cfg = ExperimentConfig {
        system_size: partition * parts,
        mpl,
        ..ExperimentConfig::paper(partition, kind, policy)
    };
    cfg.machine.switching = switching;
    let batch = (0..8).map(|i| t4k_job(i, 64)).collect();
    (cfg, batch)
}

/// The two machine sizes of the t16k/t64k cells: the scale band the
/// widened `u32` node index space opened up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalePoint {
    /// ~16k processors (16 384 / 16 640 / 16 640 by family).
    T16k,
    /// ~64k processors. Every family's size deliberately *crosses* the
    /// old 65 536-node ceiling (65 792 / 65 728 / 65 920), so the cells
    /// construct and simulate machines whose node indices do not fit the
    /// pre-widening `u16` — the exact space the silent-truncation bug
    /// corrupted.
    T64k,
}

impl ScalePoint {
    /// Scenario-name prefix (`t16k_...` / `t64k_...`).
    pub fn label(self) -> &'static str {
        match self {
            ScalePoint::T16k => "t16k",
            ScalePoint::T64k => "t64k",
        }
    }

    /// Both sizes, in report order.
    pub fn all() -> [ScalePoint; 2] {
        [ScalePoint::T16k, ScalePoint::T64k]
    }
}

/// Partition count for one (family, size) cell. Partition shapes are the
/// t4k ones (8x8 torus / `fat_tree(8)` / `dragonfly(4,3,1)`); the counts
/// are the smallest multiples-of-four that reach the size band (divisible
/// by four so shard counts 2 and 4 cut along whole partitions).
pub fn tscale_parts(cell: Cell4k, point: ScalePoint) -> usize {
    match (cell, point) {
        (Cell4k::Torus, ScalePoint::T16k) => 256,      // 16 384
        (Cell4k::Torus, ScalePoint::T64k) => 1028,     // 65 792
        (Cell4k::FatTree, ScalePoint::T16k) => 80,     // 16 640
        (Cell4k::FatTree, ScalePoint::T64k) => 316,    // 65 728
        (Cell4k::Dragonfly, ScalePoint::T16k) => 208,  // 16 640
        (Cell4k::Dragonfly, ScalePoint::T64k) => 824,  // 65 920
    }
}

/// One t16k/t64k cell: the t4k experiment's (family, policy, switching)
/// structure scaled to 16k or 64k processors. The batch stays the 8-job
/// relay family — the cells pin *simulator* behavior (construction,
/// routing, wormhole flow control, shard merge) at machine sizes past the
/// old `u16` ceiling, not machine-saturating load; the ranking experiment
/// (`scale --ranking`) is what loads every partition.
pub fn tscale(cell: Cell4k, point: ScalePoint, switching: Switching) -> (ExperimentConfig, Vec<JobSpec>) {
    let (base_cfg, batch) = t4k(cell, switching);
    let partition = base_cfg.partition_size;
    let cfg = ExperimentConfig {
        system_size: partition * tscale_parts(cell, point),
        ..base_cfg
    };
    (cfg, batch)
}

/// The 4096-node smoke case: 64 x 64 torus, sixty-four 64-node
/// partitions, 8 wide jobs under free-mode time-sharing.
pub fn torus4k() -> (ExperimentConfig, Vec<JobSpec>) {
    let cfg = ExperimentConfig {
        system_size: 4096,
        ..ExperimentConfig::paper(
            64,
            TopologyKind::Torus { rows: 64, cols: 64 },
            PolicyKind::TimeSharing,
        )
    };
    let batch = (0..8).map(|i| wide_job(i, 64)).collect();
    (cfg, batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_jobs_are_balanced_and_light_to_ship() {
        for i in 0..4 {
            let j = wide_job(i, 64);
            j.check_balanced().expect("message pattern balances");
            assert_eq!(j.width(), 64);
            assert_eq!(j.effective_ship_bytes(), 600_000);
        }
    }

    #[test]
    fn cells_are_coordinated_eligible() {
        for cell in Cell1k::all() {
            let (cfg, _) = torus1k(cell);
            assert_eq!(
                shard_eligibility(&cfg),
                Ok(ShardMode::Coordinated),
                "{cell:?}"
            );
        }
        let (cfg, _) = torus4k();
        assert_eq!(shard_eligibility(&cfg), Ok(ShardMode::Free));
    }

    #[test]
    fn tscale_cells_tile_and_cross_the_old_ceiling() {
        for cell in Cell4k::all() {
            for point in ScalePoint::all() {
                let (cfg, batch) = tscale(cell, point, Switching::Wormhole);
                assert_eq!(
                    cfg.system_size,
                    cfg.partition_size * tscale_parts(cell, point),
                    "{cell:?}/{point:?} does not tile"
                );
                assert_eq!(tscale_parts(cell, point) % 4, 0, "{cell:?}/{point:?}");
                match point {
                    ScalePoint::T16k => {
                        assert!((16_384..=16_640).contains(&cfg.system_size), "{cell:?}")
                    }
                    // The t64k sizes must cross the old u16 index ceiling,
                    // or the cells would never touch the widened space.
                    ScalePoint::T64k => {
                        assert!(cfg.system_size > 65_536, "{cell:?} stays under 65 536")
                    }
                }
                let expected = match cell {
                    Cell4k::Dragonfly => ShardMode::Free,
                    _ => ShardMode::Coordinated,
                };
                assert_eq!(shard_eligibility(&cfg), Ok(expected), "{cell:?}/{point:?}");
                assert!(batch.iter().all(|j| j.width() == 64));
            }
        }
    }

    #[test]
    fn t4k_cells_are_shard_eligible_under_both_switchings() {
        for cell in Cell4k::all() {
            for switching in [Switching::Wormhole, Switching::StoreAndForward] {
                let (cfg, batch) = t4k(cell, switching);
                let expected = match cell {
                    Cell4k::Dragonfly => ShardMode::Free,
                    _ => ShardMode::Coordinated,
                };
                assert_eq!(
                    shard_eligibility(&cfg),
                    Ok(expected),
                    "{cell:?}/{switching:?}"
                );
                assert_eq!(cfg.machine.switching, switching);
                assert!(cfg.system_size >= 4096, "{cell:?} is not t4k-scale");
                assert!(batch.iter().all(|j| j.width() == 64));
                for j in &batch {
                    j.check_balanced().expect("t4k message pattern balances");
                }
            }
        }
    }
}
