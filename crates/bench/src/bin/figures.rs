//! Regenerate every table/figure of the paper (and the ablations) and print
//! the rows the paper plots.
//!
//! ```text
//! figures [all|fig3|...|fig6|a1|...|a12] [--csv] [--serial] [--include-16h] [--out DIR] [--seed N]
//! ```
//!
//! With no arguments, prints the four paper figures. `all` adds the
//! ablations. Output is a text table per figure (CSV with `--csv`);
//! `--out DIR` additionally writes `<id>.csv` and `<id>.md` per figure.

use parsched_core::prelude::*;

type FigFn = fn(&FigureOpts) -> Result<FigureTable, RunError>;

const FIGURES: &[(&str, &str, FigFn)] = &[
    ("fig3", "Figure 3: matmul, fixed architecture", fig3),
    ("fig4", "Figure 4: matmul, adaptive architecture", fig4),
    ("fig5", "Figure 5: sort, fixed architecture", fig5),
    ("fig6", "Figure 6: sort, adaptive architecture", fig6),
    ("a1", "Ablation A1: service-demand variance crossover", ablation_variance),
    ("a2", "Ablation A2: topology sensitivity", ablation_topology),
    ("a3", "Ablation A3: wormhole (cut-through) conjecture", ablation_wormhole),
    ("a4", "Ablation A4: quantum rule and size", ablation_quantum),
    ("a5", "Ablation A5: hybrid set-size (MPL) tuning", ablation_mpl),
    ("a6", "Ablation A6: system-overhead sensitivity", ablation_overheads),
    ("a7", "Ablation A7: memory-size sensitivity", ablation_memory),
    ("a8", "Ablation A8: flow-control design choice", ablation_flow_control),
    ("a9", "Ablation A9: gang scheduling vs uncoordinated", ablation_gang),
    ("a10", "Ablation A10: open-arrival load sweep", ablation_load),
    ("a11", "Ablation A11: pipeline workload & coscheduling", ablation_pipeline),
    ("a12", "Ablation A12: space-sharing partition-size tuning", ablation_partition_tuning),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let serial = args.iter().any(|a| a == "--serial");
    let include_16h = args.iter().any(|a| a == "--include-16h");
    let out_dir: Option<String> = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let seed: Option<u64> = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok());
    let mut skip_next = false;
    let selectors: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--out" || *a == "--seed" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(|a| a.as_str())
        .collect();
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create --out directory");
    }

    let opts = FigureOpts {
        parallel: !serial,
        include_16h,
        seed: seed.unwrap_or(FigureOpts::default().seed),
        ..FigureOpts::default()
    };

    let wanted: Vec<&(&str, &str, FigFn)> = if selectors.is_empty() {
        FIGURES.iter().take(4).collect()
    } else if selectors.contains(&"all") {
        FIGURES.iter().collect()
    } else {
        FIGURES
            .iter()
            .filter(|(id, _, _)| selectors.contains(id))
            .collect()
    };
    if wanted.is_empty() {
        eprintln!(
            "unknown figure selector; known: all, {}",
            FIGURES
                .iter()
                .map(|(id, _, _)| *id)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    }

    for (id, caption, f) in wanted {
        let start = std::time::Instant::now();
        match f(&opts) {
            Ok(table) => {
                println!("== {id}: {caption} ==");
                if csv {
                    print!("{}", table.to_csv());
                } else {
                    print!("{}", table.to_text());
                }
                if let Some(dir) = &out_dir {
                    let base = std::path::Path::new(dir).join(id);
                    std::fs::write(base.with_extension("csv"), table.to_csv())
                        .expect("write csv");
                    std::fs::write(base.with_extension("md"), table.to_markdown())
                        .expect("write markdown");
                }
                println!("({:.1}s wall)\n", start.elapsed().as_secs_f64());
            }
            Err(e) => {
                eprintln!("== {id}: FAILED ==\n{e}");
                std::process::exit(1);
            }
        }
    }
}
