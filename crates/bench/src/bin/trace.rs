//! Trace one named experiment configuration and export its timeline.
//!
//! ```text
//! trace [LABEL] [--policy ts|static] [--out-dir DIR] [--list]
//! ```
//!
//! `LABEL` is a figure-axis configuration label (`1`, `4H`, `8L`, `16M`,
//! ... — see `--list`); the default is `16H`, the 16-node hypercube, under
//! time-sharing: the paper's most communication-intensive configuration.
//!
//! The run is fully instrumented ([`run_batch_observed`]): the typed event
//! stream becomes a Chrome-trace (catapult JSON) timeline — open it at
//! `chrome://tracing` or <https://ui.perfetto.dev> — with one process per
//! node (CPU + link tracks) plus scheduler instants, per-partition MPL and
//! per-node ready-queue-depth counter tracks; the time-weighted gauges are
//! written alongside as a CSV. Instrumentation only observes, so the
//! simulated result printed here is bit-identical to an untraced run.

use parsched_core::prelude::*;
use parsched_obs::ChromeTrace;
use parsched_topology::{config_label, paper_configs, TopologyKind};
use parsched_workload::prelude::*;
use std::path::PathBuf;

/// The configurations this binary can trace: the paper's X-axis grid
/// including the host-link-impossible `16H` (the headline trace).
fn known_configs() -> Vec<(String, usize, TopologyKind)> {
    paper_configs(true)
        .into_iter()
        .map(|(size, kind)| (config_label(size, kind), size, kind))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let configs = known_configs();
    if args.iter().any(|a| a == "--list") {
        println!("known configuration labels:");
        for (label, size, kind) in &configs {
            let topo = match kind {
                TopologyKind::Linear => "linear array",
                TopologyKind::Ring => "ring",
                TopologyKind::Mesh { .. } => "mesh",
                TopologyKind::Hypercube { .. } => "hypercube",
                // Test-only topologies never appear in paper_configs.
                _ => "other",
            };
            println!("  {label:<4} {size} nodes per partition, {topo}");
        }
        return;
    }
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let label = args
        .iter()
        .find(|a| !a.starts_with("--") && Some(*a) != flag("--policy") && Some(*a) != flag("--out-dir"))
        .cloned()
        .unwrap_or_else(|| "16H".to_string());
    let policy = match flag("--policy").map(String::as_str) {
        None | Some("ts") => PolicyKind::TimeSharing,
        Some("static") => PolicyKind::Static,
        Some(other) => {
            eprintln!("trace: unknown policy {other:?} (expected ts|static)");
            std::process::exit(2);
        }
    };
    let out_dir = PathBuf::from(flag("--out-dir").cloned().unwrap_or_else(|| ".".into()));
    let Some((_, partition_size, topology)) =
        configs.iter().find(|(l, _, _)| *l == label).cloned()
    else {
        eprintln!("trace: unknown configuration {label:?}; use --list");
        std::process::exit(2);
    };

    let config = ExperimentConfig::paper(partition_size, topology, policy);
    let batch = order_batch(
        paper_batch(
            App::MatMul,
            Arch::Fixed,
            partition_size,
            &BatchSizes::default(),
            &CostModel::default(),
        ),
        BatchOrder::SmallestFirst,
    );
    let jobs = batch.len();
    let policy_tag = match policy {
        PolicyKind::TimeSharing => "ts",
        PolicyKind::Static => "static",
    };
    println!("tracing {label} under {policy_tag}: {jobs} jobs (mm-f, smallest first)");

    let (result, obs) = match run_batch_observed(&config, batch) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("trace: {e}");
            std::process::exit(1);
        }
    };

    let mut trace = ChromeTrace::build(&obs.layout, &obs.events);
    // Counter tracks: per-partition MPL on the scheduler process, then each
    // node's ready-queue depth on its own process.
    let reg = &obs.metrics.registry;
    for part in 0..obs.metrics.partition_count() {
        let id = obs.metrics.partition_mpl_id(part);
        let name = reg.gauge_name(id);
        for &(t, v) in reg.series(id) {
            trace.counter(t, 0, name, v);
        }
    }
    for node in 0..obs.layout.node_count {
        let id = obs.metrics.ready_depth_id(node);
        for &(t, v) in reg.series(id) {
            trace.counter(t, node + 1, "ready_depth", v);
        }
    }

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let trace_path = out_dir.join(format!("trace_{label}_{policy_tag}.json"));
    let metrics_path = out_dir.join(format!("metrics_{label}_{policy_tag}.csv"));
    std::fs::write(&trace_path, trace.render()).expect("write trace file");
    let table = metrics_table(reg, &format!("{label} {policy_tag} time-weighted metrics"));
    std::fs::write(&metrics_path, table.to_csv()).expect("write metrics file");

    println!(
        "  mean response {:.6}s  makespan {:.6}s  ({} engine events)",
        result.summary.mean,
        result.makespan.as_secs_f64(),
        result.events,
    );
    println!(
        "  {} recorded events -> {} trace events ({} unmatched), {} dropped",
        obs.events.len(),
        trace.len(),
        trace.unmatched(),
        obs.dropped,
    );
    // The interesting aggregate: how busy each partition's CPUs were.
    let nodes = obs.layout.node_count;
    let mean_busy: f64 = (0..nodes)
        .map(|n| reg.mean(obs.metrics.cpu_busy_id(n)))
        .sum::<f64>()
        / nodes as f64;
    println!("  mean CPU utilization across {nodes} nodes: {:.1}%", 100.0 * mean_busy);
    println!("trace written to {}", trace_path.display());
    println!("metrics written to {}", metrics_path.display());
    println!("open the trace at chrome://tracing or https://ui.perfetto.dev");
}
