//! Fault-injection scenarios: response-time inflation vs fault rate.
//!
//! ```text
//! faults [--smoke]
//! ```
//!
//! Full mode sweeps per-hop corruption rates (plus one node-crash plan)
//! over the four paper topologies at partition size 4, under both
//! policies, and prints each cell's mean response time and its inflation
//! over the fault-free baseline — the source of the fault appendix in
//! `EXPERIMENTS.md`.
//!
//! `--smoke` is the tier-1 gate: one crash scenario and one flaky-link
//! scenario per policy class, each run twice fully instrumented, with
//! the oracle's invariant checkers on and deterministic replay asserted
//! (both runs must agree bit-exactly on response times and counters).

use parsched_core::prelude::*;
use parsched_des::SimTime;
use parsched_machine::{FaultPlan, JobSpec, LinkWindow, NodeCrash, RetryPolicy};
use parsched_oracle::invariants;
use parsched_topology::TopologyKind;
use parsched_workload::prelude::*;

/// The scenario family's batch: small enough that the full sweep runs in
/// seconds, large enough to multiprogram every partition.
fn batch(partition_size: usize) -> Vec<JobSpec> {
    let sizes = BatchSizes {
        jobs: 8,
        small_count: 6,
        mm_small: 32,
        mm_large: 64,
        ..BatchSizes::default()
    };
    paper_batch(
        App::MatMul,
        Arch::Fixed,
        partition_size,
        &sizes,
        &CostModel::default(),
    )
}

fn config(topology: TopologyKind, policy: PolicyKind, faults: FaultPlan) -> ExperimentConfig {
    let mut config = ExperimentConfig::paper(4, topology, policy);
    config.machine.faults = faults;
    config
}

/// A generous retry budget: the sweep measures recovery cost, not the
/// (astronomically unlikely) exhaustion of 16 retries at <= 8% corruption.
fn retrying() -> RetryPolicy {
    RetryPolicy {
        max_retries: 16,
        ..RetryPolicy::default()
    }
}

/// One fail-stop crash mid-run: node 1 dies at 150 ms, killing whatever
/// partition 0 is running; the scheduler requeues it onto survivors.
fn crash_plan() -> FaultPlan {
    FaultPlan {
        crashes: vec![NodeCrash {
            node: 1,
            at: SimTime(150_000_000),
        }],
        retry: retrying(),
        ..FaultPlan::default()
    }
}

/// A flaky link: the 0-1 channel drops out for 30 ms mid-run and its
/// queued traffic resumes on repair.
fn flaky_plan() -> FaultPlan {
    FaultPlan {
        links: vec![LinkWindow {
            from: 0,
            to: 1,
            down_at: SimTime(20_000_000),
            up_at: SimTime(50_000_000),
        }],
        retry: retrying(),
        ..FaultPlan::default()
    }
}

/// Per-hop corruption at `prob` through the seeded drop lottery.
fn drop_plan(prob: f64) -> FaultPlan {
    FaultPlan {
        drop_prob: prob,
        drop_seed: 0x0FA1_7B17,
        retry: retrying(),
        ..FaultPlan::default()
    }
}

fn mean_response(topology: TopologyKind, policy: PolicyKind, faults: FaultPlan) -> f64 {
    let cfg = config(topology, policy, faults);
    let batch = order_batch(batch(4), BatchOrder::SmallestFirst);
    match run_batch(&cfg, batch) {
        Ok(r) => r.summary.mean,
        Err(e) => {
            eprintln!("faults: run failed:\n{e}");
            std::process::exit(1);
        }
    }
}

/// The full sweep: the response-time-vs-fault-rate table.
fn sweep() {
    let rates = [0.01, 0.02, 0.04, 0.08];
    let topologies = [
        ("4L", TopologyKind::Linear),
        ("4R", TopologyKind::Ring),
        ("4M", TopologyKind::Mesh { rows: 0, cols: 0 }),
        ("4H", TopologyKind::Hypercube { dim: 0 }),
    ];
    println!(
        "mean response time (s) and inflation over the fault-free baseline\n\
         (8-job mm-f batch, partition size 4, crash = node 1 at 150 ms)\n"
    );
    println!(
        "{:<10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "config", "baseline", "p=1%", "p=2%", "p=4%", "p=8%", "crash"
    );
    for policy in [PolicyKind::Static, PolicyKind::TimeSharing] {
        let tag = match policy {
            PolicyKind::Static => "static",
            PolicyKind::TimeSharing => "ts",
        };
        for (label, topology) in topologies {
            let base = mean_response(topology, policy, FaultPlan::default());
            let mut row = format!("{:<10} {base:>9.4}s", format!("{label} {tag}"));
            for p in rates {
                let m = mean_response(topology, policy, drop_plan(p));
                row.push_str(&format!(" {:>+8.1}%", 100.0 * (m / base - 1.0)));
            }
            let m = mean_response(topology, policy, crash_plan());
            row.push_str(&format!(" {:>+8.1}%", 100.0 * (m / base - 1.0)));
            println!("{row}");
        }
    }
}

/// The tier-1 gate: crash + flaky-link per policy class, invariants on,
/// deterministic replay asserted.
fn smoke() {
    let cases = [
        ("static/crash", TopologyKind::Linear, PolicyKind::Static, crash_plan()),
        ("static/flaky", TopologyKind::Linear, PolicyKind::Static, flaky_plan()),
        ("ts/crash", TopologyKind::Hypercube { dim: 0 }, PolicyKind::TimeSharing, crash_plan()),
        ("ts/flaky", TopologyKind::Hypercube { dim: 0 }, PolicyKind::TimeSharing, flaky_plan()),
    ];
    for (name, topology, policy, plan) in cases {
        let cfg = config(topology, policy, plan);
        let jobs = batch(4).len();
        let run = || {
            let batch = order_batch(batch(4), BatchOrder::SmallestFirst);
            run_batch_observed(&cfg, batch).unwrap_or_else(|e| {
                eprintln!("faults: smoke case {name} failed:\n{e}");
                std::process::exit(1);
            })
        };
        let (first, obs) = run();
        let (second, _) = run();

        // Deterministic replay: same plan, same everything.
        assert_eq!(
            first.response_times, second.response_times,
            "{name}: fault recovery did not replay deterministically"
        );
        assert_eq!(
            first.stats.to_csv_row(),
            second.stats.to_csv_row(),
            "{name}: counters diverged across replays"
        );

        // Invariants on the instrumented stream and gauges.
        invariants::check_event_stream(&obs.events);
        invariants::check_fcfs_admission(&obs.events);
        invariants::check_cpu_conservation(&obs.metrics, obs.layout.node_count, first.makespan);
        // Conservation in dropped-and-accounted form, from the snapshot.
        assert_eq!(
            first.stats.messages_sent,
            first.stats.messages_consumed + first.stats.messages_dropped,
            "{name}: message conservation violated"
        );
        assert_eq!(
            first.stats.jobs_completed as usize, jobs,
            "{name}: not every job recovered to completion"
        );

        println!(
            "  {name:<14} mean {:.4}s  crashes {} downs {} drops {} retries {} requeues {}  ({} jobs ok)",
            first.summary.mean,
            first.stats.node_crashes,
            first.stats.link_downs,
            first.stats.messages_dropped,
            first.stats.retries,
            first.stats.jobs_requeued,
            first.stats.jobs_completed,
        );
    }
    println!("fault smoke: OK");
}

fn main() {
    let smoke_mode = std::env::args().skip(1).any(|a| a == "--smoke");
    if smoke_mode {
        smoke();
    } else {
        sweep();
    }
}
