//! Open-system load sweep: response/slowdown curves versus offered load.
//!
//! ```text
//! arrivals [--smoke] [--seed N] [--out DIR]
//! ```
//!
//! `--smoke` is the tier-1 gate: one Poisson/exponential cell and one
//! heavy-tailed (bounded-Pareto) cell per policy class — static
//! space-sharing, uncoordinated time-sharing, and dynamic-quantum
//! time-sharing — each run twice with bit-identical records demanded,
//! plus a three-point ρ sweep whose mean response must be
//! monotone-nondecreasing in ρ.
//!
//! Full mode runs the ρ grid {0.2 .. 0.9} for each policy class under
//! both demand distributions and prints one table per sweep — the
//! source of the W1 appendix in `EXPERIMENTS.md`. `--out DIR` also
//! writes each table to `DIR/open_<policy>_<demand>.txt`.

use parsched_core::prelude::*;
use parsched_des::{SimDuration, SimTime};
use parsched_topology::TopologyKind;

/// The open-system machine: 16 nodes in four 4-node hypercube
/// partitions, 4-wide fork-join jobs with a 200 ms mean demand.
fn open_config(policy: PolicyKind, discipline: Discipline, seed: u64) -> OpenConfig {
    let mut exp = ExperimentConfig::paper(4, TopologyKind::Hypercube { dim: 0 }, policy);
    exp.discipline = discipline;
    OpenConfig::new(exp, seed)
}

/// The three policy classes a sweep covers, with table-friendly names.
fn classes() -> Vec<(&'static str, PolicyKind, Discipline)> {
    vec![
        ("static", PolicyKind::Static, Discipline::Uncoordinated),
        ("ts", PolicyKind::TimeSharing, Discipline::Uncoordinated),
        (
            "ts-dynq",
            PolicyKind::TimeSharing,
            Discipline::DynamicQuantum {
                base: SimDuration::from_millis(2),
            },
        ),
    ]
}

/// The heavy-tailed demand cell: bounded Pareto with the same 200 ms
/// scale as the exponential baseline but a long truncated tail.
fn pareto() -> DemandSpec {
    DemandSpec::BoundedPareto {
        alpha: 1.5,
        lo: SimDuration::from_millis(20),
        hi: SimDuration::from_secs(10),
    }
}

/// A small, fast cell for the smoke gate: fewer measured jobs, lighter
/// demands, single-digit milliseconds of simulated work per job.
fn smoke_config(policy: PolicyKind, discipline: Discipline, demand: DemandSpec) -> OpenConfig {
    let mut cfg = open_config(policy, discipline, 0xA11);
    cfg.params.mean_demand = SimDuration::from_millis(20);
    cfg.demand = demand;
    cfg.warmup = 5;
    cfg.stop = StopRule::Completions(25);
    cfg
}

fn smoke() {
    for (name, policy, discipline) in classes() {
        let cells = [
            (
                "exp",
                DemandSpec::Exponential {
                    mean: SimDuration::from_millis(20),
                },
            ),
            (
                "pareto",
                DemandSpec::BoundedPareto {
                    alpha: 1.5,
                    lo: SimDuration::from_millis(4),
                    hi: SimDuration::from_secs(1),
                },
            ),
        ];
        for (demand_name, demand) in cells {
            let cfg = smoke_config(policy, discipline, demand);
            let first = run_open_system(&cfg, 0.5)
                .unwrap_or_else(|e| panic!("{name}/{demand_name} failed: {e}"));
            assert_eq!(
                first.measured, 25,
                "{name}/{demand_name}: measured sample incomplete"
            );
            assert_eq!(first.unfinished, 0, "{name}/{demand_name}: jobs left behind");
            let again = run_open_system(&cfg, 0.5)
                .unwrap_or_else(|e| panic!("{name}/{demand_name} rerun failed: {e}"));
            assert_eq!(
                first.records, again.records,
                "{name}/{demand_name}: replay diverged"
            );
            assert_eq!(first.end, again.end, "{name}/{demand_name}: end diverged");
        }
    }

    // The acceptance curve: mean response monotone-nondecreasing in ρ.
    let cfg = smoke_config(
        PolicyKind::TimeSharing,
        Discipline::Uncoordinated,
        DemandSpec::Exponential {
            mean: SimDuration::from_millis(20),
        },
    );
    let sweep = sweep_load(&cfg, &[0.3, 0.6, 0.9]).expect("smoke sweep completes");
    let means: Vec<f64> = sweep
        .mean_responses()
        .into_iter()
        .map(|m| m.expect("every point measures"))
        .collect();
    assert!(
        means.windows(2).all(|w| w[0] <= w[1]),
        "mean response not monotone in rho: {means:?}"
    );

    // A horizon-stopped run reports its unfinished tail instead of
    // hanging the gate on a saturated queue.
    let mut sat = cfg;
    sat.stop = StopRule::Horizon(SimTime::ZERO + SimDuration::from_millis(500));
    let r = run_open_system(&sat, 1.2).expect("horizon run completes");
    assert!(
        r.end <= SimTime::ZERO + SimDuration::from_millis(500),
        "horizon overrun"
    );

    println!(
        "arrivals --smoke: OK (3 policy classes x 2 demand cells replay \
         bit-identically, rho curve monotone: {means:?})"
    );
}

fn full(seed: u64, out: Option<&str>) {
    let rhos = [0.2, 0.4, 0.6, 0.8, 0.9];
    for (name, policy, discipline) in classes() {
        for demand in [
            DemandSpec::Exponential {
                mean: SimDuration::from_millis(200),
            },
            pareto(),
        ] {
            let mut cfg = open_config(policy, discipline, seed);
            cfg.demand = demand;
            let sweep = sweep_load(&cfg, &rhos)
                .unwrap_or_else(|e| panic!("sweep {name}/{} failed: {e}", demand.label()));
            let text = sweep.to_text();
            println!("{text}");
            if let Some(dir) = out {
                std::fs::create_dir_all(dir).expect("create out dir");
                let path =
                    std::path::Path::new(dir).join(format!("open_{name}_{}.txt", demand.label()));
                std::fs::write(&path, &text).expect("write sweep table");
                eprintln!("wrote {}", path.display());
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xA11);
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    full(seed, out);
}
