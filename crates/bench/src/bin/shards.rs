//! Sharded-execution smoke and scaling demonstration.
//!
//! ```text
//! shards [--smoke] [--shards K] [--csv] [--out DIR]
//! ```
//!
//! `--smoke` is the tier-1 gate. One free-mode configuration (four
//! 16-node hypercube partitions under uncoordinated time-sharing) runs
//! sequentially and at 2 shards, and the observables — per-job response
//! times, makespan, machine counters, events processed — must agree bit
//! for bit; the 2-shard run then repeats and must fingerprint identically
//! (no thread-interleaving nondeterminism). Then one K = 2 case per
//! *coordinated* eligibility class runs on the 1024-node torus cells:
//! static space-sharing, the hybrid MPL-2 discipline, an MPL-capped
//! static run, and time-sharing under a crash + flaky-link fault plan —
//! each bit-identical to its sequential run, none falling back. A tiny
//! 4096-node torus case covers free mode at the largest machine size, a
//! wormhole gate runs one K = 2 flit-switched case per topology family
//! (torus, fat-tree, dragonfly — the t4k cells), and a gang-scheduled
//! configuration must still fall back with a recorded reason.
//!
//! Full mode sweeps shard counts 1, 2, 4 and prints each run's wall
//! clock, speedup over sequential, the (identical) simulated mean, and —
//! when a run fell back to the sequential path — the recorded reason.
//! A second table breaks each parallel run down per shard (event-loop
//! work vs. barrier wait vs. cross-shard merge, from
//! `ShardedRunResult::timings`); the same wall-clock numbers feed
//! `ObsEvent::ShardPhase` events into a `MetricsRegistry` gauge so the
//! breakdown lands in the metrics CSV next to the simulated gauges.
//! Both tables render to CSV (`--csv`, or `--out DIR` for `shards.csv`,
//! `shard_phases.csv` and `shard_phase_gauges.csv`). This is the source
//! of the scaling tables in `EXPERIMENTS.md`.

use parsched_bench::scale::{t4k, torus1k, torus4k, Cell1k, Cell4k};
use parsched_core::prelude::*;
use parsched_core::sharded::run_batch_sharded;
use parsched_des::{SimDuration, SimTime};
use parsched_machine::{FaultPlan, JobSpec, LinkWindow, Switching};
use parsched_obs::{MetricsRegistry, ObsEvent, Recorder};
use parsched_topology::TopologyKind;
use std::time::Instant;

/// The shard-scale machine from `perf`: 64 nodes in four 16-node
/// hypercube partitions, the f3 workload family.
fn config() -> (ExperimentConfig, Vec<JobSpec>) {
    use parsched_workload::prelude::*;
    let cfg = ExperimentConfig {
        system_size: 64,
        ..ExperimentConfig::paper(
            16,
            TopologyKind::Hypercube { dim: 0 },
            PolicyKind::TimeSharing,
        )
    };
    let batch = paper_batch(
        App::MatMul,
        Arch::Fixed,
        16,
        &BatchSizes::default(),
        &CostModel::default(),
    );
    (cfg, batch)
}

fn assert_matches(seq: &ShardedRunResult, par: &ShardedRunResult, what: &str) {
    assert_eq!(
        par.response_times, seq.response_times,
        "{what}: response times diverged"
    );
    assert_eq!(par.makespan, seq.makespan, "{what}: makespan diverged");
    assert_eq!(par.counters, seq.counters, "{what}: counters diverged");
    assert_eq!(par.events, seq.events, "{what}: events diverged");
    assert_eq!(
        par.fingerprint(),
        seq.fingerprint(),
        "{what}: fingerprint diverged"
    );
}

/// Run `cfg` sequentially and at 2 shards; the parallel run must really
/// shard (no fallback) and match bit for bit.
fn assert_shards_bit_identically(cfg: &ExperimentConfig, batch: &[JobSpec], what: &str) {
    let seq = run_batch_sharded(cfg, batch.to_vec(), 1)
        .unwrap_or_else(|e| panic!("{what}: sequential run failed: {e}"));
    let par = run_batch_sharded(cfg, batch.to_vec(), 2)
        .unwrap_or_else(|e| panic!("{what}: 2-shard run failed: {e}"));
    assert_eq!(par.fallback, None, "{what}: must not fall back");
    assert_eq!(par.shards, 2, "{what}: must use 2 shards");
    assert_matches(&seq, &par, what);
    println!("shards --smoke: {what}: OK (K=2 bit-identical)");
}

fn smoke() {
    let (cfg, batch) = config();
    let seq = run_batch_sharded(&cfg, batch.clone(), 1).expect("sequential run completes");
    assert_eq!(seq.shards, 1);

    let par = run_batch_sharded(&cfg, batch.clone(), 2).expect("2-shard run completes");
    assert_eq!(par.shards, 2, "eligible configuration must shard");
    assert_eq!(par.fallback, None);
    assert_matches(&seq, &par, "2-shard vs sequential");

    let again = run_batch_sharded(&cfg, batch.clone(), 2).expect("2-shard rerun completes");
    assert_eq!(
        again.fingerprint(),
        par.fingerprint(),
        "2-shard rerun: interleaving nondeterminism"
    );
    println!("shards --smoke: free mode: OK (K=2 bit-identical, deterministic rerun)");

    // The widened gate: one K = 2 case per coordinated eligibility class,
    // on the 1024-node cells the perf goldens pin.
    let (s_cfg, s_batch) = torus1k(Cell1k::Static);
    assert_shards_bit_identically(&s_cfg, &s_batch, "static policy");

    let (h_cfg, h_batch) = torus1k(Cell1k::Hybrid);
    assert_shards_bit_identically(&h_cfg, &h_batch, "hybrid (MPL-2 time-sharing)");

    let (mut m_cfg, m_batch) = torus1k(Cell1k::Static);
    m_cfg.mpl = Some(2);
    assert_shards_bit_identically(&m_cfg, &m_batch, "MPL-capped static");

    let (mut f_cfg, f_batch) = torus1k(Cell1k::FaultedTs);
    // Crashes and a flaky link window in one plan: requeues cross shards
    // while per-channel drop streams stay shard-local.
    f_cfg.machine.faults = FaultPlan {
        links: vec![LinkWindow {
            from: 0,
            to: 1,
            down_at: SimTime(60_000_000),
            up_at: SimTime(90_000_000),
        }],
        drop_prob: 0.02,
        drop_seed: 11,
        ..f_cfg.machine.faults
    };
    assert_shards_bit_identically(&f_cfg, &f_batch, "crash + flaky-link fault plan");

    let (t4_cfg, t4_batch) = torus4k();
    assert_shards_bit_identically(&t4_cfg, &t4_batch, "4096-node torus (free mode)");

    // Wormhole smoke gate: one K = 2 case per topology family under
    // flit-level switching — the t4k cells whose goldens `perf --check`
    // pins. Flit ticks, VC grants and credit stalls must replay
    // bit-identically across the shard cut.
    for cell in Cell4k::all() {
        let (w_cfg, w_batch) = t4k(cell, Switching::Wormhole);
        let what = format!("wormhole {} (t4k)", cell.label());
        assert_shards_bit_identically(&w_cfg, &w_batch, &what);
    }

    // An ineligible configuration must fall back, say why, and match.
    let (mut g_cfg, g_batch) = config();
    g_cfg.discipline = Discipline::Gang {
        slot: SimDuration::from_millis(4),
    };
    let gseq = run_batch_sharded(&g_cfg, g_batch.clone(), 1).expect("gang run completes");
    let gfall = run_batch_sharded(&g_cfg, g_batch, 4).expect("gang fallback completes");
    assert_eq!(gfall.shards, 1, "gang scheduling must fall back");
    assert!(gfall.fallback.is_some(), "fallback reason must be recorded");
    assert_matches(&gseq, &gfall, "gang fallback vs sequential");

    println!(
        "shards --smoke: OK (free + coordinated classes bit-identical, \
         gang fallback: {:?})",
        gfall.fallback.unwrap()
    );
}

/// Fold one parallel run's per-shard phase times into a
/// [`MetricsRegistry`] via [`ObsEvent::ShardPhase`] events — the same
/// recorder pipeline the machine's own gauges use, so the breakdown can
/// travel with simulated metrics instead of living in a bespoke format.
/// Events are stamped at the run's makespan: the timing exists only once
/// the run is over.
fn phase_gauge_csv(r: &ShardedRunResult) -> String {
    let end = SimTime::ZERO + r.makespan;
    let mut rec = parsched_obs::CollectRecorder::new();
    for (s, t) in r.timings.iter().enumerate() {
        for (phase, ns) in [(0u8, t.work_ns), (1, t.barrier_ns), (2, t.merge_ns)] {
            rec.record(end, ObsEvent::ShardPhase { shard: s as u16, phase, ns });
        }
    }
    let mut reg = MetricsRegistry::new(SimTime::ZERO);
    for &(at, ev) in rec.events() {
        if let ObsEvent::ShardPhase { shard, phase, ns } = ev {
            let name = match phase {
                0 => format!("shard{shard}.work_ms"),
                1 => format!("shard{shard}.barrier_ms"),
                _ => format!("shard{shard}.merge_ms"),
            };
            let g = reg.gauge(name, 0.0);
            reg.set(g, at, ns as f64 / 1e6);
        }
    }
    reg.finish(end);
    reg.to_csv()
}

/// One sweep over shard counts as two [`FigureTable`]s: the scaling
/// summary and the per-shard phase breakdown. The `fallback` column
/// records why a run used the sequential path (`-` when it sharded), so
/// the reason travels with the numbers instead of vanishing into stderr.
fn sweep(counts: &[usize]) -> (FigureTable, FigureTable, String) {
    let (cfg, batch) = config();
    let mut base_ns = 0u128;
    let mut reference: Option<ShardedRunResult> = None;
    let mut rows = Vec::new();
    let mut phase_rows = Vec::new();
    let mut gauge_csv = String::new();
    for &k in counts {
        let t0 = Instant::now();
        let r = run_batch_sharded(&cfg, batch.clone(), k).expect("shard-scale run completes");
        let ns = t0.elapsed().as_nanos();
        if k == 1 {
            base_ns = ns;
        }
        if let Some(seq) = &reference {
            assert_matches(seq, &r, "sweep");
        } else {
            reference = Some(r.clone());
        }
        for (s, t) in r.timings.iter().enumerate() {
            phase_rows.push(FigureRow {
                label: format!("{k}/{s}"),
                static_mean: None,
                ts_mean: None,
                extra: vec![
                    format!("{:.3}", t.work_ns as f64 / 1e9),
                    format!("{:.3}", t.barrier_ns as f64 / 1e9),
                    format!("{:.3}", t.merge_ns as f64 / 1e9),
                ],
            });
        }
        if r.shards > 1 {
            gauge_csv = phase_gauge_csv(&r);
        }
        rows.push(FigureRow {
            label: format!("{k}"),
            static_mean: None,
            ts_mean: None,
            extra: vec![
                format!("{:.3}", ns as f64 / 1e9),
                format!("{:.2}", base_ns as f64 / ns as f64),
                format!("{:.6}", r.mean_response()),
                format!("{}", r.shards),
                r.fallback.unwrap_or("-").to_string(),
            ],
        });
    }
    let table = FigureTable {
        title: "Sharded scaling: 64-node machine, four 16-node hypercube partitions".into(),
        columns: vec![
            "wall (s)".into(),
            "speedup".into(),
            "mean resp (s)".into(),
            "used".into(),
            "fallback".into(),
        ],
        rows,
    };
    let phases = FigureTable {
        title: "Per-shard wall-clock phases (rows are shards/run)".into(),
        columns: vec!["work (s)".into(), "barrier (s)".into(), "merge (s)".into()],
        rows: phase_rows,
    };
    (table, phases, gauge_csv)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let shards = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok());
    let (table, phases, gauge_csv) = match shards {
        Some(k) => sweep(&[1, k]),
        None => sweep(&[1, 2, 4]),
    };
    if args.iter().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
        print!("{}", phases.to_csv());
    } else {
        print!("{}", table.to_text());
        print!("{}", phases.to_text());
    }
    if let Some(dir) = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
    {
        std::fs::create_dir_all(dir).expect("create out dir");
        let base = std::path::Path::new(dir).join("shards");
        std::fs::write(base.with_extension("csv"), table.to_csv()).expect("write csv");
        std::fs::write(base.with_extension("md"), table.to_markdown()).expect("write md");
        let pbase = std::path::Path::new(dir).join("shard_phases");
        std::fs::write(pbase.with_extension("csv"), phases.to_csv()).expect("write phases csv");
        let gbase = std::path::Path::new(dir).join("shard_phase_gauges");
        std::fs::write(gbase.with_extension("csv"), gauge_csv).expect("write gauge csv");
        eprintln!(
            "wrote {}.csv/.md, {}.csv and {}.csv",
            base.display(),
            pbase.display(),
            gbase.display()
        );
    }
}
