//! Sharded-execution smoke and scaling demonstration.
//!
//! ```text
//! shards [--smoke] [--shards K] [--csv] [--out DIR]
//! ```
//!
//! `--smoke` is the tier-1 gate: one eligible configuration (four 16-node
//! hypercube partitions under uncoordinated time-sharing) runs
//! sequentially and at 2 shards, and the observables — per-job response
//! times, makespan, machine counters, events processed — must agree bit
//! for bit; the 2-shard run then repeats and must fingerprint
//! identically (no thread-interleaving nondeterminism). An ineligible
//! configuration (static policy) must fall back to the sequential path
//! and still match.
//!
//! Full mode sweeps shard counts 1, 2, 4 and prints each run's wall
//! clock, speedup over sequential, the (identical) simulated mean, and —
//! when a run fell back to the sequential path — the recorded reason.
//! The same table renders to CSV (`--csv`, or `--out DIR` for
//! `shards.csv`), so fallback reasons land in the metrics CSV next to
//! the numbers they explain. This is the source of the scaling table in
//! `EXPERIMENTS.md`.

use parsched_core::prelude::*;
use parsched_core::sharded::run_batch_sharded;
use parsched_machine::JobSpec;
use parsched_topology::TopologyKind;
use parsched_workload::prelude::*;
use std::time::Instant;

/// The shard-scale machine from `perf`: 64 nodes in four 16-node
/// hypercube partitions, the f3 workload family.
fn config() -> (ExperimentConfig, Vec<JobSpec>) {
    let cfg = ExperimentConfig {
        system_size: 64,
        ..ExperimentConfig::paper(
            16,
            TopologyKind::Hypercube { dim: 0 },
            PolicyKind::TimeSharing,
        )
    };
    let batch = paper_batch(
        App::MatMul,
        Arch::Fixed,
        16,
        &BatchSizes::default(),
        &CostModel::default(),
    );
    (cfg, batch)
}

fn assert_matches(seq: &ShardedRunResult, par: &ShardedRunResult, what: &str) {
    assert_eq!(
        par.response_times, seq.response_times,
        "{what}: response times diverged"
    );
    assert_eq!(par.makespan, seq.makespan, "{what}: makespan diverged");
    assert_eq!(par.counters, seq.counters, "{what}: counters diverged");
    assert_eq!(par.events, seq.events, "{what}: events diverged");
    assert_eq!(
        par.fingerprint(),
        seq.fingerprint(),
        "{what}: fingerprint diverged"
    );
}

fn smoke() {
    let (cfg, batch) = config();
    let seq = run_batch_sharded(&cfg, batch.clone(), 1).expect("sequential run completes");
    assert_eq!(seq.shards, 1);

    let par = run_batch_sharded(&cfg, batch.clone(), 2).expect("2-shard run completes");
    assert_eq!(par.shards, 2, "eligible configuration must shard");
    assert_eq!(par.fallback, None);
    assert_matches(&seq, &par, "2-shard vs sequential");

    let again = run_batch_sharded(&cfg, batch.clone(), 2).expect("2-shard rerun completes");
    assert_eq!(
        again.fingerprint(),
        par.fingerprint(),
        "2-shard rerun: interleaving nondeterminism"
    );

    // An ineligible configuration must fall back, say why, and match.
    let mut static_cfg = cfg.clone();
    static_cfg.policy = PolicyKind::Static;
    let sseq = run_batch_sharded(&static_cfg, batch.clone(), 1).expect("static run completes");
    let sfall = run_batch_sharded(&static_cfg, batch, 4).expect("static fallback completes");
    assert_eq!(sfall.shards, 1, "static policy must fall back");
    assert!(sfall.fallback.is_some(), "fallback reason must be recorded");
    assert_matches(&sseq, &sfall, "static fallback vs sequential");

    println!(
        "shards --smoke: OK (2-shard bit-identical, deterministic rerun, \
         static fallback: {:?})",
        sfall.fallback.unwrap()
    );
}

/// One sweep over shard counts as a [`FigureTable`]: the text rendering
/// goes to the console, the CSV rendering to files. The `fallback` column
/// records why a run used the sequential path (`-` when it sharded), so
/// the reason travels with the numbers instead of vanishing into stderr.
fn sweep(counts: &[usize]) -> FigureTable {
    let (cfg, batch) = config();
    let mut base_ns = 0u128;
    let mut reference: Option<ShardedRunResult> = None;
    let mut rows = Vec::new();
    for &k in counts {
        let t0 = Instant::now();
        let r = run_batch_sharded(&cfg, batch.clone(), k).expect("shard-scale run completes");
        let ns = t0.elapsed().as_nanos();
        if k == 1 {
            base_ns = ns;
        }
        if let Some(seq) = &reference {
            assert_matches(seq, &r, "sweep");
        } else {
            reference = Some(r.clone());
        }
        rows.push(FigureRow {
            label: format!("{k}"),
            static_mean: None,
            ts_mean: None,
            extra: vec![
                format!("{:.3}", ns as f64 / 1e9),
                format!("{:.2}", base_ns as f64 / ns as f64),
                format!("{:.6}", r.mean_response()),
                format!("{}", r.shards),
                r.fallback.unwrap_or("-").to_string(),
            ],
        });
    }
    FigureTable {
        title: "Sharded scaling: 64-node machine, four 16-node hypercube partitions".into(),
        columns: vec![
            "wall (s)".into(),
            "speedup".into(),
            "mean resp (s)".into(),
            "used".into(),
            "fallback".into(),
        ],
        rows,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let shards = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok());
    let table = match shards {
        Some(k) => sweep(&[1, k]),
        None => sweep(&[1, 2, 4]),
    };
    if args.iter().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_text());
    }
    if let Some(dir) = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
    {
        std::fs::create_dir_all(dir).expect("create out dir");
        let base = std::path::Path::new(dir).join("shards");
        std::fs::write(base.with_extension("csv"), table.to_csv()).expect("write csv");
        std::fs::write(base.with_extension("md"), table.to_markdown()).expect("write md");
        eprintln!("wrote {}.csv and .md", base.display());
    }
}
