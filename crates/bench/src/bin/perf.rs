//! Wall-clock benchmark of the simulator's hot paths.
//!
//! ```text
//! perf [--check] [--quick] [--heavy] [--iters N] [--warmup N]
//!      [--save-baseline] [--out PATH] [--only NAME[,NAME...]]
//! ```
//!
//! Scenarios:
//!
//! * `f3_hc16_ts` — the headline: Figure 3's 16-node hypercube partition
//!   under time-sharing, full paper batch (the configuration with the most
//!   traffic and the deepest event queue);
//! * `f3_hc16_static` — same machine under static space-sharing;
//! * `f3_hc16_hybrid` — time-sharing capped at MPL 4 (the paper's hybrid
//!   discipline), which drives the slice-timer cancel path hardest;
//! * `f3_hc16_ts_calendar` — the headline with the calendar event queue,
//!   to keep the queue-backend decision honest;
//! * `queue_hold_{heap,cal}_n{64,4096}` — bare event-queue hold model
//!   (pop-then-push at a steady population), the classic queue benchmark;
//! * `queue_hold_wheel_n{64,4096}` — the same hold model against the
//!   timing wheel, with a cancel+replace every fourth round to exercise
//!   the handle path no comparison-based backend has;
//! * `shard_scale_{seq,s2,s4}` — the conservative-parallel runner on a
//!   64-node machine of four 16-node hypercube partitions (the 16-node
//!   paper machine is a single partition and cannot shard): the same
//!   workload at 1, 2 and 4 shards. All three pin the *same* simulated
//!   mean response — sharding may only move wall-clock time;
//! * `t1k_{static,hybrid,faulted}_{seq,s2,s4}` — the coordinated sharding
//!   classes at scale: a 1024-node torus of sixteen 64-node partitions
//!   under static space-sharing, the hybrid MPL-2 discipline, and
//!   time-sharing with a two-crash fault plan (see
//!   `parsched_bench::scale`). Within each cell the three shard counts
//!   pin the *same* golden; `--check` also verifies that cross-scenario
//!   equality, so a shard-count-dependent divergence cannot hide behind
//!   three individually-updated goldens;
//! * `t4k_{torus,fattree,dragonfly}_{worm,saf}_{seq,s2,s4}` — the
//!   wormhole-vs-store-and-forward headline at ~4096 nodes (the paper's
//!   §5.2 conjecture at scale; see `parsched_bench::scale::t4k`): one
//!   topology family per policy class, each switching mode pinned as its
//!   own golden and each (cell, switching) family asserted shard-count
//!   independent at K ∈ {1, 2, 4};
//! * `t{16k,64k}_{torus,fattree,dragonfly}_{worm,saf}_{seq,s2,s4}` — the
//!   t4k cells scaled into the index space the widened `u32` `NodeId`
//!   opened (16 384–16 640 and 65 728–65 920 processors; every t64k size
//!   deliberately crosses the old 65 536 ceiling). These are **heavy**
//!   scenarios: plain runs and `--check` skip them unless `--heavy` is
//!   passed (or `--only` names one explicitly), so the tier-1 gate stays
//!   fast while the goldens and their shard families remain pinned for
//!   the full run.
//!
//! Results append to `BENCH_parsched.json` (see `parsched_bench::harness`):
//! `baseline` medians are captured the first time a scenario appears and
//! then *frozen* — later runs print speedups against them but refuse to
//! touch them unless `--save-baseline` is passed. Every f3 scenario's
//! *simulated* mean response is pinned bit-exactly in the `golden` map: an
//! optimization may only move wall-clock time, never simulated time.
//!
//! `--check` is the CI mode (`scripts/tier1.sh`): one untimed run of the
//! f3 scenarios, verified bit-identical against the goldens; exits
//! non-zero on any mismatch or if no goldens are recorded. `--quick`
//! drops the batch repetition count to 1 — every repetition simulates the
//! identical batch, so the golden comparison is unaffected and the gate
//! runs in a couple of seconds.

use parsched_bench::harness::{bench, host_parallelism, BenchOpts, Report, Sample};
use parsched_bench::scale::{t4k, torus1k, tscale, Cell1k, Cell4k, ScalePoint};
use parsched_machine::Switching;
use parsched_core::prelude::*;
use parsched_des::prelude::*;
use parsched_machine::JobSpec;
use parsched_topology::TopologyKind;
use parsched_workload::prelude::*;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};

/// `--quick`: time/check one repetition of the f3 batch instead of
/// [`F3_REPS`] (bit-identical simulated results, ~10x less wall time).
static QUICK: AtomicBool = AtomicBool::new(false);

fn f3_config(
    policy: PolicyKind,
    queue: QueueKind,
    mpl: Option<usize>,
) -> (ExperimentConfig, Vec<JobSpec>) {
    let cfg = ExperimentConfig {
        queue,
        mpl,
        ..ExperimentConfig::paper(16, TopologyKind::Hypercube { dim: 0 }, policy)
    };
    let batch = paper_batch(
        App::MatMul,
        Arch::Fixed,
        16,
        &BatchSizes::default(),
        &CostModel::default(),
    );
    (cfg, batch)
}

/// One full F3 batch takes only a few milliseconds, too short to time
/// reliably; every timed iteration repeats it this many times.
const F3_REPS: u32 = 10;

fn run_f3(policy: PolicyKind, queue: QueueKind) -> f64 {
    run_f3_mpl(policy, queue, None)
}

fn run_f3_mpl(policy: PolicyKind, queue: QueueKind, mpl: Option<usize>) -> f64 {
    let (cfg, batch) = f3_config(policy, queue, mpl);
    let reps = if QUICK.load(Ordering::Relaxed) { 1 } else { F3_REPS };
    let mut metric = 0.0;
    for _ in 0..reps {
        metric = std::hint::black_box(
            run_experiment(&cfg, &batch)
                .expect("f3 configuration simulates")
                .mean_response,
        );
    }
    metric
}

/// The shard-scale machine: 64 nodes in four 16-node hypercube partitions
/// under uncoordinated time-sharing, with the f3 workload family sized to
/// multiprogram every partition. Eligible for the conservative-parallel
/// runner, which must reproduce the sequential observables bit for bit.
fn shard_scale_config() -> (ExperimentConfig, Vec<JobSpec>) {
    let cfg = ExperimentConfig {
        system_size: 64,
        ..ExperimentConfig::paper(
            16,
            TopologyKind::Hypercube { dim: 0 },
            PolicyKind::TimeSharing,
        )
    };
    let batch = paper_batch(
        App::MatMul,
        Arch::Fixed,
        16,
        &BatchSizes::default(),
        &CostModel::default(),
    );
    (cfg, batch)
}

fn run_shard_scale(shards: usize) -> f64 {
    let (cfg, batch) = shard_scale_config();
    let reps = if QUICK.load(Ordering::Relaxed) { 1 } else { F3_REPS };
    let mut metric = 0.0;
    for _ in 0..reps {
        metric = std::hint::black_box(
            run_batch_sharded(&cfg, batch.clone(), shards)
                .expect("shard-scale configuration simulates")
                .mean_response(),
        );
    }
    metric
}

/// One 1024-node cell at a given shard count. The run must actually use
/// the requested shards — a silent fallback would time the sequential
/// path while claiming to bench the parallel one.
fn run_t1k(cell: Cell1k, shards: usize) -> f64 {
    let (cfg, batch) = torus1k(cell);
    let r = run_batch_sharded(&cfg, batch, shards).expect("t1k cell simulates");
    assert_eq!(
        r.fallback, None,
        "t1k_{} at {shards} shards fell back to sequential",
        cell.label()
    );
    std::hint::black_box(r.mean_response())
}

/// One t4k interconnect cell (see `parsched_bench::scale::t4k`): a
/// ~4096-node torus / fat-tree / dragonfly machine under wormhole or
/// store-and-forward switching. Like the t1k cells, a silent sequential
/// fallback would invalidate the timing, so it is rejected.
fn run_t4k(cell: Cell4k, switching: Switching, shards: usize) -> f64 {
    let (cfg, batch) = t4k(cell, switching);
    let r = run_batch_sharded(&cfg, batch, shards).expect("t4k cell simulates");
    assert_eq!(
        r.fallback, None,
        "t4k_{} at {shards} shards fell back to sequential",
        cell.label()
    );
    std::hint::black_box(r.mean_response())
}

/// One t16k/t64k cell (see `parsched_bench::scale::tscale`): the t4k
/// experiment scaled past the old `u16` node-index ceiling. Same
/// no-silent-fallback contract.
fn run_tscale(cell: Cell4k, point: ScalePoint, switching: Switching, shards: usize) -> f64 {
    let (cfg, batch) = tscale(cell, point, switching);
    let r = run_batch_sharded(&cfg, batch, shards).expect("tscale cell simulates");
    assert_eq!(
        r.fallback, None,
        "{}_{} at {shards} shards fell back to sequential",
        point.label(),
        cell.label()
    );
    std::hint::black_box(r.mean_response())
}

/// Classic hold-model queue benchmark: fill to `n`, then `ops` rounds of
/// pop-one push-one with an exponential-ish increment, which keeps the
/// population (and for the calendar queue, the bucket occupancy) steady.
fn queue_hold<Q: EventQueue<u64>>(mut q: Q, n: u64, ops: u64) -> f64 {
    let mut rng = DetRng::new(0xBE7C);
    let mut seq = 0u64;
    for _ in 0..n {
        seq += 1;
        q.push(Scheduled {
            time: SimTime(rng.uniform_u64(0, 1_000_000)),
            seq,
            event: seq,
        });
    }
    let mut acc = 0u64;
    for _ in 0..ops {
        let head = q.pop().expect("population is steady");
        acc = acc.wrapping_add(head.time.nanos());
        seq += 1;
        q.push(Scheduled {
            time: SimTime(head.time.nanos() + rng.uniform_u64(1, 1_000_000)),
            seq,
            event: seq,
        });
    }
    acc as f64 // fold into the metric slot so the work cannot be elided
}

/// Hold model against the [`TimerWheel`]: pop-one push-one at a steady
/// population, plus a cancel-and-replace every fourth round against a ring
/// of recently issued handles — the slice-timer churn pattern the machine
/// layer produces (timers are usually cancelled soon after being set).
/// Deltas spread over ~270 ms so the population spans many slots and both
/// wheel levels, not one degenerate sorted run.
fn queue_hold_wheel(n: u64, ops: u64) -> f64 {
    let mut rng = DetRng::new(0xBE7C);
    let mut w: TimerWheel<u64> = TimerWheel::new();
    let mut recent: VecDeque<TimerHandle> = VecDeque::with_capacity(16);
    let mut seq = 0u64;
    for _ in 0..n {
        seq += 1;
        w.insert(SimTime(rng.uniform_u64(0, 1 << 28)), seq, seq);
    }
    let mut acc = 0u64;
    for i in 0..ops {
        let head = w.pop_min().expect("population is steady");
        let now = head.time.nanos();
        acc = acc.wrapping_add(now);
        seq += 1;
        let h = w.insert(SimTime(now + rng.uniform_u64(1, 1 << 28)), seq, seq);
        if recent.len() == 16 {
            recent.pop_front();
        }
        recent.push_back(h);
        if i % 4 == 0 {
            if let Some(h) = recent.pop_front() {
                // The handle may have fired already; only a live cancel is
                // replaced, keeping the population steady.
                if w.cancel(h) {
                    seq += 1;
                    w.insert(SimTime(now + rng.uniform_u64(1, 1 << 28)), seq, seq);
                }
            }
        }
    }
    acc as f64
}

struct Scenario {
    name: String,
    /// f3 scenarios pin their simulated result in the golden map.
    pinned: bool,
    /// t16k/t64k cells: skipped by plain runs and `--check` unless
    /// `--heavy` is passed or `--only` names them explicitly.
    heavy: bool,
    /// Worker threads the scenario runs with (recorded per sample).
    threads: u32,
    /// Simulated machine size, recorded in the report's `nodes` field
    /// (`None` for the queue micro-benchmarks).
    nodes: Option<u64>,
    run: Box<dyn Fn() -> Option<f64>>,
}

/// The shard counts every sharded family is pinned at, with their
/// scenario-name suffixes.
const SHARD_COUNTS: [(usize, &str); 3] = [(1, "seq"), (2, "s2"), (4, "s4")];

/// The two switching modes of the t4k/t16k/t64k cells, with their
/// scenario-name fragments.
const SWITCHINGS: [(Switching, &str); 2] = [
    (Switching::Wormhole, "worm"),
    (Switching::StoreAndForward, "saf"),
];

/// Scenario families whose goldens must be bit-equal: the same simulated
/// cell at different shard counts. The flag marks heavy (t16k/t64k)
/// families, checked only under `--heavy`.
fn shard_families() -> Vec<(bool, Vec<String>)> {
    let family = |heavy: bool, stem: String| {
        (heavy, SHARD_COUNTS.iter().map(|(_, sfx)| format!("{stem}_{sfx}")).collect())
    };
    let mut fams = vec![family(false, "shard_scale".into())];
    for cell in Cell1k::all() {
        fams.push(family(false, format!("t1k_{}", cell.label())));
    }
    for cell in Cell4k::all() {
        for (_, sw) in SWITCHINGS {
            fams.push(family(false, format!("t4k_{}_{sw}", cell.label())));
        }
    }
    for point in ScalePoint::all() {
        for cell in Cell4k::all() {
            for (_, sw) in SWITCHINGS {
                fams.push(family(true, format!("{}_{}_{sw}", point.label(), cell.label())));
            }
        }
    }
    fams
}

/// Build the full scenario list: the light tier first (always run), then
/// the heavy t16k/t64k cells (gated behind `--heavy`).
fn scenarios() -> Vec<Scenario> {
    fn light(
        name: &str,
        pinned: bool,
        nodes: Option<u64>,
        run: impl Fn() -> Option<f64> + 'static,
    ) -> Scenario {
        Scenario {
            name: name.to_string(),
            pinned,
            heavy: false,
            threads: 1,
            nodes,
            run: Box::new(run),
        }
    }
    let mut v = vec![
        light("f3_hc16_ts", true, Some(16), || {
            Some(run_f3(PolicyKind::TimeSharing, QueueKind::default()))
        }),
        light("f3_hc16_static", true, Some(16), || {
            Some(run_f3(PolicyKind::Static, QueueKind::default()))
        }),
        light("f3_hc16_hybrid", true, Some(16), || {
            Some(run_f3_mpl(PolicyKind::TimeSharing, QueueKind::default(), Some(4)))
        }),
        light("f3_hc16_ts_calendar", false, Some(16), || {
            Some(run_f3(PolicyKind::TimeSharing, QueueKind::Calendar))
        }),
        light("queue_hold_heap_n64", false, None, || {
            queue_hold(BinaryHeapQueue::new(), 64, 2_000_000);
            None
        }),
        light("queue_hold_cal_n64", false, None, || {
            queue_hold(CalendarQueue::new(), 64, 2_000_000);
            None
        }),
        light("queue_hold_heap_n4096", false, None, || {
            queue_hold(BinaryHeapQueue::new(), 4096, 2_000_000);
            None
        }),
        light("queue_hold_cal_n4096", false, None, || {
            queue_hold(CalendarQueue::new(), 4096, 2_000_000);
            None
        }),
        light("queue_hold_wheel_n64", false, None, || {
            queue_hold_wheel(64, 2_000_000);
            None
        }),
        light("queue_hold_wheel_n4096", false, None, || {
            queue_hold_wheel(4096, 2_000_000);
            None
        }),
    ];
    for (shards, sfx) in SHARD_COUNTS {
        v.push(Scenario {
            name: format!("shard_scale_{sfx}"),
            pinned: true,
            heavy: false,
            threads: shards as u32,
            nodes: Some(64),
            run: Box::new(move || Some(run_shard_scale(shards))),
        });
    }
    for cell in Cell1k::all() {
        for (shards, sfx) in SHARD_COUNTS {
            v.push(Scenario {
                name: format!("t1k_{}_{sfx}", cell.label()),
                pinned: true,
                heavy: false,
                threads: shards as u32,
                nodes: Some(1024),
                run: Box::new(move || Some(run_t1k(cell, shards))),
            });
        }
    }
    for cell in Cell4k::all() {
        for (switching, sw) in SWITCHINGS {
            for (shards, sfx) in SHARD_COUNTS {
                let nodes = t4k(cell, switching).0.system_size as u64;
                v.push(Scenario {
                    name: format!("t4k_{}_{sw}_{sfx}", cell.label()),
                    pinned: true,
                    heavy: false,
                    threads: shards as u32,
                    nodes: Some(nodes),
                    run: Box::new(move || Some(run_t4k(cell, switching, shards))),
                });
            }
        }
    }
    for point in ScalePoint::all() {
        for cell in Cell4k::all() {
            for (switching, sw) in SWITCHINGS {
                for (shards, sfx) in SHARD_COUNTS {
                    let nodes = tscale(cell, point, switching).0.system_size as u64;
                    v.push(Scenario {
                        name: format!("{}_{}_{sw}_{sfx}", point.label(), cell.label()),
                        pinned: true,
                        heavy: true,
                        threads: shards as u32,
                        nodes: Some(nodes),
                        run: Box::new(move || Some(run_tscale(cell, point, switching, shards))),
                    });
                }
            }
        }
    }
    v
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let heavy = args.iter().any(|a| a == "--heavy");
    let save_baseline = args.iter().any(|a| a == "--save-baseline");
    if args.iter().any(|a| a == "--quick") {
        QUICK.store(true, Ordering::Relaxed);
    }
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let out = std::path::PathBuf::from(
        flag("--out").cloned().unwrap_or_else(|| "BENCH_parsched.json".into()),
    );
    let opts = BenchOpts {
        warmup: flag("--warmup").and_then(|s| s.parse().ok()).unwrap_or(1),
        iters: flag("--iters").and_then(|s| s.parse().ok()).unwrap_or(5),
    };

    let mut report = Report::load(&out).unwrap_or_default();
    let scenarios = scenarios();

    if check {
        // CI mode: one untimed run of each pinned scenario, compared
        // bit-exactly against the recorded goldens. Heavy (t16k/t64k)
        // cells only join the gate under --heavy.
        if report.golden.is_empty() {
            eprintln!("perf --check: no goldens recorded in {}", out.display());
            std::process::exit(2);
        }
        let mut failed = false;
        for sc in scenarios.iter().filter(|sc| sc.pinned && (heavy || !sc.heavy)) {
            let got = (sc.run)().expect("pinned scenarios return a metric");
            match report.golden.get(&sc.name) {
                Some(&bits) if bits == got.to_bits() => {
                    println!("perf --check: {} = {got} (matches golden)", sc.name);
                }
                Some(&bits) => {
                    eprintln!(
                        "perf --check: {} DIVERGED: got {got} ({:#018x}), golden {} ({bits:#018x})",
                        sc.name,
                        got.to_bits(),
                        f64::from_bits(bits),
                    );
                    failed = true;
                }
                None => {
                    eprintln!("perf --check: {} has no recorded golden", sc.name);
                    failed = true;
                }
            }
        }
        // Shard-count independence: every member of a family pins the
        // same simulated result, bit for bit.
        for (_, family) in shard_families().iter().filter(|(h, _)| heavy || !h) {
            let bits: Vec<Option<&u64>> =
                family.iter().map(|n| report.golden.get(n)).collect();
            if bits.iter().any(Option::is_none) {
                eprintln!("perf --check: family {family:?} has unrecorded goldens");
                failed = true;
                continue;
            }
            if bits.windows(2).any(|w| w[0] != w[1]) {
                eprintln!(
                    "perf --check: shard-count DEPENDENCE in {family:?}: goldens {:?}",
                    bits.iter().map(|b| format!("{:#018x}", *b.unwrap())).collect::<Vec<_>>()
                );
                failed = true;
            } else {
                println!("perf --check: {family:?} goldens agree (shard-count independent)");
            }
        }
        std::process::exit(if failed { 1 } else { 0 });
    }

    // --only a,b,c limits the run to the named scenarios (e.g. for
    // profiling one of them); baselines and goldens of the rest persist.
    // An explicit --only name overrides the heavy gate for that scenario.
    let only = flag("--only");
    if let Some(list) = only {
        for n in list.split(',') {
            if !scenarios.iter().any(|sc| sc.name == n) {
                eprintln!("perf: unknown scenario {n:?}; known scenarios:");
                for sc in &scenarios {
                    eprintln!("  {}", sc.name);
                }
                std::process::exit(2);
            }
        }
    }
    let picked: Vec<&Scenario> = scenarios
        .iter()
        .filter(|sc| match only {
            Some(list) => list.split(',').any(|n| n == sc.name),
            None => heavy || !sc.heavy,
        })
        .collect();
    println!(
        "running {} scenarios ({} warmup + {} timed runs each)\n",
        picked.len(),
        opts.warmup,
        opts.iters
    );
    let mut samples: Vec<Sample> = Vec::new();
    for sc in picked {
        let mut s = bench(&opts, &sc.name, &sc.run);
        s.threads = sc.threads;
        s.nodes = sc.nodes;
        let vs = match report.baseline.get(&sc.name) {
            Some(&base) if base > 0 => {
                let pct = 100.0 * (base as f64 - s.median_ns as f64) / base as f64;
                format!("{pct:+.1}% vs baseline {:.3}s", base as f64 / 1e9)
            }
            _ => "no baseline".to_string(),
        };
        println!(
            "{:<24} median {:>9.3}s  (min {:.3}s, max {:.3}s)  {vs}",
            sc.name,
            s.median_ns as f64 / 1e9,
            s.min_ns as f64 / 1e9,
            s.max_ns as f64 / 1e9,
        );
        if sc.pinned {
            let got = s.metric.expect("pinned scenarios return a metric");
            match report.golden.get(&sc.name) {
                Some(&bits) if bits != got.to_bits() => {
                    eprintln!(
                        "  WARNING: simulated result {got} diverges from golden {}",
                        f64::from_bits(bits)
                    );
                }
                Some(_) => {}
                None => {
                    report.golden.insert(sc.name.clone(), got.to_bits());
                }
            }
        }
        // Baselines are frozen once captured: a plain timing run must
        // never silently move the yardstick it is judged against.
        if save_baseline || !report.baseline.contains_key(&sc.name) {
            report.baseline.insert(sc.name.clone(), s.median_ns);
        }
        samples.push(s);
    }
    report.current = samples;
    report.host_parallelism = Some(host_parallelism());
    std::fs::write(&out, report.render()).expect("write benchmark report");
    println!("\nreport written to {}", out.display());
}
