//! Driver for the widened-index machine band (16k–64k+ processors).
//!
//! ```text
//! scale --smoke            tier-1 gate: construct + route a 16k-node
//!                          torus, one short wormhole run at 16 384
//!                          nodes, and one observed run on a machine
//!                          crossing the old 65 536-node index ceiling
//!                          (no goldens — the perf suite pins those)
//! scale --ranking          the P10 experiment (EXPERIMENTS.md): does
//!                          static ≻ hybrid ≻ time-sharing survive at
//!                          16k–64k under wormhole on one fixed fabric,
//!                          and where does the A1 variance crossover
//!                          move relative to the 16-node machine
//! scale --ranking --skip-64k
//!                          only the 16 384-node half of the sweep
//! ```
//!
//! The smoke exists so the widened `u32` node-index paths are exercised
//! end to end on every tier-1 run: the crossing case places a job's ranks
//! across a 70 225-node single-partition torus with blocked placement, so
//! real messages route between nodes whose indices do not fit the
//! pre-widening `u16`, and the observed event stream is asserted to
//! contain them.
//!
//! The ranking sweep holds the fabric fixed (64-node 8×8-torus
//! partitions, wormhole switching) and scales only the machine: 256
//! partitions (16 384 nodes) and 1028 partitions (65 792 nodes, past the
//! old ceiling). At every service-demand CV the three policy classes run
//! the *same* drawn batch (common random numbers, seed `0x50A1E`), four
//! jobs per partition, so columns differ only through the policy.

use parsched_bench::scale::{tscale, Cell4k, ScalePoint};
use parsched_core::prelude::*;
use parsched_des::prelude::*;
use parsched_machine::{JobSpec, Switching};
use parsched_obs::ObsEvent;
use parsched_topology::{build, NodeId, Router, Topology, TopologyKind};
use parsched_workload::prelude::*;

/// The ranking fabric: 64-node 8×8-torus partitions, `parts` of them.
/// Host-link costs are zeroed: at hundreds-to-thousands of jobs the
/// default 50 ms serial load through one host link adds a ~13 s constant
/// that swamps every scheduling difference (the first thing this sweep
/// found). Zeroing it models a machine with parallel I/O nodes and lets
/// the table measure the policies.
fn ranking_config(parts: usize, policy: PolicyKind, mpl: Option<usize>) -> ExperimentConfig {
    let mut cfg = ExperimentConfig {
        system_size: 64 * parts,
        mpl,
        ..ExperimentConfig::paper(64, TopologyKind::Torus { rows: 0, cols: 0 }, policy)
    };
    cfg.machine.switching = Switching::Wormhole;
    cfg.machine.job_load_latency = SimDuration::ZERO;
    cfg.machine.host_link_per_byte = SimDuration::ZERO;
    cfg
}

/// Four width-64 fork-join jobs per partition (the A1 ablation's
/// multiprogramming depth) with total demand drawn at the given CV
/// (mean 2 s).
fn ranking_batch(parts: usize, cv_idx: u64, cv: f64) -> Vec<JobSpec> {
    let params = SyntheticParams {
        mean_demand: SimDuration::from_secs(2),
        cv,
        width: 64,
        msg_bytes: 2_048,
        mem_per_proc: 4_096,
    };
    let mut rng = DetRng::new(0x50A1E).substream_idx("p10", cv_idx);
    let mut batch = synthetic_batch(4 * parts, &params, &CostModel::default(), &mut rng);
    for j in &mut batch {
        j.ship_bytes = 4_096;
    }
    batch
}

/// One policy column of the ranking table.
fn ranking_cell(parts: usize, policy: PolicyKind, mpl: Option<usize>, batch: Vec<JobSpec>) -> f64 {
    let cfg = ranking_config(parts, policy, mpl);
    run_batch(&cfg, batch)
        .expect("ranking cell simulates")
        .mean_response()
}

fn ranking(skip_64k: bool) {
    let sizes: &[(usize, &str)] = if skip_64k {
        &[(256, "16 384 nodes")]
    } else {
        &[(256, "16 384 nodes"), (1028, "65 792 nodes")]
    };
    let cvs = [0.0, 0.5, 1.0, 2.0, 3.0, 5.0];
    for &(parts, label) in sizes {
        println!(
            "# P10 ranking: {label}, {parts} x 64-node torus partitions, wormhole, \
             {} width-64 jobs (mean demand 2 s), host link zeroed",
            4 * parts
        );
        println!("{:>6} {:>10} {:>10} {:>10} {:>12}", "cv", "static", "hybrid2", "ts", "ts/static");
        for (i, &cv) in cvs.iter().enumerate() {
            let batch = ranking_batch(parts, i as u64, cv);
            let st = ranking_cell(parts, PolicyKind::Static, None, batch.clone());
            let hy = ranking_cell(parts, PolicyKind::TimeSharing, Some(2), batch.clone());
            let ts = ranking_cell(parts, PolicyKind::TimeSharing, None, batch);
            println!("{cv:>6.1} {st:>10.3} {hy:>10.3} {ts:>10.3} {:>12.3}", ts / st);
        }
        println!();
    }
}

/// Walk the router's minimal path between two sample nodes and assert
/// every hop crosses a real edge (a wrapped index would produce a
/// phantom neighbor the adjacency does not contain).
fn assert_route(topo: &Topology, router: &Router, src: usize, dst: usize) {
    let (src, dst) = (NodeId::from_index(src), NodeId::from_index(dst));
    let mut cur = src;
    let mut hops = 0usize;
    while cur != dst {
        let next = router
            .next_hop(cur, dst)
            .unwrap_or_else(|| panic!("no hop at {cur} toward {dst}"));
        assert!(topo.neighbors(cur).contains(&next), "hop {cur} -> {next} is not an edge");
        cur = next;
        hops += 1;
        assert!(hops <= topo.len(), "route {src} -> {dst} does not terminate");
    }
}

fn smoke() {
    let t0 = std::time::Instant::now();
    // 1. Construct + route a 16k-node torus at the topology layer.
    let topo = build::torus(128, 128).expect("16k torus constructs");
    assert_eq!(topo.len(), 16_384);
    let router = Router::for_topology(&topo);
    for (s, d) in [(0, 16_383), (1, 8_200), (16_000, 77)] {
        assert_route(&topo, &router, s, d);
    }
    println!("scale --smoke: 128x128 torus constructs and routes [{:.2?}]", t0.elapsed());
    let t1 = std::time::Instant::now();

    // 2. One short wormhole run at 16 384 nodes (the t16k torus cell,
    //    sequential, no golden — perf pins the goldens).
    let (cfg, batch) = tscale(Cell4k::Torus, ScalePoint::T16k, Switching::Wormhole);
    let r = run_batch(&cfg, batch).expect("16k wormhole run simulates");
    assert!(
        r.mean_response().is_finite() && r.mean_response() > 0.0,
        "16k mean response {}",
        r.mean_response()
    );
    println!(
        "scale --smoke: 16 384-node wormhole run OK (mean response {:.3} s, {} events) [{:.2?}]",
        r.mean_response(),
        r.events,
        t1.elapsed()
    );
    let t2 = std::time::Instant::now();

    // 3. The crossing run: a 70 225-node (265x265 torus) single-partition
    //    machine under blocked placement spreads a width-64 job's ranks
    //    ~1 100 nodes apart, so real wormhole traffic routes between
    //    nodes past the old 65 536 index ceiling. Observed, and the
    //    event stream must actually contain such traffic. Static policy:
    //    time-sharing would arm quantum timers on all 70k nodes and blow
    //    the smoke's wall-clock budget without exercising anything extra.
    const CROSS_NODES: usize = 265 * 265; // 70 225 > 65 536
    let mut cfg = ExperimentConfig {
        system_size: CROSS_NODES,
        placement: Placement::Blocked,
        ..ExperimentConfig::paper(
            CROSS_NODES,
            TopologyKind::Torus { rows: 0, cols: 0 },
            PolicyKind::Static,
        )
    };
    cfg.machine.switching = Switching::Wormhole;
    let params = SyntheticParams {
        mean_demand: SimDuration::from_millis(100),
        cv: 0.0,
        width: 64,
        msg_bytes: 512,
        mem_per_proc: 4_096,
    };
    let batch: Vec<JobSpec> = (0..2)
        .map(|i| {
            let mut j = synthetic_job(
                format!("cross{i}"),
                SimDuration::from_millis(100),
                &params,
                &CostModel::default(),
            );
            j.ship_bytes = 4_096; // keep the host link off the critical path
            j
        })
        .collect();
    let (r, obs) = run_batch_observed(&cfg, batch).expect("crossing run simulates");
    assert!(r.mean_response().is_finite() && r.mean_response() > 0.0);
    let high_traffic = obs
        .events
        .iter()
        .filter(|(_, e)| {
            matches!(e, ObsEvent::MsgSend { src, dst, .. } if *src > 65_535 || *dst > 65_535)
        })
        .count();
    assert!(
        high_traffic > 0,
        "crossing run routed no traffic past node 65 535 — blocked placement broken?"
    );
    println!(
        "scale --smoke: 70 225-node crossing run OK ({high_traffic} sends touch nodes > 65 535) [{:.2?}]",
        t2.elapsed()
    );
    println!("scale --smoke: OK");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
    } else if args.iter().any(|a| a == "--ranking") {
        ranking(args.iter().any(|a| a == "--skip-64k"));
    } else {
        eprintln!("usage: scale --smoke | --ranking [--skip-64k]");
        std::process::exit(2);
    }
}
