//! Zero-dependency wall-clock benchmark harness.
//!
//! Measures a closure with a monotonic clock ([`std::time::Instant`]),
//! discards `warmup` runs, reports the median of `iters` timed runs (the
//! median is robust to the occasional scheduling hiccup a mean would
//! absorb), and serializes results to a small JSON report
//! (`BENCH_parsched.json`) so runs can be compared across commits.
//!
//! The report carries three sections:
//!
//! * `baseline` — scenario name → median nanoseconds, captured once before
//!   an optimization lands and kept for comparison;
//! * `golden` — scenario name → the scenario's *simulated* result
//!   (`f64::to_bits` as a hex string) pinning bit-identical model output:
//!   an optimization must move wall-clock time, never simulated time;
//! * `current` — the most recent run's samples.
//!
//! JSON is written and read by the tiny serializer/parser below; the
//! parser handles the full JSON grammar minus `\u` escapes, which the
//! writer never emits.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Iteration counts for one benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct BenchOpts {
    /// Untimed runs before measurement (cache/allocator warmup).
    pub warmup: u32,
    /// Timed runs; the median is reported.
    pub iters: u32,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts { warmup: 1, iters: 5 }
    }
}

/// Logical CPUs visible to this process, for the report header: a shard
/// scenario's speedup is only meaningful relative to the cores the host
/// could actually give it.
pub fn host_parallelism() -> u64 {
    std::thread::available_parallelism().map_or(1, |n| n.get() as u64)
}

/// One benchmarked scenario's measurement.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Scenario name (stable across runs; keys the report maps).
    pub name: String,
    /// Untimed runs performed first.
    pub warmup: u32,
    /// Timed runs the statistics summarize.
    pub iters: u32,
    /// Worker threads the scenario runs with (1 = sequential; shard
    /// scenarios report their shard count).
    pub threads: u32,
    /// Median wall-clock nanoseconds per run.
    pub median_ns: u64,
    /// Fastest run.
    pub min_ns: u64,
    /// Slowest run.
    pub max_ns: u64,
    /// The scenario's simulated result (e.g. mean response time in
    /// seconds), if it produces one; pinned via the report's `golden` map.
    pub metric: Option<f64>,
    /// Simulated machine size (processors) the scenario models, when it
    /// models one (`None` for micro-benchmarks); `None` in reports from
    /// before the field existed.
    pub nodes: Option<u64>,
}

/// Time `f` under `opts` and return the measurement. The closure returns
/// the scenario's simulated metric (or `None` for pure micro-benchmarks);
/// the returned value is routed through [`std::hint::black_box`] so the
/// optimizer cannot elide the work.
pub fn bench(opts: &BenchOpts, name: &str, mut f: impl FnMut() -> Option<f64>) -> Sample {
    for _ in 0..opts.warmup {
        std::hint::black_box(f());
    }
    let iters = opts.iters.max(1);
    let mut times = Vec::with_capacity(iters as usize);
    let mut metric = None;
    for _ in 0..iters {
        let start = Instant::now();
        metric = std::hint::black_box(f());
        times.push(start.elapsed().as_nanos() as u64);
    }
    times.sort_unstable();
    let mid = times.len() / 2;
    let median_ns = if times.len() % 2 == 1 {
        times[mid]
    } else {
        (times[mid - 1] + times[mid]) / 2
    };
    Sample {
        name: name.to_string(),
        warmup: opts.warmup,
        iters,
        threads: 1,
        median_ns,
        min_ns: times[0],
        max_ns: *times.last().unwrap(),
        metric,
        nodes: None,
    }
}

/// The on-disk report (see the module docs for the section semantics).
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Logical CPUs on the host that wrote the report
    /// ([`host_parallelism`]); `None` in reports from before the field
    /// existed.
    pub host_parallelism: Option<u64>,
    /// Pre-optimization medians: scenario name → nanoseconds.
    pub baseline: BTreeMap<String, u64>,
    /// Pinned simulated results: scenario name → `f64::to_bits` hex.
    pub golden: BTreeMap<String, u64>,
    /// Latest run.
    pub current: Vec<Sample>,
}

impl Report {
    /// Parse a report previously produced by [`Report::render`]. Returns
    /// `None` when the file is missing or not a report.
    pub fn load(path: &std::path::Path) -> Option<Report> {
        let text = std::fs::read_to_string(path).ok()?;
        let v = parse_json(&text)?;
        let obj = v.as_object()?;
        let mut report = Report {
            host_parallelism: obj
                .get("host_parallelism")
                .and_then(Value::as_f64)
                .map(|v| v as u64),
            ..Report::default()
        };
        if let Some(b) = obj.get("baseline").and_then(Value::as_object) {
            for (k, v) in b {
                report.baseline.insert(k.clone(), v.as_f64()? as u64);
            }
        }
        if let Some(g) = obj.get("golden").and_then(Value::as_object) {
            for (k, v) in g {
                // Hex entries carry the exact bits; their human-readable
                // `<name>_value` companions are skipped here.
                let Some(hex) = v.as_str().and_then(|s| s.strip_prefix("0x")) else {
                    continue;
                };
                let bits = u64::from_str_radix(hex, 16).ok()?;
                report.golden.insert(k.clone(), bits);
            }
        }
        if let Some(cur) = obj.get("current").and_then(Value::as_array) {
            for s in cur {
                let s = s.as_object()?;
                report.current.push(Sample {
                    name: s.get("name")?.as_str()?.to_string(),
                    warmup: s.get("warmup")?.as_f64()? as u32,
                    iters: s.get("iters")?.as_f64()? as u32,
                    // Absent in reports from before the field existed.
                    threads: s.get("threads").and_then(Value::as_f64).map_or(1, |v| v as u32),
                    median_ns: s.get("median_ns")?.as_f64()? as u64,
                    min_ns: s.get("min_ns")?.as_f64()? as u64,
                    max_ns: s.get("max_ns")?.as_f64()? as u64,
                    metric: s.get("metric").and_then(Value::as_f64),
                    // Absent in reports from before the field existed.
                    nodes: s.get("nodes").and_then(Value::as_f64).map(|v| v as u64),
                });
            }
        }
        Some(report)
    }

    /// Serialize to the JSON layout [`Report::load`] reads back.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"parsched-bench/v1\",");
        if let Some(hp) = self.host_parallelism {
            let _ = write!(out, "\n  \"host_parallelism\": {hp},");
        }
        out.push_str("\n  \"baseline\": {");
        for (i, (k, v)) in self.baseline.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{k}\": {v}");
        }
        out.push_str("\n  },\n  \"golden\": {");
        for (i, (k, bits)) in self.golden.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{k}\": \"0x{bits:016x}\",\n    \"{k}_value\": \"{}\"",
                f64::from_bits(*bits)
            );
        }
        out.push_str("\n  },\n  \"current\": [");
        for (i, s) in self.current.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"name\": \"{}\", \"warmup\": {}, \"iters\": {}, \
                 \"threads\": {}, \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}",
                s.name, s.warmup, s.iters, s.threads, s.median_ns, s.min_ns, s.max_ns
            );
            if let Some(m) = s.metric {
                // `{:?}` prints the shortest digits that round-trip an f64.
                let _ = write!(out, ", \"metric\": {m:?}");
            }
            if let Some(n) = s.nodes {
                let _ = write!(out, ", \"nodes\": {n}");
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

// `golden` entries are written in pairs (`name` = exact bits, `name_value` =
// human-readable); `load` keys off the hex entries, so strip the `_value`
// companions when iterating — see `Report::load`.

/// Minimal JSON value for the report's own schema.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (the report never needs > 53-bit integers).
    Num(f64),
    /// String (no `\u` escapes).
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, insertion-agnostic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The object's map, when this value is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
    /// The array's elements, when this value is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
    /// The number, when this value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
    /// The string slice, when this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a JSON document; `None` on any syntax error.
pub fn parse_json(text: &str) -> Option<Value> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Some(v)
    } else {
        None
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<Value> {
    skip_ws(b, pos);
    match *b.get(*pos)? {
        b'{' => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Some(Value::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Value::Str(s) => s,
                    _ => return None,
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return None;
                }
                *pos += 1;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Some(Value::Obj(map));
                    }
                    _ => return None,
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Some(Value::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Some(Value::Arr(arr));
                    }
                    _ => return None,
                }
            }
        }
        b'"' => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match *b.get(*pos)? {
                    b'"' => {
                        *pos += 1;
                        return Some(Value::Str(s));
                    }
                    b'\\' => {
                        *pos += 1;
                        let c = match *b.get(*pos)? {
                            b'"' => '"',
                            b'\\' => '\\',
                            b'/' => '/',
                            b'n' => '\n',
                            b't' => '\t',
                            b'r' => '\r',
                            _ => return None, // \u etc: never emitted
                        };
                        s.push(c);
                        *pos += 1;
                    }
                    c => {
                        s.push(c as char);
                        *pos += 1;
                    }
                }
            }
        }
        b't' => {
            *pos = pos.checked_add(4)?;
            (b.get(*pos - 4..*pos)? == b"true").then_some(Value::Bool(true))
        }
        b'f' => {
            *pos = pos.checked_add(5)?;
            (b.get(*pos - 5..*pos)? == b"false").then_some(Value::Bool(false))
        }
        b'n' => {
            *pos = pos.checked_add(4)?;
            (b.get(*pos - 4..*pos)? == b"null").then_some(Value::Null)
        }
        _ => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()?
                .parse()
                .ok()
                .map(Value::Num)
        }
    }
}

#[cfg(test)]
impl Report {
    /// Test-only: parse from a string instead of a file. Each call uses
    /// its own file so parallel tests never race on the path.
    fn load_from_str(text: &str) -> Option<Report> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "parsched-bench-test-{}-{}.json",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&dir, text).ok()?;
        let r = Report::load(&dir);
        let _ = std::fs::remove_file(&dir);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even_runs() {
        let opts = BenchOpts { warmup: 0, iters: 5 };
        let s = bench(&opts, "noop", || Some(1.25));
        assert_eq!(s.iters, 5);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
        assert_eq!(s.metric, Some(1.25));
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = Report {
            host_parallelism: Some(8),
            ..Report::default()
        };
        r.baseline.insert("f3".into(), 123_456_789);
        r.golden.insert("f3".into(), 6.584f64.to_bits());
        r.current.push(Sample {
            name: "f3".into(),
            warmup: 1,
            iters: 5,
            threads: 4,
            median_ns: 98_765_432,
            min_ns: 90_000_000,
            max_ns: 110_000_000,
            metric: Some(6.584),
            nodes: Some(16),
        });
        let text = r.render();
        let back = Report::load_from_str(&text).expect("parses");
        assert_eq!(back.host_parallelism, Some(8));
        assert_eq!(back.baseline, r.baseline);
        assert_eq!(back.golden, r.golden);
        assert_eq!(back.current.len(), 1);
        assert_eq!(back.current[0].threads, 4);
        assert_eq!(back.current[0].median_ns, 98_765_432);
        assert_eq!(back.current[0].metric, Some(6.584));
        assert_eq!(back.current[0].nodes, Some(16));
    }

    #[test]
    fn golden_hex_entries_have_no_stray_space() {
        let mut r = Report::default();
        r.golden.insert("cell".into(), 1.5f64.to_bits());
        let text = r.render();
        assert!(
            !text.contains("\" ,"),
            "golden hex entries must not carry a space before the comma"
        );
        assert!(text.contains("\"0x3ff8000000000000\","), "{text}");
    }

    #[test]
    fn reports_without_new_fields_still_load() {
        // A pre-upgrade report: no host_parallelism, no threads, no nodes.
        let text = r#"{
  "schema": "parsched-bench/v1",
  "baseline": { "f3": 100 },
  "golden": { "f3": "0x3ff8000000000000" },
  "current": [
    {"name": "f3", "warmup": 1, "iters": 5, "median_ns": 90, "min_ns": 80, "max_ns": 95}
  ]
}"#;
        let back = Report::load_from_str(text).expect("parses");
        assert_eq!(back.host_parallelism, None);
        assert_eq!(back.current[0].threads, 1);
        assert_eq!(back.current[0].nodes, None);
    }

    #[test]
    fn parser_rejects_trailing_garbage() {
        assert!(parse_json("{} extra").is_none());
        assert!(parse_json("[1, 2").is_none());
        assert!(parse_json("\"unterminated").is_none());
    }

    #[test]
    fn parser_handles_nesting_and_escapes() {
        let v = parse_json(r#"{"a": [1, -2.5e3, "x\n\"y"], "b": {"c": null, "d": true}}"#)
            .expect("valid json");
        let obj = v.as_object().unwrap();
        let arr = obj.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[2].as_str(), Some("x\n\"y"));
    }
}
