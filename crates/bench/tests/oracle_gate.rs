//! Differential gate for the benchmarked configurations.
//!
//! `src/bin/perf.rs` times the F3 cell (16-node hypercube, full paper
//! batch) under every queue backend and pins its simulated result in the
//! golden map — so a hot-path "optimization" that changes *behavior* would
//! show up there as a golden drift. This test closes the loop from the
//! other side: the exact same configurations must also be bit-identical to
//! the naive reference engine, for every backend the perf harness times.

use parsched_core::{Discipline, Placement};
use parsched_des::QueueKind;
use parsched_machine::{FaultPlan, Switching};
use parsched_oracle::{run_differential, Order, PolicyClass, Scenario};
use parsched_topology::TopologyKind;
use parsched_workload::{App, Arch, BatchSizes};

/// The F3 benchmark cell as a differential scenario: identical to
/// `f3_config` in `src/bin/perf.rs` (paper config on the 16-node
/// hypercube, default batch sizes, as-given order).
fn f3_scenario(class: PolicyClass, queue: QueueKind, mpl: Option<usize>) -> Scenario {
    Scenario {
        case: 0,
        seed: 0,
        topology: TopologyKind::Hypercube { dim: 0 },
        system_size: 16,
        partition_size: 16,
        class,
        app: App::MatMul,
        arch: Arch::Fixed,
        sizes: BatchSizes::default(),
        order: Order::AsGiven,
        queue,
        switching: Switching::PacketizedSaf,
        discipline: Discipline::Uncoordinated,
        placement: Placement::RoundRobin,
        mpl,
        arrivals: Vec::new(),
        faults: FaultPlan::default(),
        shards: 1,
    }
}

#[test]
fn benchmarked_f3_cells_match_the_oracle() {
    for class in [PolicyClass::Static, PolicyClass::PureTs] {
        for queue in [QueueKind::BinaryHeap, QueueKind::Calendar, QueueKind::Adaptive] {
            let scenario = f3_scenario(class, queue, None);
            assert_eq!(scenario.config().policy, class.policy());
            if let Err(div) = run_differential(&scenario) {
                panic!("benchmarked cell ({class:?}, {queue:?}) diverged:\n{div}");
            }
        }
    }
}

#[test]
fn benchmarked_mpl_cell_matches_the_oracle() {
    // perf.rs also times the MPL-bounded time-sharing variant.
    let scenario = f3_scenario(PolicyClass::PureTs, QueueKind::Adaptive, Some(2));
    if let Err(div) = run_differential(&scenario) {
        panic!("benchmarked MPL cell diverged:\n{div}");
    }
}
