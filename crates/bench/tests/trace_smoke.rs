//! Golden smoke test for the Chrome-trace exporter: a tiny 4-node run's
//! timeline is stable across runs (byte-identical render) and is valid
//! JSON with the structure Perfetto/`chrome://tracing` expect, verified
//! with the harness's own JSON parser.

use parsched_bench::harness::{parse_json, Value};
use parsched_core::prelude::*;
use parsched_obs::ChromeTrace;
use parsched_topology::TopologyKind;
use parsched_workload::prelude::*;

/// A 4-node ring running a 3-job adaptive matmul batch: small enough to
/// render in milliseconds, busy enough to exercise slices on every track
/// kind (cpu quanta, handlers, link hops) plus scheduler instants.
fn tiny_trace() -> (RunResult, String) {
    let config = ExperimentConfig {
        system_size: 4,
        ..ExperimentConfig::paper(4, TopologyKind::Ring, PolicyKind::TimeSharing)
    };
    let batch = paper_batch(
        App::MatMul,
        Arch::Adaptive,
        4,
        &BatchSizes {
            jobs: 3,
            small_count: 2,
            ..BatchSizes::default()
        },
        &CostModel::default(),
    );
    let (result, obs) = run_batch_observed(&config, batch).expect("tiny run simulates");
    let trace = ChromeTrace::build(&obs.layout, &obs.events);
    assert_eq!(trace.unmatched(), 0, "begin/end events must pair");
    (result, trace.render())
}

#[test]
fn trace_render_is_stable_and_parses() {
    let (r1, t1) = tiny_trace();
    let (r2, t2) = tiny_trace();
    // Byte-identical across runs: the exporter is as deterministic as the
    // simulation it observes.
    assert_eq!(r1.summary.mean.to_bits(), r2.summary.mean.to_bits());
    assert_eq!(t1, t2, "trace render differs between identical runs");

    let v = parse_json(&t1).expect("trace is valid JSON");
    let events = v
        .as_object()
        .and_then(|o| o.get("traceEvents"))
        .and_then(Value::as_array)
        .expect("top-level traceEvents array");
    assert!(events.len() > 50, "only {} trace events", events.len());

    let str_field = |e: &Value, k: &str| -> Option<String> {
        e.as_object()?.get(k)?.as_str().map(str::to_string)
    };
    // Every event has a phase; every phase is one we emit.
    for e in events {
        let ph = str_field(e, "ph").expect("event has ph");
        assert!(
            matches!(ph.as_str(), "M" | "X" | "i" | "C"),
            "unexpected phase {ph:?}"
        );
        if ph == "X" {
            let dur = e.as_object().unwrap().get("dur").and_then(Value::as_f64);
            assert!(dur.is_some(), "complete slice without dur: {e:?}");
        }
    }
    // Process metadata names the scheduler and all 4 nodes.
    let names: Vec<String> = events
        .iter()
        .filter(|e| str_field(e, "ph").as_deref() == Some("M"))
        .filter_map(|e| {
            e.as_object()?
                .get("args")?
                .as_object()?
                .get("name")?
                .as_str()
                .map(str::to_string)
        })
        .collect();
    for expected in ["scheduler", "node 0", "node 3", "cpu"] {
        assert!(
            names.iter().any(|n| n == expected),
            "missing metadata name {expected:?} in {names:?}"
        );
    }
    // A ring has links; at least one link track must be named.
    assert!(
        names.iter().any(|n| n.starts_with("link ")),
        "no link thread names in {names:?}"
    );
    // Quantum slices carry the job name with the rank suffix.
    assert!(
        events.iter().any(|e| {
            str_field(e, "ph").as_deref() == Some("X")
                && str_field(e, "name").is_some_and(|n| n.contains(":r"))
        }),
        "no quantum slices found"
    );
}
