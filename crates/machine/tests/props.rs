//! Property-based tests: randomly generated (but always well-formed)
//! workloads on random machines must satisfy the machine's conservation
//! laws and determinism guarantees.
//!
//! Ported from proptest to seeded [`DetRng`] loops so the suite runs with
//! no external dependencies; each case derives its own substream, so a
//! failure report's case index is enough to replay it exactly.
#![allow(clippy::field_reassign_with_default)]

use parsched_des::prelude::*;
use parsched_des::rng::DetRng;
use parsched_machine::prelude::*;
use parsched_topology::build;

const CASES: u64 = 64;

/// A randomly shaped fork-join job: the coordinator scatters to every
/// worker and gathers one reply from each; everyone computes. Always
/// balanced by construction.
#[derive(Debug, Clone)]
struct ForkJoin {
    width: usize,
    scatter_bytes: u64,
    gather_bytes: u64,
    work_us: u64,
    mem: u64,
}

fn random_forkjoin(rng: &mut DetRng) -> ForkJoin {
    ForkJoin {
        width: rng.uniform_u64(1, 9) as usize,
        scatter_bytes: rng.uniform_u64(0, 40_000),
        gather_bytes: rng.uniform_u64(0, 10_000),
        work_us: rng.uniform_u64(0, 20_000),
        mem: rng.uniform_u64(0, 100_000),
    }
}

fn random_forkjoins(rng: &mut DetRng, lo: u64, hi: u64) -> Vec<ForkJoin> {
    let count = rng.uniform_u64(lo, hi);
    (0..count).map(|_| random_forkjoin(rng)).collect()
}

fn build_job(idx: usize, fj: &ForkJoin) -> JobSpec {
    let work = SimDuration::from_micros(fj.work_us);
    if fj.width == 1 {
        return JobSpec {
            name: format!("fj{idx}"),
            ship_bytes: 0,
            procs: vec![ProcSpec {
                program: vec![Op::Compute(work)],
                mem_bytes: fj.mem,
            }],
        };
    }
    let mut procs = Vec::with_capacity(fj.width);
    let mut coord = Vec::new();
    for w in 1..fj.width {
        coord.push(Op::Send {
            to: Rank(w as u32),
            bytes: fj.scatter_bytes,
            tag: Tag(1),
        });
    }
    coord.push(Op::Compute(work));
    coord.push(Op::RecvAny {
        count: (fj.width - 1) as u32,
        tag: Tag(2),
    });
    procs.push(ProcSpec {
        program: coord,
        mem_bytes: fj.mem,
    });
    for _ in 1..fj.width {
        procs.push(ProcSpec {
            program: vec![
                Op::Recv { tag: Tag(1) },
                Op::Compute(work),
                Op::Send {
                    to: Rank(0),
                    bytes: fj.gather_bytes,
                    tag: Tag(2),
                },
            ],
            mem_bytes: fj.mem,
        });
    }
    JobSpec {
        name: format!("fj{idx}"),
        ship_bytes: 0,
        procs,
    }
}

#[derive(Debug, Clone, Copy)]
enum Topo {
    Linear(usize),
    Ring(usize),
    Mesh(usize, usize),
    Cube(u8),
}

fn random_topo(rng: &mut DetRng) -> Topo {
    match rng.uniform_u64(0, 4) {
        0 => Topo::Linear(rng.uniform_u64(2, 9) as usize),
        1 => Topo::Ring(rng.uniform_u64(3, 9) as usize),
        2 => Topo::Mesh(
            rng.uniform_u64(2, 4) as usize,
            rng.uniform_u64(2, 4) as usize,
        ),
        _ => Topo::Cube(rng.uniform_u64(1, 4) as u8),
    }
}

fn make_net(t: Topo) -> SystemNet {
    let topo = match t {
        Topo::Linear(n) => build::linear(n).unwrap(),
        Topo::Ring(n) => build::ring(n).unwrap(),
        Topo::Mesh(r, c) => build::mesh(r, c).unwrap(),
        Topo::Cube(d) => build::hypercube(d).unwrap(),
    };
    SystemNet::single(&topo)
}

/// Run a set of jobs on a machine and return it for inspection.
fn run_jobs(
    cfg: MachineConfig,
    net: SystemNet,
    jobs: &[ForkJoin],
    queue: QueueKind,
) -> (Machine, SimTime, u64) {
    let nodes = net.nodes() as u32;
    let mut m = Machine::new(cfg, net);
    let ids: Vec<JobId> = jobs
        .iter()
        .enumerate()
        .map(|(i, fj)| {
            let spec = build_job(i, fj);
            spec.check_balanced().expect("generator emits balanced jobs");
            let placement: Vec<u32> =
                (0..spec.width()).map(|r| (r as u32 + i as u32) % nodes).collect();
            m.queue_job(spec, placement, SimDuration::from_millis(2))
        })
        .collect();
    let mut engine = Engine::new(queue);
    engine.max_events = 5_000_000;
    for id in ids {
        engine.seed(SimTime::ZERO, Event::Admit { job: id });
    }
    let outcome = engine.run(&mut m);
    assert_eq!(outcome, RunOutcome::Drained, "simulation must drain");
    (m, engine.now(), engine.events_processed())
}

/// Any balanced workload completes, consumes what it sends, and
/// returns all memory.
#[test]
fn conservation_laws_hold() {
    let root = DetRng::new(0xC0);
    for case in 0..CASES {
        let mut rng = root.substream_idx("conservation", case);
        let topo = random_topo(&mut rng);
        let jobs = random_forkjoins(&mut rng, 1, 5);
        let (m, _, _) = run_jobs(
            MachineConfig::default(),
            make_net(topo),
            &jobs,
            QueueKind::BinaryHeap,
        );
        assert!(m.all_jobs_done(), "case {case}");
        assert_eq!(
            m.counters.messages_sent, m.counters.messages_consumed,
            "case {case}"
        );
        let expected: u64 = jobs.iter().map(|fj| 2 * (fj.width as u64 - 1)).sum();
        assert_eq!(m.counters.messages_sent, expected, "case {case}");
        for n in 0..m.node_count() {
            let node = m.node(n as u32);
            assert_eq!(node.mmu.used(), 0, "case {case} node {n}");
            assert_eq!(node.mmu.queue_len(), 0, "case {case} node {n}");
            assert!(node.cpu.is_idle(), "case {case} node {n}");
        }
    }
}

/// Process CPU accounting: every process accrues exactly its compute
/// demand plus its messaging costs (nothing lost to preemption).
#[test]
fn cpu_time_accounts_for_all_work() {
    let root = DetRng::new(0xC1);
    for case in 0..CASES {
        let mut rng = root.substream_idx("cpu-accounting", case);
        let topo = random_topo(&mut rng);
        let fj = random_forkjoin(&mut rng);
        let cfg = MachineConfig::default();
        let spec = build_job(0, &fj);
        let expected: Vec<SimDuration> = spec
            .procs
            .iter()
            .map(|p| {
                let mut t = p.compute_demand();
                for op in &p.program {
                    match op {
                        Op::Send { bytes, .. } => t += cfg.send_cost(*bytes),
                        Op::Recv { .. } => {} // cost depends on the message
                        _ => {}
                    }
                }
                t
            })
            .collect();
        let (m, _, _) = run_jobs(
            cfg.clone(),
            make_net(topo),
            std::slice::from_ref(&fj),
            QueueKind::BinaryHeap,
        );
        for (proc_, exp) in m.processes().iter().zip(expected) {
            // recv costs add the per-byte cost of whatever messages the
            // process consumed; build the exact expectation.
            let recv_extra = match proc_.rank.0 {
                0 => {
                    // coordinator consumed width-1 gathers
                    SimDuration::from_nanos(
                        (fj.width as u64 - 1) * cfg.recv_cost(fj.gather_bytes).nanos(),
                    )
                }
                _ => cfg.recv_cost(fj.scatter_bytes),
            };
            let want = if fj.width == 1 { exp } else { exp + recv_extra };
            assert_eq!(
                proc_.cpu_time, want,
                "case {case}: rank {} accrued {} expected {}",
                proc_.rank.0, proc_.cpu_time, want
            );
        }
    }
}

/// The two engine backends replay identical histories for arbitrary
/// workloads.
#[test]
fn backends_agree_on_random_workloads() {
    let root = DetRng::new(0xC2);
    for case in 0..CASES {
        let mut rng = root.substream_idx("backends", case);
        let topo = random_topo(&mut rng);
        let jobs = random_forkjoins(&mut rng, 1, 4);
        let (ma, ta, ea) = run_jobs(
            MachineConfig::default(),
            make_net(topo),
            &jobs,
            QueueKind::BinaryHeap,
        );
        let (mb, tb, eb) = run_jobs(
            MachineConfig::default(),
            make_net(topo),
            &jobs,
            QueueKind::Calendar,
        );
        assert_eq!(ta, tb, "case {case}: end times differ");
        assert_eq!(ea, eb, "case {case}: event counts differ");
        let fa: Vec<SimTime> = ma.jobs().iter().map(|j| j.finished_at).collect();
        let fb: Vec<SimTime> = mb.jobs().iter().map(|j| j.finished_at).collect();
        assert_eq!(fa, fb, "case {case}: completion times differ");
    }
}

/// Response time is bounded below by the critical path: load plus the
/// coordinator's own compute and messaging costs.
#[test]
fn response_respects_critical_path() {
    let root = DetRng::new(0xC3);
    for case in 0..CASES {
        let mut rng = root.substream_idx("critical-path", case);
        let topo = random_topo(&mut rng);
        let fj = random_forkjoin(&mut rng);
        let cfg = MachineConfig::default();
        let (m, _, _) = run_jobs(
            cfg.clone(),
            make_net(topo),
            std::slice::from_ref(&fj),
            QueueKind::BinaryHeap,
        );
        let job = m.job(JobId(0));
        let lower = SimDuration::from_micros(fj.work_us); // one work phase
        assert!(
            job.response_time() >= lower,
            "case {case}: response {} below compute lower bound {}",
            job.response_time(),
            lower
        );
        // And the load must have happened before anything ran.
        assert!(job.loaded_at >= job.submitted_at, "case {case}");
        assert!(job.finished_at >= job.loaded_at, "case {case}");
    }
}

/// Switching modes all complete arbitrary workloads with the same
/// message accounting.
#[test]
fn switching_modes_complete() {
    let root = DetRng::new(0xC4);
    for case in 0..CASES {
        let mut rng = root.substream_idx("switching", case);
        let topo = random_topo(&mut rng);
        let jobs = random_forkjoins(&mut rng, 1, 3);
        let mut counts = Vec::new();
        for switching in [
            Switching::PacketizedSaf,
            Switching::StoreAndForward,
            Switching::CutThrough,
        ] {
            let mut cfg = MachineConfig::default();
            cfg.switching = switching;
            let (m, _, _) = run_jobs(cfg, make_net(topo), &jobs, QueueKind::BinaryHeap);
            assert!(m.all_jobs_done(), "case {case}: {switching:?} stalled");
            counts.push(m.counters.messages_consumed);
        }
        assert_eq!(counts[0], counts[1], "case {case}");
        assert_eq!(counts[1], counts[2], "case {case}");
    }
}
