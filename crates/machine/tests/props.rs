//! Property-based tests: randomly generated (but always well-formed)
//! workloads on random machines must satisfy the machine's conservation
//! laws and determinism guarantees.
#![allow(clippy::field_reassign_with_default)]

use parsched_des::prelude::*;
use parsched_machine::prelude::*;
use parsched_topology::build;
use proptest::prelude::*;

/// A randomly shaped fork-join job: the coordinator scatters to every
/// worker and gathers one reply from each; everyone computes. Always
/// balanced by construction.
#[derive(Debug, Clone)]
struct ForkJoin {
    width: usize,
    scatter_bytes: u64,
    gather_bytes: u64,
    work_us: u64,
    mem: u64,
}

fn arb_forkjoin() -> impl Strategy<Value = ForkJoin> {
    (
        1usize..=8,
        0u64..40_000,
        0u64..10_000,
        0u64..20_000,
        0u64..100_000,
    )
        .prop_map(|(width, scatter_bytes, gather_bytes, work_us, mem)| ForkJoin {
            width,
            scatter_bytes,
            gather_bytes,
            work_us,
            mem,
        })
}

fn build_job(idx: usize, fj: &ForkJoin) -> JobSpec {
    let work = SimDuration::from_micros(fj.work_us);
    if fj.width == 1 {
        return JobSpec {
            name: format!("fj{idx}"),
            ship_bytes: 0,
            procs: vec![ProcSpec {
                program: vec![Op::Compute(work)],
                mem_bytes: fj.mem,
            }],
        };
    }
    let mut procs = Vec::with_capacity(fj.width);
    let mut coord = Vec::new();
    for w in 1..fj.width {
        coord.push(Op::Send {
            to: Rank(w as u32),
            bytes: fj.scatter_bytes,
            tag: Tag(1),
        });
    }
    coord.push(Op::Compute(work));
    coord.push(Op::RecvAny {
        count: (fj.width - 1) as u32,
        tag: Tag(2),
    });
    procs.push(ProcSpec {
        program: coord,
        mem_bytes: fj.mem,
    });
    for _ in 1..fj.width {
        procs.push(ProcSpec {
            program: vec![
                Op::Recv { tag: Tag(1) },
                Op::Compute(work),
                Op::Send {
                    to: Rank(0),
                    bytes: fj.gather_bytes,
                    tag: Tag(2),
                },
            ],
            mem_bytes: fj.mem,
        });
    }
    JobSpec {
        name: format!("fj{idx}"),
        ship_bytes: 0,
        procs,
    }
}

#[derive(Debug, Clone, Copy)]
enum Topo {
    Linear(usize),
    Ring(usize),
    Mesh(usize, usize),
    Cube(u8),
}

fn arb_topo() -> impl Strategy<Value = Topo> {
    prop_oneof![
        (2usize..=8).prop_map(Topo::Linear),
        (3usize..=8).prop_map(Topo::Ring),
        ((2usize..=3), (2usize..=3)).prop_map(|(r, c)| Topo::Mesh(r, c)),
        (1u8..=3).prop_map(Topo::Cube),
    ]
}

fn make_net(t: Topo) -> SystemNet {
    let topo = match t {
        Topo::Linear(n) => build::linear(n),
        Topo::Ring(n) => build::ring(n),
        Topo::Mesh(r, c) => build::mesh(r, c),
        Topo::Cube(d) => build::hypercube(d),
    };
    SystemNet::single(&topo)
}

/// Run a set of jobs on a machine and return it for inspection.
fn run_jobs(
    cfg: MachineConfig,
    net: SystemNet,
    jobs: &[ForkJoin],
    queue: QueueKind,
) -> (Machine, SimTime, u64) {
    let nodes = net.nodes() as u16;
    let mut m = Machine::new(cfg, net);
    let ids: Vec<JobId> = jobs
        .iter()
        .enumerate()
        .map(|(i, fj)| {
            let spec = build_job(i, fj);
            spec.check_balanced().expect("generator emits balanced jobs");
            let placement: Vec<u16> =
                (0..spec.width()).map(|r| (r as u16 + i as u16) % nodes).collect();
            m.queue_job(spec, placement, SimDuration::from_millis(2))
        })
        .collect();
    let mut engine = Engine::new(queue);
    engine.max_events = 5_000_000;
    for id in ids {
        engine.seed(SimTime::ZERO, Event::Admit { job: id });
    }
    let outcome = engine.run(&mut m);
    assert_eq!(outcome, RunOutcome::Drained, "simulation must drain");
    (m, engine.now(), engine.events_processed())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any balanced workload completes, consumes what it sends, and
    /// returns all memory.
    #[test]
    fn conservation_laws_hold(
        topo in arb_topo(),
        jobs in proptest::collection::vec(arb_forkjoin(), 1..5),
    ) {
        let (m, _, _) = run_jobs(
            MachineConfig::default(),
            make_net(topo),
            &jobs,
            QueueKind::BinaryHeap,
        );
        prop_assert!(m.all_jobs_done());
        prop_assert_eq!(m.counters.messages_sent, m.counters.messages_consumed);
        let expected: u64 = jobs
            .iter()
            .map(|fj| 2 * (fj.width as u64 - 1))
            .sum();
        prop_assert_eq!(m.counters.messages_sent, expected);
        for n in 0..m.node_count() {
            let node = m.node(n as u16);
            prop_assert_eq!(node.mmu.used(), 0);
            prop_assert_eq!(node.mmu.queue_len(), 0);
            prop_assert!(node.cpu.is_idle());
        }
    }

    /// Process CPU accounting: every process accrues exactly its compute
    /// demand plus its messaging costs (nothing lost to preemption).
    #[test]
    fn cpu_time_accounts_for_all_work(
        topo in arb_topo(),
        fj in arb_forkjoin(),
    ) {
        let cfg = MachineConfig::default();
        let spec = build_job(0, &fj);
        let expected: Vec<SimDuration> = spec
            .procs
            .iter()
            .map(|p| {
                let mut t = p.compute_demand();
                for op in &p.program {
                    match op {
                        Op::Send { bytes, .. } => t += cfg.send_cost(*bytes),
                        Op::Recv { .. } => {} // cost depends on the message
                        _ => {}
                    }
                }
                t
            })
            .collect();
        let (m, _, _) = run_jobs(cfg.clone(), make_net(topo), std::slice::from_ref(&fj), QueueKind::BinaryHeap);
        for (proc_, exp) in m.processes().iter().zip(expected) {
            // recv costs add the per-byte cost of whatever messages the
            // process consumed; build the exact expectation.
            let recv_extra = match proc_.rank.0 {
                0 => {
                    // coordinator consumed width-1 gathers
                    SimDuration::from_nanos(
                        (fj.width as u64 - 1)
                            * cfg.recv_cost(fj.gather_bytes).nanos(),
                    )
                }
                _ => cfg.recv_cost(fj.scatter_bytes),
            };
            let want = if fj.width == 1 { exp } else { exp + recv_extra };
            prop_assert_eq!(
                proc_.cpu_time,
                want,
                "rank {} accrued {} expected {}",
                proc_.rank.0,
                proc_.cpu_time,
                want
            );
        }
    }

    /// The two engine backends replay identical histories for arbitrary
    /// workloads.
    #[test]
    fn backends_agree_on_random_workloads(
        topo in arb_topo(),
        jobs in proptest::collection::vec(arb_forkjoin(), 1..4),
    ) {
        let (ma, ta, ea) = run_jobs(
            MachineConfig::default(), make_net(topo), &jobs, QueueKind::BinaryHeap);
        let (mb, tb, eb) = run_jobs(
            MachineConfig::default(), make_net(topo), &jobs, QueueKind::Calendar);
        prop_assert_eq!(ta, tb, "end times differ");
        prop_assert_eq!(ea, eb, "event counts differ");
        let fa: Vec<SimTime> = ma.jobs().iter().map(|j| j.finished_at).collect();
        let fb: Vec<SimTime> = mb.jobs().iter().map(|j| j.finished_at).collect();
        prop_assert_eq!(fa, fb, "completion times differ");
    }

    /// Response time is bounded below by the critical path: load plus the
    /// coordinator's own compute and messaging costs.
    #[test]
    fn response_respects_critical_path(
        topo in arb_topo(),
        fj in arb_forkjoin(),
    ) {
        let cfg = MachineConfig::default();
        let (m, _, _) = run_jobs(cfg.clone(), make_net(topo), std::slice::from_ref(&fj), QueueKind::BinaryHeap);
        let job = m.job(JobId(0));
        let lower = SimDuration::from_micros(fj.work_us); // one work phase
        prop_assert!(
            job.response_time() >= lower,
            "response {} below compute lower bound {}",
            job.response_time(),
            lower
        );
        // And the load must have happened before anything ran.
        prop_assert!(job.loaded_at >= job.submitted_at);
        prop_assert!(job.finished_at >= job.loaded_at);
    }

    /// Switching modes all complete arbitrary workloads with the same
    /// message accounting.
    #[test]
    fn switching_modes_complete(
        topo in arb_topo(),
        jobs in proptest::collection::vec(arb_forkjoin(), 1..3),
    ) {
        let mut counts = Vec::new();
        for switching in [
            Switching::PacketizedSaf,
            Switching::StoreAndForward,
            Switching::CutThrough,
        ] {
            let mut cfg = MachineConfig::default();
            cfg.switching = switching;
            let (m, _, _) = run_jobs(cfg, make_net(topo), &jobs, QueueKind::BinaryHeap);
            prop_assert!(m.all_jobs_done(), "{switching:?} stalled");
            counts.push(m.counters.messages_consumed);
        }
        prop_assert_eq!(counts[0], counts[1]);
        prop_assert_eq!(counts[1], counts[2]);
    }
}
