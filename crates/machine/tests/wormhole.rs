//! End-to-end tests of wormhole switching: flit-pipelined delivery across
//! every topology family, credit/flit conservation, VC contention, fault
//! drains (link outages and job kills), and deterministic replay.
#![allow(clippy::field_reassign_with_default)]

use parsched_des::prelude::*;
use parsched_machine::fault::{LinkWindow, NodeCrash};
use parsched_machine::prelude::*;
use parsched_topology::{build, Topology};

fn wormhole_cfg() -> MachineConfig {
    MachineConfig {
        switching: Switching::Wormhole,
        job_load_latency: SimDuration::ZERO,
        host_link_per_byte: SimDuration::ZERO,
        ..MachineConfig::default()
    }
}

fn run(machine: &mut Machine, jobs: &[JobId]) -> SimTime {
    let mut engine = Engine::new(QueueKind::BinaryHeap);
    engine.max_events = 10_000_000;
    machine.seed_faults(&mut engine);
    for &j in jobs {
        engine.seed(SimTime::ZERO, Event::Admit { job: j });
    }
    let outcome = engine.run(machine);
    assert_eq!(outcome, RunOutcome::Drained, "simulation did not drain");
    engine.now()
}

fn pair_spec(bytes: u64) -> JobSpec {
    JobSpec {
        name: "worm".into(),
        ship_bytes: 0,
        procs: vec![
            ProcSpec {
                program: vec![Op::Send { to: Rank(1), bytes, tag: Tag(1) }],
                mem_bytes: 0,
            },
            ProcSpec {
                program: vec![Op::Recv { tag: Tag(1) }],
                mem_bytes: 0,
            },
        ],
    }
}

/// The invariant the differential oracle also checks: every injected flit
/// is ejected or accounted dropped, every issued credit came back, and no
/// virtual channel or worm outlives the run.
fn assert_flit_conservation(m: &Machine) {
    let c = &m.counters;
    assert_eq!(
        c.flits_injected,
        c.flits_ejected + c.flits_dropped,
        "flit conservation"
    );
    assert_eq!(c.credits_issued, c.credits_returned, "credit conservation");
    let wh = m.wormhole().expect("wormhole machine");
    assert_eq!(wh.occupied_vcs(), 0, "VC leak");
    assert!(wh.worms.iter().all(|w| w.is_none()), "worm leak");
}

#[test]
fn wormhole_delivers_across_every_topology_family() {
    // (topology, src host, dst host): each pair crosses the part of the
    // fabric its escape classes exist for (ring/torus wraparound, fat-tree
    // up/down turn, dragonfly global link).
    let cases: Vec<(Topology, u32, u32)> = vec![
        (build::linear(4).unwrap(), 0, 3),
        (build::ring(6).unwrap(), 0, 4),
        (build::torus(4, 4).unwrap(), 0, 15),
        (build::fat_tree(4).unwrap(), 0, 15),
        (build::dragonfly(2, 1, 1).unwrap(), 1, 11),
    ];
    for (topo, src, dst) in cases {
        let kind = topo.kind();
        let mut m = Machine::new(wormhole_cfg(), SystemNet::single(&topo));
        let job = m.queue_job(pair_spec(4096), vec![src, dst], SimDuration::from_millis(2));
        run(&mut m, &[job]);
        assert!(m.all_jobs_done(), "undelivered on {kind:?}");
        assert_eq!(m.counters.messages_consumed, 1, "{kind:?}");
        // 4096 B = 64 payload flits + 1 header, injected exactly once.
        assert_eq!(m.counters.flits_injected, 65, "{kind:?}");
        assert_eq!(m.counters.flits_dropped, 0, "{kind:?}");
        assert!(m.counters.vc_allocs as usize >= 1, "{kind:?}");
        assert_flit_conservation(&m);
        for n in 0..m.node_count() {
            assert_eq!(m.node(n as u32).mmu.used(), 0, "leak on {kind:?} node {n}");
        }
    }
}

#[test]
fn wormhole_pipelines_long_messages_unlike_saf() {
    // A 50 KB worm over 7 links: the head streams while the tail is still
    // at the source, so the makespan is one serialization plus the
    // pipeline fill — not 7 serializations like store-and-forward.
    let mut times = Vec::new();
    for switching in [Switching::StoreAndForward, Switching::Wormhole] {
        let mut cfg = wormhole_cfg();
        cfg.switching = switching;
        let mut m = Machine::new(cfg, SystemNet::single(&build::linear(8).unwrap()));
        let job = m.queue_job(pair_spec(50_000), vec![0, 7], SimDuration::from_millis(2));
        let end = run(&mut m, &[job]);
        assert!(m.all_jobs_done());
        times.push(end.since(SimTime::ZERO));
    }
    assert!(
        times[1].as_secs_f64() < times[0].as_secs_f64() * 0.4,
        "wormhole {} not much faster than SAF {}",
        times[1],
        times[0]
    );
}

#[test]
fn worms_contend_for_the_single_escape_vc() {
    // Two jobs funnel through the shared middle links of a linear array.
    // With one escape class x one VC per class, the second worm must wait
    // for the first to release each link's only VC — both still deliver.
    let mut m = Machine::new(wormhole_cfg(), SystemNet::single(&build::linear(4).unwrap()));
    let a = m.queue_job(pair_spec(8192), vec![0, 3], SimDuration::from_millis(2));
    let b = m.queue_job(pair_spec(8192), vec![0, 3], SimDuration::from_millis(2));
    run(&mut m, &[a, b]);
    assert!(m.all_jobs_done());
    assert_eq!(m.counters.messages_consumed, 2);
    // Each worm allocates a VC on each of its 3 links.
    assert_eq!(m.counters.vc_allocs, 6);
    assert_flit_conservation(&m);
}

#[test]
fn link_outage_drains_the_worm_and_retry_redelivers() {
    // The outage window opens mid-worm (injection ~30.5 ms after t=0, the
    // 783-flit worm occupies its only link for ~29.5 ms): the resident
    // worm is torn down, its untransmitted flits are accounted dropped,
    // and the retry protocol re-runs the whole worm after repair.
    let mut cfg = wormhole_cfg();
    cfg.faults.links.push(LinkWindow {
        from: 0,
        to: 1,
        down_at: SimTime::ZERO + SimDuration::from_millis(40),
        up_at: SimTime::ZERO + SimDuration::from_millis(55),
    });
    let mut m = Machine::new(cfg, SystemNet::single(&build::linear(2).unwrap()));
    let job = m.queue_job(pair_spec(50_000), vec![0, 1], SimDuration::from_millis(2));
    run(&mut m, &[job]);
    assert_eq!(m.job(job).state, JobState::Done);
    assert!(m.counters.retries >= 1, "outage must force a retry");
    assert!(m.counters.flits_dropped > 0, "drained flits must be accounted");
    assert_eq!(m.counters.messages_consumed, 1);
    assert_flit_conservation(&m);
    for n in 0..2 {
        assert_eq!(m.node(n).mmu.used(), 0, "leak on node {n}");
    }
}

#[test]
fn node_crash_mid_worm_drains_without_retry() {
    // The destination CPU fail-stops while the worm is on the wire: the
    // job is killed, the worm drained, and every in-network flit accounted
    // dropped — conservation must still balance.
    let mut cfg = wormhole_cfg();
    cfg.faults.crashes.push(NodeCrash {
        node: 1,
        at: SimTime::ZERO + SimDuration::from_millis(40),
    });
    let mut m = Machine::new(cfg, SystemNet::single(&build::linear(2).unwrap()));
    let job = m.queue_job(pair_spec(50_000), vec![0, 1], SimDuration::from_millis(2));
    run(&mut m, &[job]);
    assert_eq!(m.job(job).state, JobState::Failed);
    assert!(m.counters.flits_dropped > 0, "killed worm must drop flits");
    assert_eq!(
        m.counters.messages_sent,
        m.counters.messages_consumed + m.counters.messages_dropped
    );
    assert_flit_conservation(&m);
}

#[test]
fn wormhole_replay_is_deterministic() {
    fn run_once() -> Vec<parsched_obs::TimedEvent> {
        let mut cfg = wormhole_cfg();
        cfg.faults.links.push(LinkWindow {
            from: 1,
            to: 2,
            down_at: SimTime::ZERO + SimDuration::from_millis(35),
            up_at: SimTime::ZERO + SimDuration::from_millis(45),
        });
        cfg.faults.drop_prob = 0.05;
        cfg.faults.drop_seed = 11;
        let mut m = Machine::new(cfg, SystemNet::single(&build::ring(6).unwrap()));
        let a = m.queue_job(pair_spec(20_000), vec![0, 4], SimDuration::from_millis(2));
        let b = m.queue_job(pair_spec(20_000), vec![2, 5], SimDuration::from_millis(2));
        m.recorder = Some(Box::new(parsched_obs::CollectRecorder::new()));
        run(&mut m, &[a, b]);
        assert_flit_conservation(&m);
        let rec = m
            .recorder
            .as_mut()
            .and_then(|r| r.as_any_mut().downcast_mut::<parsched_obs::CollectRecorder>())
            .expect("collector installed");
        rec.take_events()
    }
    let first = run_once();
    let second = run_once();
    assert!(!first.is_empty());
    assert_eq!(first, second, "wormhole replay diverged");
}
