//! End-to-end tests of the machine's execution protocol: compute slicing,
//! messaging over multiple hops, preemption, memory back-pressure,
//! self-sends, and both switching modes.
#![allow(clippy::field_reassign_with_default)]

use parsched_des::prelude::*;
use parsched_machine::prelude::*;
use parsched_topology::build;

fn run(machine: &mut Machine, jobs: &[JobId]) -> SimTime {
    let mut engine = Engine::new(QueueKind::BinaryHeap);
    engine.max_events = 10_000_000;
    for &j in jobs {
        engine.seed(SimTime::ZERO, Event::Admit { job: j });
    }
    let outcome = engine.run(machine);
    assert_eq!(outcome, RunOutcome::Drained, "simulation did not drain");
    engine.now()
}

fn compute_job(name: &str, millis: u64, mem: u64) -> JobSpec {
    JobSpec {
        name: name.into(),
        ship_bytes: 0,
        procs: vec![ProcSpec {
            program: vec![Op::Compute(SimDuration::from_millis(millis))],
            mem_bytes: mem,
        }],
    }
}

#[test]
fn single_compute_job_takes_load_plus_compute() {
    let mut m = Machine::new(MachineConfig::default(), SystemNet::single(&build::linear(1).unwrap()));
    let q = SimDuration::from_millis(2);
    let job = m.queue_job(compute_job("solo", 10, 1024), vec![0], q);
    run(&mut m, &[job]);
    let j = m.job(job);
    assert_eq!(j.state, JobState::Done);
    let rt = j.response_time();
    // 1 ms load + 10 ms compute + 5 dispatch overheads (10 ms / 2 ms quantum).
    let cfg = MachineConfig::default();
    let min = cfg.job_load_latency + SimDuration::from_millis(10);
    let max = min + SimDuration::from_millis(1);
    assert!(rt >= min && rt <= max, "response {rt} outside [{min}, {max}]");
}

#[test]
fn round_robin_interleaves_equal_processes() {
    // Two identical processes on one CPU must finish at nearly the same
    // time (RR fairness), roughly 2x the solo time.
    let mut m = Machine::new(MachineConfig::default(), SystemNet::single(&build::linear(1).unwrap()));
    let q = SimDuration::from_millis(2);
    let spec = JobSpec {
        name: "pair".into(),
        ship_bytes: 0,
        procs: vec![
            ProcSpec {
                program: vec![Op::Compute(SimDuration::from_millis(20))],
                mem_bytes: 0,
            },
            ProcSpec {
                program: vec![Op::Compute(SimDuration::from_millis(20))],
                mem_bytes: 0,
            },
        ],
    };
    let job = m.queue_job(spec, vec![0, 0], q);
    let end = run(&mut m, &[job]);
    let f0 = m.processes()[0].finished_at;
    let f1 = m.processes()[1].finished_at;
    // Both finish within one quantum (+overheads) of each other.
    let gap = if f0 > f1 { f0.since(f1) } else { f1.since(f0) };
    assert!(gap <= SimDuration::from_millis(3), "unfair gap {gap}");
    assert!(end.since(SimTime::ZERO) >= SimDuration::from_millis(41));
}

#[test]
fn message_crosses_multiple_hops() {
    // rank0 on node0 sends 1 KB to rank1 on node3 of a 4-node linear array.
    let cfg = MachineConfig::default();
    let mut m = Machine::new(cfg.clone(), SystemNet::single(&build::linear(4).unwrap()));
    let spec = JobSpec {
        name: "hop".into(),
        ship_bytes: 0,
        procs: vec![
            ProcSpec {
                program: vec![Op::Send { to: Rank(1), bytes: 1024, tag: Tag(1) }],
                mem_bytes: 0,
            },
            ProcSpec {
                program: vec![Op::Recv { tag: Tag(1) }],
                mem_bytes: 0,
            },
        ],
    };
    let job = m.queue_job(spec, vec![0, 3], SimDuration::from_millis(2));
    run(&mut m, &[job]);
    assert!(m.all_jobs_done());
    assert_eq!(m.counters.messages_sent, 1);
    assert_eq!(m.counters.messages_consumed, 1);
    // Three hops on the linear array.
    assert_eq!(m.counters.hop_transfers, 3);
    // Each traversed channel carried the payload once.
    let carried: Vec<u64> = m
        .channel_states()
        .iter()
        .filter(|c| c.bytes_carried > 0)
        .map(|c| c.bytes_carried)
        .collect();
    assert_eq!(carried, vec![1024, 1024, 1024]);
    // All memory returned.
    for n in 0..4 {
        assert_eq!(m.node(n).mmu.used(), 0, "leak on node {n}");
    }
}

#[test]
fn self_send_uses_mailbox_machinery() {
    let mut m = Machine::new(MachineConfig::default(), SystemNet::single(&build::linear(1).unwrap()));
    let spec = JobSpec {
        name: "selfie".into(),
        ship_bytes: 0,
        procs: vec![
            ProcSpec {
                program: vec![Op::Send { to: Rank(1), bytes: 64, tag: Tag(9) }],
                mem_bytes: 0,
            },
            ProcSpec {
                program: vec![Op::Recv { tag: Tag(9) }],
                mem_bytes: 0,
            },
        ],
    };
    let job = m.queue_job(spec, vec![0, 0], SimDuration::from_millis(2));
    run(&mut m, &[job]);
    assert!(m.all_jobs_done());
    assert_eq!(m.counters.self_sends, 1);
    assert_eq!(m.counters.hop_transfers, 0, "no link traffic for self-sends");
    assert_eq!(m.node(0).mmu.used(), 0);
    // The delivery handler ran at high priority on the node.
    assert!(m.node(0).cpu.handler_runs >= 1);
}

#[test]
fn high_priority_arrival_preempts_compute() {
    // rank0 computes for 50 ms while rank1's message arrives mid-burst: the
    // arrival handler must preempt the computation (T805 quantum-loss rule).
    let mut m = Machine::new(MachineConfig::default(), SystemNet::single(&build::linear(2).unwrap()));
    let spec = JobSpec {
        name: "preempt".into(),
        ship_bytes: 0,
        procs: vec![
            ProcSpec {
                program: vec![
                    Op::Compute(SimDuration::from_millis(50)),
                    Op::Recv { tag: Tag(1) },
                ],
                mem_bytes: 0,
            },
            ProcSpec {
                program: vec![Op::Send { to: Rank(0), bytes: 10_000, tag: Tag(1) }],
                mem_bytes: 0,
            },
        ],
    };
    let job = m.queue_job(spec, vec![0, 1], SimDuration::from_millis(100));
    run(&mut m, &[job]);
    assert!(m.all_jobs_done());
    // The 10 KB message takes ~6 ms of link time plus send overhead: it
    // lands well inside rank0's 50 ms burst (quantum 100 ms, so the only
    // way the handler ran mid-burst is preemption).
    assert!(
        m.node(0).cpu.preemptions >= 1,
        "no preemption observed ({} handler runs)",
        m.node(0).cpu.handler_runs
    );
}

#[test]
fn fork_join_completes_and_gathers() {
    // Coordinator scatters to 3 workers and gathers.
    let work = SimDuration::from_millis(30);
    let spec = JobSpec {
        name: "forkjoin".into(),
        ship_bytes: 0,
        procs: vec![
            ProcSpec {
                program: vec![
                    Op::Send { to: Rank(1), bytes: 10_000, tag: Tag(1) },
                    Op::Send { to: Rank(2), bytes: 10_000, tag: Tag(1) },
                    Op::Send { to: Rank(3), bytes: 10_000, tag: Tag(1) },
                    Op::Compute(work),
                    Op::RecvAny { count: 3, tag: Tag(2) },
                ],
                mem_bytes: 1000,
            },
            ProcSpec {
                program: vec![
                    Op::Recv { tag: Tag(1) },
                    Op::Compute(work),
                    Op::Send { to: Rank(0), bytes: 3_000, tag: Tag(2) },
                ],
                mem_bytes: 1000,
            },
            ProcSpec {
                program: vec![
                    Op::Recv { tag: Tag(1) },
                    Op::Compute(work),
                    Op::Send { to: Rank(0), bytes: 3_000, tag: Tag(2) },
                ],
                mem_bytes: 1000,
            },
            ProcSpec {
                program: vec![
                    Op::Recv { tag: Tag(1) },
                    Op::Compute(work),
                    Op::Send { to: Rank(0), bytes: 3_000, tag: Tag(2) },
                ],
                mem_bytes: 1000,
            },
        ],
    };
    let mut m = Machine::new(MachineConfig::default(), SystemNet::single(&build::ring(4).unwrap()));
    let job = m.queue_job(spec, vec![0, 1, 2, 3], SimDuration::from_millis(2));
    run(&mut m, &[job]);
    assert!(m.all_jobs_done());
    assert_eq!(m.counters.messages_sent, 6);
    assert_eq!(m.counters.messages_consumed, 6);
    let stats = MachineStats::capture(&m, SimTime(1));
    assert!(stats.handler_runs >= 6, "each arrival runs a handler");
    for n in 0..4 {
        assert_eq!(m.node(n).mmu.used(), 0, "leak on node {n}");
    }
}

#[test]
fn sender_blocks_when_memory_is_tight() {
    // Node memory barely fits the job data; the 100 KB send must wait for
    // the receiver to drain an earlier message before its buffer fits.
    let mut cfg = MachineConfig::default();
    cfg.mem_capacity = 150 * 1024;
    cfg.transit_reserve = 0;
    cfg.os_overhead = 0;
    // Issue the two sends back-to-back so the second finds the first's
    // buffer still in flight.
    cfg.send_per_byte = parsched_des::SimDuration::ZERO;
    let mut m = Machine::new(cfg, SystemNet::single(&build::linear(2).unwrap()));
    let spec = JobSpec {
        name: "tight".into(),
        ship_bytes: 0,
        procs: vec![
            ProcSpec {
                program: vec![
                    Op::Send { to: Rank(1), bytes: 100 * 1024, tag: Tag(1) },
                    Op::Send { to: Rank(1), bytes: 100 * 1024, tag: Tag(1) },
                ],
                mem_bytes: 20 * 1024,
            },
            ProcSpec {
                program: vec![
                    Op::Recv { tag: Tag(1) },
                    Op::Recv { tag: Tag(1) },
                ],
                mem_bytes: 20 * 1024,
            },
        ],
    };
    let job = m.queue_job(spec, vec![0, 1], SimDuration::from_millis(2));
    run(&mut m, &[job]);
    assert!(m.all_jobs_done());
    assert!(m.counters.send_blocks >= 1, "second send should have blocked");
    let stats = MachineStats::capture(&m, SimTime(1));
    assert!(stats.mmu_delayed_grants >= 1);
    assert!(stats.mmu_total_wait > SimDuration::ZERO);
}

#[test]
fn cut_through_beats_store_and_forward_on_long_paths() {
    let spec = || JobSpec {
        name: "long".into(),
        ship_bytes: 0,
        procs: vec![
            ProcSpec {
                program: vec![Op::Send { to: Rank(1), bytes: 50_000, tag: Tag(1) }],
                mem_bytes: 0,
            },
            ProcSpec {
                program: vec![Op::Recv { tag: Tag(1) }],
                mem_bytes: 0,
            },
        ],
    };
    let mut times = Vec::new();
    for switching in [Switching::StoreAndForward, Switching::CutThrough] {
        let mut cfg = MachineConfig::default();
        cfg.switching = switching;
        let mut m = Machine::new(cfg, SystemNet::single(&build::linear(8).unwrap()));
        let job = m.queue_job(spec(), vec![0, 7], SimDuration::from_millis(2));
        let end = run(&mut m, &[job]);
        assert!(m.all_jobs_done());
        times.push(end.since(SimTime::ZERO));
        for n in 0..8 {
            assert_eq!(m.node(n).mmu.used(), 0, "leak ({switching:?}) node {n}");
        }
    }
    // 7 hops of a 50 KB message: SAF ~ 7 x 30 ms; CT ~ 30 ms + headers.
    assert!(
        times[1].as_secs_f64() < times[0].as_secs_f64() * 0.4,
        "cut-through {} not much faster than SAF {}",
        times[1],
        times[0]
    );
}

#[test]
fn reserved_strict_mode_also_completes() {
    let mut cfg = MachineConfig::default();
    cfg.flow = FlowControl::ReservedStrict;
    let mut m = Machine::new(cfg, SystemNet::single(&build::linear(4).unwrap()));
    let spec = JobSpec {
        name: "fifo".into(),
        ship_bytes: 0,
        procs: vec![
            ProcSpec {
                program: vec![Op::Send { to: Rank(1), bytes: 4096, tag: Tag(1) }],
                mem_bytes: 0,
            },
            ProcSpec {
                program: vec![Op::Recv { tag: Tag(1) }],
                mem_bytes: 0,
            },
        ],
    };
    let job = m.queue_job(spec, vec![0, 3], SimDuration::from_millis(2));
    run(&mut m, &[job]);
    assert!(m.all_jobs_done());
    for n in 0..4 {
        assert_eq!(m.node(n).mmu.used(), 0);
    }
}

#[test]
fn jobs_queue_for_memory_and_load_when_freed() {
    // Two jobs that each need (almost) all of a node's memory: the second
    // must wait for the first to finish.
    let mut cfg = MachineConfig::default();
    cfg.mem_capacity = 100 * 1024;
    cfg.transit_reserve = 0;
    cfg.os_overhead = 0;
    let mut m = Machine::new(cfg, SystemNet::single(&build::linear(1).unwrap()));
    let a = m.queue_job(compute_job("a", 10, 90 * 1024), vec![0], SimDuration::from_millis(2));
    let b = m.queue_job(compute_job("b", 10, 90 * 1024), vec![0], SimDuration::from_millis(2));
    run(&mut m, &[a, b]);
    assert!(m.all_jobs_done());
    let ja = m.job(a);
    let jb = m.job(b);
    assert!(
        jb.loaded_at >= ja.finished_at,
        "job b loaded at {} before a finished at {}",
        jb.loaded_at,
        ja.finished_at
    );
}

#[test]
fn notes_report_lifecycle() {
    let mut m = Machine::new(MachineConfig::default(), SystemNet::single(&build::linear(1).unwrap()));
    let job = m.queue_job(compute_job("noted", 1, 0), vec![0], SimDuration::from_millis(2));
    run(&mut m, &[job]);
    let notes = m.drain_notes();
    assert!(notes.contains(&Note::JobLoaded(job)));
    assert!(notes.contains(&Note::JobCompleted(job)));
    assert!(m.drain_notes().is_empty(), "drain must consume");
}

#[test]
fn determinism_same_seeded_run_twice() {
    let build_and_run = || {
        let mut m = Machine::new(MachineConfig::default(), SystemNet::single(&build::ring(4).unwrap()));
        let spec = JobSpec {
            name: "det".into(),
            ship_bytes: 0,
            procs: (0..4)
                .map(|r| ProcSpec {
                    program: if r == 0 {
                        vec![
                            Op::Send { to: Rank(1), bytes: 5000, tag: Tag(1) },
                            Op::Send { to: Rank(2), bytes: 5000, tag: Tag(1) },
                            Op::Send { to: Rank(3), bytes: 5000, tag: Tag(1) },
                            Op::Compute(SimDuration::from_millis(7)),
                            Op::RecvAny { count: 3, tag: Tag(2) },
                        ]
                    } else {
                        vec![
                            Op::Recv { tag: Tag(1) },
                            Op::Compute(SimDuration::from_millis(5)),
                            Op::Send { to: Rank(0), bytes: 1000, tag: Tag(2) },
                        ]
                    },
                    mem_bytes: 100,
                })
                .collect(),
        };
        let job = m.queue_job(spec, vec![0, 1, 2, 3], SimDuration::from_millis(1));
        let end = run(&mut m, &[job]);
        (end, m.counters.hop_transfers, m.job(job).response_time())
    };
    assert_eq!(build_and_run(), build_and_run());
}

#[test]
fn both_engine_backends_agree() {
    let run_with = |kind: QueueKind| {
        let mut m = Machine::new(MachineConfig::default(), SystemNet::single(&build::linear(4).unwrap()));
        let spec = JobSpec {
            name: "backend".into(),
            ship_bytes: 0,
            procs: vec![
                ProcSpec {
                    program: vec![
                        Op::Send { to: Rank(1), bytes: 2048, tag: Tag(1) },
                        Op::Compute(SimDuration::from_millis(3)),
                        Op::Recv { tag: Tag(2) },
                    ],
                    mem_bytes: 0,
                },
                ProcSpec {
                    program: vec![
                        Op::Recv { tag: Tag(1) },
                        Op::Compute(SimDuration::from_millis(4)),
                        Op::Send { to: Rank(0), bytes: 512, tag: Tag(2) },
                    ],
                    mem_bytes: 0,
                },
            ],
        };
        let job = m.queue_job(spec, vec![0, 3], SimDuration::from_millis(2));
        let mut engine = Engine::new(kind);
        engine.seed(SimTime::ZERO, Event::Admit { job });
        assert_eq!(engine.run(&mut m), RunOutcome::Drained);
        (engine.now(), engine.events_processed())
    };
    assert_eq!(run_with(QueueKind::BinaryHeap), run_with(QueueKind::Calendar));
}

#[test]
fn timeline_records_compute_handlers_and_messages() {
    let mut cfg = MachineConfig::default();
    cfg.record_timeline = true;
    let mut m = Machine::new(cfg.clone(), SystemNet::single(&build::linear(2).unwrap()));
    let work = SimDuration::from_millis(12);
    let spec = JobSpec {
        name: "traced".into(),
        ship_bytes: 0,
        procs: vec![
            ProcSpec {
                program: vec![
                    Op::Compute(work),
                    Op::Send { to: Rank(1), bytes: 2048, tag: Tag(1) },
                ],
                mem_bytes: 0,
            },
            ProcSpec {
                program: vec![Op::Recv { tag: Tag(1) }, Op::Compute(work)],
                mem_bytes: 0,
            },
        ],
    };
    let job = m.queue_job(spec, vec![0, 1], SimDuration::from_millis(2));
    run(&mut m, &[job]);
    assert!(m.all_jobs_done());
    let tl = &m.timeline;
    assert!(tl.is_enabled());
    // Compute spans must cover exactly the accrued CPU time of each proc.
    let total_compute = tl.total(SpanKind::Compute);
    let accrued: SimDuration = m.processes().iter().map(|p| p.cpu_time).sum();
    assert_eq!(total_compute, accrued, "spans must cover all CPU time");
    // One delivered message => exactly one message span, covering at least
    // the link transfer time.
    let msgs: Vec<_> = tl
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::Message)
        .collect();
    assert_eq!(msgs.len(), 1);
    assert!(msgs[0].duration() >= cfg.transfer_time(2048));
    assert_eq!(msgs[0].node, 1);
    // The arrival handler on node 1 left a handler span.
    assert!(tl
        .spans()
        .iter()
        .any(|s| s.kind == SpanKind::Handler && s.node == 1));
    // CSV export includes every span.
    let csv = m.timeline.to_csv();
    assert_eq!(csv.lines().count(), tl.spans().len() + 1);
}

#[test]
fn timeline_disabled_by_default_and_free() {
    let mut m = Machine::new(MachineConfig::default(), SystemNet::single(&build::linear(1).unwrap()));
    let job = m.queue_job(compute_job("plain", 5, 0), vec![0], SimDuration::from_millis(2));
    run(&mut m, &[job]);
    assert!(!m.timeline.is_enabled());
    assert!(m.timeline.spans().is_empty());
}

#[test]
fn messages_between_same_pair_arrive_in_fifo_order() {
    // Three same-tag messages 0 -> 1: the receiver's three Recvs must see
    // them in send order (checked via cumulative byte accounting).
    let mut m = Machine::new(MachineConfig::default(), SystemNet::single(&build::linear(2).unwrap()));
    let spec = JobSpec {
        name: "fifo".into(),
        ship_bytes: 0,
        procs: vec![
            ProcSpec {
                program: vec![
                    Op::Send { to: Rank(1), bytes: 100, tag: Tag(1) },
                    Op::Send { to: Rank(1), bytes: 200, tag: Tag(1) },
                    Op::Send { to: Rank(1), bytes: 300, tag: Tag(1) },
                ],
                mem_bytes: 0,
            },
            ProcSpec {
                program: vec![
                    Op::Recv { tag: Tag(1) },
                    Op::Recv { tag: Tag(1) },
                    Op::Recv { tag: Tag(1) },
                ],
                mem_bytes: 0,
            },
        ],
    };
    let job = m.queue_job(spec, vec![0, 1], SimDuration::from_millis(2));
    run(&mut m, &[job]);
    assert!(m.all_jobs_done());
    assert_eq!(m.counters.messages_consumed, 3);
}

#[test]
fn tags_demultiplex_out_of_order_arrivals() {
    // The receiver waits for tag 2 FIRST even though tag 1's message
    // arrives first: mailbox matching must hold tag 1 until asked for.
    let mut m = Machine::new(MachineConfig::default(), SystemNet::single(&build::linear(2).unwrap()));
    let spec = JobSpec {
        name: "tags".into(),
        ship_bytes: 0,
        procs: vec![
            ProcSpec {
                program: vec![
                    Op::Send { to: Rank(1), bytes: 100, tag: Tag(1) },
                    Op::Compute(SimDuration::from_millis(20)),
                    Op::Send { to: Rank(1), bytes: 100, tag: Tag(2) },
                ],
                mem_bytes: 0,
            },
            ProcSpec {
                program: vec![Op::Recv { tag: Tag(2) }, Op::Recv { tag: Tag(1) }],
                mem_bytes: 0,
            },
        ],
    };
    let job = m.queue_job(spec, vec![0, 1], SimDuration::from_millis(2));
    run(&mut m, &[job]);
    assert!(m.all_jobs_done());
    assert_eq!(m.node(1).mmu.used(), 0);
}

#[test]
fn jobs_mailboxes_are_isolated() {
    // Two jobs use the same tag on the same nodes; their messages must not
    // cross.
    let mk = || JobSpec {
        name: "iso".into(),
        ship_bytes: 0,
        procs: vec![
            ProcSpec {
                program: vec![Op::Send { to: Rank(1), bytes: 64, tag: Tag(1) }],
                mem_bytes: 0,
            },
            ProcSpec {
                program: vec![Op::Recv { tag: Tag(1) }],
                mem_bytes: 0,
            },
        ],
    };
    let mut m = Machine::new(MachineConfig::default(), SystemNet::single(&build::linear(2).unwrap()));
    let a = m.queue_job(mk(), vec![0, 1], SimDuration::from_millis(2));
    let b = m.queue_job(mk(), vec![0, 1], SimDuration::from_millis(2));
    run(&mut m, &[a, b]);
    assert!(m.all_jobs_done());
    assert_eq!(m.counters.messages_consumed, 2);
}

#[test]
fn zero_byte_messages_work() {
    let mut m = Machine::new(MachineConfig::default(), SystemNet::single(&build::ring(3).unwrap()));
    let spec = JobSpec {
        name: "zero".into(),
        ship_bytes: 0,
        procs: vec![
            ProcSpec {
                program: vec![Op::Send { to: Rank(1), bytes: 0, tag: Tag(5) }],
                mem_bytes: 0,
            },
            ProcSpec {
                program: vec![Op::Recv { tag: Tag(5) }],
                mem_bytes: 0,
            },
        ],
    };
    let job = m.queue_job(spec, vec![0, 2], SimDuration::from_millis(2));
    run(&mut m, &[job]);
    assert!(m.all_jobs_done());
    for n in 0..3 {
        assert_eq!(m.node(n).mmu.used(), 0);
    }
}

#[test]
fn blocking_send_mode_round_trips() {
    let mut cfg = MachineConfig::default();
    cfg.send_mode = SendMode::Blocking;
    let mut m = Machine::new(cfg, SystemNet::single(&build::linear(2).unwrap()));
    let spec = JobSpec {
        name: "blocking".into(),
        ship_bytes: 0,
        procs: vec![
            ProcSpec {
                program: vec![
                    Op::Send { to: Rank(1), bytes: 10_000, tag: Tag(1) },
                    Op::Recv { tag: Tag(2) },
                ],
                mem_bytes: 0,
            },
            ProcSpec {
                program: vec![
                    Op::Recv { tag: Tag(1) },
                    Op::Send { to: Rank(0), bytes: 10_000, tag: Tag(2) },
                ],
                mem_bytes: 0,
            },
        ],
    };
    let job = m.queue_job(spec, vec![0, 1], SimDuration::from_millis(2));
    run(&mut m, &[job]);
    assert!(m.all_jobs_done());
}

#[test]
fn reserved_strict_can_deadlock_and_reports() {
    // The classic bidirectional store-and-forward deadlock: heavy opposing
    // traffic on a chain with almost no buffer memory. Under ReservedStrict
    // (no escape pool) the simulation must stop and report, not hang.
    let mut cfg = MachineConfig::default();
    cfg.switching = Switching::StoreAndForward;
    cfg.flow = FlowControl::ReservedStrict;
    cfg.send_mode = SendMode::Async;
    cfg.mem_capacity = 80 * 1024;
    cfg.os_overhead = 0;
    cfg.transit_reserve = 0;
    let mut m = Machine::new(cfg, SystemNet::single(&build::linear(4).unwrap()));
    // Rank 0 (node 0) floods rank 1 (node 3) while rank 1 floods back.
    let flood: Vec<Op> = (0..6)
        .map(|_| Op::Send { to: Rank(1), bytes: 30 * 1024, tag: Tag(1) })
        .chain((0..6).map(|_| Op::Recv { tag: Tag(2) }))
        .collect();
    let flood_back: Vec<Op> = (0..6)
        .map(|_| Op::Send { to: Rank(0), bytes: 30 * 1024, tag: Tag(2) })
        .chain((0..6).map(|_| Op::Recv { tag: Tag(1) }))
        .collect();
    let spec = JobSpec {
        name: "gridlock".into(),
        ship_bytes: 0,
        procs: vec![
            ProcSpec { program: flood, mem_bytes: 0 },
            ProcSpec { program: flood_back, mem_bytes: 0 },
        ],
    };
    let job = m.queue_job(spec, vec![0, 3], SimDuration::from_millis(2));
    let mut engine = Engine::new(QueueKind::BinaryHeap);
    engine.max_events = 1_000_000;
    engine.seed(SimTime::ZERO, Event::Admit { job });
    let outcome = engine.run(&mut m);
    // Either it deadlocks (drains with the job unfinished) — the expected
    // outcome for this configuration — or some schedule squeaks through.
    if outcome == RunOutcome::Drained && !m.all_jobs_done() {
        // Deadlocked: buffers held on both sides, queues non-empty.
        let queued: usize = (0..4).map(|n| m.node(n).mmu.queue_len()).sum();
        assert!(queued > 0, "a deadlock must leave MMU queues populated");
    }
    // The same scenario under the default escape flow control MUST finish.
    let mut cfg2 = MachineConfig::default();
    cfg2.switching = Switching::StoreAndForward;
    cfg2.mem_capacity = 80 * 1024;
    cfg2.os_overhead = 0;
    cfg2.transit_reserve = 0;
    let mut m2 = Machine::new(cfg2, SystemNet::single(&build::linear(4).unwrap()));
    let flood: Vec<Op> = (0..6)
        .map(|_| Op::Send { to: Rank(1), bytes: 30 * 1024, tag: Tag(1) })
        .chain((0..6).map(|_| Op::Recv { tag: Tag(2) }))
        .collect();
    let flood_back: Vec<Op> = (0..6)
        .map(|_| Op::Send { to: Rank(0), bytes: 30 * 1024, tag: Tag(2) })
        .chain((0..6).map(|_| Op::Recv { tag: Tag(1) }))
        .collect();
    let spec2 = JobSpec {
        name: "gridlock2".into(),
        ship_bytes: 0,
        procs: vec![
            ProcSpec { program: flood, mem_bytes: 0 },
            ProcSpec { program: flood_back, mem_bytes: 0 },
        ],
    };
    let job2 = m2.queue_job(spec2, vec![0, 3], SimDuration::from_millis(2));
    run(&mut m2, &[job2]);
    assert!(m2.all_jobs_done(), "escape pool must guarantee progress");
}

#[test]
fn recv_any_gathers_across_tags_counted_separately() {
    // RecvAny(count=2, tag=7) must consume exactly the two tag-7 messages
    // and leave the tag-8 one for the later Recv.
    let mut m = Machine::new(MachineConfig::default(), SystemNet::single(&build::star(4).unwrap()));
    let spec = JobSpec {
        name: "gather".into(),
        ship_bytes: 0,
        procs: vec![
            ProcSpec {
                program: vec![
                    Op::RecvAny { count: 2, tag: Tag(7) },
                    Op::Recv { tag: Tag(8) },
                ],
                mem_bytes: 0,
            },
            ProcSpec {
                program: vec![Op::Send { to: Rank(0), bytes: 10, tag: Tag(7) }],
                mem_bytes: 0,
            },
            ProcSpec {
                program: vec![Op::Send { to: Rank(0), bytes: 10, tag: Tag(8) }],
                mem_bytes: 0,
            },
            ProcSpec {
                program: vec![Op::Send { to: Rank(0), bytes: 10, tag: Tag(7) }],
                mem_bytes: 0,
            },
        ],
    };
    let job = m.queue_job(spec, vec![0, 1, 2, 3], SimDuration::from_millis(2));
    run(&mut m, &[job]);
    assert!(m.all_jobs_done());
    assert_eq!(m.counters.messages_consumed, 3);
}

#[test]
fn job_summary_accounts_load_cpu_and_response() {
    let cfg = MachineConfig::default();
    let mut m = Machine::new(cfg.clone(), SystemNet::single(&build::linear(2).unwrap()));
    let work = SimDuration::from_millis(30);
    let spec = JobSpec {
        name: "summarized".into(),
        ship_bytes: 0,
        procs: vec![
            ProcSpec {
                program: vec![
                    Op::Compute(work),
                    Op::Send { to: Rank(1), bytes: 4096, tag: Tag(1) },
                ],
                mem_bytes: 10_000,
            },
            ProcSpec {
                program: vec![Op::Recv { tag: Tag(1) }, Op::Compute(work)],
                mem_bytes: 10_000,
            },
        ],
    };
    let job = m.queue_job(spec, vec![0, 1], SimDuration::from_millis(2));
    run(&mut m, &[job]);
    let s = JobSummary::capture(&m, job);
    assert_eq!(s.width, 2);
    assert_eq!(s.demand, work * 2);
    // CPU time = compute + send cost + recv cost, exactly.
    let expected_cpu = work * 2 + cfg.send_cost(4096) + cfg.recv_cost(4096);
    assert_eq!(s.cpu_time, expected_cpu);
    assert!(s.response > s.load_time + work);
    assert!(s.cpu_share() > 0.0);
}

#[test]
fn machine_stats_csv_row_matches_header() {
    let mut m = Machine::new(MachineConfig::default(), SystemNet::single(&build::linear(2).unwrap()));
    let job = m.queue_job(compute_job("csv", 3, 0), vec![0], SimDuration::from_millis(2));
    run(&mut m, &[job]);
    let stats = MachineStats::capture(&m, SimTime(1_000_000));
    let header_cols = MachineStats::csv_header().split(',').count();
    let row_cols = stats.to_csv_row().split(',').count();
    assert_eq!(header_cols, row_cols);
    assert_eq!(header_cols, 27);
}

#[test]
fn empty_program_job_completes_instantly() {
    let mut m = Machine::new(MachineConfig::default(), SystemNet::single(&build::linear(1).unwrap()));
    let spec = JobSpec {
        name: "noop".into(),
        ship_bytes: 0,
        procs: vec![ProcSpec { program: vec![], mem_bytes: 512 }],
    };
    let job = m.queue_job(spec, vec![0], SimDuration::from_millis(2));
    run(&mut m, &[job]);
    assert_eq!(m.job(job).state, JobState::Done);
    assert_eq!(m.node(0).mmu.used(), 0, "job memory freed");
}

#[test]
fn recv_any_with_zero_count_is_a_noop() {
    let mut m = Machine::new(MachineConfig::default(), SystemNet::single(&build::linear(1).unwrap()));
    let spec = JobSpec {
        name: "zero-gather".into(),
        ship_bytes: 0,
        procs: vec![ProcSpec {
            program: vec![
                Op::RecvAny { count: 0, tag: Tag(1) },
                Op::Compute(SimDuration::from_millis(1)),
            ],
            mem_bytes: 0,
        }],
    };
    let job = m.queue_job(spec, vec![0], SimDuration::from_millis(2));
    run(&mut m, &[job]);
    assert!(m.all_jobs_done());
}

#[test]
fn zero_duration_compute_ops_are_skipped() {
    let mut m = Machine::new(MachineConfig::default(), SystemNet::single(&build::linear(1).unwrap()));
    let spec = JobSpec {
        name: "zeros".into(),
        ship_bytes: 0,
        procs: vec![ProcSpec {
            program: vec![
                Op::Compute(SimDuration::ZERO),
                Op::Compute(SimDuration::from_millis(2)),
                Op::Compute(SimDuration::ZERO),
            ],
            mem_bytes: 0,
        }],
    };
    let job = m.queue_job(spec, vec![0], SimDuration::from_millis(2));
    run(&mut m, &[job]);
    assert!(m.all_jobs_done());
    assert_eq!(m.processes()[0].cpu_time, SimDuration::from_millis(2));
}
