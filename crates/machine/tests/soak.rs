//! Soak test for message-slot reuse.
//!
//! The machine recycles message-table slots through a free list, so the
//! table ("arena") should plateau at the peak number of messages
//! simultaneously in flight — not grow with every send. This drives a
//! 16-node hypercube through a message-heavy batch and checks both the
//! bound and, against pinned pre-slab values, that recycling changed
//! nothing observable: notes, counters, and the finish time are exactly
//! what the grow-forever table produced.

use parsched_des::prelude::*;
use parsched_machine::prelude::*;
use parsched_topology::build;

/// An all-pairs exchange: every rank sends `rounds` tagged messages to
/// every other rank, with a little compute in between, then absorbs all
/// its receipts. Worst-case mailbox and transit pressure for the size.
fn exchange_job(name: &str, width: usize, rounds: u32) -> JobSpec {
    let procs = (0..width)
        .map(|r| {
            let mut program = Vec::new();
            for round in 0..rounds {
                for peer in 0..width {
                    if peer == r {
                        continue;
                    }
                    program.push(Op::Send {
                        to: Rank(peer as u32),
                        bytes: 4_000,
                        tag: Tag(round),
                    });
                }
                program.push(Op::Compute(SimDuration::from_micros(200)));
                program.push(Op::RecvAny {
                    count: (width - 1) as u32,
                    tag: Tag(round),
                });
            }
            ProcSpec {
                program,
                mem_bytes: 50_000,
            }
        })
        .collect();
    JobSpec {
        name: name.into(),
        ship_bytes: 0,
        procs,
    }
}

#[test]
fn message_slots_are_recycled_without_changing_behaviour() {
    let mut m = Machine::new(
        MachineConfig::default(),
        SystemNet::single(&build::hypercube(4).unwrap()),
    );
    let q = SimDuration::from_millis(2);
    let placement: Vec<u32> = (0..16).collect();
    let jobs: Vec<JobId> = (0..4)
        .map(|i| {
            m.queue_job(
                exchange_job(&format!("soak-{i}"), 16, 6),
                placement.clone(),
                q,
            )
        })
        .collect();

    let mut engine = Engine::new(QueueKind::default());
    engine.max_events = 50_000_000;
    for &j in &jobs {
        engine.seed(SimTime::ZERO, Event::Admit { job: j });
    }
    let outcome = engine.run(&mut m);
    assert_eq!(outcome, RunOutcome::Drained, "simulation did not drain");
    assert!(m.all_jobs_done(), "soak batch did not complete");
    let notes = m.drain_notes();

    // 4 jobs x 6 rounds x 16 ranks x 15 peers = 5760 messages...
    let expected_msgs = 4 * 6 * 16 * 15;
    assert_eq!(m.counters.messages_sent, expected_msgs);
    assert_eq!(m.counters.messages_consumed, expected_msgs);
    // ...but the arena plateaus at the in-flight peak: slots are reused.
    let arena = m.message_arena_len();
    assert!(
        arena < expected_msgs as usize / 4,
        "arena grew to {arena}; slots are not being recycled"
    );

    // Pinned from the pre-slab machine (grow-forever message table): slot
    // recycling must be invisible to everything the simulation observes.
    assert_eq!(engine.now(), SimTime(4_263_426_856));
    assert_eq!(m.counters.hop_transfers, 12_288);
    assert_eq!(m.counters.self_sends, 0);
    let completions: Vec<JobId> = notes
        .iter()
        .filter_map(|n| match n {
            Note::JobCompleted(j) => Some(*j),
            _ => None,
        })
        .collect();
    assert_eq!(completions, jobs, "completion order drifted");
}
