//! Machine-level statistics snapshots.
//!
//! The paper attributes the static-vs-time-sharing gap to concrete system
//! effects — link congestion, memory contention, context-switch overhead —
//! so the machine exposes them all: per-node CPU utilization and preemption
//! counts, per-channel utilization, MMU queueing delay, and message volume.

use crate::process::JobId;
use crate::system::{JobState, Machine};
use parsched_des::{SimDuration, SimTime};

/// Per-job accounting, aggregated over the job's processes.
#[derive(Debug, Clone)]
pub struct JobSummary {
    /// The job.
    pub id: JobId,
    /// Name from the spec.
    pub name: String,
    /// Response time (completion minus admission).
    pub response: SimDuration,
    /// Load time (processes runnable minus admission): host-link queueing
    /// plus shipping plus memory waits.
    pub load_time: SimDuration,
    /// CPU time accrued by the job's processes (compute + messaging
    /// software costs).
    pub cpu_time: SimDuration,
    /// Sequential compute demand from the spec.
    pub demand: SimDuration,
    /// Processes in the job.
    pub width: usize,
}

impl JobSummary {
    /// Aggregate a finished job (completed, or killed by a fault — a
    /// failed attempt still consumed CPU and link time worth accounting).
    ///
    /// # Panics
    /// Panics if the job is not in a terminal state.
    pub fn capture(machine: &Machine, id: JobId) -> JobSummary {
        let job = machine.job(id);
        assert!(
            matches!(job.state, JobState::Done | JobState::Failed),
            "job must be complete"
        );
        let cpu_time = job
            .proc_keys
            .iter()
            .map(|pk| machine.processes()[pk.idx()].cpu_time)
            .sum();
        JobSummary {
            id,
            name: job.name.clone(),
            response: job.response_time(),
            load_time: job.loaded_at.since(job.submitted_at),
            cpu_time,
            demand: job.total_compute,
            width: job.proc_keys.len(),
        }
    }

    /// Fraction of the response spent on the CPUs doing the job's own work
    /// (compute + its messaging costs), summed across processes — can
    /// exceed 1.0 when the job runs with real parallelism.
    pub fn cpu_share(&self) -> f64 {
        if self.response.is_zero() {
            0.0
        } else {
            self.cpu_time.as_secs_f64() / self.response.as_secs_f64()
        }
    }
}

/// A point-in-time summary of machine activity (typically taken at the end
/// of a run).
#[derive(Debug, Clone)]
pub struct MachineStats {
    /// When the snapshot was taken.
    pub at: SimTime,
    /// Mean CPU utilization across nodes (0..1).
    pub mean_cpu_utilization: f64,
    /// Per-node CPU utilization.
    pub cpu_utilization: Vec<f64>,
    /// Total low-priority dispatches.
    pub ctx_switches: u64,
    /// Total high-priority handler executions.
    pub handler_runs: u64,
    /// Total quantum expiries.
    pub quantum_expiries: u64,
    /// Total quantum-loss preemptions by high-priority work.
    pub preemptions: u64,
    /// Mean link utilization across channels (0..1; 0 if no channels).
    pub mean_link_utilization: f64,
    /// Highest single-channel utilization.
    pub max_link_utilization: f64,
    /// Total bytes carried over links.
    pub link_bytes: u64,
    /// Mean bytes-in-use across node memories.
    pub mean_mem_used: f64,
    /// Peak bytes allocated on any single node (including overdraft).
    pub peak_mem_used: u64,
    /// Allocation requests that had to queue.
    pub mmu_delayed_grants: u64,
    /// Total time allocation requests spent queued.
    pub mmu_total_wait: SimDuration,
    /// Messages injected / consumed / self-addressed.
    pub messages_sent: u64,
    /// Messages consumed by receivers.
    pub messages_consumed: u64,
    /// Same-node messages.
    pub self_sends: u64,
    /// Hop transfers completed.
    pub hop_transfers: u64,
    /// Senders that blocked for a buffer at least once.
    pub send_blocks: u64,
    /// Transit requests satisfied from the emergency pool after starving.
    pub transit_escapes: u64,
    /// Jobs completed.
    pub jobs_completed: u64,
    /// Messages terminally dropped by declared faults (0 on clean runs).
    pub messages_dropped: u64,
    /// Retransmissions performed by the timeout-retry protocol.
    pub retries: u64,
    /// Delivery timeouts fired.
    pub timeouts: u64,
    /// Fail-stop node crashes executed.
    pub node_crashes: u64,
    /// Link-outage windows opened.
    pub link_downs: u64,
    /// Job incarnations killed by faults.
    pub jobs_failed: u64,
    /// Jobs re-admitted after a fault killed an earlier incarnation.
    pub jobs_requeued: u64,
}

impl MachineStats {
    /// CSV header matching [`MachineStats::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "at_ns,mean_cpu,ctx_switches,handler_runs,quantum_expiries,preemptions,\
         mean_link,max_link,link_bytes,mean_mem,peak_mem,mmu_delayed,\
         mmu_wait_ns,msgs_sent,msgs_consumed,self_sends,hops,send_blocks,\
         transit_escapes,jobs_done,msgs_dropped,retries,timeouts,\
         node_crashes,link_downs,jobs_failed,jobs_requeued"
    }

    /// One CSV row of the snapshot's scalars.
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{:.6},{},{},{},{},{:.6},{:.6},{},{:.0},{},{},{},{},{},{},{},{},{},{},\
             {},{},{},{},{},{},{}",
            self.at.nanos(),
            self.mean_cpu_utilization,
            self.ctx_switches,
            self.handler_runs,
            self.quantum_expiries,
            self.preemptions,
            self.mean_link_utilization,
            self.max_link_utilization,
            self.link_bytes,
            self.mean_mem_used,
            self.peak_mem_used,
            self.mmu_delayed_grants,
            self.mmu_total_wait.nanos(),
            self.messages_sent,
            self.messages_consumed,
            self.self_sends,
            self.hop_transfers,
            self.send_blocks,
            self.transit_escapes,
            self.jobs_completed,
            self.messages_dropped,
            self.retries,
            self.timeouts,
            self.node_crashes,
            self.link_downs,
            self.jobs_failed,
            self.jobs_requeued,
        )
    }

    /// Snapshot `machine` at time `at`.
    pub fn capture(machine: &Machine, at: SimTime) -> MachineStats {
        let n = machine.node_count();
        let mut cpu_utilization = Vec::with_capacity(n);
        let mut ctx_switches = 0;
        let mut handler_runs = 0;
        let mut quantum_expiries = 0;
        let mut preemptions = 0;
        let mut mem_mean_sum = 0.0;
        let mut peak_mem = 0;
        let mut delayed = 0;
        let mut wait = SimDuration::ZERO;
        for i in 0..n {
            let node = machine.node(u32::try_from(i).expect("node index exceeds u32"));
            cpu_utilization.push(node.cpu.busy.mean(at));
            ctx_switches += node.cpu.ctx_switches;
            handler_runs += node.cpu.handler_runs;
            quantum_expiries += node.cpu.quantum_expiries;
            preemptions += node.cpu.preemptions;
            mem_mean_sum += node.mmu.usage.mean(at);
            peak_mem = peak_mem.max(node.mmu.peak_used);
            delayed += node.mmu.delayed_grants;
            wait += node.mmu.total_wait;
        }
        let mut link_sum = 0.0;
        let mut link_max: f64 = 0.0;
        let mut link_bytes = 0;
        for ch in machine.channel_states() {
            let u = ch.busy.mean(at);
            link_sum += u;
            link_max = link_max.max(u);
            link_bytes += ch.bytes_carried;
        }
        let chans = machine.channel_states().len();
        MachineStats {
            at,
            mean_cpu_utilization: if n == 0 {
                0.0
            } else {
                cpu_utilization.iter().sum::<f64>() / n as f64
            },
            cpu_utilization,
            ctx_switches,
            handler_runs,
            quantum_expiries,
            preemptions,
            mean_link_utilization: if chans == 0 { 0.0 } else { link_sum / chans as f64 },
            max_link_utilization: link_max,
            link_bytes,
            mean_mem_used: if n == 0 { 0.0 } else { mem_mean_sum / n as f64 },
            peak_mem_used: peak_mem,
            mmu_delayed_grants: delayed,
            mmu_total_wait: wait,
            messages_sent: machine.counters.messages_sent,
            messages_consumed: machine.counters.messages_consumed,
            self_sends: machine.counters.self_sends,
            hop_transfers: machine.counters.hop_transfers,
            send_blocks: machine.counters.send_blocks,
            transit_escapes: machine.counters.transit_escapes,
            jobs_completed: machine.counters.jobs_completed,
            messages_dropped: machine.counters.messages_dropped,
            retries: machine.counters.retries,
            timeouts: machine.counters.timeouts,
            node_crashes: machine.counters.node_crashes,
            link_downs: machine.counters.link_downs,
            jobs_failed: machine.counters.jobs_failed,
            jobs_requeued: machine.counters.jobs_requeued,
        }
    }
}
