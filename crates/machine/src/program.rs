//! The program model.
//!
//! An application process is a straight-line list of [`Op`]s — compute
//! bursts, asynchronous mailbox sends, and blocking receives. The fork-join
//! and divide-and-conquer applications of the paper compile naturally to
//! this form because their communication structure is static. The workload
//! crate generates programs; the machine executes them.

use parsched_des::SimDuration;

/// Message tag for mailbox matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub u32);

/// Rank of a process within its job (0 = the coordinator by convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rank(pub u32);

impl Rank {
    /// The rank as a `usize` for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// One step of a process program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Burn CPU for the given (cost-model-derived) duration.
    Compute(SimDuration),
    /// Asynchronously send `bytes` to the job-local process `to`. The sender
    /// pays the send software overhead on the CPU, waits (if necessary) for
    /// an outgoing buffer, and then continues; delivery is the network's
    /// problem.
    Send {
        /// Destination rank within the same job.
        to: Rank,
        /// Payload size.
        bytes: u64,
        /// Mailbox tag the receiver matches on.
        tag: Tag,
    },
    /// Block until one message with `tag` is in this process's mailbox,
    /// then consume it (paying the receive overhead on the CPU).
    Recv {
        /// Tag to match.
        tag: Tag,
    },
    /// Block until `count` messages with `tag` have been consumed
    /// (a gather; equivalent to `count` consecutive `Recv`s).
    RecvAny {
        /// How many messages to consume.
        count: u32,
        /// Tag to match.
        tag: Tag,
    },
}

impl Op {
    /// True for operations that can block the process.
    pub fn can_block(&self) -> bool {
        !matches!(self, Op::Compute(_))
    }
}

/// A process blueprint: its program plus its resident memory footprint.
#[derive(Debug, Clone)]
pub struct ProcSpec {
    /// The straight-line program.
    pub program: Vec<Op>,
    /// Resident data + code footprint charged against the node the process
    /// is placed on, for the job's whole lifetime.
    pub mem_bytes: u64,
}

impl ProcSpec {
    /// Total CPU demand of this program: compute bursts only (messaging
    /// overheads are machine parameters, not program content).
    pub fn compute_demand(&self) -> SimDuration {
        self.program
            .iter()
            .map(|op| match op {
                Op::Compute(d) => *d,
                _ => SimDuration::ZERO,
            })
            .sum()
    }

    /// Total bytes this program sends.
    pub fn bytes_sent(&self) -> u64 {
        self.program
            .iter()
            .map(|op| match op {
                Op::Send { bytes, .. } => *bytes,
                _ => 0,
            })
            .sum()
    }

    /// Number of messages this program consumes.
    pub fn recv_count(&self) -> u64 {
        self.program
            .iter()
            .map(|op| match op {
                Op::Recv { .. } => 1,
                Op::RecvAny { count, .. } => *count as u64,
                _ => 0,
            })
            .sum()
    }

    /// Number of messages this program sends.
    pub fn send_count(&self) -> u64 {
        self.program
            .iter()
            .filter(|op| matches!(op, Op::Send { .. }))
            .count() as u64
    }
}

/// A complete job blueprint: one [`ProcSpec`] per rank.
#[derive(Debug, Clone, Default)]
pub struct JobSpec {
    /// Human-readable name (for traces and reports).
    pub name: String,
    /// Per-rank blueprints; `procs[0]` is the coordinator.
    pub procs: Vec<ProcSpec>,
    /// Bytes shipped through the host link when the job loads (code image
    /// plus initial data). `0` means "ship the whole resident footprint"
    /// ([`JobSpec::total_mem`]); workload generators set this to one code
    /// copy plus the data, since process workspaces need not be shipped.
    pub ship_bytes: u64,
}

impl JobSpec {
    /// Number of processes.
    pub fn width(&self) -> usize {
        self.procs.len()
    }

    /// Total CPU demand summed over all processes — the job's sequential
    /// service demand, used by the static policy's best/worst orderings.
    pub fn total_compute(&self) -> SimDuration {
        self.procs.iter().map(|p| p.compute_demand()).sum()
    }

    /// Total message payload bytes the job moves.
    pub fn total_bytes(&self) -> u64 {
        self.procs.iter().map(|p| p.bytes_sent()).sum()
    }

    /// Total resident memory of the whole job.
    pub fn total_mem(&self) -> u64 {
        self.procs.iter().map(|p| p.mem_bytes).sum()
    }

    /// Bytes shipped through the host link at load time.
    pub fn effective_ship_bytes(&self) -> u64 {
        if self.ship_bytes == 0 {
            self.total_mem()
        } else {
            self.ship_bytes
        }
    }

    /// Sanity-check the message pattern: every receive must have a matching
    /// send (same tag, counted job-wide). Returns `Err` with a description
    /// of the imbalance. This catches workload-generator bugs before they
    /// become simulation deadlocks.
    pub fn check_balanced(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let mut balance: HashMap<(Rank, u32), i64> = HashMap::new();
        for (rank, proc_) in self.procs.iter().enumerate() {
            for op in &proc_.program {
                match op {
                    Op::Send { to, tag, .. } => {
                        if to.idx() >= self.procs.len() {
                            return Err(format!(
                                "rank {rank} sends to nonexistent rank {to:?}"
                            ));
                        }
                        *balance.entry((*to, tag.0)).or_insert(0) += 1;
                    }
                    Op::Recv { tag } => {
                        *balance.entry((Rank(rank as u32), tag.0)).or_insert(0) -= 1;
                    }
                    Op::RecvAny { count, tag } => {
                        *balance.entry((Rank(rank as u32), tag.0)).or_insert(0) -=
                            *count as i64;
                    }
                    Op::Compute(_) => {}
                }
            }
        }
        for ((rank, tag), v) in balance {
            if v != 0 {
                return Err(format!(
                    "job '{}': rank {rank:?} tag {tag}: {} {}",
                    self.name,
                    v.abs(),
                    if v > 0 { "sends unconsumed" } else { "receives unmatched" },
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ping_pong() -> JobSpec {
        JobSpec {
            name: "pingpong".into(),
            ship_bytes: 0,
            procs: vec![
                ProcSpec {
                    program: vec![
                        Op::Compute(SimDuration::from_millis(1)),
                        Op::Send { to: Rank(1), bytes: 100, tag: Tag(7) },
                        Op::Recv { tag: Tag(8) },
                    ],
                    mem_bytes: 1000,
                },
                ProcSpec {
                    program: vec![
                        Op::Recv { tag: Tag(7) },
                        Op::Compute(SimDuration::from_millis(2)),
                        Op::Send { to: Rank(0), bytes: 50, tag: Tag(8) },
                    ],
                    mem_bytes: 2000,
                },
            ],
        }
    }

    #[test]
    fn aggregate_accessors() {
        let j = ping_pong();
        assert_eq!(j.width(), 2);
        assert_eq!(j.total_compute(), SimDuration::from_millis(3));
        assert_eq!(j.total_bytes(), 150);
        assert_eq!(j.total_mem(), 3000);
        assert_eq!(j.procs[0].send_count(), 1);
        assert_eq!(j.procs[0].recv_count(), 1);
    }

    #[test]
    fn balanced_job_passes_check() {
        assert!(ping_pong().check_balanced().is_ok());
    }

    #[test]
    fn unbalanced_job_detected() {
        let mut j = ping_pong();
        j.procs[1].program.push(Op::Recv { tag: Tag(9) });
        let err = j.check_balanced().unwrap_err();
        assert!(err.contains("tag 9"), "got: {err}");
    }

    #[test]
    fn out_of_range_destination_detected() {
        let mut j = ping_pong();
        j.procs[0].program.push(Op::Send { to: Rank(5), bytes: 1, tag: Tag(0) });
        let err = j.check_balanced().unwrap_err();
        assert!(err.contains("nonexistent"), "got: {err}");
    }

    #[test]
    fn recv_any_counts_as_many_recvs() {
        let j = JobSpec {
            name: "gather".into(),
            ship_bytes: 0,
            procs: vec![
                ProcSpec {
                    program: vec![Op::RecvAny { count: 2, tag: Tag(1) }],
                    mem_bytes: 0,
                },
                ProcSpec {
                    program: vec![Op::Send { to: Rank(0), bytes: 1, tag: Tag(1) }],
                    mem_bytes: 0,
                },
                ProcSpec {
                    program: vec![Op::Send { to: Rank(0), bytes: 1, tag: Tag(1) }],
                    mem_bytes: 0,
                },
            ],
        };
        assert!(j.check_balanced().is_ok());
        assert_eq!(j.procs[0].recv_count(), 2);
    }
}
