//! # parsched-machine
//!
//! A deterministic discrete-event model of the paper's hardware: a 16-node
//! INMOS T805 Transputer multicomputer with 4 MB per node, four 20 Mbit/s
//! links per node, two-priority hardware scheduling (high priority runs to
//! completion; low priority round-robins with a quantum and *loses* the
//! unfinished quantum when preempted), store-and-forward software routing
//! with per-hop buffer reservation through a FIFO MMU, and mailbox-based
//! asynchronous messaging (§3 of Chan, Dandamudi & Majumdar, IPPS 1997).
//!
//! The machine executes [`JobSpec`]s — straight-line programs of compute
//! bursts, asynchronous sends and blocking receives — placed on global
//! processors by a scheduling policy (see `parsched-core`). It implements
//! [`parsched_des::Model`], so driving it is three lines:
//!
//! ```
//! use parsched_des::prelude::*;
//! use parsched_machine::prelude::*;
//! use parsched_topology::build;
//!
//! let mut machine = Machine::new(
//!     MachineConfig::default(),
//!     SystemNet::single(&build::ring(4).unwrap()),
//! );
//! let job = machine.queue_job(
//!     JobSpec {
//!         name: "hello".into(),
//!         ship_bytes: 0, // ship the whole footprint at load time
//!         procs: vec![ProcSpec {
//!             program: vec![Op::Compute(SimDuration::from_millis(5))],
//!             mem_bytes: 1024,
//!         }],
//!     },
//!     vec![0],                       // rank 0 on processor 0
//!     SimDuration::from_millis(2),   // quantum
//! );
//! let mut engine = Engine::new(QueueKind::BinaryHeap);
//! engine.seed(SimTime::ZERO, Event::Admit { job });
//! assert_eq!(engine.run(&mut machine), RunOutcome::Drained);
//! assert!(machine.all_jobs_done());
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod cpu;
pub mod fault;
pub mod instrument;
pub mod memory;
pub mod net;
pub mod process;
pub mod program;
pub mod stats;
pub mod system;
pub mod timeline;
pub mod wiring;
pub mod wormhole;

/// The machine's commonly used names in one import.
pub mod prelude {
    pub use crate::config::{FlowControl, MachineConfig, SendMode, Switching};
    pub use crate::fault::{FaultPlan, LinkWindow, NodeCrash, RetryPolicy};
    pub use crate::instrument::MachineMetrics;
    pub use crate::memory::AllocPolicy;
    pub use crate::process::{JobId, PState, ProcKey};
    pub use crate::program::{JobSpec, Op, ProcSpec, Rank, Tag};
    pub use crate::stats::{JobSummary, MachineStats};
    pub use crate::system::{Counters, Event, JobState, Machine, Note};
    pub use crate::timeline::{Span, SpanKind, Timeline};
    pub use crate::wiring::SystemNet;
}

pub use prelude::*;
