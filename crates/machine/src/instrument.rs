//! Machine-level metrics wiring.
//!
//! [`MachineMetrics`] lays a [`MetricsRegistry`] over one machine: a
//! busy/idle gauge pair and a ready-queue depth gauge per node, an
//! occupancy gauge per directed link, and an MPL (jobs executing) gauge per
//! partition. The machine's hook sites call the setters; because busy and
//! idle are always set as exact complements of a 0/1 signal, each node's
//! `busy + idle` integral telescopes to the run span *exactly* (integer
//! nanosecond arithmetic below 2^53 — see `parsched_obs::metrics`).
//!
//! Like every observability component, this struct only listens: updating a
//! gauge never schedules events or perturbs the simulation.

use crate::wiring::SystemNet;
use parsched_des::SimTime;
use parsched_obs::{GaugeId, MetricsRegistry};

/// Change points kept per gauge for exporters (Chrome-trace counter
/// tracks); at one update per simulated event this covers any paper-scale
/// run, and the registry counts drops beyond it.
const SERIES_CAP: usize = 250_000;

/// Per-machine gauge handles plus the backing registry.
#[derive(Debug)]
pub struct MachineMetrics {
    /// The backing registry (public for reporting/export).
    pub registry: MetricsRegistry,
    cpu_busy: Vec<GaugeId>,
    cpu_idle: Vec<GaugeId>,
    ready_depth: Vec<GaugeId>,
    link_busy: Vec<GaugeId>,
    partition_mpl: Vec<GaugeId>,
    wheel_depth: GaugeId,
    alive_capacity: GaugeId,
    in_system: GaugeId,
    vc_occupancy: GaugeId,
    credit_stalls: GaugeId,
}

impl MachineMetrics {
    /// Register one gauge set for every node, link and partition of `net`.
    pub fn new(net: &SystemNet, t0: SimTime) -> MachineMetrics {
        let mut registry = MetricsRegistry::new(t0).with_series(SERIES_CAP);
        let nodes = net.nodes();
        let cpu_busy = (0..nodes)
            .map(|n| registry.gauge(format!("node{n}.cpu_busy"), 0.0))
            .collect();
        let cpu_idle = (0..nodes)
            .map(|n| registry.gauge(format!("node{n}.cpu_idle"), 1.0))
            .collect();
        let ready_depth = (0..nodes)
            .map(|n| registry.gauge(format!("node{n}.ready_depth"), 0.0))
            .collect();
        let link_busy = net
            .channels()
            .iter()
            .map(|c| registry.gauge(format!("link{}.busy", c.label()), 0.0))
            .collect();
        let partition_mpl = (0..net.partitions())
            .map(|p| registry.gauge(format!("P{p}.mpl"), 0.0))
            .collect();
        let wheel_depth = registry.gauge("engine.wheel_depth".to_string(), 0.0);
        let alive_capacity = registry.gauge("machine.alive_capacity".to_string(), 1.0);
        let in_system = registry.gauge("machine.in_system".to_string(), 0.0);
        let vc_occupancy = registry.gauge("machine.vc_occupancy".to_string(), 0.0);
        let credit_stalls = registry.gauge("machine.credit_stalls".to_string(), 0.0);
        MachineMetrics {
            registry,
            cpu_busy,
            cpu_idle,
            ready_depth,
            link_busy,
            partition_mpl,
            wheel_depth,
            alive_capacity,
            in_system,
            vc_occupancy,
            credit_stalls,
        }
    }

    /// Record a node's CPU busy signal (0.0 or 1.0); idle is kept as the
    /// exact complement.
    #[inline]
    pub fn set_cpu_busy(&mut self, node: u32, now: SimTime, busy: f64) {
        self.registry.set(self.cpu_busy[node as usize], now, busy);
        self.registry.set(self.cpu_idle[node as usize], now, 1.0 - busy);
    }

    /// Record a node's low-priority ready-queue depth.
    #[inline]
    pub fn set_ready_depth(&mut self, node: u32, now: SimTime, depth: usize) {
        self.registry
            .set(self.ready_depth[node as usize], now, depth as f64);
    }

    /// Record a link's occupancy signal (0.0 or 1.0).
    #[inline]
    pub fn set_link_busy(&mut self, chan: u32, now: SimTime, busy: f64) {
        self.registry.set(self.link_busy[chan as usize], now, busy);
    }

    /// Record the engine timing wheel's occupancy (pending cancellable
    /// timers), sampled at dispatch points.
    #[inline]
    pub fn set_wheel_depth(&mut self, now: SimTime, depth: usize) {
        self.registry.set(self.wheel_depth, now, depth as f64);
    }

    /// Record a partition's multiprogramming level (jobs executing).
    #[inline]
    pub fn set_partition_mpl(&mut self, part: usize, now: SimTime, mpl: f64) {
        self.registry.set(self.partition_mpl[part], now, mpl);
    }

    /// Record the fraction of nodes whose CPUs are still alive (1.0 on a
    /// fault-free run; steps down at each declared crash). The
    /// time-weighted mean of this gauge is the run's degraded-capacity
    /// share.
    #[inline]
    pub fn set_alive_capacity(&mut self, now: SimTime, frac: f64) {
        self.registry.set(self.alive_capacity, now, frac);
    }

    /// Record the open-system population (jobs arrived but not yet
    /// departed). Stays 0 on closed-batch runs, where everything is in the
    /// system from t = 0; the time-weighted mean of this gauge on an open
    /// run is Little's-law `N`.
    #[inline]
    pub fn set_in_system(&mut self, now: SimTime, jobs: u32) {
        self.registry.set(self.in_system, now, jobs as f64);
    }

    /// Record the machine-wide count of held virtual channels (wormhole
    /// switching only; stays 0 otherwise). The time-weighted mean is the
    /// run's average VC occupancy.
    #[inline]
    pub fn set_vc_occupancy(&mut self, now: SimTime, held: usize) {
        self.registry.set(self.vc_occupancy, now, held as f64);
    }

    /// Record the cumulative credit-stall count (worms parked purely on an
    /// exhausted credit window; wormhole switching only). Monotone
    /// step-counter series, not a 0/1 signal.
    #[inline]
    pub fn set_credit_stalls(&mut self, now: SimTime, stalls: u64) {
        self.registry.set(self.credit_stalls, now, stalls as f64);
    }

    /// Gauge handle for the VC-occupancy signal.
    pub fn vc_occupancy_id(&self) -> GaugeId {
        self.vc_occupancy
    }

    /// Gauge handle for the credit-stall counter.
    pub fn credit_stalls_id(&self) -> GaugeId {
        self.credit_stalls
    }

    /// Gauge handle for the open-system population.
    pub fn in_system_id(&self) -> GaugeId {
        self.in_system
    }

    /// Gauge handle for a node's busy signal.
    pub fn cpu_busy_id(&self, node: u32) -> GaugeId {
        self.cpu_busy[node as usize]
    }

    /// Gauge handle for a node's idle signal.
    pub fn cpu_idle_id(&self, node: u32) -> GaugeId {
        self.cpu_idle[node as usize]
    }

    /// Gauge handle for a node's ready-queue depth.
    pub fn ready_depth_id(&self, node: u32) -> GaugeId {
        self.ready_depth[node as usize]
    }

    /// Gauge handle for a link's occupancy.
    pub fn link_busy_id(&self, chan: u32) -> GaugeId {
        self.link_busy[chan as usize]
    }

    /// Gauge handle for a partition's MPL.
    pub fn partition_mpl_id(&self, part: usize) -> GaugeId {
        self.partition_mpl[part]
    }

    /// Number of partition MPL gauges.
    pub fn partition_count(&self) -> usize {
        self.partition_mpl.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_topology::build;

    #[test]
    fn registers_gauges_for_every_resource() {
        let net = SystemNet::single(&build::ring(4).unwrap());
        let m = MachineMetrics::new(&net, SimTime::ZERO);
        let names: Vec<&str> = m.registry.gauges().map(|(n, _)| n).collect();
        assert!(names.contains(&"node0.cpu_busy"));
        assert!(names.contains(&"node3.cpu_idle"));
        assert!(names.contains(&"node2.ready_depth"));
        assert!(names.contains(&"link0->1.busy"));
        assert!(names.contains(&"P0.mpl"));
        assert!(names.contains(&"engine.wheel_depth"));
        assert!(names.contains(&"machine.alive_capacity"));
        assert!(names.contains(&"machine.in_system"));
        assert!(names.contains(&"machine.vc_occupancy"));
        assert!(names.contains(&"machine.credit_stalls"));
        assert_eq!(names.len(), 4 * 3 + 8 + 1 + 5);
    }

    #[test]
    fn busy_idle_complement_is_exact() {
        let net = SystemNet::single(&build::linear(1).unwrap());
        let mut m = MachineMetrics::new(&net, SimTime::ZERO);
        m.set_cpu_busy(0, SimTime(7), 1.0);
        m.set_cpu_busy(0, SimTime(19), 0.0);
        m.set_cpu_busy(0, SimTime(20), 1.0);
        m.registry.finish(SimTime(100));
        let busy = m.registry.integral_ns(m.cpu_busy_id(0));
        let idle = m.registry.integral_ns(m.cpu_idle_id(0));
        assert_eq!(busy + idle, 100.0);
        assert_eq!(busy, 12.0 + 80.0);
    }
}
