//! Execution timelines.
//!
//! When enabled ([`crate::config::MachineConfig::record_timeline`]), the
//! machine records every process CPU span, every high-priority handler
//! span, and every message lifetime. The result is the Gantt-style record
//! an implementation study instruments its hardware for: it shows *where*
//! response time went (compute, handler theft, network, queueing), and
//! exports as CSV for plotting.

use crate::process::{JobId, ProcKey};
use crate::program::Rank;
use parsched_des::{SimDuration, SimTime};
use std::fmt::Write as _;

/// What a span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A low-priority process executing on its node's CPU.
    Compute,
    /// A high-priority handler (message relay/delivery) on a node's CPU.
    Handler,
    /// A message's life from injection to consumption.
    Message,
}

impl SpanKind {
    fn label(self) -> &'static str {
        match self {
            SpanKind::Compute => "compute",
            SpanKind::Handler => "handler",
            SpanKind::Message => "message",
        }
    }
}

/// One recorded interval.
#[derive(Debug, Clone)]
pub struct Span {
    /// Span class.
    pub kind: SpanKind,
    /// Node the span executed on (for messages: the destination).
    pub node: u32,
    /// Owning job, when known.
    pub job: Option<JobId>,
    /// Owning process, when known.
    pub proc_: Option<ProcKey>,
    /// Rank within the job, when known.
    pub rank: Option<Rank>,
    /// Start instant.
    pub start: SimTime,
    /// End instant.
    pub end: SimTime,
}

impl Span {
    /// The span's length.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// A bounded span recorder (disabled by default: zero overhead beyond one
/// branch per hook).
#[derive(Debug, Default)]
pub struct Timeline {
    enabled: bool,
    spans: Vec<Span>,
    /// Cap to keep memory bounded on huge runs (0 = unlimited).
    cap: usize,
    dropped: u64,
}

impl Timeline {
    /// A disabled timeline (records nothing).
    pub fn disabled() -> Timeline {
        Timeline::default()
    }

    /// An enabled timeline holding at most `cap` spans (0 = unlimited).
    pub fn enabled(cap: usize) -> Timeline {
        Timeline {
            enabled: true,
            spans: Vec::new(),
            cap,
            dropped: 0,
        }
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a span (no-op when disabled; counts drops beyond the cap).
    pub fn record(&mut self, span: Span) {
        if !self.enabled {
            return;
        }
        if self.cap > 0 && self.spans.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.spans.push(span);
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans dropped to honour the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total recorded time per span kind.
    pub fn total(&self, kind: SpanKind) -> SimDuration {
        self.spans
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.duration())
            .sum()
    }

    /// Spans attributed to one job.
    pub fn for_job(&self, job: JobId) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.job == Some(job))
    }

    /// Render as CSV: `kind,node,job,rank,start_ns,end_ns,duration_ns`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,node,job,rank,start_ns,end_ns,duration_ns\n");
        for s in &self.spans {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{}",
                s.kind.label(),
                s.node,
                s.job.map(|j| j.0.to_string()).unwrap_or_default(),
                s.rank.map(|r| r.0.to_string()).unwrap_or_default(),
                s.start.nanos(),
                s.end.nanos(),
                s.duration().nanos(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: SpanKind, start: u64, end: u64) -> Span {
        Span {
            kind,
            node: 3,
            job: Some(JobId(1)),
            proc_: Some(ProcKey(9)),
            rank: Some(Rank(2)),
            start: SimTime(start),
            end: SimTime(end),
        }
    }

    #[test]
    fn disabled_timeline_records_nothing() {
        let mut t = Timeline::disabled();
        t.record(span(SpanKind::Compute, 0, 10));
        assert!(t.spans().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn totals_by_kind() {
        let mut t = Timeline::enabled(0);
        t.record(span(SpanKind::Compute, 0, 10));
        t.record(span(SpanKind::Compute, 10, 25));
        t.record(span(SpanKind::Handler, 5, 9));
        assert_eq!(t.total(SpanKind::Compute), SimDuration::from_nanos(25));
        assert_eq!(t.total(SpanKind::Handler), SimDuration::from_nanos(4));
        assert_eq!(t.total(SpanKind::Message), SimDuration::ZERO);
    }

    #[test]
    fn cap_drops_and_counts() {
        let mut t = Timeline::enabled(2);
        for i in 0..5 {
            t.record(span(SpanKind::Message, i, i + 1));
        }
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn csv_shape() {
        let mut t = Timeline::enabled(0);
        t.record(span(SpanKind::Compute, 100, 250));
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "kind,node,job,rank,start_ns,end_ns,duration_ns");
        assert_eq!(lines[1], "compute,3,1,2,100,250,150");
    }

    #[test]
    fn job_filter() {
        let mut t = Timeline::enabled(0);
        t.record(span(SpanKind::Compute, 0, 1));
        let mut other = span(SpanKind::Compute, 1, 2);
        other.job = Some(JobId(7));
        t.record(other);
        assert_eq!(t.for_job(JobId(1)).count(), 1);
        assert_eq!(t.for_job(JobId(7)).count(), 1);
        assert_eq!(t.for_job(JobId(3)).count(), 0);
    }
}
