//! Machine timing/geometry configuration.
//!
//! Defaults are calibrated to the paper's hardware — a 16-node INMOS T805
//! system at 25 MHz with 4 MB per node and 20 Mbit/s links — using published
//! Transputer figures for raw link bandwidth and context-switch cost, and
//! software-stack costs (mailbox send/receive, store-and-forward hop
//! handling) in the range reported for Transputer router layers of the era.
//! Absolute values matter less than their ratios; every experiment in
//! `EXPERIMENTS.md` states which knobs it sweeps.

use crate::memory::AllocPolicy;
use parsched_des::SimDuration;

/// How messages move through the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Switching {
    /// Store-and-forward at *packet* granularity, the way real Transputer
    /// software routers worked: the message is cut into `packet_bytes`
    /// packets that pipeline through the route (hop `h+1` starts one packet
    /// time after hop `h`), so multi-hop latency is `transfer + hops x
    /// packet_time` instead of `hops x transfer`. Every intermediate node
    /// still pays the full per-byte handler CPU cost (each byte crosses its
    /// memory), and the destination holds the message buffer until the
    /// receiver consumes it. The default.
    PacketizedSaf,
    /// Whole-message store-and-forward: each hop fully buffers the message
    /// at the receiving node (buffer allocated from node memory) before
    /// forwarding, and pays a software router-handler cost on that node's
    /// CPU. Ablation: the most literal reading of §3.2.
    StoreAndForward,
    /// Virtual cut-through as a *latency* approximation: hops pipeline (a
    /// hop starts a header latency after the previous one), intermediate
    /// nodes buffer nothing and spend no CPU; only the destination pays a
    /// handler cost. Unlike [`Switching::Wormhole`] it models no link
    /// arbitration — channels are never held, worms never block each other,
    /// and contention is invisible. Use `Wormhole` when the §5.2 question
    /// (does a modern interconnect erase topology sensitivity?) is the
    /// point of the experiment; keep `CutThrough` for cheap ablations.
    CutThrough,
    /// Flit-level wormhole routing, the interconnect the paper conjectures
    /// about in §5.2, modelled for real: messages move as a train of
    /// `flit_bytes` flits behind a header that allocates one virtual
    /// channel per link as it advances; flits pipeline behind it under
    /// credit-based flow control (`vc_credits` flit buffers per VC), and a
    /// blocked header stalls the whole worm *in place*, holding its VCs —
    /// link contention, VC occupancy and credit stalls are all simulated.
    /// Dateline/phase escape classes from `parsched_topology::flow` keep
    /// the channel-dependency graph acyclic (deadlock-free by
    /// construction; tested). Intermediate nodes buffer nothing and spend
    /// no CPU — router logic is hardware, not software — so only the
    /// destination pays a handler cost, like `CutThrough`.
    Wormhole,
}

/// How store-and-forward transit buffers interact with node memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowControl {
    /// Transit-buffer allocations may overdraw node memory (modelling
    /// pre-reserved system buffer pools); only *injection* (the sending
    /// process) and job loading block on memory. Store-and-forward progress
    /// can then never deadlock, while memory pressure still throttles
    /// senders.
    InjectionLimited,
    /// Transit hops queue on the destination node's MMU like any other
    /// request (§3.2) — under pressure links sit idle waiting for buffer
    /// space, the paper's memory-contention effect. To stay deadlock-free
    /// (bidirectional traffic on a chain can otherwise cycle), a transit
    /// request that has waited `transit_escape_after` is force-granted from
    /// an emergency system pool (overdraft). The default.
    Reserved,
    /// Like [`FlowControl::Reserved`] but with no escape: faithful
    /// buffer-reservation store-and-forward, which *can* deadlock exactly
    /// as the real scheme could; the simulation then ends with blocked jobs
    /// and the harness reports it rather than hanging.
    ReservedStrict,
}

/// How a process's `Send` interacts with source-buffer allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendMode {
    /// The paper's mailbox semantics: the send is asynchronous — the
    /// process pays the send CPU cost and *continues*; if no buffer is
    /// available the message waits in the source MMU's queue (the data
    /// stays in the process's resident arrays meanwhile). No back-pressure
    /// on the application.
    Async,
    /// The sender blocks until its outgoing buffer is granted (end-to-end
    /// flow control; ablation).
    Blocking,
}

/// All tunable machine parameters.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Memory per node in bytes (T805 boards in the paper: 4 MB).
    pub mem_capacity: u64,
    /// Message switching scheme.
    pub switching: Switching,
    /// Transit-buffer flow control (store-and-forward only).
    pub flow: FlowControl,
    /// Grant discipline of each node's MMU queue.
    pub alloc_policy: AllocPolicy,
    /// Send-side flow control.
    pub send_mode: SendMode,
    /// Bytes per node withheld from non-transit allocations so forwarding
    /// always has headroom (a pre-reserved system buffer pool).
    pub transit_reserve: u64,
    /// Under [`FlowControl::Reserved`], how long a transit buffer request
    /// may starve before the emergency pool satisfies it.
    pub transit_escape_after: SimDuration,
    /// Bytes per node consumed by the kernel, mailbox system and router
    /// code; unavailable to jobs and buffers. The paper's 4 MB nodes ran
    /// the whole software stack out of that memory, which is why the
    /// matrix sizes were memory-constrained (§5.2 footnote).
    pub os_overhead: u64,
    /// Default low-priority process quantum (T805 hardware: 2 ms; policies
    /// override per process with the RR-job rule).
    pub default_quantum: SimDuration,
    /// Overhead charged when the CPU switches to a low-priority process
    /// (hardware switch plus the paper's software preemption control).
    pub ctx_switch_low: SimDuration,
    /// Overhead charged when a high-priority handler starts (the T805
    /// hardware switch is sub-microsecond).
    pub ctx_switch_high: SimDuration,
    /// Fixed CPU time a process spends issuing an asynchronous mailbox send.
    pub send_overhead: SimDuration,
    /// Per-byte CPU time of a send (copying the payload into the mailbox
    /// buffer; T805 memcpy runs at a handful of MB/s).
    pub send_per_byte: SimDuration,
    /// Fixed CPU time a process spends consuming one message from its
    /// mailbox.
    pub recv_overhead: SimDuration,
    /// Per-byte CPU time of a receive (copying the payload out of the
    /// buffer into user space).
    pub recv_per_byte: SimDuration,
    /// Fixed high-priority CPU cost of the store-and-forward router handler
    /// per arriving message (runs on the node the message just reached).
    pub hop_handler: SimDuration,
    /// Per-byte high-priority CPU cost of handling an arrived message
    /// (software store-and-forward moves every byte through memory). This
    /// is the dominant "message congestion" cost the paper attributes
    /// time-sharing's losses to: under high MPL it preempts and starves
    /// co-resident jobs' computation.
    pub handler_per_byte: SimDuration,
    /// Fixed high-priority CPU cost of delivering a self-addressed message
    /// (same-node sends still traverse the mailbox machinery, §5.2);
    /// `handler_per_byte` applies on top.
    pub self_delivery: SimDuration,
    /// Fixed per-transfer link startup time.
    pub link_startup: SimDuration,
    /// Link time per payload byte (20 Mbit/s links deliver ~1.7 MB/s of
    /// payload after protocol overhead, i.e. ~588 ns/byte).
    pub link_per_byte: SimDuration,
    /// Header latency per hop in cut-through mode.
    pub cut_through_header: SimDuration,
    /// Flit size for [`Switching::Wormhole`] (payload bytes per flit; one
    /// extra header flit is prepended to every worm).
    pub flit_bytes: u64,
    /// Virtual channels per escape class per link direction under
    /// [`Switching::Wormhole`]. Escape-class counts come from the
    /// topology (`parsched_topology::flow::vc_class_count`).
    pub vcs_per_class: u8,
    /// Flit buffers per virtual channel (the credit loop depth) under
    /// [`Switching::Wormhole`].
    pub vc_credits: u8,
    /// Packet size for [`Switching::PacketizedSaf`].
    pub packet_bytes: u64,
    /// Per-message buffer bookkeeping overhead added to every allocation.
    pub msg_header_bytes: u64,
    /// Fixed part of a job load (boot protocol, process setup).
    pub job_load_latency: SimDuration,
    /// Per-byte time to ship a job's code + data from the host workstation
    /// into the machine. Every job enters through the single host link
    /// (the paper reserves one transputer for it), so loads are globally
    /// serialized — the effect behind "the time-sharing policy loads and
    /// starts execution of all 16 jobs" (§5.2).
    pub host_link_per_byte: SimDuration,
    /// Record per-process/per-handler/per-message execution spans in
    /// [`Machine::timeline`](crate::system::Machine) (off by default; adds
    /// memory proportional to activity).
    pub record_timeline: bool,
    /// Safety valve: abort a run after this many engine events.
    pub max_events: u64,
    /// Declared fault schedule (crashes, link windows, drop probability,
    /// mailbox capacity, retry policy). The default — an empty plan — makes
    /// every fault-handling path unreachable; see [`crate::fault`].
    pub faults: crate::fault::FaultPlan,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            mem_capacity: 4 * 1024 * 1024,
            switching: Switching::PacketizedSaf,
            flow: FlowControl::Reserved,
            alloc_policy: AllocPolicy::FirstFit,
            send_mode: SendMode::Async,
            transit_reserve: 128 * 1024,
            transit_escape_after: SimDuration::from_millis(25),
            os_overhead: 1280 * 1024,
            default_quantum: SimDuration::from_millis(2),
            ctx_switch_low: SimDuration::from_micros(50),
            ctx_switch_high: SimDuration::from_micros(3),
            send_overhead: SimDuration::from_micros(200),
            send_per_byte: SimDuration::from_nanos(600),
            recv_overhead: SimDuration::from_micros(200),
            recv_per_byte: SimDuration::from_nanos(600),
            hop_handler: SimDuration::from_micros(400),
            handler_per_byte: SimDuration::from_nanos(600),
            self_delivery: SimDuration::from_micros(60),
            link_startup: SimDuration::from_micros(20),
            link_per_byte: SimDuration::from_nanos(588),
            cut_through_header: SimDuration::from_micros(5),
            flit_bytes: 64,
            vcs_per_class: 1,
            vc_credits: 4,
            packet_bytes: 4096,
            msg_header_bytes: 64,
            job_load_latency: SimDuration::from_millis(50),
            host_link_per_byte: SimDuration::from_nanos(150),
            record_timeline: false,
            max_events: 500_000_000,
            faults: crate::fault::FaultPlan::default(),
        }
    }
}

impl MachineConfig {
    /// Link time to move `bytes` across one channel (startup + serialization).
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.link_startup + SimDuration::from_nanos(self.link_per_byte.nanos() * bytes)
    }

    /// Host-link occupancy of loading one job that ships `ship_bytes`
    /// (fixed latency plus serialization). Loads are globally serialized
    /// in admission order; the sharded runner precomputes each job's
    /// loader start from these durations.
    pub fn load_duration(&self, ship_bytes: u64) -> SimDuration {
        self.job_load_latency
            + SimDuration::from_nanos(self.host_link_per_byte.nanos() * ship_bytes)
    }

    /// Pipeline offset between consecutive hops under packetized
    /// store-and-forward: the time for one packet to cross a link.
    pub fn packet_latency(&self) -> SimDuration {
        self.transfer_time(self.packet_bytes.max(1))
    }

    /// CPU time a sender spends issuing a `bytes`-byte send.
    pub fn send_cost(&self, bytes: u64) -> SimDuration {
        self.send_overhead + SimDuration::from_nanos(self.send_per_byte.nanos() * bytes)
    }

    /// CPU time a receiver spends consuming a `bytes`-byte message.
    pub fn recv_cost(&self, bytes: u64) -> SimDuration {
        self.recv_overhead + SimDuration::from_nanos(self.recv_per_byte.nanos() * bytes)
    }

    /// Serialization time of one flit across one link under wormhole
    /// switching (no per-flit startup; the header flit paid `link_startup`
    /// conceptually folds into `flit_bytes` of header).
    pub fn flit_time(&self) -> SimDuration {
        SimDuration::from_nanos(self.link_per_byte.nanos() * self.flit_bytes.max(1))
    }

    /// Flits in a `bytes`-byte worm: payload flits plus one header flit.
    pub fn worm_flits(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.flit_bytes.max(1)) + 1
    }

    /// High-priority CPU time to handle a `bytes`-byte message arrival.
    pub fn handler_cost(&self, bytes: u64) -> SimDuration {
        self.hop_handler + SimDuration::from_nanos(self.handler_per_byte.nanos() * bytes)
    }

    /// High-priority CPU time to deliver a `bytes`-byte self-addressed
    /// message.
    pub fn self_delivery_cost(&self, bytes: u64) -> SimDuration {
        self.self_delivery + SimDuration::from_nanos(self.handler_per_byte.nanos() * bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_t805_like() {
        let c = MachineConfig::default();
        assert_eq!(c.mem_capacity, 4 * 1024 * 1024);
        assert_eq!(c.default_quantum, SimDuration::from_millis(2));
        assert_eq!(c.switching, Switching::PacketizedSaf);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let c = MachineConfig::default();
        let t0 = c.transfer_time(0);
        assert_eq!(t0, c.link_startup);
        let t1k = c.transfer_time(1000);
        assert_eq!(t1k, c.link_startup + SimDuration::from_nanos(588_000));
        // 80 KB (a large matrix B) takes ~48 ms per hop: congestion is real.
        let tb = c.transfer_time(80_000);
        assert!(tb > SimDuration::from_millis(40) && tb < SimDuration::from_millis(60));
    }
}
