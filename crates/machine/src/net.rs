//! Messages and links.
//!
//! Data structures for the communication subsystem: in-flight messages and
//! the per-channel serialization state. The message *protocol* (buffer
//! reservation, forwarding, delivery) is implemented in [`crate::system`].

use crate::process::JobId;
use crate::program::{Rank, Tag};
use parsched_des::{SimTime, TimeWeighted};
use std::collections::VecDeque;

/// Machine-wide message identifier (index into the message table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MsgId(pub u32);

impl MsgId {
    /// The id as a `usize` for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// An in-flight (or delivered-but-unconsumed) message.
///
/// The route is *not* materialized: minimal routes are deterministic, so a
/// message only carries its endpoints plus a handful of progress cursors,
/// and every "next node" question is answered by the machine's next-hop
/// table. Keeping the struct flat (no heap data) lets the message table
/// recycle slots without allocator traffic.
#[derive(Debug, Clone)]
pub struct Message {
    /// Identifier.
    pub id: MsgId,
    /// Owning job (messages never cross jobs).
    pub job: JobId,
    /// Sending rank.
    pub from: Rank,
    /// Receiving rank.
    pub to: Rank,
    /// Payload bytes.
    pub bytes: u64,
    /// Mailbox tag.
    pub tag: Tag,
    /// Global node the sender injected from.
    pub src_node: u32,
    /// Global node of the receiver.
    pub dst_node: u32,
    /// Route length in edges (0 for self-sends).
    pub hops: u32,
    /// Node holding the (store-and-forward) buffered copy.
    pub at_node: u32,
    /// Cut-through: head of the next edge to enqueue (the route walked
    /// `edges_started` hops from `src_node`).
    pub front_node: u32,
    /// Cut-through: node the head has fully crossed to (the route walked
    /// `edges_done` hops from `src_node`).
    pub done_node: u32,
    /// Cut-through: number of route edges whose transfer has completed.
    pub edges_done: u32,
    /// Cut-through: number of route edges enqueued on their channel so far.
    pub edges_started: u32,
    /// When the sender injected it.
    pub injected_at: SimTime,
    /// Node currently charged for this message's buffer, if any.
    pub buffered_on: Option<u32>,
    /// Retransmissions performed so far (fault plan; 0 on a clean network).
    pub attempts: u32,
    /// A hop corrupted the payload; the delivery checksum will reject it.
    pub corrupt: bool,
    /// The delivery timeout fired while this attempt was still in flight.
    pub timed_out: bool,
    /// The message was terminally dropped (owner killed / budget spent);
    /// in-flight references drain without acting on it.
    pub cancelled: bool,
    /// Outstanding engine references (scheduled transfers, hop events,
    /// handler tasks) that will still observe this slot; a cancelled slot
    /// is reclaimed only once this reaches zero.
    pub live_refs: u16,
}

impl Message {
    /// Total hops (route edges).
    #[inline]
    pub fn hops(&self) -> usize {
        self.hops as usize
    }

    /// True when the buffered copy sits at the destination.
    #[inline]
    pub fn at_destination(&self) -> bool {
        self.at_node == self.dst_node
    }

    /// The node the buffered copy currently sits on.
    #[inline]
    pub fn current_node(&self) -> u32 {
        self.at_node
    }
}

/// One directed link's serialization state.
#[derive(Debug)]
pub struct ChannelState {
    /// Sending endpoint (global).
    pub from: u32,
    /// Receiving endpoint (global).
    pub to: u32,
    /// Message currently occupying the channel.
    pub busy_with: Option<MsgId>,
    /// FIFO of messages waiting for the channel.
    pub queue: VecDeque<MsgId>,
    /// Busy/idle signal for utilization statistics.
    pub busy: TimeWeighted,
    /// Total payload bytes carried.
    pub bytes_carried: u64,
    /// Transfers completed.
    pub transfers: u64,
    /// Link is operational (fault plan may toggle this). A down link
    /// finishes the transfer on the wire but starts no new one.
    pub up: bool,
}

impl ChannelState {
    /// Display label, e.g. `"3->7"` (used by observability exporters).
    pub fn label(&self) -> String {
        format!("{}->{}", self.from, self.to)
    }

    /// An idle channel.
    pub fn new(from: u32, to: u32, t0: SimTime) -> ChannelState {
        ChannelState {
            from,
            to,
            busy_with: None,
            queue: VecDeque::new(),
            busy: TimeWeighted::new(t0, 0.0),
            bytes_carried: 0,
            transfers: 0,
            up: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: u32, dst: u32, hops: u32) -> Message {
        Message {
            id: MsgId(0),
            job: JobId(0),
            from: Rank(0),
            to: Rank(1),
            bytes: 100,
            tag: Tag(1),
            src_node: src,
            dst_node: dst,
            hops,
            at_node: src,
            front_node: src,
            done_node: src,
            edges_done: 0,
            edges_started: 0,
            injected_at: SimTime::ZERO,
            buffered_on: None,
            attempts: 0,
            corrupt: false,
            timed_out: false,
            cancelled: false,
            live_refs: 0,
        }
    }

    #[test]
    fn route_geometry() {
        let m = msg(0, 3, 3);
        assert_eq!(m.hops(), 3);
        assert_eq!(m.current_node(), 0);
        assert!(!m.at_destination());
    }

    #[test]
    fn self_send_is_at_destination() {
        let m = msg(5, 5, 0);
        assert_eq!(m.hops(), 0);
        assert!(m.at_destination());
        assert_eq!(m.current_node(), 5);
    }

    #[test]
    fn advancing_reaches_destination() {
        let mut m = msg(0, 2, 2);
        m.at_node = 1;
        assert!(!m.at_destination());
        m.at_node = 2;
        assert!(m.at_destination());
        assert_eq!(m.current_node(), 2);
    }
}
