//! Messages and links.
//!
//! Data structures for the communication subsystem: in-flight messages and
//! the per-channel serialization state. The message *protocol* (buffer
//! reservation, forwarding, delivery) is implemented in [`crate::system`].

use crate::process::JobId;
use crate::program::{Rank, Tag};
use parsched_des::{SimTime, TimeWeighted};
use std::collections::VecDeque;

/// Machine-wide message identifier (index into the message table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MsgId(pub u32);

impl MsgId {
    /// The id as a `usize` for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// An in-flight (or delivered-but-unconsumed) message.
#[derive(Debug, Clone)]
pub struct Message {
    /// Identifier.
    pub id: MsgId,
    /// Owning job (messages never cross jobs).
    pub job: JobId,
    /// Sending rank.
    pub from: Rank,
    /// Receiving rank.
    pub to: Rank,
    /// Payload bytes.
    pub bytes: u64,
    /// Mailbox tag.
    pub tag: Tag,
    /// Global node sequence `[src, ..., dst]` (length 1 for self-sends).
    pub path: Vec<u16>,
    /// Index into `path` of the node currently holding the (store-and-
    /// forward) buffered copy.
    pub at: usize,
    /// Cut-through: number of path edges whose transfer has completed.
    pub edges_done: usize,
    /// Cut-through: number of path edges enqueued on their channel so far.
    pub ct_edges_started: usize,
    /// When the sender injected it.
    pub injected_at: SimTime,
    /// Node currently charged for this message's buffer, if any.
    pub buffered_on: Option<u16>,
}

impl Message {
    /// Total hops (path edges).
    pub fn hops(&self) -> usize {
        self.path.len() - 1
    }

    /// True when the buffered copy sits at the destination.
    pub fn at_destination(&self) -> bool {
        self.at + 1 == self.path.len()
    }

    /// The node the buffered copy currently sits on.
    pub fn current_node(&self) -> u16 {
        self.path[self.at]
    }

    /// The next node along the path.
    ///
    /// # Panics
    /// Panics when already at the destination.
    pub fn next_node(&self) -> u16 {
        self.path[self.at + 1]
    }
}

/// One directed link's serialization state.
#[derive(Debug)]
pub struct ChannelState {
    /// Sending endpoint (global).
    pub from: u16,
    /// Receiving endpoint (global).
    pub to: u16,
    /// Message currently occupying the channel.
    pub busy_with: Option<MsgId>,
    /// FIFO of messages waiting for the channel.
    pub queue: VecDeque<MsgId>,
    /// Busy/idle signal for utilization statistics.
    pub busy: TimeWeighted,
    /// Total payload bytes carried.
    pub bytes_carried: u64,
    /// Transfers completed.
    pub transfers: u64,
}

impl ChannelState {
    /// An idle channel.
    pub fn new(from: u16, to: u16, t0: SimTime) -> ChannelState {
        ChannelState {
            from,
            to,
            busy_with: None,
            queue: VecDeque::new(),
            busy: TimeWeighted::new(t0, 0.0),
            bytes_carried: 0,
            transfers: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(path: Vec<u16>) -> Message {
        Message {
            id: MsgId(0),
            job: JobId(0),
            from: Rank(0),
            to: Rank(1),
            bytes: 100,
            tag: Tag(1),
            path,
            at: 0,
            edges_done: 0,
            ct_edges_started: 0,
            injected_at: SimTime::ZERO,
            buffered_on: None,
        }
    }

    #[test]
    fn path_geometry() {
        let m = msg(vec![0, 1, 2, 3]);
        assert_eq!(m.hops(), 3);
        assert_eq!(m.current_node(), 0);
        assert_eq!(m.next_node(), 1);
        assert!(!m.at_destination());
    }

    #[test]
    fn self_send_is_at_destination() {
        let m = msg(vec![5]);
        assert_eq!(m.hops(), 0);
        assert!(m.at_destination());
        assert_eq!(m.current_node(), 5);
    }

    #[test]
    fn advancing_reaches_destination() {
        let mut m = msg(vec![0, 1, 2]);
        m.at += 1;
        assert!(!m.at_destination());
        m.at += 1;
        assert!(m.at_destination());
        assert_eq!(m.current_node(), 2);
    }
}
