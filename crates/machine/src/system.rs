//! The machine: nodes, network and the event protocol tying them together.
//!
//! [`Machine`] implements [`parsched_des::Model`]; driving it with an
//! [`Engine`](parsched_des::Engine) executes submitted jobs to completion.
//! Scheduling *policies* (who gets which partition, when, with what quantum)
//! live in `parsched-core`; this crate provides the mechanism:
//!
//! * two-priority CPUs with round-robin quanta and quantum-loss preemption;
//! * per-node memory with a FIFO-queued MMU;
//! * store-and-forward (or cut-through) message passing over serialized
//!   links, with per-hop buffer reservation and handler CPU costs;
//! * mailbox matching and blocking receives.

use crate::config::{FlowControl, MachineConfig, SendMode, Switching};
use crate::cpu::{Cpu, HandlerAction, HandlerTask, RunKind, Running};
use crate::memory::{AllocResult, AllocWaiter, Mmu};
use crate::net::{ChannelState, Message, MsgId};
use crate::process::{JobId, PState, Phase, ProcKey, Process};
use crate::timeline::{Span, SpanKind, Timeline};
use crate::program::{JobSpec, Op, Rank, Tag};
use crate::instrument::MachineMetrics;
use crate::wiring::SystemNet;
use crate::wormhole::{Worm, WormLink, WormholeState};
use parsched_des::rng::DetRng;
use parsched_des::{EventScheduler, Model, SimDuration, SimTime, TimerHandle};
use parsched_obs::{ObsEvent, QuantumEndReason, Recorder};
use parsched_topology::{vc_classes, NodeId};
use std::collections::VecDeque;

/// Events of the machine model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A queued job arrives (begins loading).
    Admit {
        /// Which job.
        job: JobId,
    },
    /// Load latency elapsed: allocate the job's memory and spawn processes.
    LoadJob {
        /// Which job.
        job: JobId,
    },
    /// Poke a node's CPU to dispatch if idle.
    Dispatch {
        /// Global node index.
        node: u32,
    },
    /// The running item on `node` reached its scheduled boundary.
    SliceEnd {
        /// Global node index.
        node: u32,
        /// Dispatch sequence (stale events are ignored).
        seq: u64,
    },
    /// The transfer occupying channel `chan` finished.
    TransferDone {
        /// Channel table index.
        chan: u32,
    },
    /// Wormhole: one flit time elapsed on a ticking channel — arbitrate
    /// the link among its virtual channels and move one flit.
    FlitTick {
        /// Channel table index.
        chan: u32,
    },
    /// Cut-through: the pipelined start of a message's next path edge.
    HopStart {
        /// Which message.
        msg: MsgId,
        /// Path-edge index to start.
        edge: usize,
    },
    /// A starved transit buffer request escapes to the emergency pool.
    AllocEscape {
        /// Node whose MMU queue holds the request.
        node: u32,
        /// The waiting message.
        msg: MsgId,
        /// Slot generation at schedule time. Message slots are recycled,
        /// so a timer can outlive its message; a stale generation means
        /// the slot now holds a different message and the timer is void.
        gen: u32,
    },
    /// A scheduling-policy timer. The machine ignores it; policy drivers
    /// (e.g. the gang scheduler) intercept it before forwarding events.
    PolicyTick {
        /// Opaque policy-defined token (e.g. a partition index).
        token: u64,
    },
    /// A node fail-stops (declared in the fault plan): its resident jobs
    /// are killed and reported via [`Note::JobFailed`]. The node's link
    /// engines keep forwarding traffic (Transputer links ran independently
    /// of the CPU), so no in-transit message is stranded.
    NodeCrash {
        /// Global node index.
        node: u32,
    },
    /// A declared link-outage window opens.
    LinkDown {
        /// Channel table index.
        chan: u32,
    },
    /// A declared link-outage window closes.
    LinkUp {
        /// Channel table index.
        chan: u32,
    },
    /// A failed delivery attempt's backoff elapsed: retransmit from the
    /// source.
    MsgRetry {
        /// Which message.
        msg: MsgId,
        /// Slot generation at schedule time (stale = slot recycled).
        gen: u32,
    },
    /// A message's delivery timeout fired before the attempt completed.
    MsgTimeout {
        /// Which message.
        msg: MsgId,
        /// Slot generation at schedule time (stale = slot recycled).
        gen: u32,
    },
}

/// Notifications the machine emits for the scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Note {
    /// The job's memory is resident; it awaits [`Machine::start_job`]
    /// (emitted for jobs queued with `auto_start = false`).
    JobReady(JobId),
    /// The job's processes are runnable.
    JobLoaded(JobId),
    /// All of the job's processes finished; memory has been freed.
    JobCompleted(JobId),
    /// The job was killed by a fault (node crash or retry-budget
    /// exhaustion); its memory has been freed and its messages accounted
    /// as dropped. The scheduler may requeue the work under a fresh id.
    JobFailed(JobId),
}

/// Lifecycle state of a job inside the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Queued via [`Machine::queue_job`], not yet admitted.
    Queued,
    /// Admitted; load latency or memory allocation outstanding.
    Loading,
    /// Loaded and resident, waiting for [`Machine::start_job`].
    Ready,
    /// Processes runnable/running.
    Running,
    /// Complete.
    Done,
    /// Killed by a fault; terminal like [`JobState::Done`] but without
    /// producing results (the scheduler reruns the work as a new job).
    Failed,
}

/// Per-job runtime bookkeeping.
#[derive(Debug)]
pub struct JobRuntime {
    /// Identifier.
    pub id: JobId,
    /// Name from the [`JobSpec`].
    pub name: String,
    /// rank -> global node.
    pub placement: Vec<u32>,
    /// rank -> process key (filled at spawn).
    pub proc_keys: Vec<ProcKey>,
    /// Memory charged per node, for release at completion.
    pub mem_per_node: Vec<(u32, u64)>,
    /// Outstanding job-load allocations.
    pub pending_allocs: u32,
    /// Processes not yet finished.
    pub live_procs: u32,
    /// Per-rank mailboxes of delivered, unconsumed messages.
    pub mailboxes: Vec<VecDeque<MsgId>>,
    /// Round-robin quantum for this job's processes.
    pub quantum: SimDuration,
    /// Lifecycle state.
    pub state: JobState,
    /// When the job was admitted (arrival).
    pub submitted_at: SimTime,
    /// When its processes became runnable.
    pub loaded_at: SimTime,
    /// When it completed.
    pub finished_at: SimTime,
    /// Sequential CPU demand (from the spec; for reporting).
    pub total_compute: SimDuration,
    /// Bytes shipped through the host link at load time.
    pub ship_bytes: u64,
    /// Spawn processes as soon as the load completes (vs. waiting for
    /// [`Machine::start_job`]).
    pub auto_start: bool,
    /// Parked by the policy (gang scheduling): processes exist but are
    /// withheld from the ready queues.
    pub parked: bool,
    /// Earliest instant the host-link loader may start shipping this job
    /// (zero = no constraint). The sharded runner sets it to the job's
    /// loader start in the *global* admission order, so per-shard machines
    /// reproduce the sequential loader serialization exactly.
    pub load_floor: SimTime,
    /// Blueprint, held until spawn.
    spec: Option<JobSpec>,
}

impl JobRuntime {
    /// Response time: completion minus arrival.
    ///
    /// # Panics
    /// Panics if the job has not completed.
    pub fn response_time(&self) -> SimDuration {
        assert_eq!(self.state, JobState::Done, "job {:?} not done", self.id);
        self.finished_at.since(self.submitted_at)
    }
}

/// One node: a CPU plus its memory.
#[derive(Debug)]
pub struct Node {
    /// The CPU.
    pub cpu: Cpu,
    /// The memory pool + MMU queue.
    pub mmu: Mmu,
}

/// Machine-wide counters (see also per-node and per-channel state).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Counters {
    /// Messages injected.
    pub messages_sent: u64,
    /// Messages consumed by receivers.
    pub messages_consumed: u64,
    /// Total payload bytes injected.
    pub bytes_sent: u64,
    /// Total hop transfers completed.
    pub hop_transfers: u64,
    /// Self-addressed messages (same-node mailbox traffic).
    pub self_sends: u64,
    /// Processes that blocked at least once waiting for a send buffer.
    pub send_blocks: u64,
    /// Transit requests that starved past the escape timeout and were
    /// satisfied from the emergency pool.
    pub transit_escapes: u64,
    /// Jobs completed.
    pub jobs_completed: u64,
    /// Messages terminally dropped and accounted (owning job killed).
    /// Conservation holds as `messages_sent == messages_consumed +
    /// messages_dropped`; nothing is ever silently lost.
    pub messages_dropped: u64,
    /// Retransmission attempts scheduled after failed deliveries.
    pub retries: u64,
    /// Delivery timeouts fired.
    pub timeouts: u64,
    /// Node crashes executed from the fault plan.
    pub node_crashes: u64,
    /// Link-outage windows opened (per direction).
    pub link_downs: u64,
    /// Jobs killed by faults.
    pub jobs_failed: u64,
    /// Failed jobs requeued by the scheduler under a fresh job id.
    pub jobs_requeued: u64,
    /// Failed jobs the scheduler gave up on after exhausting its requeue
    /// budget (terminal: counted once, never requeued again).
    pub jobs_abandoned: u64,
    /// Wormhole: flits entering the network (counted per attempt at worm
    /// creation; a retried message injects its flits again).
    pub flits_injected: u64,
    /// Wormhole: flits ejected into destination memory. Conservation:
    /// `flits_injected == flits_ejected + flits_dropped` at quiesce.
    pub flits_ejected: u64,
    /// Wormhole: flits lost when a fault drained an in-flight worm
    /// (including source flits the drained attempt never transmitted).
    pub flits_dropped: u64,
    /// Wormhole: flit credits consumed (one per flit-link transmission).
    pub credits_issued: u64,
    /// Wormhole: flit credits returned (buffer drained downstream, flit
    /// ejected, or worm drained by a fault). Conservation:
    /// `credits_issued == credits_returned` at quiesce.
    pub credits_returned: u64,
    /// Wormhole: virtual-channel grants (fresh allocations and handoffs
    /// to queued waiters).
    pub vc_allocs: u64,
    /// Wormhole: link arbitrations that found every resident worm blocked
    /// on the credit window (head-of-line back-pressure, not VC scarcity).
    pub credit_stalls: u64,
}

impl Counters {
    /// Fold another machine's counters into this one (the sharded runner
    /// sums per-shard counters into the machine-wide totals).
    pub fn absorb(&mut self, other: &Counters) {
        let Counters {
            messages_sent,
            messages_consumed,
            bytes_sent,
            hop_transfers,
            self_sends,
            send_blocks,
            transit_escapes,
            jobs_completed,
            messages_dropped,
            retries,
            timeouts,
            node_crashes,
            link_downs,
            jobs_failed,
            jobs_requeued,
            jobs_abandoned,
            flits_injected,
            flits_ejected,
            flits_dropped,
            credits_issued,
            credits_returned,
            vc_allocs,
            credit_stalls,
        } = other;
        self.messages_sent += messages_sent;
        self.messages_consumed += messages_consumed;
        self.bytes_sent += bytes_sent;
        self.hop_transfers += hop_transfers;
        self.self_sends += self_sends;
        self.send_blocks += send_blocks;
        self.transit_escapes += transit_escapes;
        self.jobs_completed += jobs_completed;
        self.messages_dropped += messages_dropped;
        self.retries += retries;
        self.timeouts += timeouts;
        self.node_crashes += node_crashes;
        self.link_downs += link_downs;
        self.jobs_failed += jobs_failed;
        self.jobs_requeued += jobs_requeued;
        self.jobs_abandoned += jobs_abandoned;
        self.flits_injected += flits_injected;
        self.flits_ejected += flits_ejected;
        self.flits_dropped += flits_dropped;
        self.credits_issued += credits_issued;
        self.credits_returned += credits_returned;
        self.vc_allocs += vc_allocs;
        self.credit_stalls += credit_stalls;
    }
}

/// The simulated multicomputer.
pub struct Machine {
    /// Timing and policy-mechanism configuration.
    pub cfg: MachineConfig,
    net: SystemNet,
    nodes: Vec<Node>,
    channels: Vec<ChannelState>,
    procs: Vec<Process>,
    jobs: Vec<JobRuntime>,
    /// Message slab: slots of retired messages are recycled via
    /// `free_msgs`, so the arena stays at the peak number of messages
    /// simultaneously in flight instead of growing with every send.
    messages: Vec<Option<Message>>,
    /// Free slot indices in `messages`, reused LIFO.
    free_msgs: Vec<u32>,
    /// Per-slot generation, bumped at each free; guards stale
    /// [`Event::AllocEscape`] timers against slot reuse.
    msg_gen: Vec<u32>,
    /// Per-slot pending transit-escape timer, cancelled when the queued
    /// transit reservation is granted normally (the common case). The
    /// generation check in `on_alloc_escape` remains the correctness
    /// backstop for any timer that outlives its message.
    escape_timers: Vec<Option<TimerHandle>>,
    /// Per-slot pending fault-protocol timer: either the delivery timeout
    /// of the attempt in flight or the backoff timer of the next retry
    /// (never both at once). Guarded by `msg_gen` like the escape timers;
    /// `None` whenever the fault plan sets no `msg_timeout`.
    fault_timers: Vec<Option<TimerHandle>>,
    /// Per-node fail-stop flag (fault plan). A dead node's CPU schedules
    /// no new job work, but its link engines keep forwarding traffic.
    dead: Vec<bool>,
    /// Deterministic per-hop drop lottery: one independent substream per
    /// channel (`drop_seed` → `substream_idx("drop", chan)`), so the draw
    /// sequence a channel sees depends only on its own completed hops —
    /// never on traffic elsewhere. That makes the lottery identical whether
    /// the machine simulates the whole system or one shard of it. Built
    /// (and drawn) only while `cfg.faults.drop_prob > 0`; an empty plan
    /// allocates nothing and performs zero draws.
    drop_rngs: Vec<DetRng>,
    /// Cached `!cfg.faults.is_empty()`: gates every fault-path branch so a
    /// clean run stays on the exact pre-fault code path.
    faults_on: bool,
    /// Wormhole switching state (`Some` iff `cfg.switching` is
    /// [`Switching::Wormhole`]): per-link virtual-channel tables and the
    /// in-flight worm table.
    wormhole: Option<WormholeState>,
    notes: Vec<Note>,
    /// Machine-wide counters.
    pub counters: Counters,
    /// Typed event sink. `None` (the default) is the zero-cost disabled
    /// state: hook sites pay one branch, no formatting, no allocation.
    /// Install a [`parsched_obs::CollectRecorder`] for exporters or a
    /// [`parsched_obs::RingRecorder`] for a bounded human-readable log.
    pub recorder: Option<Box<dyn Recorder>>,
    /// Time-weighted gauges (CPU busy/idle, ready depth, link occupancy,
    /// partition MPL). `None` disables sampling entirely.
    pub metrics: Option<Box<MachineMetrics>>,
    /// Execution spans (enable via `MachineConfig::record_timeline`).
    pub timeline: Timeline,
    /// When the host-link loader next becomes free (loads serialize).
    loader_free_at: SimTime,
    t0: SimTime,
}

impl Machine {
    /// Build a machine over the given wiring.
    pub fn new(cfg: MachineConfig, net: SystemNet) -> Machine {
        let t0 = SimTime::ZERO;
        let nodes = (0..net.nodes())
            .map(|_| {
                let capacity = cfg.mem_capacity.saturating_sub(cfg.os_overhead);
                let mut mmu = Mmu::new(capacity, t0);
                mmu.policy = cfg.alloc_policy;
                mmu.set_transit_reserve(cfg.transit_reserve);
                Node {
                    cpu: Cpu::new(t0),
                    mmu,
                }
            })
            .collect();
        let channels = net
            .channels()
            .iter()
            .map(|c| ChannelState::new(c.from, c.to, t0))
            .collect();
        let timeline = if cfg.record_timeline {
            Timeline::enabled(2_000_000)
        } else {
            Timeline::disabled()
        };
        let faults_on = !cfg.faults.is_empty();
        let drop_rngs = if cfg.faults.drop_prob > 0.0 {
            let root = DetRng::new(cfg.faults.drop_seed);
            (0..net.channels().len())
                .map(|c| root.substream_idx("drop", c as u64))
                .collect()
        } else {
            Vec::new()
        };
        let dead = vec![false; net.nodes()];
        let wormhole =
            (cfg.switching == Switching::Wormhole).then(|| WormholeState::new(&cfg, &net));
        Machine {
            cfg,
            net,
            nodes,
            channels,
            procs: Vec::new(),
            jobs: Vec::new(),
            messages: Vec::new(),
            free_msgs: Vec::new(),
            msg_gen: Vec::new(),
            escape_timers: Vec::new(),
            fault_timers: Vec::new(),
            dead,
            drop_rngs,
            faults_on,
            wormhole,
            notes: Vec::new(),
            counters: Counters::default(),
            recorder: None,
            metrics: None,
            timeline,
            loader_free_at: SimTime::ZERO,
            t0,
        }
    }

    /// Emit a typed event (single branch when no recorder is installed).
    #[inline]
    fn obs(&mut self, now: SimTime, ev: ObsEvent) {
        if let Some(r) = self.recorder.as_deref_mut() {
            r.record(now, ev);
        }
    }

    /// Emit a typed event from outside the machine (the policy driver uses
    /// this for partition-admission events).
    #[inline]
    pub fn observe(&mut self, now: SimTime, ev: ObsEvent) {
        self.obs(now, ev);
    }

    /// Sample a node's CPU busy signal into the metrics registry.
    #[inline]
    fn note_cpu_busy(&mut self, node: u32, now: SimTime, busy: f64) {
        if let Some(m) = self.metrics.as_deref_mut() {
            m.set_cpu_busy(node, now, busy);
        }
    }

    /// Sample a node's ready-queue depth into the metrics registry.
    #[inline]
    fn note_ready_depth(&mut self, node: u32, now: SimTime) {
        if self.metrics.is_some() {
            let depth = self.nodes[node as usize].cpu.ready_depth();
            if let Some(m) = self.metrics.as_deref_mut() {
                m.set_ready_depth(node, now, depth);
            }
        }
    }

    /// Sample a link's occupancy signal into the metrics registry.
    #[inline]
    fn note_link_busy(&mut self, chan: u32, now: SimTime, busy: f64) {
        if let Some(m) = self.metrics.as_deref_mut() {
            m.set_link_busy(chan, now, busy);
        }
    }

    /// Sample the engine timing wheel's occupancy (pending cancellable
    /// timers) into the metrics registry.
    #[inline]
    fn note_wheel_depth(&mut self, now: SimTime, sched: &impl EventScheduler<Event>) {
        if let Some(m) = self.metrics.as_deref_mut() {
            m.set_wheel_depth(now, sched.timer_count());
        }
    }

    /// Sample the fraction of nodes still alive into the metrics registry.
    #[inline]
    fn note_alive_capacity(&mut self, now: SimTime) {
        if self.metrics.is_some() {
            let alive = self.dead.iter().filter(|&&d| !d).count() as f64;
            let frac = alive / self.dead.len().max(1) as f64;
            if let Some(m) = self.metrics.as_deref_mut() {
                m.set_alive_capacity(now, frac);
            }
        }
    }

    /// Count an engine-held reference to a message slot (a wire occupancy,
    /// a scheduled pipelined-edge start, or a queued arrival handler).
    /// Pure bookkeeping on clean runs: a cancelled slot is reclaimed only
    /// once every counted reference has drained, so no stale event can
    /// observe a recycled slot. Packet-relay handler tasks are *not*
    /// counted — they never act on the slot and may legitimately outlive
    /// it even on clean runs.
    #[inline]
    fn ref_msg(&mut self, msg: MsgId) {
        if let Some(m) = self.messages[msg.idx()].as_mut() {
            m.live_refs += 1;
        }
    }

    /// Drop one counted reference (see [`Machine::ref_msg`]).
    #[inline]
    fn unref_msg(&mut self, msg: MsgId) {
        if let Some(m) = self.messages[msg.idx()].as_mut() {
            m.live_refs = m.live_refs.saturating_sub(1);
        }
    }

    /// Reclaim a cancelled message's slot once nothing references it.
    fn maybe_reclaim(&mut self, msg: MsgId) {
        let reclaim = self.messages[msg.idx()]
            .as_ref()
            .is_some_and(|m| m.cancelled && m.live_refs == 0);
        if reclaim {
            self.messages[msg.idx()] = None;
            self.free_msg(msg);
        }
    }

    /// Record a compute span for `pk` (no-op when the timeline is off).
    fn record_compute(&mut self, pk: ProcKey, start: SimTime, end: SimTime) {
        if !self.timeline.is_enabled() || end <= start {
            return;
        }
        let p = &self.procs[pk.idx()];
        self.timeline.record(Span {
            kind: SpanKind::Compute,
            node: p.node,
            job: Some(p.job),
            proc_: Some(pk),
            rank: Some(p.rank),
            start,
            end,
        });
    }

    /// Number of processors.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The wiring.
    pub fn net(&self) -> &SystemNet {
        &self.net
    }

    /// Per-node state (read-only).
    pub fn node(&self, n: u32) -> &Node {
        &self.nodes[n as usize]
    }

    /// Per-channel state (read-only).
    pub fn channel_states(&self) -> &[ChannelState] {
        &self.channels
    }

    /// Job runtime info.
    pub fn job(&self, id: JobId) -> &JobRuntime {
        &self.jobs[id.idx()]
    }

    /// All jobs.
    pub fn jobs(&self) -> &[JobRuntime] {
        &self.jobs
    }

    /// Estimated remaining sequential compute demand of a job: its spec's
    /// total demand minus the CPU time its processes have accrued so far
    /// (the whole demand while the job is still loading). Saturates at
    /// zero — accrued CPU time includes messaging overheads, which are not
    /// part of the spec's compute demand.
    pub fn job_remaining(&self, id: JobId) -> SimDuration {
        let job = &self.jobs[id.idx()];
        let accrued = job
            .proc_keys
            .iter()
            .map(|pk| self.procs[pk.idx()].cpu_time)
            .fold(SimDuration::ZERO, |a, b| a + b);
        job.total_compute.saturating_sub(accrued)
    }

    /// Retarget the round-robin quantum of a job and all its live
    /// processes (dynamic-quantum disciplines recompute quanta as the
    /// partition's population changes). Takes effect at each process's
    /// *next dispatch*: a currently-running slice keeps the expiry it was
    /// dispatched with, exactly like a real kernel re-tuning its timeslice.
    pub fn set_job_quantum(&mut self, id: JobId, quantum: SimDuration) {
        self.jobs[id.idx()].quantum = quantum;
        let keys = self.jobs[id.idx()].proc_keys.clone();
        for pk in keys {
            self.procs[pk.idx()].quantum = quantum;
        }
    }

    /// Process table (read-only).
    pub fn processes(&self) -> &[Process] {
        &self.procs
    }

    /// True once every queued job has reached a terminal state (completed,
    /// or killed by a fault — a failed job makes no further progress; its
    /// rerun is a separate job).
    pub fn all_jobs_done(&self) -> bool {
        self.jobs
            .iter()
            .all(|j| matches!(j.state, JobState::Done | JobState::Failed))
    }

    /// Drain accumulated notifications (the policy driver calls this after
    /// every event).
    pub fn drain_notes(&mut self) -> Vec<Note> {
        std::mem::take(&mut self.notes)
    }

    /// Register a job without admitting it. `placement[rank]` is the global
    /// node for that rank; every rank must be inside one partition.
    /// Returns the id to use with [`Event::Admit`].
    ///
    /// # Panics
    /// Panics if the placement length differs from the spec width, a node
    /// index is out of range, or the job spans partitions.
    pub fn queue_job(
        &mut self,
        spec: JobSpec,
        placement: Vec<u32>,
        quantum: SimDuration,
    ) -> JobId {
        self.queue_job_with(spec, placement, quantum, true)
    }

    /// Like [`Machine::queue_job`], with control over whether the job's
    /// processes spawn automatically when its load completes
    /// (`auto_start = true`) or wait for [`Machine::start_job`].
    pub fn queue_job_with(
        &mut self,
        spec: JobSpec,
        placement: Vec<u32>,
        quantum: SimDuration,
        auto_start: bool,
    ) -> JobId {
        assert_eq!(
            placement.len(),
            spec.width(),
            "placement must cover every rank"
        );
        assert!(!placement.is_empty(), "job needs at least one process");
        let part = self.net.partition_of(placement[0]);
        for &n in &placement {
            assert!((n as usize) < self.nodes.len(), "node {n} out of range");
            assert_eq!(
                self.net.partition_of(n),
                part,
                "job '{}' spans partitions",
                spec.name
            );
        }
        let id = JobId(self.jobs.len() as u32);
        let width = spec.width();
        // Sum the per-node memory demand once.
        let mut per_node: Vec<(u32, u64)> = Vec::new();
        for (rank, p) in spec.procs.iter().enumerate() {
            let node = placement[rank];
            match per_node.iter_mut().find(|(n, _)| *n == node) {
                Some((_, b)) => *b += p.mem_bytes,
                None => per_node.push((node, p.mem_bytes)),
            }
        }
        // Fail fast on a job that can never load: stalling later is much
        // harder to diagnose.
        let usable = self.cfg.mem_capacity.saturating_sub(self.cfg.os_overhead);
        for &(node, bytes) in &per_node {
            assert!(
                bytes <= usable,
                "job '{}' needs {bytes} B on node {node} but only {usable} B                  of the {} B node memory is usable",
                spec.name,
                self.cfg.mem_capacity,
            );
        }
        self.jobs.push(JobRuntime {
            id,
            name: spec.name.clone(),
            placement,
            proc_keys: Vec::new(),
            mem_per_node: per_node,
            pending_allocs: 0,
            live_procs: width as u32,
            mailboxes: (0..width).map(|_| VecDeque::new()).collect(),
            quantum,
            state: JobState::Queued,
            submitted_at: SimTime::ZERO,
            loaded_at: SimTime::ZERO,
            finished_at: SimTime::ZERO,
            total_compute: spec.total_compute(),
            ship_bytes: spec.effective_ship_bytes(),
            auto_start,
            parked: false,
            load_floor: SimTime::ZERO,
            spec: Some(spec),
        });
        id
    }

    /// Constrain a queued job's host-link load to start no earlier than
    /// `floor` (see [`JobRuntime::load_floor`]). Must be called before the
    /// job is admitted.
    pub fn set_load_floor(&mut self, job: JobId, floor: SimTime) {
        let j = &mut self.jobs[job.idx()];
        assert_eq!(j.state, JobState::Queued, "load floor after admission");
        j.load_floor = floor;
    }

    /// Start a [`JobState::Ready`] job's processes.
    ///
    /// # Panics
    /// Panics if the job is not `Ready`.
    pub fn start_job(&mut self, job: JobId, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        assert_eq!(
            self.jobs[job.idx()].state,
            JobState::Ready,
            "start_job on a job that is not ready"
        );
        self.spawn_job(job, now, sched);
    }

    /// Seed the fault plan's declared events (node crashes and link-outage
    /// windows) with the engine. Call once before the run, alongside
    /// arrival seeding. An empty plan seeds nothing, so fault-free runs
    /// allocate identical event sequence numbers and stay bit-identical.
    /// Crashes on out-of-range nodes and windows on non-adjacent node
    /// pairs are ignored.
    pub fn seed_faults(&mut self, seeder: &mut impl parsched_des::EventSeeder<Event>) {
        let plan = self.cfg.faults.clone();
        // Canonical same-instant order: crashes fire in (time, node) order
        // regardless of declaration order, so a sharded run — whose
        // coordinator serves same-instant crash fallout in partition
        // order — agrees with the sequential engine on ties.
        let mut crashes = plan.crashes.clone();
        crashes.sort_by_key(|c| (c.at, c.node));
        for c in &crashes {
            if (c.node as usize) < self.nodes.len() {
                seeder.seed(c.at, Event::NodeCrash { node: c.node });
            }
        }
        for w in &plan.links {
            if w.up_at <= w.down_at {
                continue;
            }
            for (a, b) in [(w.from, w.to), (w.to, w.from)] {
                if let Some(chan) = self.net.channel_id(a, b) {
                    seeder.seed(w.down_at, Event::LinkDown { chan: chan as u32 });
                    seeder.seed(w.up_at, Event::LinkUp { chan: chan as u32 });
                }
            }
        }
    }

    /// False once the node's CPU has fail-stopped (fault plan).
    pub fn node_alive(&self, n: u32) -> bool {
        !self.dead[n as usize]
    }

    // ------------------------------------------------------------------
    // Job lifecycle
    // ------------------------------------------------------------------

    fn on_admit(&mut self, job: JobId, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        self.obs(now, ObsEvent::JobArrived { job: job.0 });
        let ship = self.jobs[job.idx()].ship_bytes;
        let j = &mut self.jobs[job.idx()];
        assert_eq!(j.state, JobState::Queued, "job admitted twice");
        j.state = JobState::Loading;
        j.submitted_at = now;
        // Ship the job's code + data through the single host link: loads
        // are globally serialized (FIFO in admission order). The floor
        // models loader occupancy this machine instance cannot see (jobs
        // admitted on other shards of a sharded run).
        let duration = self.cfg.load_duration(ship);
        let start = if self.loader_free_at > now {
            self.loader_free_at
        } else {
            now
        }
        .max(j.load_floor);
        self.loader_free_at = start + duration;
        sched.schedule_at(self.loader_free_at, Event::LoadJob { job });
    }

    fn on_load_job(&mut self, job: JobId, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        // Request the job's resident memory on every node it touches. Any
        // allocation that cannot be satisfied queues on that node's MMU;
        // the job spawns when the last grant lands.
        let per_node = self.jobs[job.idx()].mem_per_node.clone();
        let mut pending = 0;
        for (node, bytes) in per_node {
            if bytes == 0 {
                continue;
            }
            match self.nodes[node as usize]
                .mmu
                .request(now, bytes, AllocWaiter::JobLoad(job))
            {
                AllocResult::Granted => {}
                AllocResult::Queued => pending += 1,
            }
        }
        self.jobs[job.idx()].pending_allocs = pending;
        if pending == 0 {
            self.finish_load(job, now, sched);
        }
    }

    /// The job's memory is fully resident: spawn or park it.
    fn finish_load(&mut self, job: JobId, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        if self.faults_on
            && self.jobs[job.idx()]
                .placement
                .iter()
                .any(|&n| self.dead[n as usize])
        {
            // A node this job was placed on crashed while it was loading:
            // the load is wasted and the job fails immediately (the
            // scheduler requeues it onto survivors).
            self.fail_job(job, now, sched);
            return;
        }
        if self.jobs[job.idx()].auto_start {
            self.spawn_job(job, now, sched);
        } else {
            self.jobs[job.idx()].state = JobState::Ready;
            self.notes.push(Note::JobReady(job));
        }
    }

    fn spawn_job(&mut self, job: JobId, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        debug_assert!(
            matches!(
                self.jobs[job.idx()].state,
                JobState::Loading | JobState::Ready
            ),
            "spawning a job in the wrong state"
        );
        let spec = self.jobs[job.idx()]
            .spec
            .take()
            .expect("job spawned twice");
        let quantum = self.jobs[job.idx()].quantum;
        let placement = self.jobs[job.idx()].placement.clone();
        self.jobs[job.idx()].state = JobState::Running;
        self.jobs[job.idx()].loaded_at = now;
        let mut keys = Vec::with_capacity(spec.width());
        for (rank, pspec) in spec.procs.into_iter().enumerate() {
            let key = ProcKey(self.procs.len() as u32);
            keys.push(key);
            self.procs.push(Process::new(
                key,
                job,
                Rank(rank as u32),
                placement[rank],
                pspec.program,
                quantum,
                now,
            ));
        }
        self.jobs[job.idx()].proc_keys = keys.clone();
        if self.jobs[job.idx()].parked {
            for &key in &keys {
                self.procs[key.idx()].parked = true;
            }
        }
        self.notes.push(Note::JobLoaded(job));
        self.obs(now, ObsEvent::JobLoaded { job: job.0 });
        for key in keys {
            self.make_runnable(key, now, sched);
        }
    }

    fn finish_process(&mut self, pk: ProcKey, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        let p = &mut self.procs[pk.idx()];
        p.state = PState::Finished;
        p.finished_at = now;
        let job = p.job;
        let j = &mut self.jobs[job.idx()];
        j.live_procs -= 1;
        if j.live_procs == 0 {
            j.state = JobState::Done;
            j.finished_at = now;
            debug_assert!(
                j.mailboxes.iter().all(|m| m.is_empty()),
                "job '{}' finished with unconsumed messages",
                j.name
            );
            self.counters.jobs_completed += 1;
            let mem = j.mem_per_node.clone();
            for (node, bytes) in mem {
                if bytes > 0 {
                    self.release_memory(node, bytes, now, sched);
                }
            }
            self.notes.push(Note::JobCompleted(job));
            self.obs(now, ObsEvent::JobFinished { job: job.0 });
        }
    }

    // ------------------------------------------------------------------
    // Process execution
    // ------------------------------------------------------------------

    /// Load the process's next CPU phase (possibly advancing over zero-cost
    /// ops). Returns `true` if the process needs the CPU, `false` if it
    /// blocked or finished (in which case its state has been updated and
    /// any finish bookkeeping done).
    fn make_runnable(&mut self, pk: ProcKey, now: SimTime, sched: &mut impl EventScheduler<Event>) -> bool {
        match self.load_phase(pk, now) {
            PhaseLoad::NeedCpu => {
                self.enqueue_ready(pk, now, sched);
                true
            }
            PhaseLoad::Blocked => false,
            PhaseLoad::Finished => {
                self.finish_process(pk, now, sched);
                false
            }
        }
    }

    /// Mark a process Ready and put it on its node's low-priority queue —
    /// unless its job is parked (gang scheduling), in which case it stays
    /// Ready but off-queue until [`Machine::set_job_active`] releases it.
    fn enqueue_ready(&mut self, pk: ProcKey, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        let p = &mut self.procs[pk.idx()];
        p.state = PState::Ready;
        if p.parked {
            return;
        }
        let node = p.node;
        self.nodes[node as usize].cpu.low.push_back(pk);
        self.note_ready_depth(node, now);
        self.dispatch(node, now, sched);
    }

    /// Examine ops from `pc` until a CPU phase is loaded, the process
    /// blocks, or the program ends. Does not touch ready queues.
    fn load_phase(&mut self, pk: ProcKey, _now: SimTime) -> PhaseLoad {
        loop {
            let p = &self.procs[pk.idx()];
            let Some(op) = p.current_op() else {
                return PhaseLoad::Finished;
            };
            match *op {
                Op::Compute(d) => {
                    if d.is_zero() {
                        self.procs[pk.idx()].pc += 1;
                        continue;
                    }
                    let p = &mut self.procs[pk.idx()];
                    p.phase = Phase::Compute;
                    p.remaining = d;
                    return PhaseLoad::NeedCpu;
                }
                Op::Send { bytes, .. } => {
                    let cost = self.cfg.send_cost(bytes);
                    let p = &mut self.procs[pk.idx()];
                    p.phase = Phase::SendOverhead;
                    p.remaining = cost;
                    return PhaseLoad::NeedCpu;
                }
                Op::Recv { tag } => {
                    if self.try_claim(pk, tag) {
                        return PhaseLoad::NeedCpu;
                    }
                    self.procs[pk.idx()].state = PState::BlockedRecv(tag);
                    return PhaseLoad::Blocked;
                }
                Op::RecvAny { count, tag } => {
                    let p = &mut self.procs[pk.idx()];
                    if p.recv_left == 0 {
                        if count == 0 {
                            p.pc += 1;
                            continue;
                        }
                        p.recv_left = count;
                    }
                    if self.try_claim(pk, tag) {
                        return PhaseLoad::NeedCpu;
                    }
                    self.procs[pk.idx()].state = PState::BlockedRecv(tag);
                    return PhaseLoad::Blocked;
                }
            }
        }
    }

    /// Pop a matching message from the process's mailbox and load the
    /// receive-overhead phase. Returns `false` if no message matches.
    fn try_claim(&mut self, pk: ProcKey, tag: Tag) -> bool {
        let (job, rank) = {
            let p = &self.procs[pk.idx()];
            (p.job, p.rank)
        };
        let messages = &self.messages;
        let pos = self.jobs[job.idx()].mailboxes[rank.idx()]
            .iter()
            .position(|&m| messages[m.idx()].as_ref().is_some_and(|mm| mm.tag == tag));
        let Some(pos) = pos else {
            return false;
        };
        let msg = self.jobs[job.idx()].mailboxes[rank.idx()]
            .remove(pos)
            .expect("position valid");
        let bytes = self.messages[msg.idx()].as_ref().expect("claimed dead message").bytes;
        let cost = self.cfg.recv_cost(bytes);
        let p = &mut self.procs[pk.idx()];
        p.claimed = Some(msg);
        p.phase = Phase::RecvOverhead;
        p.remaining = cost;
        true
    }

    /// The loaded CPU phase just completed (remaining hit zero). Advance the
    /// program. Returns the next disposition (same meanings as
    /// [`Machine::load_phase`]).
    fn complete_phase(&mut self, pk: ProcKey, now: SimTime, sched: &mut impl EventScheduler<Event>) -> PhaseLoad {
        let phase = self.procs[pk.idx()].phase;
        self.procs[pk.idx()].phase = Phase::Idle;
        match phase {
            Phase::Compute => {
                self.procs[pk.idx()].pc += 1;
                self.load_phase(pk, now)
            }
            Phase::SendOverhead => {
                // Overhead paid; now stage the message and (maybe) block for
                // the source buffer.
                if self.begin_injection(pk, now, sched) {
                    self.procs[pk.idx()].pc += 1;
                    self.load_phase(pk, now)
                } else {
                    self.procs[pk.idx()].state = PState::BlockedAlloc;
                    PhaseLoad::Blocked
                }
            }
            Phase::RecvOverhead => {
                let msg = self.procs[pk.idx()]
                    .claimed
                    .take()
                    .expect("RecvOverhead with no claimed message");
                self.consume_message(msg, now, sched);
                let p = &mut self.procs[pk.idx()];
                match p.current_op() {
                    Some(Op::Recv { .. }) => {
                        p.pc += 1;
                        self.load_phase(pk, now)
                    }
                    Some(Op::RecvAny { tag, .. }) => {
                        let tag = *tag;
                        p.recv_left -= 1;
                        if p.recv_left == 0 {
                            p.pc += 1;
                            self.load_phase(pk, now)
                        } else if self.try_claim(pk, tag) {
                            PhaseLoad::NeedCpu
                        } else {
                            self.procs[pk.idx()].state = PState::BlockedRecv(tag);
                            PhaseLoad::Blocked
                        }
                    }
                    other => panic!("RecvOverhead completed on non-recv op {other:?}"),
                }
            }
            Phase::Idle => panic!("complete_phase on Idle"),
        }
    }

    /// Requeue a process at its node's queue tail (unless parked). Callers
    /// dispatch afterwards.
    fn requeue_ready(&mut self, pk: ProcKey, now: SimTime) {
        let p = &mut self.procs[pk.idx()];
        p.state = PState::Ready;
        if p.parked {
            return;
        }
        let node = p.node;
        self.nodes[node as usize].cpu.low.push_back(pk);
        self.note_ready_depth(node, now);
    }

    /// Park or release a job's processes (gang scheduling support).
    ///
    /// Parking removes the job's Ready processes from their ready queues
    /// and preempts its Running ones (they lose the rest of their quantum,
    /// like any preemption on this machine); blocked processes stay blocked
    /// but will not re-enter a queue until released. Releasing re-enqueues
    /// every Ready process. High-priority system work is unaffected.
    pub fn set_job_active(
        &mut self,
        job: JobId,
        active: bool,
        now: SimTime,
        sched: &mut impl EventScheduler<Event>,
    ) {
        if self.jobs[job.idx()].state != JobState::Running {
            // Not spawned yet (or already done): just record the wish; the
            // spawn path reads `parked` from the PCB default (false), so
            // pre-spawn parking is applied at spawn time via job record.
            self.jobs[job.idx()].parked = !active;
            return;
        }
        self.jobs[job.idx()].parked = !active;
        let keys = self.jobs[job.idx()].proc_keys.clone();
        for pk in keys {
            self.procs[pk.idx()].parked = !active;
            let state = self.procs[pk.idx()].state;
            let node = self.procs[pk.idx()].node;
            if !active {
                match state {
                    PState::Ready => {
                        self.nodes[node as usize].cpu.remove_low(pk);
                        self.note_ready_depth(node, now);
                    }
                    PState::Running => {
                        // Preempt in place: account progress, park.
                        let cpu = &mut self.nodes[node as usize].cpu;
                        if let Some(running) = cpu.running {
                            if let RunKind::Low(rpk) = running.kind {
                                if rpk == pk {
                                    cpu.preemptions += 1;
                                    cpu.running = None;
                                    cpu.bump_seq();
                                    if let Some(h) = cpu.slice_timer.take() {
                                        sched.cancel_timer(h);
                                    }
                                    let elapsed =
                                        now.saturating_since(running.work_started);
                                    self.record_compute(
                                        pk,
                                        running.work_started,
                                        now,
                                    );
                                    let p = &mut self.procs[pk.idx()];
                                    let used = elapsed.min(p.remaining);
                                    p.remaining -= used;
                                    p.cpu_time += used;
                                    let (job, rank) = (p.job.0, p.rank.0);
                                    self.obs(
                                        now,
                                        ObsEvent::QuantumEnd {
                                            node,
                                            job,
                                            rank,
                                            reason: QuantumEndReason::Preempted,
                                        },
                                    );
                                    if self.procs[pk.idx()].remaining.is_zero() {
                                        match self.complete_phase(pk, now, sched) {
                                            PhaseLoad::NeedCpu => {
                                                self.requeue_ready(pk, now)
                                            }
                                            PhaseLoad::Blocked => {}
                                            PhaseLoad::Finished => {
                                                self.finish_process(pk, now, sched)
                                            }
                                        }
                                    } else {
                                        self.procs[pk.idx()].state = PState::Ready;
                                    }
                                    self.dispatch(node, now, sched);
                                }
                            }
                        }
                    }
                    _ => {}
                }
            } else if state == PState::Ready {
                self.nodes[node as usize].cpu.low.push_back(pk);
                self.note_ready_depth(node, now);
                self.dispatch(node, now, sched);
            }
        }
    }

    // ------------------------------------------------------------------
    // CPU scheduling
    // ------------------------------------------------------------------

    /// Enqueue high-priority work on a node, preempting low-priority work.
    fn enqueue_high(&mut self, node: u32, task: HandlerTask, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        if let HandlerAction::HopArrived(m) = task.action {
            self.ref_msg(m);
        }
        self.nodes[node as usize].cpu.high.push_back(task);
        match self.nodes[node as usize].cpu.running {
            None => self.dispatch(node, now, sched),
            Some(Running { kind: RunKind::Low(pk), work_started, .. }) => {
                // Preempt: account partial progress; the process loses the
                // rest of its quantum (T805 rule) and requeues at the tail.
                let cpu = &mut self.nodes[node as usize].cpu;
                cpu.preemptions += 1;
                cpu.running = None;
                cpu.bump_seq();
                if let Some(h) = cpu.slice_timer.take() {
                    sched.cancel_timer(h);
                }
                let elapsed = now.saturating_since(work_started);
                self.record_compute(pk, work_started, now);
                let p = &mut self.procs[pk.idx()];
                let used = elapsed.min(p.remaining);
                p.remaining -= used;
                p.cpu_time += used;
                let (job, rank) = (p.job.0, p.rank.0);
                self.obs(
                    now,
                    ObsEvent::QuantumEnd {
                        node,
                        job,
                        rank,
                        reason: QuantumEndReason::Preempted,
                    },
                );
                if self.procs[pk.idx()].remaining.is_zero() {
                    // The phase actually completed at this very instant;
                    // treat it as a normal boundary.
                    match self.complete_phase(pk, now, sched) {
                        PhaseLoad::NeedCpu => self.requeue_ready(pk, now),
                        PhaseLoad::Blocked => {}
                        PhaseLoad::Finished => self.finish_process(pk, now, sched),
                    }
                } else {
                    self.requeue_ready(pk, now);
                }
                self.dispatch(node, now, sched);
            }
            Some(Running { kind: RunKind::High(_), .. }) => {
                // High-priority work runs to completion; the new task waits
                // its turn in FIFO order.
            }
        }
    }

    /// Start the next item on an idle CPU.
    fn dispatch(&mut self, node: u32, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        let cpu = &mut self.nodes[node as usize].cpu;
        if cpu.running.is_some() || cpu.hold {
            return;
        }
        if let Some(task) = cpu.high.pop_front() {
            let seq = cpu.bump_seq();
            let work_started = now + self.cfg.ctx_switch_high;
            let end = work_started + task.cost;
            cpu.running = Some(Running {
                kind: RunKind::High(task),
                work_started,
                quantum_end: end,
                seq,
            });
            cpu.handler_runs += 1;
            cpu.busy.set(now, 1.0);
            cpu.slice_timer = Some(sched.schedule_timer_at(end, Event::SliceEnd { node, seq }));
            self.note_cpu_busy(node, now, 1.0);
            let (HandlerAction::HopArrived(msg) | HandlerAction::PacketRelay(msg)) =
                task.action;
            self.obs(now, ObsEvent::HandlerStart { node, msg: msg.0 });
            return;
        }
        let Some(pk) = cpu.low.pop_front() else {
            cpu.busy.set(now, 0.0);
            self.note_cpu_busy(node, now, 0.0);
            return;
        };
        self.note_ready_depth(node, now);
        let cpu = &mut self.nodes[node as usize].cpu;
        let seq = cpu.bump_seq();
        cpu.ctx_switches += 1;
        let p = &mut self.procs[pk.idx()];
        debug_assert_eq!(p.state, PState::Ready, "dispatching non-ready process");
        p.state = PState::Running;
        let work_started = now + self.cfg.ctx_switch_low;
        let quantum_end = work_started + p.quantum;
        let end = quantum_end.min(work_started + p.remaining);
        let (job, rank) = (p.job.0, p.rank.0);
        let cpu = &mut self.nodes[node as usize].cpu;
        cpu.running = Some(Running {
            kind: RunKind::Low(pk),
            work_started,
            quantum_end,
            seq,
        });
        cpu.busy.set(now, 1.0);
        cpu.slice_timer = Some(sched.schedule_timer_at(end, Event::SliceEnd { node, seq }));
        self.note_cpu_busy(node, now, 1.0);
        self.note_wheel_depth(now, sched);
        self.obs(now, ObsEvent::QuantumStart { node, job, rank });
    }

    fn on_slice_end(&mut self, node: u32, seq: u64, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        let cpu = &mut self.nodes[node as usize].cpu;
        let Some(running) = cpu.running else {
            return; // stale
        };
        if running.seq != seq {
            return; // stale
        }
        cpu.running = None;
        cpu.slice_timer = None;
        match running.kind {
            RunKind::High(task) => {
                if self.timeline.is_enabled() {
                    let (HandlerAction::HopArrived(msg) | HandlerAction::PacketRelay(msg)) =
                        task.action;
                    let job = self.messages[msg.idx()].as_ref().map(|m| m.job);
                    self.timeline.record(Span {
                        kind: SpanKind::Handler,
                        node,
                        job,
                        proc_: None,
                        rank: None,
                        start: running.work_started,
                        end: now,
                    });
                }
                let (HandlerAction::HopArrived(msg) | HandlerAction::PacketRelay(msg)) =
                    task.action;
                self.obs(now, ObsEvent::HandlerEnd { node, msg: msg.0 });
                if let HandlerAction::HopArrived(m) = task.action {
                    self.unref_msg(m);
                    // A killed job's handler still burned its CPU cost
                    // (recovery is not free) but must not act on the slot.
                    let cancelled = match self.messages[m.idx()].as_ref() {
                        Some(mm) => mm.cancelled,
                        None => true,
                    };
                    if cancelled {
                        self.maybe_reclaim(m);
                        self.dispatch(node, now, sched);
                        return;
                    }
                }
                self.run_handler_action(task.action, node, now, sched);
                self.dispatch(node, now, sched);
            }
            RunKind::Low(pk) => {
                let elapsed = now.saturating_since(running.work_started);
                self.record_compute(pk, running.work_started, now);
                let p = &mut self.procs[pk.idx()];
                let used = elapsed.min(p.remaining);
                p.remaining -= used;
                p.cpu_time += used;
                let (job, rank) = (p.job.0, p.rank.0);
                let quantum_end = |reason| ObsEvent::QuantumEnd { node, job, rank, reason };
                if p.remaining.is_zero() {
                    // Advancing the program can have re-entrant side effects
                    // (self-send handlers, wakeups) that would otherwise
                    // dispatch onto this CPU while we still own the decision.
                    self.nodes[node as usize].cpu.hold = true;
                    let load = self.complete_phase(pk, now, sched);
                    self.nodes[node as usize].cpu.hold = false;
                    match load {
                        PhaseLoad::NeedCpu => {
                            let quantum_left = now < running.quantum_end;
                            let high_waiting =
                                !self.nodes[node as usize].cpu.high.is_empty();
                            if quantum_left && !high_waiting {
                                // Quantum not exhausted and nothing urgent:
                                // keep running.
                                let p = &mut self.procs[pk.idx()];
                                p.state = PState::Running;
                                let end = running.quantum_end.min(now + p.remaining);
                                let cpu = &mut self.nodes[node as usize].cpu;
                                let seq = cpu.bump_seq();
                                cpu.running = Some(Running {
                                    kind: RunKind::Low(pk),
                                    work_started: now,
                                    quantum_end: running.quantum_end,
                                    seq,
                                });
                                cpu.slice_timer = Some(sched.schedule_timer_at(end, Event::SliceEnd { node, seq }));
                                // The slice continues (same process, same
                                // quantum): no end event.
                                return;
                            }
                            let reason = if quantum_left {
                                QuantumEndReason::Preempted
                            } else {
                                QuantumEndReason::Expired
                            };
                            self.obs(now, quantum_end(reason));
                            self.requeue_ready(pk, now);
                            let cpu = &mut self.nodes[node as usize].cpu;
                            if quantum_left {
                                cpu.preemptions += 1;
                            } else {
                                cpu.quantum_expiries += 1;
                            }
                        }
                        PhaseLoad::Blocked => {
                            self.obs(now, quantum_end(QuantumEndReason::Blocked));
                        }
                        PhaseLoad::Finished => {
                            self.obs(now, quantum_end(QuantumEndReason::Completed));
                            self.finish_process(pk, now, sched)
                        }
                    }
                } else {
                    // Quantum expired mid-phase: round-robin requeue.
                    self.obs(now, quantum_end(QuantumEndReason::Expired));
                    self.requeue_ready(pk, now);
                    self.nodes[node as usize].cpu.quantum_expiries += 1;
                }
                self.dispatch(node, now, sched);
            }
        }
    }

    // ------------------------------------------------------------------
    // Messaging
    // ------------------------------------------------------------------

    /// Place a message in the slab, reusing a retired slot when one is
    /// free. Returns the id (also written into the message).
    fn alloc_msg(&mut self, mut m: Message) -> MsgId {
        match self.free_msgs.pop() {
            Some(i) => {
                let id = MsgId(i);
                m.id = id;
                debug_assert!(self.messages[id.idx()].is_none(), "slot still live");
                self.messages[id.idx()] = Some(m);
                id
            }
            None => {
                let id = MsgId(self.messages.len() as u32);
                m.id = id;
                self.messages.push(Some(m));
                self.msg_gen.push(0);
                self.escape_timers.push(None);
                self.fault_timers.push(None);
                id
            }
        }
    }

    /// Retire a message's slot for reuse and invalidate outstanding timers.
    fn free_msg(&mut self, id: MsgId) {
        self.msg_gen[id.idx()] = self.msg_gen[id.idx()].wrapping_add(1);
        self.escape_timers[id.idx()] = None;
        self.fault_timers[id.idx()] = None;
        self.free_msgs.push(id.0);
    }

    /// Current size of the message slab (its high-water mark: slots are
    /// recycled, so this is the peak number of messages simultaneously
    /// retained, not the total ever sent).
    pub fn message_arena_len(&self) -> usize {
        self.messages.len()
    }

    /// Create the message for the `Send` op at the process's `pc` and claim
    /// its source buffer. Returns `true` if injection proceeded; `false` if
    /// the process must block until the buffer is granted.
    fn begin_injection(&mut self, pk: ProcKey, now: SimTime, sched: &mut impl EventScheduler<Event>) -> bool {
        let (job, from, node, to, bytes, tag) = {
            let p = &self.procs[pk.idx()];
            let Some(Op::Send { to, bytes, tag }) = p.current_op().cloned() else {
                panic!("begin_injection on non-send op");
            };
            (p.job, p.rank, p.node, to, bytes, tag)
        };
        let dst_node = self.jobs[job.idx()].placement[to.idx()];
        let hops = u32::try_from(
            self.net
                .hops(node, dst_node)
                .expect("job placement spans partitions"),
        )
        .expect("hop count exceeds u32");
        let id = self.alloc_msg(Message {
            id: MsgId(0), // overwritten by alloc_msg
            job,
            from,
            to,
            bytes,
            tag,
            src_node: node,
            dst_node,
            hops,
            at_node: node,
            front_node: node,
            done_node: node,
            edges_done: 0,
            edges_started: 0,
            injected_at: now,
            buffered_on: None,
            attempts: 0,
            corrupt: false,
            timed_out: false,
            cancelled: false,
            live_refs: 0,
        });
        self.counters.messages_sent += 1;
        self.counters.bytes_sent += bytes;
        self.obs(
            now,
            ObsEvent::MsgSend {
                msg: id.0,
                job: job.0,
                src: node,
                dst: dst_node,
                bytes: u32::try_from(bytes).unwrap_or(u32::MAX),
            },
        );
        let buf = bytes + self.cfg.msg_header_bytes;
        let waiter = match self.cfg.send_mode {
            SendMode::Async => AllocWaiter::PendingSend(id),
            SendMode::Blocking => AllocWaiter::Sender(pk),
        };
        match self.nodes[node as usize].mmu.request(now, buf, waiter) {
            AllocResult::Granted => {
                self.messages[id.idx()].as_mut().expect("just created").buffered_on =
                    Some(node);
                self.route_message(id, now, sched);
                true
            }
            AllocResult::Queued => {
                self.counters.send_blocks += 1;
                match self.cfg.send_mode {
                    // Asynchronous mailbox semantics: the message waits in
                    // the MMU queue; the process moves on immediately.
                    SendMode::Async => true,
                    SendMode::Blocking => {
                        self.procs[pk.idx()].pending_msg = Some(id);
                        false
                    }
                }
            }
        }
    }

    /// An asynchronously queued send finally got its source buffer.
    fn start_pending_send(&mut self, msg: MsgId, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        let node = self.messages[msg.idx()]
            .as_ref()
            .expect("pending send dead")
            .src_node;
        self.messages[msg.idx()]
            .as_mut()
            .expect("pending send dead")
            .buffered_on = Some(node);
        self.route_message(msg, now, sched);
    }

    /// A blocked sender's buffer was granted: finish the injection and wake
    /// the process.
    fn finish_blocked_injection(&mut self, pk: ProcKey, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        let msg = self.procs[pk.idx()]
            .pending_msg
            .take()
            .expect("sender unblocked with no pending message");
        let node = self.procs[pk.idx()].node;
        self.messages[msg.idx()]
            .as_mut()
            .expect("pending message alive")
            .buffered_on = Some(node);
        self.route_message(msg, now, sched);
        self.procs[pk.idx()].pc += 1;
        self.make_runnable(pk, now, sched);
    }

    /// Arm (or re-arm) the delivery timeout for the attempt now starting.
    /// No-op unless the fault plan sets `retry.msg_timeout`. The timeout
    /// clock starts when an attempt leaves the source buffer, so a send
    /// still queued in the source MMU is not yet covered (it is not in
    /// flight; memory pressure is the senders' own back-pressure).
    fn arm_timeout(&mut self, msg: MsgId, sched: &mut impl EventScheduler<Event>) {
        let Some(t) = self.cfg.faults.retry.msg_timeout else {
            return;
        };
        if let Some(h) = self.fault_timers[msg.idx()].take() {
            sched.cancel_timer(h);
        }
        let gen = self.msg_gen[msg.idx()];
        self.fault_timers[msg.idx()] =
            Some(sched.schedule_timer(t, Event::MsgTimeout { msg, gen }));
    }

    /// Start moving a freshly buffered-at-source message.
    fn route_message(&mut self, msg: MsgId, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        self.arm_timeout(msg, sched);
        let (is_self, node) = {
            let m = self.messages[msg.idx()].as_ref().expect("routing dead message");
            (m.at_destination(), m.current_node())
        };
        if is_self {
            // Same-node sends still traverse the mailbox machinery (§5.2):
            // a high-priority delivery handler on the local CPU.
            self.counters.self_sends += 1;
            let bytes = self.messages[msg.idx()].as_ref().expect("dead message").bytes;
            self.enqueue_high(
                node,
                HandlerTask {
                    cost: self.cfg.self_delivery_cost(bytes),
                    action: HandlerAction::HopArrived(msg),
                },
                now,
                sched,
            );
            return;
        }
        match self.cfg.switching {
            Switching::StoreAndForward => self.saf_next_hop(msg, now, sched),
            // Pipelined modes: start the first path edge; the rest follow.
            Switching::PacketizedSaf | Switching::CutThrough => {
                self.enqueue_channel(msg, now, sched)
            }
            Switching::Wormhole => self.start_worm(msg, now, sched),
        }
    }

    /// Store-and-forward: reserve a buffer at the next node, then queue on
    /// the connecting channel.
    fn saf_next_hop(&mut self, msg: MsgId, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        let (next, bytes) = {
            let m = self.messages[msg.idx()].as_ref().expect("dead message");
            let next = self
                .net
                .next_hop(m.at_node, m.dst_node)
                .expect("saf_next_hop at destination");
            (next, m.bytes)
        };
        let buf = bytes + self.cfg.msg_header_bytes;
        let granted = match self.cfg.flow {
            FlowControl::InjectionLimited => {
                self.nodes[next as usize].mmu.force_alloc(now, buf);
                true
            }
            FlowControl::Reserved | FlowControl::ReservedStrict => {
                let res = matches!(
                    self.nodes[next as usize]
                        .mmu
                        .request(now, buf, AllocWaiter::Transit(msg)),
                    AllocResult::Granted
                );
                if !res && self.cfg.flow == FlowControl::Reserved {
                    let gen = self.msg_gen[msg.idx()];
                    self.escape_timers[msg.idx()] = Some(sched.schedule_timer(
                        self.cfg.transit_escape_after,
                        Event::AllocEscape { node: next, msg, gen },
                    ));
                }
                res
            }
        };
        if granted {
            self.enqueue_channel(msg, now, sched);
        }
        // else: the Transit waiter resumes when memory frees (or via the
        // emergency-pool escape under FlowControl::Reserved).
    }

    /// A starved transit request escapes to the emergency pool.
    fn on_alloc_escape(&mut self, node: u32, msg: MsgId, gen: u32, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        if self.msg_gen[msg.idx()] != gen {
            return; // the slot was recycled; this timer's message is gone
        }
        self.escape_timers[msg.idx()] = None;
        let Some(bytes) = self.nodes[node as usize].mmu.cancel_transit(msg) else {
            return; // already granted normally
        };
        let mmu = &mut self.nodes[node as usize].mmu;
        mmu.delayed_grants += 1;
        mmu.total_wait += self.cfg.transit_escape_after;
        mmu.force_alloc(now, bytes);
        self.counters.transit_escapes += 1;
        self.enqueue_channel(msg, now, sched);
    }

    /// Put a message on the channel for its current SAF hop (or CT edge),
    /// starting the transfer if the channel is free.
    fn enqueue_channel(&mut self, msg: MsgId, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        let pipelined = matches!(
            self.cfg.switching,
            Switching::PacketizedSaf | Switching::CutThrough
        );
        let (chan, to) = {
            let m = self.messages[msg.idx()].as_ref().expect("dead message");
            // Pipelined: the next edge starts from wherever the previous
            // started edge leads (`front_node`); SAF moves the single
            // buffered copy from `at_node`.
            let from = if pipelined { m.front_node } else { m.at_node };
            let to = self
                .net
                .next_hop(from, m.dst_node)
                .expect("enqueue_channel at destination");
            let chan = self
                .net
                .channel_id(from, to)
                .unwrap_or_else(|| panic!("no channel {from}->{to}"));
            (chan, to)
        };
        if pipelined {
            let m = self.messages[msg.idx()].as_mut().expect("dead message");
            m.front_node = to;
            m.edges_started += 1;
        }
        let ch = &mut self.channels[chan];
        if ch.busy_with.is_none() && ch.up {
            self.start_transfer(chan, msg, now, sched);
        } else {
            ch.queue.push_back(msg);
        }
    }

    fn start_transfer(&mut self, chan: usize, msg: MsgId, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        let bytes = self.messages[msg.idx()].as_ref().expect("dead message").bytes;
        self.ref_msg(msg); // the wire holds a reference until TransferDone
        let ch = &mut self.channels[chan];
        debug_assert!(ch.busy_with.is_none());
        ch.busy_with = Some(msg);
        ch.busy.set(now, 1.0);
        let dur = self.cfg.transfer_time(bytes);
        sched.schedule(dur, Event::TransferDone { chan: chan as u32 });
        self.note_link_busy(chan as u32, now, 1.0);
        self.obs(now, ObsEvent::HopStart { msg: msg.0, chan: chan as u32 });
        // Pipelining: the next edge starts one header/packet latency after
        // this one starts (if the message has further to go).
        let offset = match self.cfg.switching {
            Switching::CutThrough => Some(self.cfg.cut_through_header),
            Switching::PacketizedSaf => Some(self.cfg.packet_latency()),
            // Wormhole traffic never reaches `start_transfer` (flit ticks
            // drive it), so only the non-pipelined arm below is live.
            Switching::StoreAndForward | Switching::Wormhole => None,
        };
        if let Some(offset) = offset {
            let (started, hops) = {
                let m = self.messages[msg.idx()].as_ref().expect("dead message");
                (m.edges_started as usize, m.hops())
            };
            if started < hops {
                self.ref_msg(msg); // the scheduled edge start references the slot
                sched.schedule(offset, Event::HopStart { msg, edge: started });
            }
        }
    }

    fn on_transfer_done(&mut self, chan: u32, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        let chan = chan as usize;
        let msg = {
            let ch = &mut self.channels[chan];
            let msg = ch.busy_with.take().expect("TransferDone on idle channel");
            ch.busy.set(now, 0.0);
            ch.transfers += 1;
            msg
        };
        self.note_link_busy(chan as u32, now, 0.0);
        self.obs(now, ObsEvent::HopEnd { msg: msg.0, chan: chan as u32 });
        let (bytes, cancelled) = {
            let m = self.messages[msg.idx()].as_ref().expect("dead message");
            (m.bytes, m.cancelled)
        };
        self.channels[chan].bytes_carried += bytes;
        self.counters.hop_transfers += 1;
        self.unref_msg(msg);

        // Drop lottery: one draw per completed hop while the plan declares
        // a drop probability. Corruption is detected by the delivery
        // checksum at the destination, so the damaged message still
        // traverses (and congests) the rest of its route.
        if self.cfg.faults.drop_prob > 0.0 {
            let corrupt = self.drop_rngs[chan].uniform01() < self.cfg.faults.drop_prob;
            if corrupt && !cancelled {
                if let Some(m) = self.messages[msg.idx()].as_mut() {
                    m.corrupt = true;
                }
            }
        }

        // Hand the channel to the next queued message *before* releasing any
        // memory: a release can grant a blocked transit message that would
        // otherwise race this queue for the just-freed channel. A link that
        // went down mid-transfer finishes the wire but starts nothing new.
        if self.channels[chan].up {
            if let Some(next) = self.channels[chan].queue.pop_front() {
                self.start_transfer(chan, next, now, sched);
            }
        }

        if cancelled {
            // A killed job's transfer completed on the wire. Under
            // store-and-forward the hop had already reserved its buffer on
            // the receiving node (untracked by `buffered_on`): return it.
            // All advancement and handler work is skipped.
            if self.cfg.switching == Switching::StoreAndForward {
                let to = self.channels[chan].to;
                self.release_memory(to, bytes + self.cfg.msg_header_bytes, now, sched);
            }
            self.maybe_reclaim(msg);
            return;
        }

        match self.cfg.switching {
            Switching::StoreAndForward => {
                // Free the buffer on the node the message just left, advance
                // it, and run the arrival handler on the new node.
                let (prev, bytes) = {
                    let m = self.messages[msg.idx()].as_mut().expect("dead message");
                    let prev = m.at_node;
                    m.at_node = self
                        .net
                        .next_hop(prev, m.dst_node)
                        .expect("transfer completed at destination");
                    m.buffered_on = Some(m.at_node);
                    (prev, m.bytes)
                };
                self.release_memory(prev, bytes + self.cfg.msg_header_bytes, now, sched);
                let (node, cost) = {
                    let m = self.messages[msg.idx()].as_ref().expect("dead message");
                    (m.current_node(), self.cfg.handler_cost(m.bytes))
                };
                self.enqueue_high(
                    node,
                    HandlerTask {
                        cost,
                        action: HandlerAction::HopArrived(msg),
                    },
                    now,
                    sched,
                );
            }
            Switching::PacketizedSaf | Switching::CutThrough => {
                let packetized = self.cfg.switching == Switching::PacketizedSaf;
                // Pipelined edges serialize per channel, so they complete
                // in path order: the head has now fully crossed to the node
                // one hop past `done_node`.
                let (edges_done, hops, bytes, src, via) = {
                    let m = self.messages[msg.idx()].as_mut().expect("dead message");
                    m.edges_done += 1;
                    m.done_node = self
                        .net
                        .next_hop(m.done_node, m.dst_node)
                        .expect("edge completed past destination");
                    (m.edges_done as usize, m.hops(), m.bytes, m.src_node, m.done_node)
                };
                if edges_done == 1 {
                    // The message has fully left the source: free its buffer.
                    self.release_memory(src, bytes + self.cfg.msg_header_bytes, now, sched);
                    self.messages[msg.idx()].as_mut().expect("dead").buffered_on = None;
                }
                if edges_done == hops {
                    // Head reached the destination; deliver there.
                    let dst = {
                        let m = self.messages[msg.idx()].as_mut().expect("dead message");
                        m.at_node = m.dst_node;
                        m.current_node()
                    };
                    if packetized {
                        // The destination buffers the message until the
                        // receiver consumes it. Packet buffers are granted
                        // from the system pool (overdraft): per-packet
                        // back-pressure is below this model's resolution.
                        self.nodes[dst as usize]
                            .mmu
                            .force_alloc(now, bytes + self.cfg.msg_header_bytes);
                        self.messages[msg.idx()].as_mut().expect("dead").buffered_on =
                            Some(dst);
                    }
                    self.enqueue_high(
                        dst,
                        HandlerTask {
                            cost: self.cfg.handler_cost(bytes),
                            action: HandlerAction::HopArrived(msg),
                        },
                        now,
                        sched,
                    );
                } else if packetized {
                    // Intermediate node: every byte crossed its memory; the
                    // relay CPU cost preempts local compute but does not
                    // gate the (already pipelined) next edge.
                    self.enqueue_high(
                        via,
                        HandlerTask {
                            cost: self.cfg.handler_cost(bytes),
                            action: HandlerAction::PacketRelay(msg),
                        },
                        now,
                        sched,
                    );
                }
            }
            Switching::Wormhole => {
                unreachable!("wormhole moves flits via FlitTick, never TransferDone")
            }
        }
    }

    fn on_hop_start(&mut self, msg: MsgId, _edge: usize, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        // Cut-through pipelined edge start.
        self.unref_msg(msg);
        let cancelled = match self.messages[msg.idx()].as_ref() {
            Some(m) => m.cancelled,
            None => true,
        };
        if cancelled {
            self.maybe_reclaim(msg);
            return;
        }
        self.enqueue_channel(msg, now, sched);
    }

    // ------------------------------------------------------------------
    // Wormhole switching (`Switching::Wormhole` only)
    //
    // A message travels as a worm of `cfg.worm_flits(bytes)` flits that
    // holds a virtual channel on every link between head and tail. Each
    // channel with a movable flit runs a `FlitTick` chain: one tick per
    // `cfg.flit_time()`, each tick arbitrating the physical link round-
    // robin among its VCs and moving exactly one flit under credit-based
    // flow control. Deadlock freedom rests on the escape-class assignment
    // from `parsched_topology::flow` (dateline / phase rules), whose
    // channel-dependency graph is acyclic for every shipped topology.
    // ------------------------------------------------------------------

    /// Wormhole state (tests and exporters; `None` unless
    /// `cfg.switching == Switching::Wormhole`).
    pub fn wormhole(&self) -> Option<&WormholeState> {
        self.wormhole.as_ref()
    }

    /// Sample the machine-wide count of held VCs into the metrics registry.
    #[inline]
    fn note_vc_occupancy(&mut self, now: SimTime) {
        if self.metrics.is_some() {
            let occ = self.wormhole.as_ref().map_or(0, |wh| wh.occupied_vcs());
            if let Some(m) = self.metrics.as_deref_mut() {
                m.set_vc_occupancy(now, occ);
            }
        }
    }

    /// Sample the cumulative credit-stall count into the metrics registry.
    #[inline]
    fn note_credit_stalls(&mut self, now: SimTime) {
        if self.metrics.is_some() {
            let stalls = self.counters.credit_stalls;
            if let Some(m) = self.metrics.as_deref_mut() {
                m.set_credit_stalls(now, stalls);
            }
        }
    }

    /// Route index of the link of `msg`'s worm that runs over channel
    /// `chan` (routes never revisit a node, so the link is unique).
    fn worm_link_on(&self, msg: MsgId, chan: usize) -> usize {
        let wh = self.wormhole.as_ref().expect("wormhole state");
        let w = wh.worm(msg).expect("message has no worm");
        w.links
            .iter()
            .position(|l| l.chan == chan as u32)
            .expect("worm does not cross this channel")
    }

    /// Build the worm for a freshly buffered-at-source message and request
    /// a virtual channel for its first link.
    fn start_worm(&mut self, msg: MsgId, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        let (src, dst, bytes) = {
            let m = self.messages[msg.idx()].as_ref().expect("dead message");
            (m.src_node, m.dst_node, m.bytes)
        };
        let (p, base, local) = self
            .net
            .local_route(src, dst)
            .expect("job placement spans partitions");
        let kind = self.net.partition_kind(p);
        let classes = vc_classes(kind, self.net.partition_size(), NodeId(src - base), &local);
        let mut links = Vec::with_capacity(local.len());
        let mut prev = src;
        for (i, hop) in local.iter().enumerate() {
            let to = base + hop.0;
            let chan = self
                .net
                .channel_id(prev, to)
                .unwrap_or_else(|| panic!("no channel {prev}->{to}"));
            links.push(WormLink { chan: chan as u32, class: classes[i], vc: None, sent: 0 });
            prev = to;
        }
        let total_flits = self.cfg.worm_flits(bytes);
        self.counters.flits_injected += total_flits;
        self.ref_msg(msg); // the worm holds a reference until teardown/drain
        self.wormhole
            .as_mut()
            .expect("wormhole state")
            .insert(msg, Worm { total_flits, links });
        self.request_vc(msg, 0, now, sched);
    }

    /// Ask for a VC of the link's escape class: granted immediately when
    /// the link is up and the class band has a free VC, otherwise the worm
    /// queues in the class's FIFO (head-of-line blocking, the wormhole
    /// hazard the escape classes keep acyclic).
    fn request_vc(&mut self, msg: MsgId, link: usize, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        let (chan, class) = {
            let wh = self.wormhole.as_ref().expect("wormhole state");
            let l = &wh.worm(msg).expect("worm gone").links[link];
            (l.chan as usize, l.class)
        };
        let up = self.channels[chan].up;
        let granted = {
            let wh = self.wormhole.as_mut().expect("wormhole state");
            if up {
                wh.chans[chan].alloc_vc(class, msg)
            } else {
                None // a downed link grants nothing until its window closes
            }
        };
        match granted {
            Some(vc) => {
                let wh = self.wormhole.as_mut().expect("wormhole state");
                wh.held += 1;
                wh.worm_mut(msg).expect("worm gone").links[link].vc = Some(vc);
                self.counters.vc_allocs += 1;
                self.obs(now, ObsEvent::WormVcAlloc { msg: msg.0, chan: chan as u32, vc });
                self.note_vc_occupancy(now);
                self.ensure_flit_ticking(chan, now, sched);
            }
            None => {
                let wh = self.wormhole.as_mut().expect("wormhole state");
                wh.chans[chan].waiting[class as usize].push_back(msg);
                self.obs(now, ObsEvent::WormStall { msg: msg.0, chan: chan as u32 });
            }
        }
    }

    /// Whether any VC of `chan` holds a worm that can move a flit now.
    fn chan_can_transmit(&self, chan: usize) -> bool {
        let wh = self.wormhole.as_ref().expect("wormhole state");
        wh.chans[chan].holders().any(|msg| {
            let w = wh.worm(msg).expect("holder has worm");
            wh.can_transmit(w, self.worm_link_on(msg, chan))
        })
    }

    /// Start a `FlitTick` chain for the channel unless one is already live
    /// (or the link is down, or nothing can move). The per-channel chain
    /// is what serializes the physical link: one flit per flit time, no
    /// matter how many VCs are resident.
    fn ensure_flit_ticking(&mut self, chan: usize, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        if !self.channels[chan].up
            || self.wormhole.as_ref().expect("wormhole state").chans[chan].ticking
            || !self.chan_can_transmit(chan)
        {
            return;
        }
        let wh = self.wormhole.as_mut().expect("wormhole state");
        wh.chans[chan].ticking = true;
        let dt = wh.flit_time;
        self.channels[chan].busy.set(now, 1.0);
        self.note_link_busy(chan as u32, now, 1.0);
        sched.schedule(dt, Event::FlitTick { chan: chan as u32 });
    }

    /// Park a channel's tick chain (nothing movable); whatever unblocks it
    /// — a credit return, a VC grant, a link-up — re-arms it.
    fn stop_flit_ticking(&mut self, chan: usize, now: SimTime) {
        self.wormhole.as_mut().expect("wormhole state").chans[chan].ticking = false;
        self.channels[chan].busy.set(now, 0.0);
        self.note_link_busy(chan as u32, now, 0.0);
    }

    /// One flit time elapsed on a ticking channel: pick the next resident
    /// worm round-robin, move one of its flits, and keep ticking while any
    /// flit remains movable.
    fn on_flit_tick(&mut self, chan: u32, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        let ci = chan as usize;
        let picked = {
            let wh = self.wormhole.as_ref().expect("wormhole state");
            let vch = &wh.chans[ci];
            debug_assert!(vch.ticking, "FlitTick on a parked channel");
            let nvc = vch.vcs.len();
            let mut picked = None;
            if self.channels[ci].up {
                for off in 0..nvc {
                    let vc = (vch.rr as usize + off) % nvc;
                    let Some(msg) = vch.vcs[vc] else { continue };
                    let w = wh.worm(msg).expect("holder has worm");
                    let link = self.worm_link_on(msg, ci);
                    if wh.can_transmit(w, link) {
                        picked = Some((vc, msg, link));
                        break;
                    }
                }
            }
            picked
        };
        let Some((vc, msg, link)) = picked else {
            // Nothing movable. Residents blocked purely on the credit
            // window are genuine back-pressure stalls; account them once
            // per parking, not per tick.
            let stalled: Vec<MsgId> = {
                let wh = self.wormhole.as_ref().expect("wormhole state");
                wh.chans[ci]
                    .holders()
                    .filter(|&m| {
                        let w = wh.worm(m).expect("holder has worm");
                        wh.credit_blocked(w, self.worm_link_on(m, ci))
                    })
                    .collect()
            };
            for m in stalled {
                self.counters.credit_stalls += 1;
                self.obs(now, ObsEvent::WormStall { msg: m.0, chan });
            }
            self.note_credit_stalls(now);
            self.stop_flit_ticking(ci, now);
            return;
        };
        {
            let wh = self.wormhole.as_mut().expect("wormhole state");
            let nvc = wh.chans[ci].vcs.len();
            wh.chans[ci].rr = ((vc + 1) % nvc) as u8;
        }
        self.transmit_flit(msg, link, now, sched);
        if self.chan_can_transmit(ci) {
            let dt = self.wormhole.as_ref().expect("wormhole state").flit_time;
            sched.schedule(dt, Event::FlitTick { chan });
        } else {
            self.stop_flit_ticking(ci, now);
        }
    }

    /// Move one flit of `msg` across route link `link`, with credit
    /// accounting, head/tail protocol steps, and neighbour wake-ups.
    fn transmit_flit(&mut self, msg: MsgId, link: usize, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        let (chan, sent, total, len, prev_chan, next_chan) = {
            let wh = self.wormhole.as_mut().expect("wormhole state");
            let w = wh.worm_mut(msg).expect("worm gone");
            w.links[link].sent += 1;
            (
                w.links[link].chan,
                w.links[link].sent,
                w.total_flits,
                w.links.len(),
                link.checked_sub(1).map(|i| w.links[i].chan),
                w.links.get(link + 1).map(|l| l.chan),
            )
        };
        self.counters.credits_issued += 1;
        if link > 0 {
            // The flit left the previous link's VC buffer: credit back.
            self.counters.credits_returned += 1;
        }
        if link + 1 == len {
            // Ejection into destination memory drains the last buffer
            // immediately (node memory is not credit-limited).
            self.counters.credits_returned += 1;
            self.counters.flits_ejected += 1;
        }
        if sent == 1 {
            self.on_worm_head(msg, link, chan, now, sched);
        }
        if sent == total {
            self.on_worm_tail(msg, link, chan, now, sched);
        }
        // A flit arrival can unblock the next link; a credit return can
        // unblock the previous one.
        if let Some(pc) = prev_chan {
            self.ensure_flit_ticking(pc as usize, now, sched);
        }
        if let Some(nc) = next_chan {
            self.ensure_flit_ticking(nc as usize, now, sched);
        }
    }

    /// The worm's head crossed a link for the first time: advance the head
    /// cursors and request a VC for the next link.
    fn on_worm_head(&mut self, msg: MsgId, link: usize, chan: u32, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        self.obs(now, ObsEvent::HopStart { msg: msg.0, chan });
        let to = self.channels[chan as usize].to;
        {
            let m = self.messages[msg.idx()].as_mut().expect("dead message");
            m.front_node = to;
            m.edges_started += 1;
        }
        let more = {
            let wh = self.wormhole.as_ref().expect("wormhole state");
            link + 1 < wh.worm(msg).expect("worm gone").links.len()
        };
        if more {
            self.request_vc(msg, link + 1, now, sched);
        }
    }

    /// The worm's tail crossed a link: the hop is complete — account it,
    /// free what the tail no longer occupies, and deliver at the end.
    fn on_worm_tail(&mut self, msg: MsgId, link: usize, chan: u32, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        let ci = chan as usize;
        self.obs(now, ObsEvent::HopEnd { msg: msg.0, chan });
        let bytes = self.messages[msg.idx()].as_ref().expect("dead message").bytes;
        self.channels[ci].transfers += 1;
        self.channels[ci].bytes_carried += bytes;
        self.counters.hop_transfers += 1;
        // Per-hop drop lottery, as under the other switching modes: the
        // per-channel substream draws once per completed hop.
        if self.cfg.faults.drop_prob > 0.0 {
            let corrupt = self.drop_rngs[ci].uniform01() < self.cfg.faults.drop_prob;
            if corrupt {
                if let Some(m) = self.messages[msg.idx()].as_mut() {
                    m.corrupt = true;
                }
            }
        }
        let to = self.channels[ci].to;
        let (done, hops) = {
            let m = self.messages[msg.idx()].as_mut().expect("dead message");
            m.edges_done += 1;
            m.done_node = to;
            (m.edges_done as usize, m.hops())
        };
        if link == 0 {
            // The tail left the source: the sender's buffered copy is gone.
            let released = self.messages[msg.idx()].as_mut().expect("dead").buffered_on.take();
            if let Some(node) = released {
                self.release_memory(node, bytes + self.cfg.msg_header_bytes, now, sched);
            }
        }
        if link > 0 {
            // The previous link's VC buffer has fully drained.
            self.release_worm_vc(msg, link - 1, now, sched);
        }
        if done == hops {
            self.release_worm_vc(msg, link, now, sched);
            self.finish_worm(msg, now, sched);
        }
    }

    /// Release the VC a worm holds on route link `link`, handing it to the
    /// head of the class's waiter FIFO (links in an outage window hand
    /// over nothing; `on_link_up` pumps their FIFOs instead).
    fn release_worm_vc(&mut self, msg: MsgId, link: usize, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        let (chan, vc) = {
            let wh = self.wormhole.as_mut().expect("wormhole state");
            let l = &mut wh.worm_mut(msg).expect("worm gone").links[link];
            (l.chan as usize, l.vc.take().expect("releasing unheld VC"))
        };
        let up = self.channels[chan].up;
        let granted = {
            let wh = self.wormhole.as_mut().expect("wormhole state");
            let granted = wh.chans[chan].release_vc(vc, up);
            if granted.is_none() {
                // A served waiter keeps the slot held; only a true free
                // drops the occupancy count.
                wh.held -= 1;
            }
            granted
        };
        if let Some(next) = granted {
            let next_link = self.worm_link_on(next, chan);
            let wh = self.wormhole.as_mut().expect("wormhole state");
            wh.worm_mut(next).expect("waiter has worm").links[next_link].vc = Some(vc);
            self.counters.vc_allocs += 1;
            self.obs(now, ObsEvent::WormVcAlloc { msg: next.0, chan: chan as u32, vc });
        }
        self.note_vc_occupancy(now);
        self.ensure_flit_ticking(chan, now, sched);
    }

    /// The whole worm reached the destination: retire it, buffer the
    /// message at the destination (system-pool overdraft, as under
    /// `PacketizedSaf`) and run the delivery handler.
    fn finish_worm(&mut self, msg: MsgId, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        let worm = self
            .wormhole
            .as_mut()
            .expect("wormhole state")
            .remove(msg)
            .expect("finishing a missing worm");
        debug_assert!(worm.links.iter().all(|l| l.vc.is_none()), "VC leak");
        debug_assert_eq!(worm.ejected(), worm.total_flits, "flits unaccounted");
        self.unref_msg(msg);
        let (dst, bytes) = {
            let m = self.messages[msg.idx()].as_mut().expect("dead message");
            m.at_node = m.dst_node;
            (m.dst_node, m.bytes)
        };
        self.nodes[dst as usize]
            .mmu
            .force_alloc(now, bytes + self.cfg.msg_header_bytes);
        self.messages[msg.idx()].as_mut().expect("dead").buffered_on = Some(dst);
        self.enqueue_high(
            dst,
            HandlerTask {
                cost: self.cfg.handler_cost(bytes),
                action: HandlerAction::HopArrived(msg),
            },
            now,
            sched,
        );
    }

    /// Tear an in-flight worm out of the network deterministically (link
    /// outage or job kill): released VCs pass to waiters, buffered flits
    /// return their credits, untransmitted and in-network flits are
    /// accounted dropped. Returns `false` when the message has no worm.
    /// The caller decides what happens to the message itself (retry
    /// protocol for outages; the kill sweep for dead jobs).
    fn drain_worm(&mut self, msg: MsgId, now: SimTime, sched: &mut impl EventScheduler<Event>) -> bool {
        if self.wormhole.as_ref().and_then(|wh| wh.worm(msg)).is_none() {
            return false;
        }
        // Yank an outstanding VC request from its waiter FIFO.
        {
            let wh = self.wormhole.as_mut().expect("wormhole state");
            if let Some(k) = wh.worm(msg).expect("checked").pending_vc_request() {
                let (chan, class) = {
                    let l = &wh.worm(msg).expect("checked").links[k];
                    (l.chan as usize, l.class as usize)
                };
                wh.chans[chan].waiting[class].retain(|&m| m != msg);
            }
        }
        // Hand every held VC over (front to back keeps grants ordered).
        let held: Vec<usize> = {
            let wh = self.wormhole.as_ref().expect("wormhole state");
            wh.worm(msg)
                .expect("checked")
                .links
                .iter()
                .enumerate()
                .filter_map(|(i, l)| l.vc.is_some().then_some(i))
                .collect()
        };
        for i in held {
            self.release_worm_vc(msg, i, now, sched);
        }
        let worm = self
            .wormhole
            .as_mut()
            .expect("wormhole state")
            .remove(msg)
            .expect("checked");
        self.counters.credits_returned += worm.buffered();
        self.counters.flits_dropped += worm.total_flits - worm.ejected();
        let chan = worm.links[worm.head_link()].chan;
        self.obs(now, ObsEvent::WormDrained { msg: msg.0, chan });
        self.unref_msg(msg);
        true
    }

    fn run_handler_action(&mut self, action: HandlerAction, node: u32, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        match action {
            HandlerAction::PacketRelay(_) => {
                // Pure CPU cost; the pipeline drives itself.
            }
            HandlerAction::HopArrived(msg) => {
                let at_dest = {
                    let m = self.messages[msg.idx()].as_ref().expect("dead message");
                    debug_assert_eq!(m.current_node(), node);
                    m.at_destination()
                };
                if at_dest {
                    self.deliver(msg, now, sched);
                } else {
                    self.saf_next_hop(msg, now, sched);
                }
            }
        }
    }

    /// Put a message in its destination mailbox and wake a blocked receiver.
    fn deliver(&mut self, msg: MsgId, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        // The attempt reached the destination: its delivery timeout (if
        // armed) is settled either way.
        if let Some(h) = self.fault_timers[msg.idx()].take() {
            sched.cancel_timer(h);
        }
        let (job, to, tag, dst) = {
            let m = self.messages[msg.idx()].as_ref().expect("dead message");
            (m.job, m.to, m.tag, m.dst_node)
        };
        if self.faults_on {
            // Delivery checksum + finite mailbox: a corrupted or stale
            // attempt (or one arriving at a full mailbox) is rejected and
            // retransmitted after backoff. No MsgDeliver is emitted for a
            // rejected attempt.
            let bad = {
                let m = self.messages[msg.idx()].as_ref().expect("dead message");
                m.corrupt || m.timed_out
            };
            let overflow = self
                .cfg
                .faults
                .mailbox_capacity
                .is_some_and(|cap| self.jobs[job.idx()].mailboxes[to.idx()].len() >= cap);
            if bad || overflow {
                self.retry_message(msg, now, sched);
                return;
            }
        }
        self.obs(
            now,
            ObsEvent::MsgDeliver {
                msg: msg.0,
                job: job.0,
                node: dst,
            },
        );
        self.jobs[job.idx()].mailboxes[to.idx()].push_back(msg);
        let pk = self.jobs[job.idx()].proc_keys[to.idx()];
        if self.procs[pk.idx()].state == PState::BlockedRecv(tag)
            && self.try_claim(pk, tag) {
                self.enqueue_ready(pk, now, sched);
            }
    }

    /// A receiver finished consuming a message: free its buffer and retire
    /// its slot for reuse.
    fn consume_message(&mut self, msg: MsgId, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        let m = self.messages[msg.idx()].take().expect("consuming dead message");
        self.free_msg(msg);
        self.counters.messages_consumed += 1;
        if self.timeline.is_enabled() {
            self.timeline.record(Span {
                kind: SpanKind::Message,
                node: m.dst_node,
                job: Some(m.job),
                proc_: None,
                rank: Some(m.to),
                start: m.injected_at,
                end: now,
            });
        }
        if let Some(node) = m.buffered_on {
            self.release_memory(node, m.bytes + self.cfg.msg_header_bytes, now, sched);
        }
    }

    // ------------------------------------------------------------------
    // Faults (every path below is unreachable under an empty FaultPlan)
    // ------------------------------------------------------------------

    /// A delivery attempt failed (corruption, timeout or mailbox
    /// overflow): release the buffered copy, reset the route cursors and
    /// schedule a retransmission from the source after exponential
    /// backoff — or kill the owning job once the retry budget is spent.
    /// The caller has already taken the slot's fault timer.
    fn retry_message(&mut self, msg: MsgId, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        let (job, attempts) = {
            let m = self.messages[msg.idx()].as_ref().expect("retrying dead message");
            (m.job, m.attempts + 1)
        };
        if attempts > self.cfg.faults.retry.max_retries {
            // Budget exhausted: the job cannot make progress without this
            // message. Fail-stop it; the sweep accounts the message as
            // dropped, so conservation still balances.
            self.kill_job(job, now, sched);
            return;
        }
        self.counters.retries += 1;
        let (released, bytes) = {
            let m = self.messages[msg.idx()].as_mut().expect("retrying dead message");
            m.attempts = attempts;
            m.corrupt = false;
            m.timed_out = false;
            m.at_node = m.src_node;
            m.front_node = m.src_node;
            m.done_node = m.src_node;
            m.edges_done = 0;
            m.edges_started = 0;
            (m.buffered_on.take(), m.bytes)
        };
        if let Some(node) = released {
            self.release_memory(node, bytes + self.cfg.msg_header_bytes, now, sched);
        }
        self.obs(now, ObsEvent::MsgRetry { msg: msg.0, attempt: attempts });
        let gen = self.msg_gen[msg.idx()];
        let backoff = self.cfg.faults.retry.backoff(attempts);
        self.fault_timers[msg.idx()] =
            Some(sched.schedule_timer(backoff, Event::MsgRetry { msg, gen }));
    }

    /// Backoff elapsed: retransmit from the source's retained copy. The
    /// buffer is granted from the system pool and no software send cost is
    /// re-charged — the link engine retransmits the copy the sender's
    /// original `Send` already paid for.
    fn on_msg_retry(&mut self, msg: MsgId, gen: u32, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        if self.msg_gen[msg.idx()] != gen {
            return; // the slot was recycled; this timer's message is gone
        }
        self.fault_timers[msg.idx()] = None;
        let src = match self.messages[msg.idx()].as_ref() {
            Some(m) if !m.cancelled => m.src_node,
            _ => return, // killed between backoff and retransmission
        };
        let bytes = self.messages[msg.idx()].as_ref().expect("checked").bytes;
        self.nodes[src as usize]
            .mmu
            .force_alloc(now, bytes + self.cfg.msg_header_bytes);
        self.messages[msg.idx()].as_mut().expect("checked").buffered_on = Some(src);
        self.route_message(msg, now, sched);
    }

    /// The delivery timeout fired while the attempt was still outstanding.
    fn on_msg_timeout(&mut self, msg: MsgId, gen: u32, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        if self.msg_gen[msg.idx()] != gen {
            return; // stale timer on a recycled slot
        }
        self.fault_timers[msg.idx()] = None;
        let (quiescent, marked) = match self.messages[msg.idx()].as_ref() {
            Some(m) if !m.cancelled => (m.live_refs == 0, m.timed_out),
            _ => return,
        };
        self.counters.timeouts += 1;
        self.obs(now, ObsEvent::MsgTimeout { msg: msg.0 });
        if quiescent {
            // Not on any wire and no pending hop event or handler: the
            // attempt can only be parked in one channel queue (behind a
            // busy or downed link) or in an MMU transit queue. A queued
            // edge is yanked and retransmitted now; a queued transit
            // reservation is left to its own escape-timer machinery.
            if let Some((chan, pos)) = self.find_queued_edge(msg) {
                self.channels[chan].queue.remove(pos);
                if self.cfg.switching == Switching::StoreAndForward {
                    // The yanked hop had already reserved its buffer on
                    // the receiving node: give it back.
                    let to = self.channels[chan].to;
                    let bytes =
                        self.messages[msg.idx()].as_ref().expect("checked").bytes;
                    self.release_memory(
                        to,
                        bytes + self.cfg.msg_header_bytes,
                        now,
                        sched,
                    );
                }
                self.retry_message(msg, now, sched);
                return;
            }
        }
        // Still moving (or stuck awaiting a transit buffer): mark the
        // attempt stale — the delivery checksum rejects marked copies on
        // arrival — and re-arm once so an attempt that goes quiescent
        // later is still rescued. A marked attempt is not re-marked, which
        // bounds timeout traffic for runs that legitimately stall (e.g.
        // `ReservedStrict` deadlocks must still drain).
        if !marked {
            self.messages[msg.idx()].as_mut().expect("checked").timed_out = true;
            self.arm_timeout(msg, sched);
        }
    }

    /// Locate the (single) channel queue entry of a quiescent message.
    /// At most one edge of a message is ever queued: the next pipelined
    /// edge is only scheduled when the previous one starts its transfer.
    fn find_queued_edge(&self, msg: MsgId) -> Option<(usize, usize)> {
        for (ci, ch) in self.channels.iter().enumerate() {
            if let Some(pos) = ch.queue.iter().position(|&m| m == msg) {
                return Some((ci, pos));
            }
        }
        None
    }

    /// A declared link-outage window opens: in-flight transfers finish on
    /// the wire (outages quantize to transfer boundaries), but the channel
    /// starts nothing new until the window closes. Under wormhole
    /// switching the quantization doesn't apply — worms resident on the
    /// link are drained deterministically (ascending message id) and their
    /// messages re-enter via the retry protocol.
    fn on_link_down(&mut self, chan: u32, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        let ch = &mut self.channels[chan as usize];
        if !ch.up {
            return;
        }
        ch.up = false;
        self.counters.link_downs += 1;
        self.obs(now, ObsEvent::LinkDown { chan });
        if self.wormhole.is_some() {
            let mut holders: Vec<MsgId> = self
                .wormhole
                .as_ref()
                .expect("wormhole state")
                .chans[chan as usize]
                .holders()
                .collect();
            holders.sort();
            holders.dedup();
            for msg in holders {
                if self.drain_worm(msg, now, sched) {
                    // The drain supersedes any pending delivery timeout:
                    // the retry protocol re-arms its own timer.
                    if let Some(h) = self.fault_timers[msg.idx()].take() {
                        sched.cancel_timer(h);
                    }
                    self.retry_message(msg, now, sched);
                }
            }
        }
    }

    /// A declared link-outage window closes: resume the channel's queue.
    fn on_link_up(&mut self, chan: u32, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        let ci = chan as usize;
        if self.channels[ci].up {
            return;
        }
        self.channels[ci].up = true;
        self.obs(now, ObsEvent::LinkUp { chan });
        if self.channels[ci].busy_with.is_none() {
            if let Some(next) = self.channels[ci].queue.pop_front() {
                self.start_transfer(ci, next, now, sched);
            }
        }
        if self.wormhole.is_some() {
            // Grant VCs to worms that queued against the downed link (its
            // VCs are all free: resident worms were drained at link-down
            // and allocation is gated on `up`).
            let mut grants: Vec<(MsgId, u8)> = Vec::new();
            {
                let wh = self.wormhole.as_mut().expect("wormhole state");
                let vch = &mut wh.chans[ci];
                for class in 0..vch.waiting.len() {
                    while let Some(&msg) = vch.waiting[class].front() {
                        match vch.alloc_vc(class as u8, msg) {
                            Some(vc) => {
                                vch.waiting[class].pop_front();
                                grants.push((msg, vc));
                            }
                            None => break,
                        }
                    }
                }
            }
            self.wormhole.as_mut().expect("wormhole state").held += grants.len();
            for (msg, vc) in grants {
                let link = self.worm_link_on(msg, ci);
                self.wormhole
                    .as_mut()
                    .expect("wormhole state")
                    .worm_mut(msg)
                    .expect("waiter has worm")
                    .links[link]
                    .vc = Some(vc);
                self.counters.vc_allocs += 1;
                self.obs(now, ObsEvent::WormVcAlloc { msg: msg.0, chan, vc });
            }
            self.note_vc_occupancy(now);
            self.ensure_flit_ticking(ci, now, sched);
        }
    }

    /// A declared node crash: fail-stop the node's CPU. Jobs with a
    /// process placed on it are killed (running) or failed (resident but
    /// not started); the node's link engines keep forwarding other jobs'
    /// traffic. Messages never cross jobs, so no surviving job ever
    /// addresses the dead CPU.
    fn on_node_crash(&mut self, node: u32, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        if self.dead[node as usize] {
            return;
        }
        self.dead[node as usize] = true;
        self.counters.node_crashes += 1;
        self.obs(now, ObsEvent::NodeCrashed { node });
        self.note_alive_capacity(now);
        let victims: Vec<(JobId, JobState)> = self
            .jobs
            .iter()
            .filter(|j| {
                matches!(j.state, JobState::Ready | JobState::Running)
                    && j.placement.contains(&node)
            })
            .map(|j| (j.id, j.state))
            .collect();
        for (job, state) in victims {
            if state == JobState::Running {
                self.kill_job(job, now, sched);
            } else {
                self.fail_job(job, now, sched);
            }
        }
    }

    /// Fail-stop a running job: preempt and retire its processes, purge
    /// its queued work from every CPU/MMU/channel queue, cancel and
    /// account every message it owns as dropped, then mark it failed.
    fn kill_job(&mut self, job: JobId, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        if self.jobs[job.idx()].state != JobState::Running {
            return; // a second fault raced the first kill
        }
        let keys = self.jobs[job.idx()].proc_keys.clone();
        let mut redispatch: Vec<u32> = Vec::new();
        for pk in keys {
            let (state, node) = {
                let p = &self.procs[pk.idx()];
                (p.state, p.node)
            };
            match state {
                PState::Running => {
                    // Preempt in place (mirrors set_job_active's parking):
                    // account the partial slice, then retire the process.
                    let cpu = &mut self.nodes[node as usize].cpu;
                    if let Some(running) = cpu.running {
                        if let RunKind::Low(rpk) = running.kind {
                            if rpk == pk {
                                cpu.preemptions += 1;
                                cpu.running = None;
                                cpu.bump_seq();
                                if let Some(h) = cpu.slice_timer.take() {
                                    sched.cancel_timer(h);
                                }
                                let elapsed =
                                    now.saturating_since(running.work_started);
                                self.record_compute(pk, running.work_started, now);
                                let p = &mut self.procs[pk.idx()];
                                let used = elapsed.min(p.remaining);
                                p.remaining -= used;
                                p.cpu_time += used;
                                let (j, rank) = (p.job.0, p.rank.0);
                                self.obs(
                                    now,
                                    ObsEvent::QuantumEnd {
                                        node,
                                        job: j,
                                        rank,
                                        reason: QuantumEndReason::Preempted,
                                    },
                                );
                                redispatch.push(node);
                            }
                        }
                    }
                }
                PState::Ready if !self.procs[pk.idx()].parked => {
                    self.nodes[node as usize].cpu.remove_low(pk);
                    self.note_ready_depth(node, now);
                }
                PState::BlockedAlloc => {
                    // Cancel the blocked sender's queued buffer request;
                    // its staged message is swept below.
                    self.nodes[node as usize]
                        .mmu
                        .cancel_where(|w| w == AllocWaiter::Sender(pk));
                    self.procs[pk.idx()].pending_msg = None;
                }
                _ => {}
            }
            let p = &mut self.procs[pk.idx()];
            p.state = PState::Finished;
            p.finished_at = now;
        }
        // Sweep the job's messages in two passes. Pass 1 cancels every
        // owned message and detaches it from queues and timers *before*
        // any memory is released, so the MMU pump can never re-grant the
        // dying job's own queued requests.
        let owned: Vec<MsgId> = self
            .messages
            .iter()
            .filter_map(|slot| slot.as_ref())
            .filter(|m| m.job == job && !m.cancelled)
            .map(|m| m.id)
            .collect();
        let mut releases: Vec<(u32, u64)> = Vec::new();
        for &msg in &owned {
            // A dying job's in-flight worm is torn out of the network
            // first (no retry — the sweep below accounts the drop).
            self.drain_worm(msg, now, sched);
            let bytes = self.messages[msg.idx()].as_ref().expect("owned").bytes;
            for ci in 0..self.channels.len() {
                let before = self.channels[ci].queue.len();
                self.channels[ci].queue.retain(|&m| m != msg);
                if self.channels[ci].queue.len() != before
                    && self.cfg.switching == Switching::StoreAndForward
                {
                    // A queued SAF hop already holds its reservation on
                    // the receiving node.
                    releases.push((self.channels[ci].to, bytes + self.cfg.msg_header_bytes));
                }
            }
            for n in 0..self.nodes.len() {
                self.nodes[n].mmu.cancel_where(|w| {
                    matches!(
                        w,
                        AllocWaiter::Transit(m) | AllocWaiter::PendingSend(m) if m == msg
                    )
                });
            }
            if let Some(h) = self.escape_timers[msg.idx()].take() {
                sched.cancel_timer(h);
            }
            if let Some(h) = self.fault_timers[msg.idx()].take() {
                sched.cancel_timer(h);
            }
            let (at, buffered) = {
                let m = self.messages[msg.idx()].as_mut().expect("owned");
                m.cancelled = true;
                (m.at_node, m.buffered_on.take())
            };
            if let Some(node) = buffered {
                releases.push((node, bytes + self.cfg.msg_header_bytes));
            }
            self.counters.messages_dropped += 1;
            self.obs(now, ObsEvent::MsgDropped { msg: msg.0, job: job.0, node: at });
        }
        for mb in self.jobs[job.idx()].mailboxes.iter_mut() {
            mb.clear();
        }
        // Pass 2: give the buffers back (the pump only grants surviving
        // jobs now) and reclaim whatever nothing references any more;
        // slots with in-flight wire or handler references drain later.
        for (node, bytes) in releases {
            self.release_memory(node, bytes, now, sched);
        }
        for &msg in &owned {
            self.maybe_reclaim(msg);
        }
        for node in redispatch {
            self.dispatch(node, now, sched);
        }
        self.fail_job(job, now, sched);
    }

    /// Mark a job failed, release its resident memory and notify the
    /// scheduler (which may requeue the work under a fresh id).
    fn fail_job(&mut self, job: JobId, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        debug_assert!(
            !matches!(self.jobs[job.idx()].state, JobState::Done | JobState::Failed),
            "failing a terminal job"
        );
        self.jobs[job.idx()].state = JobState::Failed;
        self.jobs[job.idx()].finished_at = now;
        self.counters.jobs_failed += 1;
        let mem = self.jobs[job.idx()].mem_per_node.clone();
        for (node, bytes) in mem {
            if bytes > 0 {
                self.release_memory(node, bytes, now, sched);
            }
        }
        self.notes.push(Note::JobFailed(job));
        self.obs(now, ObsEvent::JobFailed { job: job.0 });
    }

    // ------------------------------------------------------------------
    // Memory
    // ------------------------------------------------------------------

    /// Release memory on a node and grant whatever queued requests now fit.
    fn release_memory(&mut self, node: u32, bytes: u64, now: SimTime, sched: &mut impl EventScheduler<Event>) {
        self.nodes[node as usize].mmu.release(now, bytes);
        let granted = self.nodes[node as usize].mmu.pump(now);
        for req in granted {
            match req.waiter {
                AllocWaiter::Sender(pk) => self.finish_blocked_injection(pk, now, sched),
                AllocWaiter::PendingSend(msg) => self.start_pending_send(msg, now, sched),
                AllocWaiter::Transit(msg) => {
                    if let Some(h) = self.escape_timers[msg.idx()].take() {
                        sched.cancel_timer(h);
                    }
                    self.enqueue_channel(msg, now, sched);
                }
                AllocWaiter::JobLoad(job) => {
                    let j = &mut self.jobs[job.idx()];
                    j.pending_allocs -= 1;
                    if j.pending_allocs == 0 {
                        self.finish_load(job, now, sched);
                    }
                }
            }
        }
    }
}

/// Disposition after loading or completing a CPU phase.
enum PhaseLoad {
    NeedCpu,
    Blocked,
    Finished,
}

impl Model for Machine {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, sched: &mut impl EventScheduler<Event>) {
        match event {
            Event::Admit { job } => self.on_admit(job, now, sched),
            Event::LoadJob { job } => self.on_load_job(job, now, sched),
            Event::Dispatch { node } => self.dispatch(node, now, sched),
            Event::SliceEnd { node, seq } => self.on_slice_end(node, seq, now, sched),
            Event::TransferDone { chan } => self.on_transfer_done(chan, now, sched),
            Event::FlitTick { chan } => self.on_flit_tick(chan, now, sched),
            Event::HopStart { msg, edge } => self.on_hop_start(msg, edge, now, sched),
            Event::AllocEscape { node, msg, gen } => {
                self.on_alloc_escape(node, msg, gen, now, sched)
            }
            Event::PolicyTick { .. } => {} // policy drivers intercept these
            Event::NodeCrash { node } => self.on_node_crash(node, now, sched),
            Event::LinkDown { chan } => self.on_link_down(chan, now, sched),
            Event::LinkUp { chan } => self.on_link_up(chan, now, sched),
            Event::MsgRetry { msg, gen } => self.on_msg_retry(msg, gen, now, sched),
            Event::MsgTimeout { msg, gen } => self.on_msg_timeout(msg, gen, now, sched),
        }
    }
}

impl Machine {
    /// The machine's start-of-time (for statistics baselines).
    pub fn t0(&self) -> SimTime {
        self.t0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProcSpec;
    use parsched_des::{Engine, QueueKind, RunOutcome};
    use parsched_topology::{build, PartitionPlan, TopologyKind};

    fn single_node_machine() -> Machine {
        Machine::new(MachineConfig::default(), SystemNet::single(&build::linear(1).unwrap()))
    }

    fn compute_spec(name: &str, ms: u64, mem: u64) -> JobSpec {
        JobSpec {
            name: name.into(),
            ship_bytes: 0,
            procs: vec![ProcSpec {
                program: vec![Op::Compute(SimDuration::from_millis(ms))],
                mem_bytes: mem,
            }],
        }
    }

    #[test]
    #[should_panic(expected = "placement must cover every rank")]
    fn queue_job_rejects_short_placement() {
        let mut m = single_node_machine();
        let spec = JobSpec {
            name: "two".into(),
            ship_bytes: 0,
            procs: vec![
                ProcSpec { program: vec![], mem_bytes: 0 },
                ProcSpec { program: vec![], mem_bytes: 0 },
            ],
        };
        m.queue_job(spec, vec![0], SimDuration::from_millis(2));
    }

    #[test]
    #[should_panic(expected = "spans partitions")]
    fn queue_job_rejects_cross_partition_jobs() {
        let plan = PartitionPlan::equal(4, 2, TopologyKind::Linear).unwrap();
        let mut m = Machine::new(MachineConfig::default(), SystemNet::from_plan(&plan));
        let spec = JobSpec {
            name: "straddle".into(),
            ship_bytes: 0,
            procs: vec![
                ProcSpec { program: vec![], mem_bytes: 0 },
                ProcSpec { program: vec![], mem_bytes: 0 },
            ],
        };
        m.queue_job(spec, vec![1, 2], SimDuration::from_millis(2));
    }

    #[test]
    #[should_panic(expected = "usable")]
    fn queue_job_rejects_impossible_memory() {
        let mut m = single_node_machine();
        m.queue_job(
            compute_spec("huge", 1, 64 * 1024 * 1024),
            vec![0],
            SimDuration::from_millis(2),
        );
    }

    #[test]
    #[should_panic(expected = "not ready")]
    fn start_job_requires_ready_state() {
        let mut m = single_node_machine();
        let id = m.queue_job(compute_spec("j", 1, 0), vec![0], SimDuration::from_millis(2));
        let mut engine: Engine<Event> = Engine::new(QueueKind::BinaryHeap);
        // Never admitted: still Queued.
        engine.seed(SimTime::ZERO, Event::Dispatch { node: 0 });
        engine.run(&mut m);
        // Calling start_job on a Queued job must panic; drive through the
        // model API to get a Scheduler.
        let mut e2: Engine<Event> = Engine::new(QueueKind::BinaryHeap);
        e2.seed(SimTime::ZERO, Event::Dispatch { node: 0 });
        struct Caller {
            m: Machine,
            id: JobId,
        }
        impl Model for Caller {
            type Event = Event;
            fn handle(&mut self, now: SimTime, _: Event, sched: &mut impl EventScheduler<Event>) {
                self.m.start_job(self.id, now, sched);
            }
        }
        let mut caller = Caller { m, id };
        e2.run(&mut caller);
    }

    #[test]
    fn loader_serializes_admissions() {
        // Two jobs admitted at t=0 with nonzero ship bytes: the second's
        // load completes one full load-duration after the first's.
        let cfg = MachineConfig {
            job_load_latency: SimDuration::from_millis(10),
            host_link_per_byte: SimDuration::from_micros(1), // 1 ms per KB
            ..MachineConfig::default()
        };
        let mut m = Machine::new(cfg, SystemNet::single(&build::linear(2).unwrap()));
        let a = m.queue_job(compute_spec("a", 1, 10_000), vec![0], SimDuration::from_millis(2));
        let b = m.queue_job(compute_spec("b", 1, 10_000), vec![1], SimDuration::from_millis(2));
        let mut engine: Engine<Event> = Engine::new(QueueKind::BinaryHeap);
        engine.seed(SimTime::ZERO, Event::Admit { job: a });
        engine.seed(SimTime::ZERO, Event::Admit { job: b });
        assert_eq!(engine.run(&mut m), RunOutcome::Drained);
        let ja = m.job(a);
        let jb = m.job(b);
        // Each load = 10 ms fixed + 10 ms shipping = 20 ms.
        assert_eq!(ja.loaded_at, SimTime::ZERO + SimDuration::from_millis(20));
        assert_eq!(jb.loaded_at, SimTime::ZERO + SimDuration::from_millis(40));
    }

    #[test]
    fn ship_bytes_override_shortens_loads() {
        let cfg = MachineConfig {
            job_load_latency: SimDuration::ZERO,
            host_link_per_byte: SimDuration::from_micros(1),
            ..MachineConfig::default()
        };
        let mut m = Machine::new(cfg, SystemNet::single(&build::linear(1).unwrap()));
        let mut spec = compute_spec("light", 1, 100_000);
        spec.ship_bytes = 1_000; // resident 100 KB but only 1 KB shipped
        let id = m.queue_job(spec, vec![0], SimDuration::from_millis(2));
        let mut engine: Engine<Event> = Engine::new(QueueKind::BinaryHeap);
        engine.seed(SimTime::ZERO, Event::Admit { job: id });
        engine.run(&mut m);
        assert_eq!(m.job(id).loaded_at, SimTime::ZERO + SimDuration::from_millis(1));
    }

    #[test]
    fn parked_job_makes_no_progress_until_released() {
        let mut m = single_node_machine();
        let id = m.queue_job(compute_spec("parked", 5, 0), vec![0], SimDuration::from_millis(2));
        // Park before it spawns.
        struct ParkThenRelease {
            m: Machine,
            id: JobId,
            released: bool,
        }
        impl Model for ParkThenRelease {
            type Event = Event;
            fn handle(&mut self, now: SimTime, ev: Event, sched: &mut impl EventScheduler<Event>) {
                if let Event::PolicyTick { token } = ev {
                    match token {
                        0 => self.m.set_job_active(self.id, false, now, sched),
                        1 => {
                            // Job must not have finished while parked.
                            assert_ne!(self.m.job(self.id).state, JobState::Done);
                            self.m.set_job_active(self.id, true, now, sched);
                            self.released = true;
                        }
                        _ => unreachable!(),
                    }
                    return;
                }
                self.m.handle(now, ev, sched);
            }
        }
        let mut engine: Engine<Event> = Engine::new(QueueKind::BinaryHeap);
        engine.seed(SimTime::ZERO, Event::PolicyTick { token: 0 }); // park first
        engine.seed(SimTime::ZERO, Event::Admit { job: id });
        engine.seed(
            SimTime::ZERO + SimDuration::from_secs(1),
            Event::PolicyTick { token: 1 },
        );
        let mut model = ParkThenRelease { m, id, released: false };
        assert_eq!(engine.run(&mut model), RunOutcome::Drained);
        assert!(model.released);
        let job = model.m.job(id);
        assert_eq!(job.state, JobState::Done);
        // The 5 ms of compute could only happen after the 1 s release.
        assert!(job.finished_at >= SimTime::ZERO + SimDuration::from_secs(1));
    }

    #[test]
    fn counters_track_a_simple_exchange() {
        let mut m = Machine::new(MachineConfig::default(), SystemNet::single(&build::linear(2).unwrap()));
        let spec = JobSpec {
            name: "pair".into(),
            ship_bytes: 0,
            procs: vec![
                ProcSpec {
                    program: vec![Op::Send { to: Rank(1), bytes: 500, tag: Tag(1) }],
                    mem_bytes: 0,
                },
                ProcSpec {
                    program: vec![Op::Recv { tag: Tag(1) }],
                    mem_bytes: 0,
                },
            ],
        };
        let id = m.queue_job(spec, vec![0, 1], SimDuration::from_millis(2));
        let mut engine: Engine<Event> = Engine::new(QueueKind::BinaryHeap);
        engine.seed(SimTime::ZERO, Event::Admit { job: id });
        engine.run(&mut m);
        assert_eq!(m.counters.messages_sent, 1);
        assert_eq!(m.counters.bytes_sent, 500);
        assert_eq!(m.counters.hop_transfers, 1);
        assert_eq!(m.counters.self_sends, 0);
        assert_eq!(m.counters.jobs_completed, 1);
        // No fault plan: the fault machinery must not register anything.
        assert_eq!(m.counters.messages_dropped, 0);
        assert_eq!(m.counters.retries, 0);
        assert_eq!(m.counters.timeouts, 0);
        assert_eq!(m.counters.node_crashes, 0);
        assert_eq!(m.counters.link_downs, 0);
        assert_eq!(m.counters.jobs_failed, 0);
    }

    // --- fault injection ---

    use crate::fault::{FaultPlan, LinkWindow, NodeCrash};

    fn faulty_machine(faults: FaultPlan) -> Machine {
        let cfg = MachineConfig {
            job_load_latency: SimDuration::ZERO,
            host_link_per_byte: SimDuration::ZERO,
            faults,
            ..MachineConfig::default()
        };
        Machine::new(cfg, SystemNet::single(&build::linear(2).unwrap()))
    }

    fn pair_spec(sender: Vec<Op>, receiver: Vec<Op>) -> JobSpec {
        JobSpec {
            name: "pair".into(),
            ship_bytes: 0,
            procs: vec![
                ProcSpec { program: sender, mem_bytes: 0 },
                ProcSpec { program: receiver, mem_bytes: 0 },
            ],
        }
    }

    fn run_faulty(m: &mut Machine, id: JobId) {
        let mut engine: Engine<Event> = Engine::new(QueueKind::BinaryHeap);
        m.seed_faults(&mut engine);
        engine.seed(SimTime::ZERO, Event::Admit { job: id });
        assert_eq!(engine.run(m), RunOutcome::Drained);
    }

    #[test]
    fn node_crash_kills_job_and_accounts_messages() {
        let mut faults = FaultPlan::default();
        faults.crashes.push(NodeCrash {
            node: 1,
            at: SimTime::ZERO + SimDuration::from_millis(100),
        });
        let mut m = faulty_machine(faults);
        // Rank 1 consumes one of two messages, then computes far past the
        // crash instant; the second message dies unconsumed in its mailbox.
        let spec = pair_spec(
            vec![
                Op::Send { to: Rank(1), bytes: 500, tag: Tag(1) },
                Op::Send { to: Rank(1), bytes: 500, tag: Tag(2) },
            ],
            vec![Op::Recv { tag: Tag(1) }, Op::Compute(SimDuration::from_secs(1))],
        );
        let id = m.queue_job(spec, vec![0, 1], SimDuration::from_millis(2));
        run_faulty(&mut m, id);
        assert_eq!(m.job(id).state, JobState::Failed);
        assert!(!m.node_alive(1));
        assert!(m.node_alive(0));
        assert_eq!(m.counters.node_crashes, 1);
        assert_eq!(m.counters.jobs_failed, 1);
        assert_eq!(m.counters.messages_sent, 2);
        // Dropped-and-accounted: nothing silently lost.
        assert_eq!(
            m.counters.messages_sent,
            m.counters.messages_consumed + m.counters.messages_dropped
        );
        assert!(m.counters.messages_dropped >= 1);
        let notes = m.drain_notes();
        assert!(
            notes.iter().any(|n| matches!(n, Note::JobFailed(j) if *j == id)),
            "driver must be told: {notes:?}"
        );
    }

    #[test]
    fn mailbox_overflow_retries_until_healed() {
        let mut faults = FaultPlan {
            mailbox_capacity: Some(1),
            ..FaultPlan::default()
        };
        faults.retry.max_retries = 10;
        let mut m = faulty_machine(faults);
        // Two sends race into a one-slot mailbox while the receiver is
        // busy; the rejected delivery must back off and eventually land.
        let spec = pair_spec(
            vec![
                Op::Send { to: Rank(1), bytes: 500, tag: Tag(1) },
                Op::Send { to: Rank(1), bytes: 500, tag: Tag(2) },
            ],
            vec![
                Op::Compute(SimDuration::from_millis(5)),
                Op::Recv { tag: Tag(1) },
                Op::Recv { tag: Tag(2) },
            ],
        );
        let id = m.queue_job(spec, vec![0, 1], SimDuration::from_millis(2));
        run_faulty(&mut m, id);
        assert_eq!(m.job(id).state, JobState::Done);
        assert!(m.counters.retries >= 1, "no retry recorded");
        assert_eq!(m.counters.messages_sent, 2);
        assert_eq!(m.counters.messages_consumed, 2);
        assert_eq!(m.counters.messages_dropped, 0);
    }

    #[test]
    fn link_window_delays_delivery_until_repair() {
        let mut faults = FaultPlan::default();
        let up_at = SimTime::ZERO + SimDuration::from_millis(20);
        faults.links.push(LinkWindow {
            from: 0,
            to: 1,
            down_at: SimTime::ZERO,
            up_at,
        });
        let mut m = faulty_machine(faults);
        let spec = pair_spec(
            vec![Op::Send { to: Rank(1), bytes: 500, tag: Tag(1) }],
            vec![Op::Recv { tag: Tag(1) }],
        );
        let id = m.queue_job(spec, vec![0, 1], SimDuration::from_millis(2));
        run_faulty(&mut m, id);
        assert_eq!(m.job(id).state, JobState::Done);
        // Both directions of the pair go down and come back.
        assert_eq!(m.counters.link_downs, 2);
        assert!(
            m.job(id).finished_at >= up_at,
            "delivery crossed a down link: finished {} < repair {}",
            m.job(id).finished_at,
            up_at
        );
        assert_eq!(m.counters.messages_consumed, 1);
    }

    #[test]
    fn certain_corruption_exhausts_retry_budget() {
        let faults = FaultPlan {
            drop_prob: 1.0,
            ..FaultPlan::default()
        };
        let mut m = faulty_machine(faults);
        let spec = pair_spec(
            vec![Op::Send { to: Rank(1), bytes: 500, tag: Tag(1) }],
            vec![Op::Recv { tag: Tag(1) }],
        );
        let id = m.queue_job(spec, vec![0, 1], SimDuration::from_millis(2));
        run_faulty(&mut m, id);
        assert_eq!(m.job(id).state, JobState::Failed);
        assert_eq!(m.counters.retries, m.cfg.faults.retry.max_retries as u64);
        assert_eq!(m.counters.jobs_failed, 1);
        assert_eq!(m.counters.messages_sent, 1);
        assert_eq!(m.counters.messages_consumed, 0);
        assert_eq!(m.counters.messages_dropped, 1);
    }

    #[test]
    fn crash_replay_is_deterministic() {
        fn run_once() -> Vec<parsched_obs::TimedEvent> {
            let mut faults = FaultPlan::default();
            faults.crashes.push(NodeCrash {
                node: 1,
                at: SimTime::ZERO + SimDuration::from_millis(3),
            });
            faults.drop_prob = 0.05;
            faults.drop_seed = 7;
            faults.retry.max_retries = 10;
            let mut m = faulty_machine(faults);
            m.recorder = Some(Box::new(parsched_obs::CollectRecorder::new()));
            let spec = pair_spec(
                vec![
                    Op::Send { to: Rank(1), bytes: 2_000, tag: Tag(1) },
                    Op::Compute(SimDuration::from_millis(10)),
                ],
                vec![Op::Recv { tag: Tag(1) }, Op::Compute(SimDuration::from_millis(10))],
            );
            let id = m.queue_job(spec, vec![0, 1], SimDuration::from_millis(2));
            run_faulty(&mut m, id);
            m.recorder
                .as_deref_mut()
                .and_then(|r| r.as_any_mut().downcast_mut::<parsched_obs::CollectRecorder>())
                .expect("collector installed")
                .take_events()
        }
        let a = run_once();
        let b = run_once();
        assert!(!a.is_empty());
        assert!(
            a.iter().any(|(_, ev)| matches!(ev, parsched_obs::ObsEvent::NodeCrashed { .. })),
            "crash not recorded"
        );
        assert_eq!(a, b, "fault replay diverged");
    }
}
