//! Process control blocks.

use crate::program::{Op, Rank, Tag};
use parsched_des::{SimDuration, SimTime};

/// Machine-wide job identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u32);

impl JobId {
    /// The id as a `usize` for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Machine-wide process identifier (index into the machine's process table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcKey(pub u32);

impl ProcKey {
    /// The key as a `usize` for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// What the process's current CPU phase is burning time on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Executing a `Compute` op.
    Compute,
    /// Paying the software overhead of a `Send` before injection.
    SendOverhead,
    /// Paying the software overhead of consuming a received message.
    RecvOverhead,
    /// No CPU phase loaded (about to examine the next op).
    Idle,
}

/// Scheduling state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PState {
    /// Runnable, waiting in (or at the head of) a ready queue.
    Ready,
    /// Currently on a CPU.
    Running,
    /// Blocked until a message with the tag arrives.
    BlockedRecv(Tag),
    /// Blocked waiting for an outgoing message buffer.
    BlockedAlloc,
    /// Program exhausted.
    Finished,
}

/// A process control block.
#[derive(Debug, Clone)]
pub struct Process {
    /// Machine-wide key.
    pub key: ProcKey,
    /// Owning job.
    pub job: JobId,
    /// Rank within the job.
    pub rank: Rank,
    /// Global processor this process is pinned to (the paper's system has
    /// no migration).
    pub node: u32,
    /// The straight-line program.
    pub program: Vec<Op>,
    /// Index of the op currently being executed / examined.
    pub pc: usize,
    /// Current CPU phase.
    pub phase: Phase,
    /// CPU time left in the current phase.
    pub remaining: SimDuration,
    /// Messages still to consume for the current `RecvAny`.
    pub recv_left: u32,
    /// Message claimed from the mailbox, being consumed in `RecvOverhead`.
    pub claimed: Option<crate::net::MsgId>,
    /// Message staged by a `Send` whose source buffer is still pending.
    pub pending_msg: Option<crate::net::MsgId>,
    /// Round-robin quantum granted per dispatch (set by the scheduling
    /// policy; the RR-job rule makes it `(p / T) * q`).
    pub quantum: SimDuration,
    /// Scheduling state.
    pub state: PState,
    /// Parked by the policy (gang scheduling): the process keeps its state
    /// but is withheld from the ready queue until its job's slot.
    pub parked: bool,
    /// Accumulated useful CPU time (statistics).
    pub cpu_time: SimDuration,
    /// When the process became ready for the first time.
    pub started_at: SimTime,
    /// When the process finished (valid once `state == Finished`).
    pub finished_at: SimTime,
}

impl Process {
    /// A fresh PCB at `pc = 0`, `Ready`.
    pub fn new(
        key: ProcKey,
        job: JobId,
        rank: Rank,
        node: u32,
        program: Vec<Op>,
        quantum: SimDuration,
        now: SimTime,
    ) -> Process {
        Process {
            key,
            job,
            rank,
            node,
            program,
            pc: 0,
            phase: Phase::Idle,
            remaining: SimDuration::ZERO,
            recv_left: 0,
            claimed: None,
            pending_msg: None,
            quantum,
            state: PState::Ready,
            parked: false,
            cpu_time: SimDuration::ZERO,
            started_at: now,
            finished_at: SimTime::ZERO,
        }
    }

    /// The op at the program counter, if any.
    pub fn current_op(&self) -> Option<&Op> {
        self.program.get(self.pc)
    }

    /// True once every op has retired.
    pub fn is_finished(&self) -> bool {
        self.pc >= self.program.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_pcb_is_ready_at_pc0() {
        let p = Process::new(
            ProcKey(3),
            JobId(1),
            Rank(0),
            5,
            vec![Op::Compute(SimDuration::from_millis(1))],
            SimDuration::from_millis(2),
            SimTime(42),
        );
        assert_eq!(p.state, PState::Ready);
        assert_eq!(p.pc, 0);
        assert!(!p.is_finished());
        assert!(matches!(p.current_op(), Some(Op::Compute(_))));
        assert_eq!(p.started_at, SimTime(42));
    }

    #[test]
    fn empty_program_is_immediately_finished() {
        let p = Process::new(
            ProcKey(0),
            JobId(0),
            Rank(0),
            0,
            vec![],
            SimDuration::from_millis(2),
            SimTime::ZERO,
        );
        assert!(p.is_finished());
        assert!(p.current_op().is_none());
    }
}
