//! Wormhole-switching state: virtual channels, credits and worms.
//!
//! Under [`crate::config::Switching::Wormhole`] a message travels as a
//! *worm* of flits that snakes across its whole route at once, holding a
//! virtual channel (VC) on every link between its head and tail. This
//! module owns the bookkeeping: per-link VC tables with per-class waiter
//! FIFOs, and per-worm link cursors tracking how many flits have crossed
//! each route edge. The *protocol* — flit ticks, credit accounting,
//! delivery, fault drains — lives in [`crate::system`], which drives these
//! structures; everything here is pure state manipulation, so it can be
//! unit-tested without an engine.
//!
//! Deadlock freedom comes from the topology layer: each link exposes
//! `vc_class_count(kind)` escape classes, every hop of a route is assigned
//! a class by `vc_classes` (dateline / phase rules), and the channel
//! dependency graph over `(link, class)` pairs is acyclic (asserted by
//! `parsched_topology::flow`'s test suite). A worm only ever waits for a
//! VC of its hop's class, so the wait graph is a subgraph of that CDG.

use crate::config::MachineConfig;
use crate::net::MsgId;
use crate::wiring::SystemNet;
use parsched_des::SimDuration;
use parsched_topology::vc_class_count;
use std::collections::VecDeque;

/// One route edge of a worm: which link, which escape class, the VC held
/// (once granted) and how many flits have crossed.
#[derive(Debug, Clone)]
pub struct WormLink {
    /// Channel table index of this route edge.
    pub chan: u32,
    /// Virtual-channel escape class `vc_classes` assigned to this hop.
    pub class: u8,
    /// VC index held on the channel (`None` until granted).
    pub vc: Option<u8>,
    /// Flits that have fully crossed this link so far.
    pub sent: u64,
}

/// An in-flight worm: the message's route as link cursors.
///
/// Flit conservation per worm: the head advances a link only after the
/// flit arrived on the previous one (`sent` is non-increasing along the
/// route), and the buffer occupancy of link `i` is `sent[i] - sent[i+1]`,
/// bounded by the credit window.
#[derive(Debug, Clone)]
pub struct Worm {
    /// Flits in the worm (payload + header flit).
    pub total_flits: u64,
    /// Route edges in path order.
    pub links: Vec<WormLink>,
}

impl Worm {
    /// Index of the first link whose VC request is outstanding (issued but
    /// not granted — the worm sits in that channel's waiter FIFO), if any.
    /// A VC for link `k > 0` is requested exactly when the head crosses
    /// link `k - 1`, so the pending request is the first unheld link after
    /// the held window — or link 0 for a worm that never started.
    pub fn pending_vc_request(&self) -> Option<usize> {
        match self.links.iter().rposition(|l| l.vc.is_some()) {
            None => Some(0),
            Some(m) => {
                let k = m + 1;
                (k < self.links.len() && self.links[m].sent > 0).then_some(k)
            }
        }
    }

    /// Index of the link the head most recently occupied (for drain
    /// reporting): the last link any flit has crossed, or the first link
    /// for a worm that never transmitted.
    pub fn head_link(&self) -> usize {
        self.links.iter().rposition(|l| l.sent > 0).unwrap_or(0)
    }

    /// Flits that reached the destination (crossed the last link).
    pub fn ejected(&self) -> u64 {
        self.links.last().map_or(0, |l| l.sent)
    }

    /// Flits currently buffered inside the network (between links), i.e.
    /// credits issued but not yet returned. The last link's buffer is
    /// always empty: ejection into node memory returns its credit at
    /// transmit time.
    pub fn buffered(&self) -> u64 {
        self.links
            .windows(2)
            .map(|w| w[0].sent - w[1].sent)
            .sum()
    }
}

/// One physical link's virtual-channel table.
#[derive(Debug)]
pub struct VcChannel {
    /// VCs per escape class on this link.
    pub per_class: u8,
    /// Worm holding each VC (`classes * per_class` slots; class `c` owns
    /// the band `c * per_class ..`).
    pub vcs: Vec<Option<MsgId>>,
    /// Per-class FIFO of worms waiting for a VC of that class.
    pub waiting: Vec<VecDeque<MsgId>>,
    /// Round-robin cursor for flit arbitration across VCs.
    pub rr: u8,
    /// A `FlitTick` chain is live for this channel.
    pub ticking: bool,
}

impl VcChannel {
    fn new(classes: u8, per_class: u8) -> VcChannel {
        VcChannel {
            per_class,
            vcs: vec![None; classes as usize * per_class as usize],
            waiting: (0..classes).map(|_| VecDeque::new()).collect(),
            rr: 0,
            ticking: false,
        }
    }

    /// Grant the first free VC of `class` to `msg`, or `None` if the band
    /// is fully occupied.
    pub fn alloc_vc(&mut self, class: u8, msg: MsgId) -> Option<u8> {
        let base = class as usize * self.per_class as usize;
        for vc in base..base + self.per_class as usize {
            if self.vcs[vc].is_none() {
                self.vcs[vc] = Some(msg);
                return Some(vc as u8);
            }
        }
        None
    }

    /// Class of a VC index.
    pub fn class_of(&self, vc: u8) -> u8 {
        vc / self.per_class
    }

    /// Clear a VC and hand it to the head of its class's waiter FIFO, if
    /// any. Returns the new holder so the caller can resume it.
    pub fn release_vc(&mut self, vc: u8, serve_waiters: bool) -> Option<MsgId> {
        let slot = vc as usize;
        debug_assert!(self.vcs[slot].is_some(), "releasing a free VC");
        self.vcs[slot] = None;
        if !serve_waiters {
            return None;
        }
        let class = self.class_of(vc) as usize;
        let next = self.waiting[class].pop_front()?;
        self.vcs[slot] = Some(next);
        Some(next)
    }

    /// Worms currently holding a VC on this link, in VC order.
    pub fn holders(&self) -> impl Iterator<Item = MsgId> + '_ {
        self.vcs.iter().filter_map(|v| *v)
    }

    /// VCs currently held.
    pub fn occupied(&self) -> usize {
        self.vcs.iter().filter(|v| v.is_some()).count()
    }
}

/// Machine-wide wormhole state: one VC table per channel plus the worm
/// table (indexed like the message slab).
#[derive(Debug)]
pub struct WormholeState {
    /// Time for one flit to cross one link.
    pub flit_time: SimDuration,
    /// Flit credits per VC buffer (downstream slots per link).
    pub credits: u64,
    /// Per-channel VC tables (parallel to the machine's channel table).
    pub chans: Vec<VcChannel>,
    /// Per-message worm slots (grown on demand, like the message slab).
    pub worms: Vec<Option<Worm>>,
    /// Running count of held VCs across all channels. The occupancy gauge
    /// samples this on every grant; a recount would be O(channels) per
    /// sample, which dominated whole runs on 64k-node machines.
    pub held: usize,
}

impl WormholeState {
    /// Build the VC tables for every channel of `net`: each link carries
    /// the escape classes its partition's topology shape requires.
    pub fn new(cfg: &MachineConfig, net: &SystemNet) -> WormholeState {
        let per_class = cfg.vcs_per_class.max(1);
        let chans = net
            .channels()
            .iter()
            .map(|c| {
                let kind = net.partition_kind(net.partition_of(c.from));
                VcChannel::new(vc_class_count(kind), per_class)
            })
            .collect();
        WormholeState {
            flit_time: cfg.flit_time(),
            credits: u64::from(cfg.vc_credits.max(1)),
            chans,
            worms: Vec::new(),
            held: 0,
        }
    }

    /// The worm of a message, if one is in flight.
    pub fn worm(&self, msg: MsgId) -> Option<&Worm> {
        self.worms.get(msg.idx()).and_then(|w| w.as_ref())
    }

    /// Mutable access to a message's worm.
    pub fn worm_mut(&mut self, msg: MsgId) -> Option<&mut Worm> {
        self.worms.get_mut(msg.idx()).and_then(|w| w.as_mut())
    }

    /// Install a worm for `msg` (slot grown on demand).
    pub fn insert(&mut self, msg: MsgId, worm: Worm) {
        if self.worms.len() <= msg.idx() {
            self.worms.resize_with(msg.idx() + 1, || None);
        }
        debug_assert!(self.worms[msg.idx()].is_none(), "worm slot still live");
        self.worms[msg.idx()] = Some(worm);
    }

    /// Remove and return a message's worm.
    pub fn remove(&mut self, msg: MsgId) -> Option<Worm> {
        self.worms.get_mut(msg.idx()).and_then(|w| w.take())
    }

    /// Whether link `i` of `worm` can move a flit right now: it holds a
    /// VC, has flits left, the flit has arrived over the previous link,
    /// and the downstream VC buffer has a credit. (Link liveness is the
    /// caller's check — the VC table does not track outages.)
    pub fn can_transmit(&self, worm: &Worm, i: usize) -> bool {
        let l = &worm.links[i];
        l.vc.is_some()
            && l.sent < worm.total_flits
            && (i == 0 || worm.links[i - 1].sent > l.sent)
            && (i + 1 == worm.links.len() || l.sent - worm.links[i + 1].sent < self.credits)
    }

    /// Like [`WormholeState::can_transmit`] but true only when the credit
    /// window is the *sole* blocker (for stall accounting).
    pub fn credit_blocked(&self, worm: &Worm, i: usize) -> bool {
        let l = &worm.links[i];
        l.vc.is_some()
            && l.sent < worm.total_flits
            && (i == 0 || worm.links[i - 1].sent > l.sent)
            && i + 1 < worm.links.len()
            && l.sent - worm.links[i + 1].sent >= self.credits
    }

    /// Total VCs currently held across all channels (occupancy gauge).
    pub fn occupied_vcs(&self) -> usize {
        debug_assert_eq!(
            self.held,
            self.chans.iter().map(|c| c.occupied()).sum::<usize>(),
            "held-VC counter out of sync with the channel tables"
        );
        self.held
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worm3() -> Worm {
        Worm {
            total_flits: 5,
            links: [(0u32, 0u8), (1, 0), (2, 1)]
                .iter()
                .map(|&(chan, class)| WormLink { chan, class, vc: None, sent: 0 })
                .collect(),
        }
    }

    fn state(credits: u64) -> WormholeState {
        WormholeState {
            flit_time: SimDuration::from_nanos(10),
            credits,
            chans: (0..3).map(|_| VcChannel::new(2, 1)).collect(),
            worms: Vec::new(),
            held: 0,
        }
    }

    #[test]
    fn head_waits_for_upstream_flits() {
        let st = state(4);
        let mut w = worm3();
        w.links[0].vc = Some(0);
        w.links[1].vc = Some(0);
        assert!(st.can_transmit(&w, 0), "source flits are always available");
        assert!(!st.can_transmit(&w, 1), "no flit has arrived yet");
        w.links[0].sent = 1;
        assert!(st.can_transmit(&w, 1));
    }

    #[test]
    fn credit_window_throttles_upstream() {
        let st = state(2);
        let mut w = worm3();
        w.links[0].vc = Some(0);
        w.links[0].sent = 2; // two flits buffered downstream of link 0
        assert!(!st.can_transmit(&w, 0), "credit window full");
        assert!(st.credit_blocked(&w, 0));
        w.links[1].vc = Some(0);
        w.links[1].sent = 1; // one drained onward: a credit came back
        assert!(st.can_transmit(&w, 0));
        assert!(!st.credit_blocked(&w, 0));
    }

    #[test]
    fn last_link_never_credit_blocks() {
        let st = state(1);
        let mut w = worm3();
        w.links[2].vc = Some(2);
        w.links[0].sent = 5;
        w.links[1].sent = 5;
        w.links[2].sent = 4;
        assert!(st.can_transmit(&w, 2), "ejection returns credits instantly");
    }

    #[test]
    fn vc_bands_are_per_class() {
        let mut ch = VcChannel::new(2, 2);
        assert_eq!(ch.alloc_vc(0, MsgId(1)), Some(0));
        assert_eq!(ch.alloc_vc(0, MsgId(2)), Some(1));
        assert_eq!(ch.alloc_vc(0, MsgId(3)), None, "class 0 band full");
        assert_eq!(ch.alloc_vc(1, MsgId(4)), Some(2), "class 1 band free");
        assert_eq!(ch.class_of(2), 1);
        assert_eq!(ch.occupied(), 3);
    }

    #[test]
    fn release_serves_same_class_fifo() {
        let mut ch = VcChannel::new(2, 1);
        assert_eq!(ch.alloc_vc(0, MsgId(1)), Some(0));
        ch.waiting[0].push_back(MsgId(7));
        ch.waiting[0].push_back(MsgId(8));
        assert_eq!(ch.release_vc(0, true), Some(MsgId(7)));
        assert_eq!(ch.vcs[0], Some(MsgId(7)));
        assert_eq!(ch.release_vc(0, false), None, "down link grants nobody");
        assert_eq!(ch.vcs[0], None);
        assert_eq!(ch.waiting[0].front(), Some(&MsgId(8)));
    }

    #[test]
    fn pending_request_tracks_the_head() {
        let mut w = worm3();
        assert_eq!(w.pending_vc_request(), Some(0), "fresh worm awaits link 0");
        w.links[0].vc = Some(0);
        assert_eq!(w.pending_vc_request(), None, "head not across yet");
        w.links[0].sent = 1;
        assert_eq!(w.pending_vc_request(), Some(1));
        w.links[1].vc = Some(0);
        w.links[1].sent = 1;
        w.links[2].vc = Some(2);
        assert_eq!(w.pending_vc_request(), None, "whole route held");
        assert_eq!(w.head_link(), 1);
        assert_eq!(w.buffered(), 1);
        assert_eq!(w.ejected(), 0);
    }
}
