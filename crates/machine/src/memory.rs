//! Per-node memory management.
//!
//! Every node runs an MMU (§3.2 of the paper) that hands out buffer space
//! from the node's memory. Requests that cannot be satisfied wait in a FIFO
//! queue and are granted, in order, as memory frees — "a message can suffer
//! a delay if an intermediate processor delays allocation of memory for the
//! mailbox". Job data allocations go through the same pool, so a heavily
//! multiprogrammed node has little room for buffers: the memory-contention
//! channel the paper's time-sharing results hinge on.

use crate::process::{JobId, ProcKey};
use parsched_des::{SimDuration, SimTime, TimeWeighted};
use std::collections::VecDeque;

/// Who is waiting for an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocWaiter {
    /// A process blocked injecting a message (wakes and injects on grant).
    Sender(ProcKey),
    /// An asynchronously sent message waiting for its source buffer (the
    /// sending process has already moved on).
    PendingSend(crate::net::MsgId),
    /// A message in transit needing a buffer at its next hop.
    Transit(crate::net::MsgId),
    /// A job waiting to load its resident data onto this node.
    JobLoad(JobId),
}

/// A queued allocation request.
#[derive(Debug, Clone, Copy)]
pub struct AllocReq {
    /// Bytes requested.
    pub bytes: u64,
    /// Whom to notify on grant.
    pub waiter: AllocWaiter,
    /// When the request was enqueued (for wait-time statistics).
    pub since: SimTime,
}

/// How queued allocation requests are granted when memory frees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocPolicy {
    /// Strict FIFO: the head request blocks everything behind it until it
    /// fits (simple, but prone to head-of-line stalls and store-and-forward
    /// deadlock under pressure).
    Fifo,
    /// First-fit in arrival order: every queued request that fits is
    /// granted, so small transit buffers slip past large blocked senders.
    /// The default — it matches how real mailbox systems kept the network
    /// draining under memory pressure.
    #[default]
    FirstFit,
}

/// One node's memory pool + allocation queue.
#[derive(Debug)]
pub struct Mmu {
    capacity: u64,
    /// Bytes withheld from non-transit requests, so forwarding always has
    /// headroom (a pre-reserved system buffer pool).
    transit_reserve: u64,
    /// Grant discipline for the queue.
    pub policy: AllocPolicy,
    /// Bytes currently allocated. May exceed `capacity` when overdraft
    /// allocations (pre-reserved transit pools) are in use.
    used: u64,
    queue: VecDeque<AllocReq>,
    /// Time-weighted bytes-in-use signal.
    pub usage: TimeWeighted,
    /// Total grants that had to wait.
    pub delayed_grants: u64,
    /// Cumulative time requests spent queued.
    pub total_wait: SimDuration,
    /// Peak bytes allocated (including overdraft).
    pub peak_used: u64,
}

/// Result of an immediate allocation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocResult {
    /// Granted immediately.
    Granted,
    /// Queued behind earlier requests or insufficient memory.
    Queued,
}

impl Mmu {
    /// A pool of `capacity` bytes, empty queue, no transit reserve.
    pub fn new(capacity: u64, t0: SimTime) -> Mmu {
        Mmu {
            capacity,
            transit_reserve: 0,
            policy: AllocPolicy::default(),
            used: 0,
            queue: VecDeque::new(),
            usage: TimeWeighted::new(t0, 0.0),
            delayed_grants: 0,
            total_wait: SimDuration::ZERO,
            peak_used: 0,
        }
    }

    /// Withhold `bytes` from non-transit requests.
    pub fn set_transit_reserve(&mut self, bytes: u64) {
        self.transit_reserve = bytes.min(self.capacity);
    }

    /// Effective capacity for a request of this kind.
    fn limit_for(&self, waiter: AllocWaiter) -> u64 {
        match waiter {
            AllocWaiter::Transit(_) => self.capacity,
            _ => self.capacity - self.transit_reserve,
        }
    }

    /// Is any request currently queued?
    pub fn has_queue(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes free (zero when overdrafted).
    pub fn free(&self) -> u64 {
        self.capacity.saturating_sub(self.used)
    }

    /// Pool capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Pending requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Try to allocate, queueing on failure. Under [`AllocPolicy::Fifo`] a
    /// request also queues when anyone is already waiting (no overtaking);
    /// under [`AllocPolicy::FirstFit`] it is granted whenever it fits.
    pub fn request(&mut self, now: SimTime, bytes: u64, waiter: AllocWaiter) -> AllocResult {
        let blocked_by_queue = self.policy == AllocPolicy::Fifo && !self.queue.is_empty();
        if !blocked_by_queue && self.used + bytes <= self.limit_for(waiter) {
            self.take(now, bytes);
            AllocResult::Granted
        } else {
            self.queue.push_back(AllocReq {
                bytes,
                waiter,
                since: now,
            });
            AllocResult::Queued
        }
    }

    /// Allocate unconditionally, allowing the pool to overdraw (used for
    /// transit buffers under [`FlowControl::InjectionLimited`]
    /// (crate::config::FlowControl::InjectionLimited), which models a
    /// pre-reserved system buffer pool).
    pub fn force_alloc(&mut self, now: SimTime, bytes: u64) {
        self.take(now, bytes);
    }

    /// Release `bytes` back to the pool.
    ///
    /// # Panics
    /// Panics if more is freed than is allocated (double-free bug).
    pub fn release(&mut self, now: SimTime, bytes: u64) {
        assert!(self.used >= bytes, "MMU double free: {} < {bytes}", self.used);
        self.used -= bytes;
        self.usage.set(now, self.used as f64);
    }

    /// After a release, grant whatever queued requests now fit, according
    /// to the [`AllocPolicy`]: FIFO stops at the first misfit (head-of-line
    /// blocking); first-fit scans the whole queue in arrival order. Returns
    /// the granted requests; the caller wakes the waiters.
    pub fn pump(&mut self, now: SimTime) -> Vec<AllocReq> {
        let mut granted = Vec::new();
        match self.policy {
            AllocPolicy::Fifo => {
                while let Some(head) = self.queue.front() {
                    if self.used + head.bytes <= self.limit_for(head.waiter) {
                        let req = self.queue.pop_front().expect("checked front");
                        self.take(now, req.bytes);
                        self.delayed_grants += 1;
                        self.total_wait += now.since(req.since);
                        granted.push(req);
                    } else {
                        break;
                    }
                }
            }
            AllocPolicy::FirstFit => {
                let mut i = 0;
                while i < self.queue.len() {
                    let req = self.queue[i];
                    if self.used + req.bytes <= self.limit_for(req.waiter) {
                        self.queue.remove(i);
                        self.take(now, req.bytes);
                        self.delayed_grants += 1;
                        self.total_wait += now.since(req.since);
                        granted.push(req);
                    } else {
                        i += 1;
                    }
                }
            }
        }
        granted
    }

    /// Remove a queued transit request for `msg`, returning its size
    /// (used by the emergency-pool escape).
    pub fn cancel_transit(&mut self, msg: crate::net::MsgId) -> Option<u64> {
        let pos = self.queue.iter().position(
            |r| matches!(r.waiter, AllocWaiter::Transit(m) if m == msg),
        )?;
        let req = self.queue.remove(pos).expect("position valid");
        Some(req.bytes)
    }

    /// Remove every queued request whose waiter matches `pred`, returning
    /// the removed requests (fault recovery: a killed job's pending
    /// allocations must never be granted). Like [`Mmu::cancel_transit`],
    /// no memory is freed — queued requests never held any.
    pub fn cancel_where(&mut self, pred: impl Fn(AllocWaiter) -> bool) -> Vec<AllocReq> {
        let mut removed = Vec::new();
        self.queue.retain(|r| {
            if pred(r.waiter) {
                removed.push(*r);
                false
            } else {
                true
            }
        });
        removed
    }

    fn take(&mut self, now: SimTime, bytes: u64) {
        self.used += bytes;
        self.peak_used = self.peak_used.max(self.used);
        self.usage.set(now, self.used as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const K: u64 = 1024;

    #[test]
    fn grant_and_release() {
        let mut m = Mmu::new(10 * K, SimTime::ZERO);
        assert_eq!(
            m.request(SimTime(1), 4 * K, AllocWaiter::JobLoad(JobId(0))),
            AllocResult::Granted
        );
        assert_eq!(m.used(), 4 * K);
        assert_eq!(m.free(), 6 * K);
        m.release(SimTime(2), 4 * K);
        assert_eq!(m.used(), 0);
    }

    #[test]
    fn fifo_no_overtaking() {
        let mut m = Mmu::new(10 * K, SimTime::ZERO);
        m.policy = AllocPolicy::Fifo;
        assert_eq!(
            m.request(SimTime(0), 8 * K, AllocWaiter::JobLoad(JobId(0))),
            AllocResult::Granted
        );
        // 4K does not fit -> queued.
        assert_eq!(
            m.request(SimTime(1), 4 * K, AllocWaiter::JobLoad(JobId(1))),
            AllocResult::Queued
        );
        // 1K would fit, but must not overtake the queued 4K request.
        assert_eq!(
            m.request(SimTime(2), K, AllocWaiter::JobLoad(JobId(2))),
            AllocResult::Queued
        );
        m.release(SimTime(5), 8 * K);
        let granted = m.pump(SimTime(5));
        assert_eq!(granted.len(), 2);
        assert!(matches!(granted[0].waiter, AllocWaiter::JobLoad(JobId(1))));
        assert!(matches!(granted[1].waiter, AllocWaiter::JobLoad(JobId(2))));
        assert_eq!(m.used(), 5 * K);
        assert_eq!(m.delayed_grants, 2);
        assert_eq!(m.total_wait, SimDuration::from_nanos(4 + 3));
    }

    #[test]
    fn pump_stops_at_first_misfit() {
        let mut m = Mmu::new(10 * K, SimTime::ZERO);
        m.policy = AllocPolicy::Fifo;
        m.request(SimTime(0), 10 * K, AllocWaiter::JobLoad(JobId(0)));
        m.request(SimTime(0), 9 * K, AllocWaiter::JobLoad(JobId(1)));
        m.request(SimTime(0), 2 * K, AllocWaiter::JobLoad(JobId(2)));
        m.release(SimTime(1), 10 * K);
        let granted = m.pump(SimTime(1));
        // 9K fits; the 2K behind it (9K + 2K > 10K) must wait for the next
        // release (FIFO head-of-line).
        assert_eq!(granted.len(), 1);
        assert_eq!(m.queue_len(), 1);
    }

    #[test]
    fn overdraft_allocation() {
        let mut m = Mmu::new(K, SimTime::ZERO);
        m.force_alloc(SimTime(0), 5 * K);
        assert_eq!(m.used(), 5 * K);
        assert_eq!(m.free(), 0);
        assert_eq!(m.peak_used, 5 * K);
        m.release(SimTime(1), 5 * K);
        assert_eq!(m.used(), 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut m = Mmu::new(K, SimTime::ZERO);
        m.release(SimTime(0), 1);
    }

    #[test]
    fn usage_signal_tracks_allocations() {
        let mut m = Mmu::new(10 * K, SimTime::ZERO);
        m.force_alloc(SimTime(0), 2 * K);
        m.release(SimTime(1_000_000_000), 2 * K);
        // 2K for 1 s then 0 for 1 s => mean 1K over 2 s.
        let mean = m.usage.mean(SimTime(2_000_000_000));
        assert!((mean - K as f64).abs() < 1.0, "mean {mean}");
    }
}
