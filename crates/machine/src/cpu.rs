//! Per-node CPU state.
//!
//! The T805 maintains two hardware ready queues (§3.1): a high-priority
//! queue whose processes run to completion, and a low-priority round-robin
//! queue with a fixed quantum. High-priority work preempts low-priority work
//! immediately, and the preempted process *loses* the unfinished part of its
//! quantum. We reserve the high-priority queue for system work (the
//! store-and-forward router handlers and mailbox delivery), exactly as the
//! paper's communication system did; application processes run at low
//! priority with a per-process quantum the scheduling policy chooses.
//!
//! This module holds the data structure; the scheduling mechanics live in
//! [`crate::system`] because they touch processes, memory and the network.

use crate::net::MsgId;
use crate::process::ProcKey;
use parsched_des::{SimTime, TimeWeighted, TimerHandle};
use std::collections::VecDeque;

/// What a high-priority handler does once its CPU cost has been paid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandlerAction {
    /// A message has fully arrived at this node: forward it or deliver it.
    HopArrived(MsgId),
    /// Packetized store-and-forward: the per-byte copy work of relaying a
    /// message through this node (CPU cost only; the pipeline drives
    /// itself).
    PacketRelay(MsgId),
}

/// A unit of high-priority system work.
#[derive(Debug, Clone, Copy)]
pub struct HandlerTask {
    /// CPU time the handler consumes.
    pub cost: parsched_des::SimDuration,
    /// What happens when it completes.
    pub action: HandlerAction,
}

/// What the CPU is currently executing.
#[derive(Debug, Clone, Copy)]
pub enum RunKind {
    /// A low-priority application process.
    Low(ProcKey),
    /// A high-priority handler.
    High(HandlerTask),
}

/// The currently running item plus its timing bookkeeping.
#[derive(Debug, Clone, Copy)]
pub struct Running {
    /// What is running.
    pub kind: RunKind,
    /// When useful work started (dispatch time + context-switch overhead).
    pub work_started: SimTime,
    /// When the current quantum expires (low-priority only; for handlers
    /// this is simply the completion time).
    pub quantum_end: SimTime,
    /// Dispatch sequence number; a `SliceEnd` event carrying a stale number
    /// is ignored (lazy event invalidation).
    pub seq: u64,
}

/// One node's CPU.
#[derive(Debug)]
pub struct Cpu {
    /// High-priority FIFO queue (run to completion).
    pub high: VecDeque<HandlerTask>,
    /// Low-priority round-robin queue.
    pub low: VecDeque<ProcKey>,
    /// The running item, if any.
    pub running: Option<Running>,
    /// While set, `dispatch` is a no-op: the scheduler is mid-decision about
    /// this CPU and will dispatch itself (prevents re-entrant event handlers
    /// from racing it onto the CPU).
    pub hold: bool,
    /// Monotone dispatch counter for lazy invalidation.
    pub seq: u64,
    /// The pending `SliceEnd` timer for the running item, if any. Cancelled
    /// eagerly on preemption so stale expiries leave the pending-event set
    /// instead of firing and being discarded; the `seq` check stays as a
    /// correctness backstop.
    pub slice_timer: Option<TimerHandle>,
    /// Busy (1.0) / idle (0.0) signal for utilization statistics.
    pub busy: TimeWeighted,
    /// Low-priority dispatches performed.
    pub ctx_switches: u64,
    /// Handler executions.
    pub handler_runs: u64,
    /// Times a low-priority process exhausted its quantum.
    pub quantum_expiries: u64,
    /// Times a low-priority process was preempted by high-priority work
    /// (losing its quantum, per the T805 rule).
    pub preemptions: u64,
}

impl Cpu {
    /// An idle CPU.
    pub fn new(t0: SimTime) -> Cpu {
        Cpu {
            high: VecDeque::with_capacity(32),
            low: VecDeque::with_capacity(32),
            running: None,
            hold: false,
            seq: 0,
            slice_timer: None,
            busy: TimeWeighted::new(t0, 0.0),
            ctx_switches: 0,
            handler_runs: 0,
            quantum_expiries: 0,
            preemptions: 0,
        }
    }

    /// True if nothing is running and both queues are empty.
    pub fn is_idle(&self) -> bool {
        self.running.is_none() && self.high.is_empty() && self.low.is_empty()
    }

    /// Advance the dispatch sequence, invalidating outstanding `SliceEnd`s.
    pub fn bump_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Remove a process from the low-priority queue (used when a blocked
    /// state is discovered while it is still queued; rare but possible when
    /// wake and block race within one instant).
    pub fn remove_low(&mut self, key: ProcKey) {
        self.low.retain(|&k| k != key);
    }

    /// Depth of the low-priority (application) ready queue — the
    /// "ready-queue length" signal the observability layer samples.
    pub fn ready_depth(&self) -> usize {
        self.low.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_des::SimDuration;

    #[test]
    fn fresh_cpu_is_idle() {
        let cpu = Cpu::new(SimTime::ZERO);
        assert!(cpu.is_idle());
        assert_eq!(cpu.seq, 0);
    }

    #[test]
    fn bump_seq_is_monotone() {
        let mut cpu = Cpu::new(SimTime::ZERO);
        assert_eq!(cpu.bump_seq(), 1);
        assert_eq!(cpu.bump_seq(), 2);
    }

    #[test]
    fn remove_low_filters() {
        let mut cpu = Cpu::new(SimTime::ZERO);
        cpu.low.push_back(ProcKey(1));
        cpu.low.push_back(ProcKey(2));
        cpu.low.push_back(ProcKey(1));
        cpu.remove_low(ProcKey(1));
        assert_eq!(cpu.low.iter().copied().collect::<Vec<_>>(), vec![ProcKey(2)]);
    }

    #[test]
    fn queues_make_cpu_non_idle() {
        let mut cpu = Cpu::new(SimTime::ZERO);
        cpu.high.push_back(HandlerTask {
            cost: SimDuration::from_micros(10),
            action: HandlerAction::HopArrived(MsgId(0)),
        });
        assert!(!cpu.is_idle());
    }
}
