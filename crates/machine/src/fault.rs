//! Deterministic fault injection.
//!
//! A [`FaultPlan`] declares, up front and in simulated time, every failure a
//! run will experience: node crashes, link down/up windows, a per-hop
//! message corruption probability, and an optional mailbox capacity. The
//! plan is part of [`MachineConfig`](crate::config::MachineConfig), so the
//! same plan replays the same faults — in the same order, at the same
//! instants — under any engine (the differential oracle runs faulty plans
//! through both engines and demands bit-identical traces).
//!
//! Determinism guarantees:
//!
//! * crashes and link windows are seeded as ordinary simulation events at
//!   their declared times, so they order against all other events by the
//!   engine's `(time, seq)` rule;
//! * probabilistic drops draw from a dedicated [`DetRng`]
//!   (`parsched_des::rng::DetRng`) stream seeded by `drop_seed`, with
//!   exactly one draw per completed hop — never from shared state;
//! * an **empty plan is free**: no RNG draw, no timer, no extra event, no
//!   branch that schedules anything, so every golden output stays
//!   bit-identical to a build without this module.

use parsched_des::{SimDuration, SimTime};

/// A fail-stop node crash at a declared instant.
///
/// The crash model is *fail-stop compute*: the node's CPU stops (running
/// and ready work on it is killed, jobs placed there fail and are requeued
/// by the driver), while the node's link hardware keeps forwarding —
/// matching the Transputer, whose link engines ran independently of the
/// CPU. Take a link down too if the full node should vanish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCrash {
    /// Global processor index.
    pub node: u32,
    /// When the node stops.
    pub at: SimTime,
}

/// A link outage window: the channel between two adjacent nodes is down in
/// `[down_at, up_at)` — in **both** directions. Transfers already on the
/// wire complete (outages quantize to transfer boundaries); new transfers
/// queue until the link comes back. Pairs that are not adjacent in the
/// machine's topology are ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkWindow {
    /// One endpoint.
    pub from: u32,
    /// The other endpoint.
    pub to: u32,
    /// When the link goes down.
    pub down_at: SimTime,
    /// When it comes back up (must be finite and after `down_at`).
    pub up_at: SimTime,
}

/// Timeout / retry / backoff parameters for unreliable delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retransmissions allowed per message before the sending job is
    /// failed (the budget does not count the first attempt).
    pub max_retries: u32,
    /// Backoff before the first retransmission; doubles per attempt.
    pub base_backoff: SimDuration,
    /// Ceiling on the exponential backoff.
    pub backoff_cap: SimDuration,
    /// If set, a message not delivered within this span of its injection
    /// (or last retransmission) is timed out and retransmitted, which is
    /// what rescues messages stranded behind a long link outage.
    pub msg_timeout: Option<SimDuration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff: SimDuration::from_millis(1),
            backoff_cap: SimDuration::from_millis(32),
            msg_timeout: None,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retransmission number `attempt` (1-based):
    /// `base * 2^(attempt-1)`, capped.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let shift = attempt.saturating_sub(1).min(32);
        let ns = self
            .base_backoff
            .nanos()
            .saturating_mul(1u64 << shift)
            .min(self.backoff_cap.nanos());
        SimDuration::from_nanos(ns)
    }
}

/// The complete, declared fault schedule of one run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Fail-stop node crashes.
    pub crashes: Vec<NodeCrash>,
    /// Link outage windows.
    pub links: Vec<LinkWindow>,
    /// Per-hop probability that a completed transfer corrupts the message
    /// (detected by checksum at delivery, triggering a retransmission).
    pub drop_prob: f64,
    /// Seed of the dedicated drop-decision RNG stream.
    pub drop_seed: u64,
    /// If set, a destination mailbox holding this many undelivered
    /// messages rejects further deliveries (retried with backoff).
    pub mailbox_capacity: Option<usize>,
    /// Timeout/retry/backoff parameters.
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// True when the plan injects nothing — the guarantee that every
    /// fault-handling code path is unreachable and goldens stay
    /// bit-identical.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.links.is_empty()
            && self.drop_prob == 0.0
            && self.mailbox_capacity.is_none()
            && self.retry.msg_timeout.is_none()
    }

    /// The slice of this plan a shard owning the given nodes should seed.
    ///
    /// Declared events are kept only where the shard can observe them:
    /// crashes on owned nodes, link windows with **both** endpoints owned.
    /// A window straddling the ownership boundary is dropped — safe because
    /// shard ownership follows partition boundaries and partitions share no
    /// channels, so such a window names a non-adjacent pair the machine
    /// would ignore anyway. The scalar knobs (drop probability/seed,
    /// mailbox capacity, retry policy) apply machine-wide and are copied
    /// verbatim: the per-channel drop streams make the slice draw exactly
    /// the sequential numbers on the channels it owns.
    pub fn slice_for_nodes(&self, owns: impl Fn(u32) -> bool) -> FaultPlan {
        FaultPlan {
            crashes: self.crashes.iter().copied().filter(|c| owns(c.node)).collect(),
            links: self
                .links
                .iter()
                .copied()
                .filter(|w| owns(w.from) && owns(w.to))
                .collect(),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty() {
        assert!(FaultPlan::default().is_empty());
    }

    #[test]
    fn any_fault_source_makes_the_plan_nonempty() {
        let crash = FaultPlan {
            crashes: vec![NodeCrash { node: 0, at: SimTime(1) }],
            ..FaultPlan::default()
        };
        assert!(!crash.is_empty());
        let drops = FaultPlan { drop_prob: 0.1, ..FaultPlan::default() };
        assert!(!drops.is_empty());
        let mailbox = FaultPlan {
            mailbox_capacity: Some(4),
            ..FaultPlan::default()
        };
        assert!(!mailbox.is_empty());
        let timeout = FaultPlan {
            retry: RetryPolicy {
                msg_timeout: Some(SimDuration::from_millis(5)),
                ..RetryPolicy::default()
            },
            ..FaultPlan::default()
        };
        assert!(!timeout.is_empty());
    }

    #[test]
    fn slicing_keeps_owned_events_and_scalar_knobs() {
        let plan = FaultPlan {
            crashes: vec![
                NodeCrash { node: 1, at: SimTime(10) },
                NodeCrash { node: 5, at: SimTime(20) },
            ],
            links: vec![
                LinkWindow { from: 0, to: 1, down_at: SimTime(1), up_at: SimTime(2) },
                LinkWindow { from: 3, to: 4, down_at: SimTime(1), up_at: SimTime(2) },
                LinkWindow { from: 4, to: 5, down_at: SimTime(1), up_at: SimTime(2) },
            ],
            drop_prob: 0.25,
            drop_seed: 7,
            mailbox_capacity: Some(3),
            retry: RetryPolicy::default(),
        };
        let lo = plan.slice_for_nodes(|n| n < 4);
        assert_eq!(lo.crashes, vec![NodeCrash { node: 1, at: SimTime(10) }]);
        assert_eq!(
            lo.links,
            vec![LinkWindow { from: 0, to: 1, down_at: SimTime(1), up_at: SimTime(2) }]
        );
        assert_eq!(lo.drop_prob, 0.25);
        assert_eq!(lo.drop_seed, 7);
        assert_eq!(lo.mailbox_capacity, Some(3));
        let hi = plan.slice_for_nodes(|n| n >= 4);
        assert_eq!(hi.crashes, vec![NodeCrash { node: 5, at: SimTime(20) }]);
        assert_eq!(hi.links.len(), 1); // only the 4–5 window is fully owned
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let r = RetryPolicy::default(); // 1 ms base, 32 ms cap
        assert_eq!(r.backoff(1), SimDuration::from_millis(1));
        assert_eq!(r.backoff(2), SimDuration::from_millis(2));
        assert_eq!(r.backoff(4), SimDuration::from_millis(8));
        assert_eq!(r.backoff(7), SimDuration::from_millis(32));
        assert_eq!(r.backoff(60), SimDuration::from_millis(32));
    }
}
