//! System wiring: the machine-wide view of a partitioned interconnect.
//!
//! The paper's machine is always *one* 16-processor system, but under
//! space-sharing its network is configured as `16/p` disjoint sub-networks
//! (one per partition). [`SystemNet`] composes the partition topologies into
//! a single global channel table and routing function over global processor
//! indices; there are no channels between partitions, and jobs never span
//! one, so a route either stays inside a partition or does not exist.

use parsched_topology::{Channel, NodeId, PartitionPlan, Router, Topology, TopologyKind};

/// A directed global channel between adjacent processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalChannel {
    /// Global index of the sending processor.
    pub from: u32,
    /// Global index of the receiving processor.
    pub to: u32,
}

impl GlobalChannel {
    /// Display label, e.g. `"3->7"` (used by observability exporters).
    pub fn label(&self) -> String {
        format!("{}->{}", self.from, self.to)
    }
}

/// The machine-wide interconnect: partition topologies plus routing.
#[derive(Debug, Clone)]
pub struct SystemNet {
    nodes: usize,
    partition_size: usize,
    /// Per-partition minimal routers (index = partition id).
    routers: Vec<Router>,
    /// Per-partition topology kinds (the wormhole layer derives its
    /// virtual-channel escape classes from the shape).
    kinds: Vec<TopologyKind>,
    /// All directed channels, sorted by `(from, to)` — `Topology::channels`
    /// emits ascending order and partitions are visited base-ascending, so
    /// the sort comes for free.
    channels: Vec<GlobalChannel>,
    /// CSR row offsets over `channels`: channels leaving processor `f` are
    /// `channels[offsets[f]..offsets[f + 1]]`. A flat `from * nodes + to`
    /// table is O(n^2) memory — 17 GB at 64k nodes — where this is O(n + E).
    offsets: Vec<u32>,
}

impl SystemNet {
    /// Wire the machine according to a partition plan.
    pub fn from_plan(plan: &PartitionPlan) -> SystemNet {
        let nodes = plan.system_size;
        let mut channels = Vec::new();
        let mut routers = Vec::with_capacity(plan.count());
        let mut kinds = Vec::with_capacity(plan.count());
        for part in &plan.partitions {
            routers.push(Router::for_topology(&part.topology));
            kinds.push(part.topology.kind());
            for Channel { from, to } in part.topology.channels() {
                channels.push(GlobalChannel {
                    from: global_id(part.base + from.idx()),
                    to: global_id(part.base + to.idx()),
                });
            }
        }
        debug_assert!(
            channels.is_sorted_by_key(|c| (c.from, c.to)),
            "channel emission order must be (from, to)-ascending"
        );
        let total = u32::try_from(channels.len()).expect("channel count exceeds u32");
        let mut offsets = vec![0u32; nodes + 1];
        for c in &channels {
            offsets[c.from as usize + 1] += 1;
        }
        for f in 0..nodes {
            offsets[f + 1] += offsets[f];
        }
        debug_assert_eq!(offsets[nodes], total);
        SystemNet {
            nodes,
            partition_size: plan.partition_size,
            routers,
            kinds,
            channels,
            offsets,
        }
    }

    /// Wire the whole machine as one partition with the given topology
    /// (pure time-sharing, and unit tests).
    pub fn single(topology: &Topology) -> SystemNet {
        let plan = PartitionPlan {
            system_size: topology.len(),
            partition_size: topology.len(),
            partitions: vec![parsched_topology::Partition {
                id: 0,
                base: 0,
                topology: topology.clone(),
            }],
        };
        SystemNet::from_plan(&plan)
    }

    /// Number of processors in the machine.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// All directed channels.
    pub fn channels(&self) -> &[GlobalChannel] {
        &self.channels
    }

    /// Index of the channel `from -> to`, if the processors are adjacent.
    /// Binary search within `from`'s CSR row (rows are degree-sized: at
    /// most a handful of entries on every shipped shape).
    pub fn channel_id(&self, from: u32, to: u32) -> Option<usize> {
        let row = self.offsets[from as usize] as usize..self.offsets[from as usize + 1] as usize;
        self.channels[row.clone()]
            .binary_search_by_key(&to, |c| c.to)
            .ok()
            .map(|i| row.start + i)
    }

    /// Partition id of a global processor.
    #[inline]
    pub fn partition_of(&self, node: u32) -> usize {
        node as usize / self.partition_size
    }

    /// Number of partitions in the plan.
    pub fn partitions(&self) -> usize {
        self.routers.len()
    }

    /// Number of processors per partition.
    pub fn partition_size(&self) -> usize {
        self.partition_size
    }

    /// Topology kind of a partition (all partitions of a plan share one).
    pub fn partition_kind(&self, p: usize) -> TopologyKind {
        self.kinds[p]
    }

    /// The full local-index path from `src` to `dst` within `src`'s
    /// partition, plus the partition id and its base offset — the wormhole
    /// layer derives virtual-channel classes from local coordinates.
    pub fn local_route(&self, src: u32, dst: u32) -> Option<(usize, u32, Vec<NodeId>)> {
        let p = self.partition_of(src);
        if p != self.partition_of(dst) {
            return None;
        }
        let base = global_id(p * self.partition_size);
        let local = self.routers[p].path(NodeId(src - base), NodeId(dst - base));
        Some((p, base, local))
    }

    /// The full global path from `src` to `dst` (exclusive of `src`).
    /// Returns `None` if the processors are in different partitions.
    ///
    /// Allocates; the per-message hot path walks [`SystemNet::next_hop`]
    /// instead and never materializes the path.
    pub fn route(&self, src: u32, dst: u32) -> Option<Vec<u32>> {
        let p = self.partition_of(src);
        if p != self.partition_of(dst) {
            return None;
        }
        let base = global_id(p * self.partition_size);
        let local = self.routers[p].path(NodeId(src - base), NodeId(dst - base));
        Some(local.into_iter().map(|l| base + l.0).collect())
    }

    /// The node after `src` on the minimal route to `dst`: one routing-
    /// strategy evaluation, no allocation. `None` when `src == dst` or the
    /// processors are in different partitions.
    #[inline]
    pub fn next_hop(&self, src: u32, dst: u32) -> Option<u32> {
        let p = self.partition_of(src);
        if src == dst || p != self.partition_of(dst) {
            return None;
        }
        let base = global_id(p * self.partition_size);
        self.routers[p]
            .next_hop(NodeId(src - base), NodeId(dst - base))
            .map(|l| base + l.0)
    }

    /// Hop count from `src` to `dst` (0 for self; `None` across
    /// partitions). Walks the next-hop function; no allocation.
    pub fn hops(&self, src: u32, dst: u32) -> Option<usize> {
        if self.partition_of(src) != self.partition_of(dst) {
            return None;
        }
        let mut cur = src;
        let mut n = 0usize;
        while cur != dst {
            cur = self
                .next_hop(cur, dst)
                .expect("same partition always routes");
            n += 1;
            debug_assert!(n <= self.nodes, "routing loop {src} -> {dst}");
        }
        Some(n)
    }
}

/// Checked global-processor-index conversion: the machine addresses at most
/// `u32::MAX` processors, and the topology layer rejects larger requests
/// before a plan can exist.
#[inline]
fn global_id(i: usize) -> u32 {
    u32::try_from(i).expect("global processor index exceeds u32")
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_topology::{build, PartitionPlan, TopologyKind};

    #[test]
    fn single_partition_wiring() {
        let net = SystemNet::single(&build::ring(4).unwrap());
        assert_eq!(net.nodes(), 4);
        assert_eq!(net.channels().len(), 8);
        assert!(net.channel_id(0, 1).is_some());
        assert!(net.channel_id(0, 2).is_none());
        assert_eq!(net.route(0, 2).unwrap().len(), 2);
        assert_eq!(net.route(1, 1).unwrap().len(), 0);
    }

    #[test]
    fn partitioned_wiring_has_no_cross_links() {
        let plan = PartitionPlan::equal(16, 4, TopologyKind::Linear).unwrap();
        let net = SystemNet::from_plan(&plan);
        assert_eq!(net.nodes(), 16);
        // 4 partitions x 3 edges x 2 directions.
        assert_eq!(net.channels().len(), 24);
        assert!(net.channel_id(3, 4).is_none(), "no link across partitions");
        assert!(net.route(0, 7).is_none(), "no route across partitions");
        assert_eq!(net.route(4, 7).unwrap(), vec![5, 6, 7]);
    }

    #[test]
    fn global_routes_follow_local_topology() {
        let plan = PartitionPlan::equal(16, 8, TopologyKind::Hypercube { dim: 0 }).unwrap();
        let net = SystemNet::from_plan(&plan);
        // Second partition: nodes 8..16 as a 3-cube; 8 -> 15 is 3 hops.
        assert_eq!(net.hops(8, 15), Some(3));
        let path = net.route(8, 15).unwrap();
        assert_eq!(path.len(), 3);
        assert!(path.iter().all(|&n| (8..16).contains(&n)));
        assert_eq!(*path.last().unwrap(), 15);
    }

    #[test]
    fn partition_of_maps_blocks() {
        let plan = PartitionPlan::equal(16, 4, TopologyKind::Ring).unwrap();
        let net = SystemNet::from_plan(&plan);
        assert_eq!(net.partition_of(0), 0);
        assert_eq!(net.partition_of(3), 0);
        assert_eq!(net.partition_of(4), 1);
        assert_eq!(net.partition_of(15), 3);
        assert_eq!(net.partitions(), 4);
        assert_eq!(net.partition_size(), 4);
        assert_eq!(net.channels()[0].label(), "0->1");
    }

    /// The CSR channel index answers exactly what the old n^2 flat table
    /// answered: every adjacent pair maps to its position in `channels`,
    /// every non-adjacent pair to `None`.
    #[test]
    fn csr_channel_index_matches_adjacency() {
        let plan = PartitionPlan::equal(16, 8, TopologyKind::Mesh { rows: 0, cols: 0 }).unwrap();
        let net = SystemNet::from_plan(&plan);
        for from in 0..16u32 {
            for to in 0..16u32 {
                let expected = net
                    .channels()
                    .iter()
                    .position(|c| c.from == from && c.to == to);
                assert_eq!(net.channel_id(from, to), expected, "{from}->{to}");
            }
        }
    }
}
