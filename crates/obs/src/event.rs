//! Typed simulation events and the recorder trait.
//!
//! [`ObsEvent`] is a small `Copy` enum of plain integer ids: constructing
//! one is a handful of register moves, so hook sites can build events
//! unconditionally and let a single `Option` branch decide whether anything
//! is recorded. Compare the previous scheme — `format!("{event:?}")` into a
//! string ring buffer on every event — which allocated even when the trace
//! was the only consumer.

use parsched_des::SimTime;
use std::any::Any;

/// Why a low-priority CPU slice ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantumEndReason {
    /// The process's current phase (and possibly program) completed.
    Completed,
    /// The quantum expired mid-phase; the process requeued round-robin.
    Expired,
    /// High-priority work (or a policy parking) preempted the process,
    /// which loses the rest of its quantum (the T805 rule).
    Preempted,
    /// The process blocked (receive wait or buffer allocation).
    Blocked,
}

impl QuantumEndReason {
    /// Short lowercase label (used by exporters).
    pub fn label(self) -> &'static str {
        match self {
            QuantumEndReason::Completed => "completed",
            QuantumEndReason::Expired => "expired",
            QuantumEndReason::Preempted => "preempted",
            QuantumEndReason::Blocked => "blocked",
        }
    }
}

/// One simulation event, carrying plain integer ids only.
///
/// `job`, `rank`, `msg` and `chan` are the machine's dense table indices;
/// `node` is the global processor index; `partition` is the partition id of
/// the hierarchical scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsEvent {
    /// A job arrived at the machine (admission; host-link load begins).
    JobArrived {
        /// Job id.
        job: u32,
    },
    /// The job's processes became runnable.
    JobLoaded {
        /// Job id.
        job: u32,
    },
    /// Every process of the job finished; its memory was freed.
    JobFinished {
        /// Job id.
        job: u32,
    },
    /// The partition scheduler admitted a job to a partition.
    PartitionAdmit {
        /// Job id.
        job: u32,
        /// Partition index.
        partition: u32,
    },
    /// A low-priority process was dispatched onto its node's CPU.
    QuantumStart {
        /// Global node index.
        node: u32,
        /// Job id.
        job: u32,
        /// Process rank within the job.
        rank: u32,
    },
    /// The running low-priority slice ended.
    QuantumEnd {
        /// Global node index.
        node: u32,
        /// Job id.
        job: u32,
        /// Process rank within the job.
        rank: u32,
        /// Why the slice ended.
        reason: QuantumEndReason,
    },
    /// A high-priority message handler started on a node's CPU.
    HandlerStart {
        /// Global node index.
        node: u32,
        /// Message the handler serves.
        msg: u32,
    },
    /// The running high-priority handler completed.
    HandlerEnd {
        /// Global node index.
        node: u32,
        /// Message the handler served.
        msg: u32,
    },
    /// A process injected a message (after paying the send overhead).
    MsgSend {
        /// Message id.
        msg: u32,
        /// Owning job.
        job: u32,
        /// Sending node.
        src: u32,
        /// Destination node.
        dst: u32,
        /// Payload bytes, saturated at `u32::MAX` (4 GiB-1) so the event
        /// stays within its two-word size pin; the machine's own accounting
        /// keeps the exact 64-bit count.
        bytes: u32,
    },
    /// A message transfer started occupying a channel.
    HopStart {
        /// Message id.
        msg: u32,
        /// Channel table index.
        chan: u32,
    },
    /// The channel transfer completed.
    HopEnd {
        /// Message id.
        msg: u32,
        /// Channel table index.
        chan: u32,
    },
    /// A message landed in its destination mailbox.
    MsgDeliver {
        /// Message id.
        msg: u32,
        /// Owning job.
        job: u32,
        /// Destination node.
        node: u32,
    },
    /// A node's CPU fail-stopped (declared in the fault plan).
    NodeCrashed {
        /// Global node index.
        node: u32,
    },
    /// A link went down (declared outage window opened).
    LinkDown {
        /// Channel table index.
        chan: u32,
    },
    /// A link came back up.
    LinkUp {
        /// Channel table index.
        chan: u32,
    },
    /// A message was terminally dropped and accounted (its job was killed
    /// or its retry budget exhausted); it will never deliver.
    MsgDropped {
        /// Message id.
        msg: u32,
        /// Owning job.
        job: u32,
        /// Node the message last occupied.
        node: u32,
    },
    /// A failed delivery attempt (corruption, timeout, or mailbox
    /// overflow) scheduled a retransmission.
    MsgRetry {
        /// Message id.
        msg: u32,
        /// Retransmission number (1-based).
        attempt: u32,
    },
    /// A message's delivery timeout fired before it was delivered.
    MsgTimeout {
        /// Message id.
        msg: u32,
    },
    /// A job was killed by a fault (node crash or retry-budget
    /// exhaustion); the driver may requeue it.
    JobFailed {
        /// Job id.
        job: u32,
    },
    /// The partition scheduler requeued a failed job's work under a fresh
    /// job id.
    JobRequeued {
        /// The *new* job id the rerun executes under.
        job: u32,
        /// Partition the rerun was admitted to.
        partition: u32,
    },
    /// A job entered the open system (its arrival event fired at the super
    /// scheduler — before any admission decision, unlike
    /// [`ObsEvent::JobArrived`], which marks machine admission).
    JobSubmitted {
        /// Batch/submission index of the job.
        index: u32,
        /// Jobs in the system (arrived, not yet departed) including this
        /// one.
        in_system: u32,
    },
    /// A job left the open system (completed or terminally abandoned).
    JobDeparted {
        /// Batch/submission index of the job.
        index: u32,
        /// Jobs remaining in the system after this departure.
        in_system: u32,
    },
    /// A worm's head acquired a virtual channel on a link (wormhole
    /// switching only).
    WormVcAlloc {
        /// Message id.
        msg: u32,
        /// Channel table index.
        chan: u32,
        /// Virtual-channel index within the channel.
        vc: u8,
    },
    /// A worm stalled: no free virtual channel (or no credit) on the link
    /// its head needs.
    WormStall {
        /// Message id.
        msg: u32,
        /// Channel table index.
        chan: u32,
    },
    /// A link outage (or job kill) drained an in-flight worm; its flits
    /// are accounted as dropped and the message retries or dies.
    WormDrained {
        /// Message id.
        msg: u32,
        /// Channel table index.
        chan: u32,
    },
    /// Wall-clock time one shard thread of a parallel run spent in one
    /// phase (emitted once per shard and phase after the run, not during
    /// it — simulated `now` carries the run's makespan).
    ShardPhase {
        /// Shard index within the run.
        shard: u16,
        /// Phase discriminant: 0 = event-loop work, 1 = barrier wait,
        /// 2 = cross-shard merge (coordination leadership).
        phase: u8,
        /// Wall-clock nanoseconds accumulated in the phase.
        ns: u64,
    },
}

/// A timestamped event.
pub type TimedEvent = (SimTime, ObsEvent);

/// Sink for typed events.
///
/// The machine stores an `Option<Box<dyn Recorder>>`; `None` is the
/// zero-cost disabled state. Implementations must not mutate anything the
/// simulation reads — recording is observation only. Recorders are `Send`
/// so an instrumented machine can run inside a simulation shard's thread.
pub trait Recorder: Send {
    /// Record one event at simulated time `now`.
    fn record(&mut self, now: SimTime, ev: ObsEvent);

    /// Downcasting support, so a concrete recorder can be retrieved from
    /// the machine after a run.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Shared-reference downcasting (e.g. the deadlock watchdog peeking at
    /// an installed [`crate::RingRecorder`] without taking it).
    fn as_any(&self) -> &dyn Any;
}

/// A recorder that collects every event into a vector (bounded by a
/// capacity; excess events are counted, not stored).
#[derive(Debug, Default)]
pub struct CollectRecorder {
    events: Vec<TimedEvent>,
    cap: usize,
    dropped: u64,
}

/// Default capacity: generous for a full paper batch (a 16-node F3 run
/// records on the order of 10^5 events) while bounding a runaway run.
const DEFAULT_COLLECT_CAP: usize = 8_000_000;

impl CollectRecorder {
    /// A collector with the default capacity.
    pub fn new() -> CollectRecorder {
        CollectRecorder::with_capacity(DEFAULT_COLLECT_CAP)
    }

    /// A collector keeping at most `cap` events.
    pub fn with_capacity(cap: usize) -> CollectRecorder {
        CollectRecorder {
            events: Vec::new(),
            cap,
            dropped: 0,
        }
    }

    /// Events recorded so far, in order.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Take ownership of the recorded events.
    pub fn take_events(&mut self) -> Vec<TimedEvent> {
        std::mem::take(&mut self.events)
    }

    /// Events discarded after the capacity was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Recorder for CollectRecorder {
    fn record(&mut self, now: SimTime, ev: ObsEvent) {
        if self.events.len() < self.cap {
            self.events.push((now, ev));
        } else {
            self.dropped += 1;
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_event_is_small_and_copy() {
        // Keep the hot-path payload cheap: two words at most.
        assert!(std::mem::size_of::<ObsEvent>() <= 24);
        let ev = ObsEvent::JobArrived { job: 3 };
        let copy = ev;
        assert_eq!(ev, copy);
    }

    #[test]
    fn collector_caps_and_counts_drops() {
        let mut c = CollectRecorder::with_capacity(2);
        for i in 0..5u32 {
            c.record(SimTime(i as u64), ObsEvent::JobArrived { job: i });
        }
        assert_eq!(c.events().len(), 2);
        assert_eq!(c.dropped(), 3);
        let taken = c.take_events();
        assert_eq!(taken.len(), 2);
        assert!(c.events().is_empty());
    }

    #[test]
    fn reason_labels_are_lowercase() {
        for r in [
            QuantumEndReason::Completed,
            QuantumEndReason::Expired,
            QuantumEndReason::Preempted,
            QuantumEndReason::Blocked,
        ] {
            assert!(r.label().chars().all(|c| c.is_ascii_lowercase()));
        }
    }
}
