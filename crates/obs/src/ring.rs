//! Bounded human-readable ring recorder.
//!
//! Adapts the DES layer's [`Trace`] ring buffer to the typed [`Recorder`]
//! trait: each event is `Debug`-formatted into the ring, but — unlike the
//! old string-based hot path — only when this recorder is actually
//! installed, and the buffer stays bounded. The machine's deadlock watchdog
//! uses this to print the last events before a stall.

use crate::event::{ObsEvent, Recorder};
use parsched_des::{SimTime, Trace};
use std::any::Any;

/// A [`Recorder`] backed by a bounded [`Trace`] ring buffer.
#[derive(Debug, Default)]
pub struct RingRecorder {
    /// The underlying ring buffer (exposed for dumping).
    pub trace: Trace,
}

impl RingRecorder {
    /// A ring recorder keeping the most recent `cap` events.
    pub fn with_capacity(cap: usize) -> RingRecorder {
        RingRecorder {
            trace: Trace::with_capacity(cap),
        }
    }

    /// Render the retained events, one per line, oldest first.
    pub fn dump(&self) -> String {
        self.trace.dump()
    }
}

impl Recorder for RingRecorder {
    fn record(&mut self, now: SimTime, ev: ObsEvent) {
        self.trace.push_with(now, "machine", || format!("{ev:?}"));
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_recent_events_human_readable() {
        let mut r = RingRecorder::with_capacity(2);
        for job in 0..4u32 {
            r.record(SimTime(job as u64), ObsEvent::JobArrived { job });
        }
        let dump = r.dump();
        assert!(dump.contains("JobArrived { job: 3 }"));
        assert!(!dump.contains("job: 0"));
        assert!(dump.contains("2 earlier records dropped"));
    }

    #[test]
    fn downcast_recovers_concrete_type() {
        let mut boxed: Box<dyn Recorder> = Box::new(RingRecorder::with_capacity(8));
        boxed.record(SimTime(1), ObsEvent::JobFinished { job: 9 });
        let ring = boxed
            .as_any_mut()
            .downcast_mut::<RingRecorder>()
            .expect("downcast");
        assert!(ring.dump().contains("JobFinished"));
    }
}
