//! Time-weighted metrics registry.
//!
//! Gauges here are piecewise-constant signals over simulated time: every
//! [`MetricsRegistry::set`] first integrates `value x elapsed` (in
//! value-nanoseconds) since the previous update, then records the new
//! value. Integrals of 0/1 signals (CPU busy, link busy) are therefore
//! *exact* in an `f64` for any realistic run span (integer nanosecond sums
//! stay below 2^53), which the machine's busy + idle == span conservation
//! test relies on.
//!
//! A gauge can also keep a bounded change-point series `(t_ns, value)` for
//! exporters (e.g. Chrome-trace counter tracks); the registry counts what
//! it drops so a truncated series is never mistaken for a complete one.

use parsched_des::SimTime;
use std::fmt::Write as _;

/// Handle to a gauge in a [`MetricsRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(u32);

/// Handle to a counter in a [`MetricsRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

#[derive(Debug, Clone)]
struct Gauge {
    name: String,
    /// Nanosecond timestamp of the last update.
    last_t: u64,
    /// Current value.
    value: f64,
    /// Integral of value over time, in value-nanoseconds.
    integral: f64,
    peak: f64,
    /// Change points `(t_ns, value)`, bounded by the registry's series cap.
    series: Vec<(u64, f64)>,
}

/// A registry of time-weighted gauges and monotone counters.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    t0: u64,
    gauges: Vec<Gauge>,
    counters: Vec<(String, u64)>,
    /// Max change points retained per gauge (0 disables series).
    series_cap: usize,
    series_dropped: u64,
}

impl MetricsRegistry {
    /// An empty registry; gauges integrate from `t0`. Series recording is
    /// off — see [`MetricsRegistry::with_series`].
    pub fn new(t0: SimTime) -> MetricsRegistry {
        MetricsRegistry {
            t0: t0.nanos(),
            gauges: Vec::new(),
            counters: Vec::new(),
            series_cap: 0,
            series_dropped: 0,
        }
    }

    /// Keep up to `cap` change points per gauge (for exporters).
    pub fn with_series(mut self, cap: usize) -> MetricsRegistry {
        self.series_cap = cap;
        self
    }

    /// Register a gauge with an initial value.
    pub fn gauge(&mut self, name: impl Into<String>, v0: f64) -> GaugeId {
        let id = GaugeId(self.gauges.len() as u32);
        let mut series = Vec::new();
        if self.series_cap > 0 {
            series.push((self.t0, v0));
        }
        self.gauges.push(Gauge {
            name: name.into(),
            last_t: self.t0,
            value: v0,
            integral: 0.0,
            peak: v0,
            series,
        });
        id
    }

    /// Register a counter (starts at zero).
    pub fn counter(&mut self, name: impl Into<String>) -> CounterId {
        let id = CounterId(self.counters.len() as u32);
        self.counters.push((name.into(), 0));
        id
    }

    /// Increment a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0 as usize].1 += by;
    }

    /// Set a gauge's value at `now`, integrating the old value first.
    ///
    /// # Panics
    /// Panics (debug builds) if time runs backwards for this gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, now: SimTime, value: f64) {
        let g = &mut self.gauges[id.0 as usize];
        let t = now.nanos();
        debug_assert!(t >= g.last_t, "gauge '{}' updated in the past", g.name);
        g.integral += g.value * (t - g.last_t) as f64;
        g.last_t = t;
        if value != g.value {
            g.value = value;
            if value > g.peak {
                g.peak = value;
            }
            if self.series_cap > 0 {
                if g.series.len() < self.series_cap {
                    g.series.push((t, value));
                } else {
                    self.series_dropped += 1;
                }
            }
        }
    }

    /// Add `delta` to a gauge (convenience over [`MetricsRegistry::set`]).
    #[inline]
    pub fn add(&mut self, id: GaugeId, now: SimTime, delta: f64) {
        let v = self.gauges[id.0 as usize].value + delta;
        self.set(id, now, v);
    }

    /// Close every gauge's integral at `end` (call once, after the run).
    pub fn finish(&mut self, end: SimTime) {
        let t = end.nanos();
        for g in &mut self.gauges {
            debug_assert!(t >= g.last_t, "gauge '{}' finished in the past", g.name);
            g.integral += g.value * (t - g.last_t) as f64;
            g.last_t = t;
        }
    }

    /// A gauge's current value.
    pub fn value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0 as usize].value
    }

    /// A gauge's peak value.
    pub fn peak(&self, id: GaugeId) -> f64 {
        self.gauges[id.0 as usize].peak
    }

    /// Integral of the gauge over time, in value-nanoseconds, up to its
    /// last update (call [`MetricsRegistry::finish`] to close it).
    pub fn integral_ns(&self, id: GaugeId) -> f64 {
        self.gauges[id.0 as usize].integral
    }

    /// Time-weighted mean of the gauge over `[t0, last update]`.
    pub fn mean(&self, id: GaugeId) -> f64 {
        let g = &self.gauges[id.0 as usize];
        let span = (g.last_t - self.t0) as f64;
        if span == 0.0 {
            g.value
        } else {
            g.integral / span
        }
    }

    /// The gauge's change points `(t_ns, value)`, if series are enabled.
    pub fn series(&self, id: GaugeId) -> &[(u64, f64)] {
        &self.gauges[id.0 as usize].series
    }

    /// A gauge's registered name.
    pub fn gauge_name(&self, id: GaugeId) -> &str {
        &self.gauges[id.0 as usize].name
    }

    /// All gauges as `(name, id)`, in registration order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, GaugeId)> {
        self.gauges
            .iter()
            .enumerate()
            .map(|(i, g)| (g.name.as_str(), GaugeId(i as u32)))
    }

    /// All counters as `(name, value)`, in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Change points discarded across all gauges because of the series cap.
    pub fn series_dropped(&self) -> u64 {
        self.series_dropped
    }

    /// Render every metric as CSV: `metric,kind,mean,peak,last`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,kind,mean,peak,last\n");
        for (name, id) in self.gauges() {
            let _ = writeln!(
                out,
                "{name},gauge,{:.9},{},{}",
                self.mean(id),
                self.peak(id),
                self.value(id)
            );
        }
        for (name, v) in self.counters() {
            let _ = writeln!(out, "{name},counter,,,{v}");
        }
        out
    }

    /// Render every metric as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let w = self
            .gauges
            .iter()
            .map(|g| g.name.len())
            .chain(self.counters.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(6)
            .max("metric".len());
        let _ = writeln!(out, "{:<w$}  {:>12}  {:>10}  {:>10}", "metric", "mean", "peak", "last");
        for (name, id) in self.gauges() {
            let _ = writeln!(
                out,
                "{name:<w$}  {:>12.6}  {:>10}  {:>10}",
                self.mean(id),
                self.peak(id),
                self.value(id)
            );
        }
        for (name, v) in self.counters() {
            let _ = writeln!(out, "{name:<w$}  {:>12}  {:>10}  {v:>10}", "-", "-");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_integrates_piecewise_constant_signal() {
        let mut r = MetricsRegistry::new(SimTime::ZERO);
        let g = r.gauge("busy", 0.0);
        r.set(g, SimTime(10), 1.0); // 0..10 at 0
        r.set(g, SimTime(25), 0.0); // 10..25 at 1
        r.finish(SimTime(100)); // 25..100 at 0
        assert_eq!(r.integral_ns(g), 15.0);
        assert_eq!(r.mean(g), 0.15);
        assert_eq!(r.peak(g), 1.0);
        assert_eq!(r.value(g), 0.0);
    }

    #[test]
    fn zero_one_conservation_is_exact() {
        // busy + idle integrals telescope exactly to the span.
        let mut r = MetricsRegistry::new(SimTime::ZERO);
        let busy = r.gauge("busy", 0.0);
        let idle = r.gauge("idle", 1.0);
        let mut t = 0u64;
        for i in 0..1000u64 {
            t += 1 + (i * 7919) % 1000; // irregular steps
            let b = (i % 2) as f64;
            r.set(busy, SimTime(t), b);
            r.set(idle, SimTime(t), 1.0 - b);
        }
        r.finish(SimTime(t + 12345));
        let span = (t + 12345) as f64;
        assert_eq!(r.integral_ns(busy) + r.integral_ns(idle), span);
    }

    #[test]
    fn series_records_change_points_and_caps() {
        let mut r = MetricsRegistry::new(SimTime::ZERO).with_series(3);
        let g = r.gauge("depth", 0.0);
        r.set(g, SimTime(1), 1.0);
        r.set(g, SimTime(2), 1.0); // no change -> no point
        r.set(g, SimTime(3), 2.0);
        r.set(g, SimTime(4), 3.0); // over cap -> dropped
        assert_eq!(r.series(g), &[(0, 0.0), (1, 1.0), (3, 2.0)]);
        assert_eq!(r.series_dropped(), 1);
    }

    #[test]
    fn counters_accumulate() {
        let mut r = MetricsRegistry::new(SimTime::ZERO);
        let c = r.counter("sends");
        r.inc(c, 2);
        r.inc(c, 3);
        assert_eq!(r.counters().next(), Some(("sends", 5)));
    }

    #[test]
    fn csv_and_text_render_every_metric() {
        let mut r = MetricsRegistry::new(SimTime::ZERO);
        let g = r.gauge("node0.cpu_busy", 1.0);
        let c = r.counter("sends");
        r.inc(c, 7);
        r.set(g, SimTime(10), 0.0);
        r.finish(SimTime(10));
        let csv = r.to_csv();
        assert!(csv.starts_with("metric,kind,mean,peak,last\n"));
        assert!(csv.contains("node0.cpu_busy,gauge,"));
        assert!(csv.contains("sends,counter,,,7"));
        let txt = r.to_text();
        assert!(txt.contains("node0.cpu_busy"));
        assert!(txt.contains("sends"));
    }

    #[test]
    fn add_moves_relative_to_current_value() {
        let mut r = MetricsRegistry::new(SimTime::ZERO);
        let g = r.gauge("mpl", 0.0);
        r.add(g, SimTime(5), 1.0);
        r.add(g, SimTime(9), 1.0);
        r.add(g, SimTime(20), -2.0);
        r.finish(SimTime(20));
        // 0..5 at 0, 5..9 at 1, 9..20 at 2.
        assert_eq!(r.integral_ns(g), 4.0 + 22.0);
        assert_eq!(r.peak(g), 2.0);
        assert_eq!(r.value(g), 0.0);
    }
}
