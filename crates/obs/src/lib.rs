//! # parsched-obs
//!
//! Observability for the simulated multicomputer, designed around one hard
//! rule: **instrumentation may observe, never perturb**. Recorders and
//! metrics never schedule events, never touch the RNG and never feed back
//! into the model, so a fully instrumented run is bit-identical to an
//! uninstrumented one — the golden figures stay exact with recording on or
//! off.
//!
//! Three layers:
//!
//! * [`event`] — a compact [`ObsEvent`](event::ObsEvent) enum of simulation
//!   events (job lifecycle, CPU quanta, message hops, partition admission)
//!   recorded through the [`Recorder`](event::Recorder) trait. The disabled
//!   path is a single `Option` branch: no formatting, no allocation.
//! * [`metrics`] — a [`MetricsRegistry`](metrics::MetricsRegistry) of
//!   counters and time-weighted gauges (piecewise-constant signals with
//!   exact `value x duration` integrals) plus bounded change-point series.
//! * [`chrome`] + [`ring`] — exporters: a Chrome-trace (catapult JSON)
//!   writer whose output opens in `chrome://tracing` or Perfetto, and a
//!   bounded human-readable ring buffer for the deadlock watchdog.
//!
//! The crate is domain-light on purpose: events carry plain integer ids
//! (node, job, rank, message, channel), so it depends only on
//! `parsched-des` for simulated time. The machine model wires the hooks;
//! see `parsched-machine` and `parsched-core`.

#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod metrics;
pub mod ring;

/// The observability crate's commonly used names in one import.
pub mod prelude {
    pub use crate::chrome::{ChromeTrace, TraceLayout};
    pub use crate::event::{CollectRecorder, ObsEvent, QuantumEndReason, Recorder, TimedEvent};
    pub use crate::metrics::{CounterId, GaugeId, MetricsRegistry};
    pub use crate::ring::RingRecorder;
}

pub use prelude::*;
