//! Chrome-trace (catapult JSON) exporter.
//!
//! Maps the simulated machine onto the trace-viewer hierarchy:
//!
//! * **pid 0** — the "scheduler" process: job lifecycle and partition
//!   admission instants, plus any caller-added counter tracks (MPL, queue
//!   lengths).
//! * **pid n+1** — node `n`. Its **tid 0** is the CPU (low-priority quanta
//!   and high-priority handler slices interleave there — the model runs one
//!   at a time, so slices never nest), and each outgoing link gets its own
//!   tid carrying per-message transfer slices.
//!
//! Timestamps convert from integer nanoseconds to the format's microseconds
//! with three decimals, so no precision is lost. The output opens directly
//! in `chrome://tracing` or <https://ui.perfetto.dev>.

use crate::event::{ObsEvent, TimedEvent};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Static description of the machine needed to lay out the trace.
#[derive(Debug, Clone, Default)]
pub struct TraceLayout {
    /// Number of nodes (pids 1..=node_count).
    pub node_count: u32,
    /// Directed channels as `(from, to)`, indexed by channel id.
    pub links: Vec<(u32, u32)>,
    /// Display names per job id (falls back to `job{id}`).
    pub job_names: Vec<String>,
}

impl TraceLayout {
    fn job_name(&self, job: u32) -> String {
        self.job_names
            .get(job as usize)
            .cloned()
            .unwrap_or_else(|| format!("job{job}"))
    }

    /// `(pid, tid)` of a channel: its `from` node's process, thread
    /// 1 + position among that node's outgoing links.
    fn link_track(&self, chan: u32) -> Option<(u32, u32)> {
        let (from, _) = *self.links.get(chan as usize)?;
        let tid = 1 + self
            .links
            .iter()
            .take(chan as usize)
            .filter(|(f, _)| *f == from)
            .count() as u32;
        Some((from + 1, tid))
    }
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds to the trace format's microsecond field, exactly.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

const SCHED_PID: u32 = 0;

/// Builder/serializer for one catapult JSON document.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
    /// (pid, tid) -> (start_ns, name, args) of the currently open slice.
    open: HashMap<(u32, u32), (u64, String, String)>,
    /// Start/End pairings that did not match up (bug canary, not fatal).
    unmatched: u64,
    last_ts: u64,
}

impl ChromeTrace {
    /// Build a trace from the recorded event stream.
    pub fn build(layout: &TraceLayout, events: &[TimedEvent]) -> ChromeTrace {
        let mut t = ChromeTrace::default();
        t.metadata(SCHED_PID, None, "scheduler");
        for n in 0..layout.node_count {
            let pid = n + 1;
            t.metadata(pid, None, &format!("node {n}"));
            t.metadata(pid, Some(0), "cpu");
        }
        for (chan, (from, to)) in layout.links.iter().enumerate() {
            if let Some((pid, tid)) = layout.link_track(chan as u32) {
                t.metadata(pid, Some(tid), &format!("link {from}->{to}"));
            }
        }
        for &(now, ev) in events {
            t.event(layout, now.nanos(), ev);
        }
        t.close_open_slices();
        t
    }

    fn metadata(&mut self, pid: u32, tid: Option<u32>, name: &str) {
        let name = json_escape(name);
        let ev = match tid {
            None => format!(
                r#"{{"ph":"M","pid":{pid},"name":"process_name","args":{{"name":"{name}"}}}}"#
            ),
            Some(tid) => format!(
                r#"{{"ph":"M","pid":{pid},"tid":{tid},"name":"thread_name","args":{{"name":"{name}"}}}}"#
            ),
        };
        self.events.push(ev);
    }

    fn begin(&mut self, pid: u32, tid: u32, ts: u64, name: String, args: String) {
        if self.open.insert((pid, tid), (ts, name, args)).is_some() {
            self.unmatched += 1;
        }
    }

    fn end(&mut self, pid: u32, tid: u32, ts: u64, extra_args: &str) {
        let Some((start, name, mut args)) = self.open.remove(&(pid, tid)) else {
            self.unmatched += 1;
            return;
        };
        if !extra_args.is_empty() {
            if !args.is_empty() {
                args.push(',');
            }
            args.push_str(extra_args);
        }
        let (ts0, dur) = (us(start), us(ts - start));
        let name = json_escape(&name);
        self.events.push(format!(
            r#"{{"ph":"X","pid":{pid},"tid":{tid},"ts":{ts0},"dur":{dur},"name":"{name}","args":{{{args}}}}}"#
        ));
    }

    fn instant(&mut self, pid: u32, tid: u32, ts: u64, name: &str, args: &str) {
        let (ts, name) = (us(ts), json_escape(name));
        self.events.push(format!(
            r#"{{"ph":"i","pid":{pid},"tid":{tid},"ts":{ts},"s":"t","name":"{name}","args":{{{args}}}}}"#
        ));
    }

    /// Append a counter sample (e.g. partition MPL or ready-queue depth).
    pub fn counter(&mut self, ts_ns: u64, pid: u32, name: &str, value: f64) {
        let (ts, name) = (us(ts_ns), json_escape(name));
        self.events.push(format!(
            r#"{{"ph":"C","pid":{pid},"ts":{ts},"name":"{name}","args":{{"value":{value}}}}}"#
        ));
        self.last_ts = self.last_ts.max(ts_ns);
    }

    fn event(&mut self, layout: &TraceLayout, ts: u64, ev: ObsEvent) {
        self.last_ts = self.last_ts.max(ts);
        match ev {
            ObsEvent::JobArrived { job } => {
                let name = format!("arrive {}", layout.job_name(job));
                self.instant(SCHED_PID, 0, ts, &name, &format!(r#""job":{job}"#));
            }
            ObsEvent::JobLoaded { job } => {
                let name = format!("load {}", layout.job_name(job));
                self.instant(SCHED_PID, 0, ts, &name, &format!(r#""job":{job}"#));
            }
            ObsEvent::JobFinished { job } => {
                let name = format!("finish {}", layout.job_name(job));
                self.instant(SCHED_PID, 0, ts, &name, &format!(r#""job":{job}"#));
            }
            ObsEvent::PartitionAdmit { job, partition } => {
                let name = format!("admit {} -> P{partition}", layout.job_name(job));
                self.instant(
                    SCHED_PID,
                    0,
                    ts,
                    &name,
                    &format!(r#""job":{job},"partition":{partition}"#),
                );
            }
            ObsEvent::QuantumStart { node, job, rank } => {
                let name = format!("{}:r{rank}", layout.job_name(job));
                let args = format!(r#""job":{job},"rank":{rank}"#);
                self.begin(node + 1, 0, ts, name, args);
            }
            ObsEvent::QuantumEnd { node, reason, .. } => {
                let extra = format!(r#""end":"{}""#, reason.label());
                self.end(node + 1, 0, ts, &extra);
            }
            ObsEvent::HandlerStart { node, msg } => {
                let name = format!("handler m{msg}");
                self.begin(node + 1, 0, ts, name, format!(r#""msg":{msg}"#));
            }
            ObsEvent::HandlerEnd { node, .. } => {
                self.end(node + 1, 0, ts, "");
            }
            ObsEvent::MsgSend {
                msg,
                job,
                src,
                dst,
                bytes,
            } => {
                let name = format!("send m{msg} -> {dst}");
                let args = format!(r#""msg":{msg},"job":{job},"bytes":{bytes}"#);
                self.instant(src + 1, 0, ts, &name, &args);
            }
            ObsEvent::HopStart { msg, chan } => {
                if let Some((pid, tid)) = layout.link_track(chan) {
                    self.begin(pid, tid, ts, format!("m{msg}"), format!(r#""msg":{msg}"#));
                }
            }
            ObsEvent::HopEnd { chan, .. } => {
                if let Some((pid, tid)) = layout.link_track(chan) {
                    self.end(pid, tid, ts, "");
                }
            }
            ObsEvent::WormVcAlloc { msg, chan, vc } => {
                if let Some((pid, tid)) = layout.link_track(chan) {
                    let name = format!("vc{vc} <- m{msg}");
                    self.instant(pid, tid, ts, &name, &format!(r#""msg":{msg},"vc":{vc}"#));
                }
            }
            ObsEvent::WormStall { msg, chan } => {
                if let Some((pid, tid)) = layout.link_track(chan) {
                    let name = format!("stall m{msg}");
                    self.instant(pid, tid, ts, &name, &format!(r#""msg":{msg}"#));
                }
            }
            ObsEvent::WormDrained { msg, chan } => {
                if let Some((pid, tid)) = layout.link_track(chan) {
                    let name = format!("drain m{msg}");
                    self.instant(pid, tid, ts, &name, &format!(r#""msg":{msg}"#));
                }
            }
            ObsEvent::MsgDeliver { msg, job, node } => {
                let name = format!("deliver m{msg}");
                let args = format!(r#""msg":{msg},"job":{job}"#);
                self.instant(node + 1, 0, ts, &name, &args);
            }
            ObsEvent::NodeCrashed { node } => {
                let name = format!("CRASH node {node}");
                self.instant(node + 1, 0, ts, &name, &format!(r#""node":{node}"#));
            }
            ObsEvent::LinkDown { chan } => {
                if let Some((pid, tid)) = layout.link_track(chan) {
                    self.instant(pid, tid, ts, "link down", &format!(r#""chan":{chan}"#));
                }
            }
            ObsEvent::LinkUp { chan } => {
                if let Some((pid, tid)) = layout.link_track(chan) {
                    self.instant(pid, tid, ts, "link up", &format!(r#""chan":{chan}"#));
                }
            }
            ObsEvent::MsgDropped { msg, job, node } => {
                let name = format!("drop m{msg}");
                let args = format!(r#""msg":{msg},"job":{job}"#);
                self.instant(node + 1, 0, ts, &name, &args);
            }
            ObsEvent::MsgRetry { msg, attempt } => {
                let name = format!("retry m{msg} #{attempt}");
                let args = format!(r#""msg":{msg},"attempt":{attempt}"#);
                self.instant(SCHED_PID, 0, ts, &name, &args);
            }
            ObsEvent::MsgTimeout { msg } => {
                let name = format!("timeout m{msg}");
                self.instant(SCHED_PID, 0, ts, &name, &format!(r#""msg":{msg}"#));
            }
            ObsEvent::JobFailed { job } => {
                let name = format!("FAIL {}", layout.job_name(job));
                self.instant(SCHED_PID, 0, ts, &name, &format!(r#""job":{job}"#));
            }
            ObsEvent::JobRequeued { job, partition } => {
                let name = format!("requeue {} -> P{partition}", layout.job_name(job));
                self.instant(
                    SCHED_PID,
                    0,
                    ts,
                    &name,
                    &format!(r#""job":{job},"partition":{partition}"#),
                );
            }
            ObsEvent::JobSubmitted { index, in_system } => {
                let name = format!("submit #{index}");
                self.instant(SCHED_PID, 0, ts, &name, &format!(r#""index":{index}"#));
                self.counter(ts, SCHED_PID, "in-system jobs", in_system as f64);
            }
            ObsEvent::JobDeparted { index, in_system } => {
                let name = format!("depart #{index}");
                self.instant(SCHED_PID, 0, ts, &name, &format!(r#""index":{index}"#));
                self.counter(ts, SCHED_PID, "in-system jobs", in_system as f64);
            }
            ObsEvent::ShardPhase { shard, phase, ns } => {
                let name = match phase {
                    0 => "shard work (ms)",
                    1 => "shard barrier wait (ms)",
                    _ => "shard merge (ms)",
                };
                let series = format!("{name} [shard {shard}]");
                self.counter(ts, SCHED_PID, &series, ns as f64 / 1e6);
            }
        }
    }

    /// Flush slices still open at the end of the stream (e.g. a process
    /// caught mid-quantum when the run's last event fired) at the last
    /// timestamp seen, so they remain visible in the viewer.
    fn close_open_slices(&mut self) {
        let keys: Vec<(u32, u32)> = self.open.keys().copied().collect();
        let last = self.last_ts;
        for (pid, tid) in keys {
            self.end(pid, tid, last, r#""end":"run-end""#);
        }
    }

    /// Start/End events that had no partner (0 in a healthy trace).
    pub fn unmatched(&self) -> u64 {
        self.unmatched
    }

    /// Number of trace events emitted so far (metadata included).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been emitted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialize to a catapult JSON document.
    pub fn render(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, ev) in self.events.iter().enumerate() {
            out.push_str(ev);
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::QuantumEndReason;
    use parsched_des::SimTime;

    fn layout() -> TraceLayout {
        TraceLayout {
            node_count: 2,
            links: vec![(0, 1), (1, 0)],
            job_names: vec!["mm16".into()],
        }
    }

    #[test]
    fn link_tracks_group_by_from_node() {
        let l = TraceLayout {
            node_count: 3,
            links: vec![(0, 1), (1, 2), (0, 2)],
            job_names: vec![],
        };
        assert_eq!(l.link_track(0), Some((1, 1)));
        assert_eq!(l.link_track(1), Some((2, 1)));
        assert_eq!(l.link_track(2), Some((1, 2)));
        assert_eq!(l.link_track(9), None);
    }

    #[test]
    fn slices_pair_start_and_end() {
        let evs = vec![
            (SimTime(1_000), ObsEvent::QuantumStart { node: 0, job: 0, rank: 2 }),
            (
                SimTime(4_500),
                ObsEvent::QuantumEnd {
                    node: 0,
                    job: 0,
                    rank: 2,
                    reason: QuantumEndReason::Expired,
                },
            ),
        ];
        let t = ChromeTrace::build(&layout(), &evs);
        assert_eq!(t.unmatched(), 0);
        let json = t.render();
        assert!(json.contains(r#""ph":"X""#));
        assert!(json.contains(r#""name":"mm16:r2""#));
        assert!(json.contains(r#""ts":1.000"#));
        assert!(json.contains(r#""dur":3.500"#));
        assert!(json.contains(r#""end":"expired""#));
    }

    #[test]
    fn unclosed_slice_is_flushed_at_last_ts() {
        let evs = vec![
            (SimTime(10), ObsEvent::QuantumStart { node: 1, job: 0, rank: 0 }),
            (SimTime(500), ObsEvent::JobFinished { job: 0 }),
        ];
        let t = ChromeTrace::build(&layout(), &evs);
        let json = t.render();
        assert!(json.contains(r#""end":"run-end""#));
        assert_eq!(t.unmatched(), 0);
    }

    #[test]
    fn unmatched_end_is_counted_not_emitted() {
        let evs = vec![(
            SimTime(10),
            ObsEvent::QuantumEnd {
                node: 0,
                job: 0,
                rank: 0,
                reason: QuantumEndReason::Blocked,
            },
        )];
        let t = ChromeTrace::build(&layout(), &evs);
        assert_eq!(t.unmatched(), 1);
    }

    #[test]
    fn metadata_names_processes_and_links() {
        let t = ChromeTrace::build(&layout(), &[]);
        let json = t.render();
        assert!(json.contains(r#""name":"process_name","args":{"name":"scheduler"}"#));
        assert!(json.contains(r#"{"name":"node 0"}"#));
        assert!(json.contains(r#"{"name":"link 0->1"}"#));
        assert!(json.contains(r#"{"name":"link 1->0"}"#));
    }

    #[test]
    fn counters_and_instants_render() {
        let mut t = ChromeTrace::build(
            &layout(),
            &[(SimTime(2_000), ObsEvent::PartitionAdmit { job: 0, partition: 1 })],
        );
        t.counter(3_000, 0, "P1 mpl", 2.0);
        let json = t.render();
        assert!(json.contains(r#""ph":"i""#));
        assert!(json.contains("admit mm16 -> P1"));
        assert!(json.contains(r#""ph":"C""#));
        assert!(json.contains(r#""value":2"#));
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn ns_to_us_is_exact() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(1), "0.001");
        assert_eq!(us(1_234_567), "1234.567");
    }
}
