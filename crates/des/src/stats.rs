//! Output statistics.
//!
//! Everything a scheduling experiment needs to summarize its observations:
//! streaming mean/variance (Welford), fixed-bin histograms with quantile
//! estimates, time-weighted averages for utilizations and queue lengths, and
//! batch-means confidence intervals.

use crate::time::{SimDuration, SimTime};

/// Streaming mean/variance accumulator (Welford's online algorithm).
///
/// ```
/// use parsched_des::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     w.record(x);
/// }
/// assert_eq!(w.mean(), 2.5);
/// assert!((w.variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record a duration observation in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (std dev / mean; 0.0 if the mean is 0).
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel Welford / Chan et al.).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-bin histogram over `[lo, hi)` with overflow/underflow bins,
/// supporting quantile estimation by linear interpolation within bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// A histogram with `bins` equal-width bins covering `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "Histogram: hi must exceed lo");
        assert!(bins > 0, "Histogram: need at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations recorded (including out-of-range ones).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Approximate `q`-quantile (`0.0 <= q <= 1.0`) by linear interpolation
    /// within the containing bin. Returns `None` when empty. Out-of-range
    /// mass is attributed to the range boundaries.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = self.underflow as f64;
        if target <= cum {
            return Some(self.lo);
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            let next = cum + c as f64;
            if target <= next && c > 0 {
                let frac = (target - cum) / c as f64;
                return Some(self.lo + w * (i as f64 + frac));
            }
            cum = next;
        }
        Some(self.hi)
    }
}

/// Time-weighted average of a piecewise-constant signal (queue length,
/// busy/idle state, memory in use, ...).
///
/// ```
/// use parsched_des::stats::TimeWeighted;
/// use parsched_des::SimTime;
///
/// let mut queue_len = TimeWeighted::new(SimTime::ZERO, 0.0);
/// queue_len.add(SimTime(1_000_000_000), 2.0);  // two arrivals at t = 1 s
/// queue_len.add(SimTime(3_000_000_000), -1.0); // one departure at t = 3 s
/// // 0 for 1 s, 2 for 2 s, 1 for 1 s => mean 1.25 over 4 s.
/// assert_eq!(queue_len.mean(SimTime(4_000_000_000)), 1.25);
/// ```
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64,
    start: SimTime,
    peak: f64,
}

impl TimeWeighted {
    /// Start tracking at `t0` with initial signal `value`.
    pub fn new(t0: SimTime, value: f64) -> Self {
        TimeWeighted {
            last_time: t0,
            last_value: value,
            weighted_sum: 0.0,
            start: t0,
            peak: value,
        }
    }

    /// The signal changes to `value` at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        debug_assert!(now >= self.last_time, "TimeWeighted: time ran backwards");
        self.weighted_sum +=
            self.last_value * now.saturating_since(self.last_time).as_secs_f64();
        self.last_time = now;
        self.last_value = value;
        self.peak = self.peak.max(value);
    }

    /// Add `delta` to the signal at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.last_value + delta;
        self.set(now, v);
    }

    /// Current signal value.
    pub fn current(&self) -> f64 {
        self.last_value
    }

    /// Peak signal value observed.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted mean over `[t0, now]` (0.0 for an empty interval).
    pub fn mean(&self, now: SimTime) -> f64 {
        let total = now.saturating_since(self.start).as_secs_f64();
        if total == 0.0 {
            return self.last_value;
        }
        let sum = self.weighted_sum
            + self.last_value * now.saturating_since(self.last_time).as_secs_f64();
        sum / total
    }
}

/// Exact sample quantile by sorting (nearest-rank with linear
/// interpolation); `None` on an empty slice.
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Batch-means confidence interval for a stream of observations.
///
/// Splits `xs` into `batches` equal batches, treats batch means as i.i.d.
/// samples, and returns `(mean, half_width)` for the requested two-sided
/// confidence level using Student-t critical values.
pub fn batch_means_ci(xs: &[f64], batches: usize, confidence: f64) -> Option<(f64, f64)> {
    if xs.is_empty() || batches < 2 || xs.len() < batches {
        return None;
    }
    let per = xs.len() / batches;
    let mut means = Welford::new();
    for b in 0..batches {
        let chunk = &xs[b * per..(b + 1) * per];
        let m: f64 = chunk.iter().sum::<f64>() / chunk.len() as f64;
        means.record(m);
    }
    let t = t_critical(batches - 1, confidence);
    let half = t * means.std_dev() / (batches as f64).sqrt();
    Some((means.mean(), half))
}

/// Two-sided Student-t critical value for `df` degrees of freedom.
///
/// Table-driven for the confidence levels used in the experiment harness
/// (90%, 95%, 99%), with the normal approximation beyond df = 30.
pub fn t_critical(df: usize, confidence: f64) -> f64 {
    const T95: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
        2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ];
    const T90: [f64; 30] = [
        6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782,
        1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711,
        1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
    ];
    const T99: [f64; 30] = [
        63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169, 3.106, 3.055,
        3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797,
        2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
    ];
    let df = df.max(1);
    let (table, asymptote) = if confidence >= 0.985 {
        (&T99, 2.576)
    } else if confidence >= 0.925 {
        (&T95, 1.960)
    } else {
        (&T90, 1.645)
    };
    if df <= 30 {
        table[df - 1]
    } else {
        asymptote
    }
}

/// Summary of a set of response-time observations, in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarize a slice of durations.
    pub fn of_durations(xs: &[SimDuration]) -> Summary {
        let mut w = Welford::new();
        for &x in xs {
            w.record_duration(x);
        }
        Summary {
            count: w.count(),
            mean: w.mean(),
            std_dev: w.std_dev(),
            min: w.min().unwrap_or(0.0),
            max: w.max().unwrap_or(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.record(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic dataset is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn welford_merge_equals_single_stream() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn empty_welford_is_harmless() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), None);
        let mut a = Welford::new();
        a.merge(&w);
        assert_eq!(a.count(), 0);
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.record(i as f64 / 10.0); // 0.0 .. 9.9 uniformly
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert!(h.bins().iter().all(|&c| c == 10));
        let median = h.quantile(0.5).unwrap();
        assert!((median - 5.0).abs() < 0.5, "median {median}");
        assert_eq!(h.quantile(0.0).unwrap(), 0.0);
    }

    #[test]
    fn histogram_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(2.0);
        h.record(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn time_weighted_mean_of_step_signal() {
        // 0 for 10 s, then 4 for 30 s => mean 3.0 over 40 s.
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.set(SimTime(10_000_000_000), 4.0);
        let mean = tw.mean(SimTime(40_000_000_000));
        assert!((mean - 3.0).abs() < 1e-9, "mean {mean}");
        assert_eq!(tw.peak(), 4.0);
        assert_eq!(tw.current(), 4.0);
    }

    #[test]
    fn time_weighted_add_tracks_queue_length() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.add(SimTime(1_000_000_000), 1.0);
        tw.add(SimTime(2_000_000_000), 1.0);
        tw.add(SimTime(3_000_000_000), -2.0);
        assert_eq!(tw.current(), 0.0);
        assert_eq!(tw.peak(), 2.0);
        // Signal: 0 on [0,1), 1 on [1,2), 2 on [2,3), 0 on [3,4) => mean 0.75.
        let mean = tw.mean(SimTime(4_000_000_000));
        assert!((mean - 0.75).abs() < 1e-9, "mean {mean}");
    }

    #[test]
    fn batch_means_ci_sane() {
        let xs: Vec<f64> = (0..1000).map(|i| 10.0 + ((i * 37) % 11) as f64).collect();
        let (mean, half) = batch_means_ci(&xs, 10, 0.95).unwrap();
        assert!(mean > 10.0 && mean < 21.0);
        assert!((0.0..5.0).contains(&half));
        assert!(batch_means_ci(&[], 10, 0.95).is_none());
        assert!(batch_means_ci(&[1.0], 2, 0.95).is_none());
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 1.0), Some(4.0));
        assert_eq!(percentile(&xs, 0.5), Some(2.5));
        assert_eq!(percentile(&xs, 1.0 / 3.0), Some(2.0));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7.0], 0.9), Some(7.0));
    }

    #[test]
    fn t_critical_spot_checks() {
        assert!((t_critical(1, 0.95) - 12.706).abs() < 1e-9);
        assert!((t_critical(9, 0.95) - 2.262).abs() < 1e-9);
        assert!((t_critical(100, 0.95) - 1.960).abs() < 1e-9);
        assert!((t_critical(5, 0.90) - 2.015).abs() < 1e-9);
        assert!((t_critical(5, 0.99) - 4.032).abs() < 1e-9);
    }

    #[test]
    fn summary_of_durations() {
        let xs = [
            SimDuration::from_secs(1),
            SimDuration::from_secs(2),
            SimDuration::from_secs(3),
        ];
        let s = Summary::of_durations(&xs);
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.min - 1.0).abs() < 1e-12);
        assert!((s.max - 3.0).abs() < 1e-12);
    }
}
