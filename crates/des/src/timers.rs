//! Adaptive timer store: the timing wheel with a heap fallback, migrated
//! by the same wide-hysteresis rule as the heap↔calendar event queue.
//!
//! The [`TimerWheel`](crate::wheel::TimerWheel) is the right structure for
//! the machine's timer population — short-horizon, cancellation-heavy —
//! but it has a pathological regime: timers firing beyond its ~4.9 hour
//! span land in an unordered *overflow list* where every insert, cancel
//! and pop is a linear scan. A model that parks many far-future timers
//! (long message-timeout guards under congestion, sparse health checks)
//! quietly degrades the whole engine to `O(n)` per operation.
//!
//! [`AdaptiveTimers`] watches for that regime exactly the way
//! [`AdaptiveQueue`](crate::queue::AdaptiveQueue) watches its backend: a
//! cheap counter-driven check every [`ADAPT_CHECK_EVERY`] operations, a
//! [`ADAPT_STREAK`]-long confirmation streak before any migration, and
//! promote/demote thresholds ([`ADAPT_PROMOTE_LEN`] /
//! [`ADAPT_DEMOTE_LEN`]) spread wide apart so a population oscillating
//! near one threshold cannot thrash migrations. While the overflow list
//! stays over the promote threshold, the whole population migrates to a
//! 4-ary min-heap with lazy deletion (cancel marks the key dead; corpses
//! are skipped on pop); once the population shrinks below the demote
//! threshold — small enough that re-filing it is cheap and the wheel's
//! `O(1)` ops win again — it migrates back.
//!
//! Both modes order by the identical packed `(time, seq)` key, and a
//! migration moves every live timer with its key intact, so the pop
//! sequence observed by the engine is bit-identical whether or not any
//! migration ever happens — the property the determinism tests pin.
//! Handles survive migrations: cancellation always resolves by key
//! ([`TimerWheel::cancel_by_key`] on the wheel, the live-set on the heap),
//! never by the handle's recorded level.

use crate::queue::{
    BinaryHeapQueue, EventQueue, Scheduled, ADAPT_CHECK_EVERY, ADAPT_DEMOTE_LEN,
    ADAPT_PROMOTE_LEN, ADAPT_STREAK,
};
use crate::time::SimTime;
use crate::wheel::{TimerHandle, TimerWheel};
use std::collections::HashSet;

#[inline]
fn pack(time: SimTime, seq: u64) -> u128 {
    ((time.nanos() as u128) << 64) | seq as u128
}

enum Mode<E> {
    /// The default: `O(1)` insert and cancel while the population fits the
    /// wheel's span. Boxed — the wheel's slot array dwarfs the heap
    /// variant, and the store lives behind one more pointer either way.
    Wheel(Box<TimerWheel<E>>),
    /// Overflow-pathology fallback: min-heap plus the set of live keys.
    /// Cancel removes from `live` only; heap entries whose key is no
    /// longer live are corpses, skipped (and discarded) by peek/pop.
    Heap {
        heap: BinaryHeapQueue<E>,
        live: HashSet<u128>,
    },
}

/// Adaptive cancellable-timer store; see the [module docs](self).
pub struct AdaptiveTimers<E> {
    mode: Mode<E>,
    /// Operations since the last occupancy check.
    ops: u32,
    /// Consecutive checks that voted to migrate.
    streak: u32,
}

impl<E> Default for AdaptiveTimers<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> AdaptiveTimers<E> {
    /// An empty store, starting on the wheel.
    pub fn new() -> Self {
        AdaptiveTimers {
            mode: Mode::Wheel(Box::default()),
            ops: 0,
            streak: 0,
        }
    }

    /// Number of live (pending, uncancelled) timers.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.mode {
            Mode::Wheel(w) => w.len(),
            Mode::Heap { live, .. } => live.len(),
        }
    }

    /// True when no timers are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Currently on the heap fallback rather than the wheel (exposed for
    /// tests and diagnostics).
    pub fn on_fallback(&self) -> bool {
        matches!(self.mode, Mode::Heap { .. })
    }

    /// Insert a timer firing at `time` with tiebreak `seq` (unique across
    /// the store's lifetime — the engine's sequence counter guarantees
    /// it). The handle stays valid across migrations.
    #[inline]
    pub fn insert(&mut self, time: SimTime, seq: u64, event: E) -> TimerHandle {
        self.tick();
        match &mut self.mode {
            Mode::Wheel(w) => w.insert(time, seq, event),
            Mode::Heap { heap, live } => {
                let key = pack(time, seq);
                heap.push(Scheduled { time, seq, event });
                live.insert(key);
                TimerHandle::external(key)
            }
        }
    }

    /// Cancel a pending timer, resolving by key regardless of which mode
    /// issued the handle. Returns `true` if the timer was still live.
    #[inline]
    pub fn cancel(&mut self, handle: TimerHandle) -> bool {
        self.tick();
        match &mut self.mode {
            Mode::Wheel(w) => w.cancel_by_key(handle.key()),
            Mode::Heap { live, .. } => live.remove(&handle.key()),
        }
    }

    /// The packed key of the earliest live timer. `&mut` because heap mode
    /// discards corpses it skips over.
    #[inline]
    pub fn peek_key(&mut self) -> Option<u128> {
        match &mut self.mode {
            Mode::Wheel(w) => w.peek_key(),
            Mode::Heap { heap, live } => loop {
                let key = heap.peek_key()?;
                if live.contains(&key) {
                    return Some(key);
                }
                heap.pop();
            },
        }
    }

    /// Remove and return the earliest live timer.
    #[inline]
    pub fn pop_min(&mut self) -> Option<Scheduled<E>> {
        self.tick();
        match &mut self.mode {
            Mode::Wheel(w) => w.pop_min(),
            Mode::Heap { heap, live } => loop {
                let s = heap.pop()?;
                if live.remove(&pack(s.time, s.seq)) {
                    return Some(s);
                }
            },
        }
    }

    /// Count one operation; every [`ADAPT_CHECK_EVERY`] of them, run the
    /// (cold) occupancy check.
    #[inline]
    fn tick(&mut self) {
        self.ops += 1;
        if self.ops >= ADAPT_CHECK_EVERY {
            self.ops = 0;
            self.check();
        }
    }

    /// The migration vote: promote to the heap while the wheel's overflow
    /// list is pathologically large, demote back once the whole population
    /// is small. Same streak confirmation and wide promote/demote gap as
    /// the adaptive event queue.
    #[cold]
    fn check(&mut self) {
        let vote = match &self.mode {
            Mode::Wheel(w) => w.overflow_len() > ADAPT_PROMOTE_LEN,
            Mode::Heap { live, .. } => live.len() < ADAPT_DEMOTE_LEN,
        };
        if vote {
            self.streak += 1;
            if self.streak >= ADAPT_STREAK {
                self.streak = 0;
                self.migrate();
            }
        } else {
            self.streak = 0;
        }
    }

    /// Move every live timer to the other backend, keys intact.
    fn migrate(&mut self) {
        match &mut self.mode {
            Mode::Wheel(w) => {
                let mut heap = BinaryHeapQueue::new();
                let mut live = HashSet::with_capacity(w.len());
                while let Some(s) = w.pop_min() {
                    live.insert(pack(s.time, s.seq));
                    heap.push(s);
                }
                self.mode = Mode::Heap { heap, live };
            }
            Mode::Heap { heap, live } => {
                let mut w: Box<TimerWheel<E>> = Box::default();
                while let Some(s) = heap.pop() {
                    if live.remove(&pack(s.time, s.seq)) {
                        w.insert(s.time, s.seq, s.event);
                    }
                }
                self.mode = Mode::Wheel(w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Force one full check cycle's worth of no-op votes by cancelling a
    /// dead handle repeatedly (each cancel ticks the op counter).
    fn churn(t: &mut AdaptiveTimers<u64>, ops: u32) {
        let dead = TimerHandle::external(u128::MAX);
        for _ in 0..ops {
            t.cancel(dead);
        }
    }

    /// Far-future firing times with pairwise-distinct epochs at every
    /// level: the first three tenant the levels, the rest overflow.
    fn overflow_time(i: u64) -> SimTime {
        SimTime((i + 1) << 45)
    }

    #[test]
    fn promotes_off_the_wheel_when_overflow_grows() {
        let mut t = AdaptiveTimers::new();
        for i in 0..(ADAPT_PROMOTE_LEN as u64 + 8) {
            t.insert(overflow_time(i), i, i);
        }
        assert!(!t.on_fallback(), "not confirmed by a streak yet");
        churn(&mut t, ADAPT_CHECK_EVERY * ADAPT_STREAK);
        assert!(t.on_fallback(), "sustained overflow must migrate");
        assert_eq!(t.len(), ADAPT_PROMOTE_LEN + 8);
    }

    #[test]
    fn demotes_back_once_the_population_shrinks() {
        let mut t = AdaptiveTimers::new();
        let count = ADAPT_PROMOTE_LEN as u64 + 8;
        for i in 0..count {
            t.insert(overflow_time(i), i, i);
        }
        churn(&mut t, ADAPT_CHECK_EVERY * ADAPT_STREAK);
        assert!(t.on_fallback());
        // Drain below the demote threshold, then give the check streak
        // time to confirm.
        while t.len() >= ADAPT_DEMOTE_LEN {
            t.pop_min().expect("still populated");
        }
        churn(&mut t, ADAPT_CHECK_EVERY * ADAPT_STREAK);
        assert!(!t.on_fallback(), "small population must return to the wheel");
    }

    #[test]
    fn handles_survive_migrations_in_both_directions() {
        let mut t = AdaptiveTimers::new();
        // Issued on the wheel...
        let wheel_era: Vec<TimerHandle> = (0..(ADAPT_PROMOTE_LEN as u64 + 8))
            .map(|i| t.insert(overflow_time(i), i, i))
            .collect();
        churn(&mut t, ADAPT_CHECK_EVERY * ADAPT_STREAK);
        assert!(t.on_fallback());
        // ...cancelled on the heap.
        assert!(t.cancel(wheel_era[5]));
        assert!(!t.cancel(wheel_era[5]), "double cancel must fail");
        // Issued on the heap...
        let heap_era = t.insert(SimTime(123), 1 << 20, 99);
        // ...cancelled after demoting back to the wheel.
        while t.len() >= ADAPT_DEMOTE_LEN {
            t.pop_min().expect("still populated");
        }
        churn(&mut t, ADAPT_CHECK_EVERY * ADAPT_STREAK);
        assert!(!t.on_fallback());
        if !t.is_empty() {
            // The heap-era timer may already have been popped by the
            // drain; only assert when it is still pending.
            let _ = t.cancel(heap_era);
        }
    }

    #[test]
    fn pop_order_is_identical_with_and_without_migration() {
        // Drive two stores through the same inserts/cancels; churn one of
        // them across both migrations. The surviving pop sequences must
        // match exactly.
        let build = |migrate: bool| {
            let mut t = AdaptiveTimers::new();
            let mut handles = Vec::new();
            for i in 0..(ADAPT_PROMOTE_LEN as u64 + 64) {
                handles.push(t.insert(overflow_time(i), i, i));
            }
            if migrate {
                churn(&mut t, ADAPT_CHECK_EVERY * ADAPT_STREAK);
                assert!(t.on_fallback());
            }
            // Cancel every third timer after the (possible) migration.
            for h in handles.iter().step_by(3) {
                assert!(t.cancel(*h));
            }
            let mut order = Vec::new();
            while let Some(s) = t.pop_min() {
                order.push((s.time, s.seq));
            }
            order
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn near_horizon_population_stays_on_the_wheel() {
        let mut t = AdaptiveTimers::new();
        for i in 0..4096u64 {
            t.insert(SimTime(i * 1000), i, i);
        }
        churn(&mut t, ADAPT_CHECK_EVERY * ADAPT_STREAK * 2);
        assert!(
            !t.on_fallback(),
            "a large but in-span population is the wheel's home turf"
        );
    }

    #[test]
    fn corpses_do_not_resurrect_after_demotion() {
        // Cancel on the heap, demote, then drain: the cancelled key must
        // not come back.
        let mut t = AdaptiveTimers::new();
        let count = ADAPT_PROMOTE_LEN as u64 + 8;
        let handles: Vec<TimerHandle> =
            (0..count).map(|i| t.insert(overflow_time(i), i, i)).collect();
        churn(&mut t, ADAPT_CHECK_EVERY * ADAPT_STREAK);
        assert!(t.on_fallback());
        let victim = handles[count as usize - 1];
        assert!(t.cancel(victim));
        while t.len() >= ADAPT_DEMOTE_LEN {
            t.pop_min().expect("populated");
        }
        churn(&mut t, ADAPT_CHECK_EVERY * ADAPT_STREAK);
        assert!(!t.on_fallback());
        let mut seqs: Vec<u64> = Vec::new();
        while let Some(s) = t.pop_min() {
            seqs.push(s.seq);
        }
        assert!(
            !seqs.contains(&(count - 1)),
            "cancelled timer resurrected: {seqs:?}"
        );
    }
}
