//! The event loop.
//!
//! [`Engine`] owns the simulation clock and the pending-event set. The model
//! (one per simulation; in this repository the multicomputer in
//! `parsched-machine`) implements [`Model`] and is driven by
//! [`Engine::run`]. The engine is deliberately dumb: it knows nothing about
//! nodes, processes, or messages — only timestamps and opaque events.

use crate::queue::{AdaptiveQueue, BinaryHeapQueue, CalendarQueue, EventQueue, Scheduled};
use crate::time::{SimDuration, SimTime};
use crate::timers::AdaptiveTimers;
use crate::wheel::TimerHandle;
use std::collections::VecDeque;

/// A simulation model: consumes events, may schedule more via the
/// [`EventScheduler`] handle passed to `handle`.
///
/// `handle` is generic over the scheduler so a model written once runs
/// unchanged under any engine that can provide the scheduling contract —
/// the optimized three-tier [`Engine`] in this crate or the naive
/// reference engine in `parsched-oracle`. Monomorphization keeps the hot
/// path free of dynamic dispatch.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Process one event at simulated time `now`.
    fn handle(
        &mut self,
        now: SimTime,
        event: Self::Event,
        sched: &mut impl EventScheduler<Self::Event>,
    );
}

/// The scheduling contract an engine offers a [`Model`] during `handle`.
///
/// Every engine must preserve the same semantics: events fire in strictly
/// nondecreasing `(time, seq)` order, where `seq` is allocated in call
/// order across *all* scheduling methods (including timers), and a
/// cancelled timer never fires. Any two engines honoring this contract
/// drive a deterministic model through the identical event history — the
/// property the differential oracle tests assert.
pub trait EventScheduler<E> {
    /// The current simulated time.
    fn now(&self) -> SimTime;

    /// Schedule `event` at an absolute instant (must not be in the past).
    fn schedule_at(&mut self, time: SimTime, event: E);

    /// Schedule a cancellable event at an absolute instant
    /// (must not be in the past).
    fn schedule_timer_at(&mut self, time: SimTime, event: E) -> TimerHandle;

    /// Cancel a timer scheduled with
    /// [`schedule_timer`](Self::schedule_timer). Returns `true` if the
    /// timer was still pending (and is now gone), `false` if it already
    /// fired or was already cancelled.
    fn cancel_timer(&mut self, handle: TimerHandle) -> bool;

    /// Number of pending (not yet fired or cancelled) timers, exposed for
    /// observability gauges.
    fn timer_count(&self) -> usize;

    /// Schedule `event` to fire `delay` after the current instant.
    fn schedule(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now() + delay, event);
    }

    /// Schedule `event` to fire immediately (at the current instant, after
    /// every event already pending for this instant).
    fn schedule_now(&mut self, event: E) {
        let now = self.now();
        self.schedule_at(now, event);
    }

    /// Schedule a *cancellable* event `delay` after the current instant.
    ///
    /// Functionally identical to [`schedule`](Self::schedule) — the event
    /// fires in exactly the same global order — but it supports `O(1)`
    /// [cancellation](Self::cancel_timer). Use it for events that are
    /// usually invalidated before they fire (quantum expiries, timeout
    /// guards) so they leave the pending set instead of being popped and
    /// discarded.
    fn schedule_timer(&mut self, delay: SimDuration, event: E) -> TimerHandle {
        let at = self.now() + delay;
        self.schedule_timer_at(at, event)
    }

    /// Ask the engine to stop after the current event's handler returns
    /// ([`RunOutcome::Paused`]). A model uses this when it cannot proceed
    /// without information the engine does not have — the coordinated
    /// sharded runner's global-queue admissions — and the caller resolves
    /// the dependency before resuming. Engines without pause support (the
    /// oracle's reference engine) ignore the request.
    fn request_pause(&mut self) {}
}

/// An engine that accepts events seeded from outside a run (the driver's
/// batch arrivals). Both the optimized [`Engine`] and the oracle's naive
/// engine implement it, so setup code is engine-agnostic too.
pub trait EventSeeder<E> {
    /// Schedule an event before the run starts (or between runs).
    fn seed(&mut self, time: SimTime, event: E);
}

impl<E> EventSeeder<E> for Engine<E> {
    fn seed(&mut self, time: SimTime, event: E) {
        Engine::seed(self, time, event);
    }
}

/// Handle through which a model schedules future events during `handle`.
///
/// New events go straight into the engine's pending-event tiers — the
/// now-queue for the current instant, the backend queue for the future, the
/// [`AdaptiveTimers`] store for cancellable timers — with no intermediate
/// buffering. All three tiers order by the same `(time, seq)` key, so the
/// pop order is identical to what a single buffered queue would give.
pub struct Scheduler<'w, E> {
    now: SimTime,
    next_seq: u64,
    timers: &'w mut AdaptiveTimers<E>,
    queue: &'w mut Backend<E>,
    now_queue: &'w mut VecDeque<Scheduled<E>>,
    pause: bool,
}

impl<E> EventScheduler<E> for Scheduler<'_, E> {
    #[inline]
    fn now(&self) -> SimTime {
        self.now
    }

    fn schedule_at(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        if time == self.now {
            // Zero-delay bypass: stays out of the backend queue, FIFO
            // (= seq) order preserved.
            self.now_queue.push_back(Scheduled { time, seq, event });
        } else {
            self.queue.push(Scheduled { time, seq, event });
        }
    }

    fn schedule_timer_at(&mut self, time: SimTime, event: E) -> TimerHandle {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.timers.insert(time, seq, event)
    }

    fn cancel_timer(&mut self, handle: TimerHandle) -> bool {
        self.timers.cancel(handle)
    }

    fn timer_count(&self) -> usize {
        self.timers.len()
    }

    fn request_pause(&mut self) {
        self.pause = true;
    }
}

/// Which pending-event set backend an [`Engine`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Binary heap (`O(log n)`; fastest for small pending sets).
    BinaryHeap,
    /// Calendar queue (`O(1)` amortized for stationary event populations).
    Calendar,
    /// Heap that migrates to a calendar past the measured crossover and
    /// back (the default; see the
    /// [queue module docs](crate::queue#the-adaptive-heuristic)).
    Adaptive,
}

impl Default for QueueKind {
    /// The backend used when callers have no reason to choose: the
    /// adaptive queue, which is a heap while the pending set is small (the
    /// paper's workloads) and a calendar once it is not, so the choice no
    /// longer depends on the workload.
    fn default() -> Self {
        QueueKind::Adaptive
    }
}

enum Backend<E> {
    Heap(BinaryHeapQueue<E>),
    Calendar(CalendarQueue<E>),
    Adaptive(AdaptiveQueue<E>),
}

impl<E> Backend<E> {
    fn push(&mut self, item: Scheduled<E>) {
        match self {
            Backend::Heap(q) => q.push(item),
            Backend::Calendar(q) => q.push(item),
            Backend::Adaptive(q) => q.push(item),
        }
    }
    fn pop(&mut self) -> Option<Scheduled<E>> {
        match self {
            Backend::Heap(q) => q.pop(),
            Backend::Calendar(q) => q.pop(),
            Backend::Adaptive(q) => q.pop(),
        }
    }
    fn peek_key(&mut self) -> Option<u128> {
        match self {
            Backend::Heap(q) => q.peek_key(),
            Backend::Calendar(q) => q.peek_key(),
            Backend::Adaptive(q) => q.peek_key(),
        }
    }
    fn len(&self) -> usize {
        match self {
            Backend::Heap(q) => q.len(),
            Backend::Calendar(q) => q.len(),
            Backend::Adaptive(q) => q.len(),
        }
    }
}

/// Why [`Engine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The pending-event set drained completely.
    Drained,
    /// The time horizon was reached with events still pending.
    HorizonReached,
    /// The event budget was exhausted (runaway-simulation guard).
    BudgetExhausted,
    /// The model asked to stop after the current event
    /// ([`EventScheduler::request_pause`]); the clock sits at that event's
    /// instant and the run can be resumed by calling `run` again.
    Paused,
}

/// The discrete-event engine: a clock plus a three-tier pending-event set.
///
/// Pending events live in one of three places, all ordered by the same
/// packed `(time, seq)` key so a merge-pop across them reproduces the exact
/// global order a single queue would give:
///
/// * the **now-queue** — a FIFO ring holding events scheduled *for the
///   current instant* (zero-delay handler chains); pushing and popping it
///   never touches the comparison-based queue,
/// * the **timer store** — cancellable timers from
///   [`Scheduler::schedule_timer`], kept on a timing wheel with an
///   adaptive heap fallback ([`AdaptiveTimers`]),
/// * the **backend queue** — everything else ([`QueueKind`]).
pub struct Engine<E> {
    queue: Backend<E>,
    timers: AdaptiveTimers<E>,
    /// Events scheduled for the current instant, in FIFO (= seq) order.
    /// Invariant: every entry's time equals the time of the most recently
    /// popped event, so entries are totally ordered against the other two
    /// tiers by `(time, seq)` like everything else.
    now_queue: VecDeque<Scheduled<E>>,
    now: SimTime,
    next_seq: u64,
    events_processed: u64,
    /// Stop processing events scheduled after this instant.
    pub horizon: SimTime,
    /// Abort after this many events (guards against accidental infinite
    /// event loops in model code).
    pub max_events: u64,
}

impl<E> Engine<E> {
    /// A fresh engine at time zero with the given backend.
    pub fn new(kind: QueueKind) -> Self {
        let queue = match kind {
            QueueKind::BinaryHeap => Backend::Heap(BinaryHeapQueue::new()),
            QueueKind::Calendar => Backend::Calendar(CalendarQueue::new()),
            QueueKind::Adaptive => Backend::Adaptive(AdaptiveQueue::new()),
        };
        Engine {
            queue,
            timers: AdaptiveTimers::new(),
            now_queue: VecDeque::with_capacity(64),
            now: SimTime::ZERO,
            next_seq: 0,
            events_processed: 0,
            horizon: SimTime::MAX,
            max_events: u64::MAX,
        }
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of pending events (including pending timers).
    pub fn pending(&self) -> usize {
        self.queue.len() + self.timers.len() + self.now_queue.len()
    }

    /// Schedule an event before the run starts (or between runs).
    pub fn seed(&mut self, time: SimTime, event: E) {
        assert!(time >= self.now, "cannot seed into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled { time, seq, event });
    }

    /// Drive `model` until the queue drains, the horizon passes, or the
    /// event budget runs out.
    pub fn run<M: Model<Event = E>>(&mut self, model: &mut M) -> RunOutcome {
        // Tags for the three pending-event tiers; `NONE` means all empty.
        const NOW: u8 = 0;
        const WHEEL: u8 = 1;
        const QUEUE: u8 = 2;
        const NONE: u8 = 3;
        loop {
            if self.events_processed >= self.max_events {
                return RunOutcome::BudgetExhausted;
            }
            // Merge-peek: the next event is the least (time, seq) across
            // the now-queue front, the timer minimum, and the queue head.
            let mut key = u128::MAX;
            let mut src = NONE;
            if let Some(s) = self.now_queue.front() {
                key = ((s.time.nanos() as u128) << 64) | s.seq as u128;
                src = NOW;
            }
            if let Some(k) = self.timers.peek_key() {
                if k < key {
                    key = k;
                    src = WHEEL;
                }
            }
            if let Some(k) = self.queue.peek_key() {
                if k < key {
                    key = k;
                    src = QUEUE;
                }
            }
            if src == NONE {
                return RunOutcome::Drained;
            }
            if SimTime((key >> 64) as u64) > self.horizon {
                // Nothing was popped; the caller can inspect `pending()`
                // to see there was more to do.
                self.now = self.horizon;
                return RunOutcome::HorizonReached;
            }
            let item = match src {
                NOW => self.now_queue.pop_front().expect("peeked the front"),
                WHEEL => self.timers.pop_min().expect("peeked the minimum"),
                _ => self.queue.pop().expect("peeked the head"),
            };
            debug_assert!(item.time >= self.now, "event queue returned the past");
            self.now = item.time;
            self.events_processed += 1;

            let mut sched = Scheduler {
                now: self.now,
                next_seq: self.next_seq,
                timers: &mut self.timers,
                queue: &mut self.queue,
                now_queue: &mut self.now_queue,
                pause: false,
            };
            model.handle(self.now, item.event, &mut sched);
            self.next_seq = sched.next_seq;
            if sched.pause {
                return RunOutcome::Paused;
            }
        }
    }

    /// Timestamp of the earliest pending event across all three tiers, or
    /// `None` when the pending set is empty.
    ///
    /// `&mut` because peeking the backend queue may rebalance a calendar
    /// bucket; the pending set itself is not modified. The sharded engine
    /// uses this to compute the global window floor.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        let mut key = u128::MAX;
        if let Some(s) = self.now_queue.front() {
            key = ((s.time.nanos() as u128) << 64) | s.seq as u128;
        }
        if let Some(k) = self.timers.peek_key() {
            key = key.min(k);
        }
        if let Some(k) = self.queue.peek_key() {
            key = key.min(k);
        }
        if key == u128::MAX {
            None
        } else {
            Some(SimTime((key >> 64) as u64))
        }
    }

    /// Like [`Engine::run`] but stops once simulated time would exceed
    /// `deadline` (a convenience for watchdog-style callers).
    pub fn run_until<M: Model<Event = E>>(
        &mut self,
        model: &mut M,
        deadline: SimTime,
    ) -> RunOutcome {
        let saved = self.horizon;
        self.horizon = deadline.min(saved);
        let outcome = self.run(model);
        self.horizon = saved;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that counts down: event `n` schedules `n-1` after 10 ns.
    struct Countdown {
        fired: Vec<(u64, u64)>, // (time, value)
    }

    impl Model for Countdown {
        type Event = u64;
        fn handle(&mut self, now: SimTime, ev: u64, sched: &mut impl EventScheduler<u64>) {
            self.fired.push((now.nanos(), ev));
            if ev > 0 {
                sched.schedule(SimDuration::from_nanos(10), ev - 1);
            }
        }
    }

    #[test]
    fn countdown_runs_to_completion_on_both_backends() {
        for kind in [QueueKind::BinaryHeap, QueueKind::Calendar] {
            let mut engine = Engine::new(kind);
            engine.seed(SimTime(5), 3u64);
            let mut model = Countdown { fired: Vec::new() };
            assert_eq!(engine.run(&mut model), RunOutcome::Drained);
            assert_eq!(model.fired, vec![(5, 3), (15, 2), (25, 1), (35, 0)]);
            assert_eq!(engine.now(), SimTime(35));
            assert_eq!(engine.events_processed(), 4);
        }
    }

    #[test]
    fn horizon_stops_the_run() {
        let mut engine = Engine::new(QueueKind::BinaryHeap);
        engine.horizon = SimTime(20);
        engine.seed(SimTime(5), 3u64);
        let mut model = Countdown { fired: Vec::new() };
        assert_eq!(engine.run(&mut model), RunOutcome::HorizonReached);
        assert_eq!(model.fired, vec![(5, 3), (15, 2)]);
        assert_eq!(engine.pending(), 1);
        assert_eq!(engine.now(), SimTime(20));
    }

    #[test]
    fn event_budget_guards_runaway_models() {
        struct Forever;
        impl Model for Forever {
            type Event = ();
            fn handle(&mut self, _: SimTime, _: (), sched: &mut impl EventScheduler<()>) {
                sched.schedule(SimDuration::from_nanos(1), ());
            }
        }
        let mut engine = Engine::new(QueueKind::BinaryHeap);
        engine.max_events = 1000;
        engine.seed(SimTime::ZERO, ());
        assert_eq!(engine.run(&mut Forever), RunOutcome::BudgetExhausted);
        assert_eq!(engine.events_processed(), 1000);
    }

    #[test]
    fn same_instant_events_fire_in_schedule_order() {
        struct Recorder(Vec<u32>);
        impl Model for Recorder {
            type Event = u32;
            fn handle(&mut self, _: SimTime, ev: u32, sched: &mut impl EventScheduler<u32>) {
                self.0.push(ev);
                if ev == 0 {
                    // Three events at the same instant must pop FIFO.
                    sched.schedule_now(1);
                    sched.schedule_now(2);
                    sched.schedule_now(3);
                }
            }
        }
        let mut engine = Engine::new(QueueKind::BinaryHeap);
        engine.seed(SimTime::ZERO, 0u32);
        let mut m = Recorder(Vec::new());
        engine.run(&mut m);
        assert_eq!(m.0, vec![0, 1, 2, 3]);
    }

    #[test]
    fn run_until_respects_deadline_and_restores_horizon() {
        let mut engine = Engine::new(QueueKind::BinaryHeap);
        engine.seed(SimTime(5), 3u64);
        let mut model = Countdown { fired: Vec::new() };
        assert_eq!(
            engine.run_until(&mut model, SimTime(20)),
            RunOutcome::HorizonReached
        );
        assert_eq!(engine.now(), SimTime(20));
        assert_eq!(engine.horizon, SimTime::MAX, "horizon must be restored");
        // Resuming finishes the countdown.
        assert_eq!(engine.run(&mut model), RunOutcome::Drained);
        assert_eq!(model.fired.len(), 4);
    }

    #[test]
    fn pending_and_counters_track_queue_state() {
        let mut engine: Engine<u64> = Engine::new(QueueKind::Calendar);
        assert_eq!(engine.pending(), 0);
        engine.seed(SimTime(1), 1);
        engine.seed(SimTime(2), 2);
        assert_eq!(engine.pending(), 2);
        assert_eq!(engine.events_processed(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot seed into the past")]
    fn seeding_into_the_past_panics() {
        let mut engine = Engine::new(QueueKind::BinaryHeap);
        engine.seed(SimTime(10), 0u64);
        let mut model = Countdown { fired: Vec::new() };
        engine.run(&mut model);
        engine.seed(SimTime(5), 1u64);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), sched: &mut impl EventScheduler<()>) {
                sched.schedule_at(SimTime(now.nanos() - 1), ());
            }
        }
        let mut engine = Engine::new(QueueKind::BinaryHeap);
        engine.seed(SimTime(10), ());
        engine.run(&mut Bad);
    }
}
