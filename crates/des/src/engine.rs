//! The event loop.
//!
//! [`Engine`] owns the simulation clock and the pending-event set. The model
//! (one per simulation; in this repository the multicomputer in
//! `parsched-machine`) implements [`Model`] and is driven by
//! [`Engine::run`]. The engine is deliberately dumb: it knows nothing about
//! nodes, processes, or messages — only timestamps and opaque events.

use crate::queue::{BinaryHeapQueue, CalendarQueue, EventQueue, Scheduled};
use crate::time::{SimDuration, SimTime};

/// A simulation model: consumes events, may schedule more via the
/// [`Scheduler`] handle passed to `handle`.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Process one event at simulated time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Handle through which a model schedules future events during `handle`.
///
/// New events are buffered and merged into the queue after the handler
/// returns; this keeps the borrow story simple and has no observable effect
/// on ordering (a handler runs at one instant; everything it schedules is at
/// `now` or later).
pub struct Scheduler<E> {
    now: SimTime,
    pending: Vec<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Scheduler<E> {
    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire `delay` after the current instant.
    pub fn schedule(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedule `event` at an absolute instant (must not be in the past).
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push(Scheduled { time, seq, event });
    }

    /// Schedule `event` to fire immediately (at the current instant, after
    /// every event already pending for this instant).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }
}

/// Which pending-event set backend an [`Engine`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Binary heap (`O(log n)`, the default).
    BinaryHeap,
    /// Calendar queue (`O(1)` amortized for stationary event populations).
    Calendar,
}

impl Default for QueueKind {
    /// The backend used when callers have no reason to choose: the binary
    /// heap, which benchmarks faster on the paper's workloads (their
    /// pending sets stay small; see EXPERIMENTS.md "Performance").
    fn default() -> Self {
        QueueKind::BinaryHeap
    }
}

enum Backend<E> {
    Heap(BinaryHeapQueue<E>),
    Calendar(CalendarQueue<E>),
}

impl<E> Backend<E> {
    fn push(&mut self, item: Scheduled<E>) {
        match self {
            Backend::Heap(q) => q.push(item),
            Backend::Calendar(q) => q.push(item),
        }
    }
    fn pop(&mut self) -> Option<Scheduled<E>> {
        match self {
            Backend::Heap(q) => q.pop(),
            Backend::Calendar(q) => q.pop(),
        }
    }
    fn len(&self) -> usize {
        match self {
            Backend::Heap(q) => q.len(),
            Backend::Calendar(q) => q.len(),
        }
    }
}

/// Why [`Engine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The pending-event set drained completely.
    Drained,
    /// The time horizon was reached with events still pending.
    HorizonReached,
    /// The event budget was exhausted (runaway-simulation guard).
    BudgetExhausted,
}

/// The discrete-event engine: a clock plus a pending-event set.
pub struct Engine<E> {
    queue: Backend<E>,
    now: SimTime,
    next_seq: u64,
    events_processed: u64,
    /// Reused backing store for each event's [`Scheduler`] pending buffer,
    /// so a run makes one allocation for the whole loop instead of one per
    /// handled event.
    scratch: Vec<Scheduled<E>>,
    /// Stop processing events scheduled after this instant.
    pub horizon: SimTime,
    /// Abort after this many events (guards against accidental infinite
    /// event loops in model code).
    pub max_events: u64,
}

impl<E> Engine<E> {
    /// A fresh engine at time zero with the given backend.
    pub fn new(kind: QueueKind) -> Self {
        let queue = match kind {
            QueueKind::BinaryHeap => Backend::Heap(BinaryHeapQueue::new()),
            QueueKind::Calendar => Backend::Calendar(CalendarQueue::new()),
        };
        Engine {
            queue,
            now: SimTime::ZERO,
            next_seq: 0,
            events_processed: 0,
            scratch: Vec::new(),
            horizon: SimTime::MAX,
            max_events: u64::MAX,
        }
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule an event before the run starts (or between runs).
    pub fn seed(&mut self, time: SimTime, event: E) {
        assert!(time >= self.now, "cannot seed into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled { time, seq, event });
    }

    /// Drive `model` until the queue drains, the horizon passes, or the
    /// event budget runs out.
    pub fn run<M: Model<Event = E>>(&mut self, model: &mut M) -> RunOutcome {
        loop {
            if self.events_processed >= self.max_events {
                return RunOutcome::BudgetExhausted;
            }
            let Some(item) = self.queue.pop() else {
                return RunOutcome::Drained;
            };
            if item.time > self.horizon {
                // Put it back conceptually: we simply stop; the caller can
                // inspect `pending()` to see there was more to do.
                self.queue.push(item);
                self.now = self.horizon;
                return RunOutcome::HorizonReached;
            }
            debug_assert!(item.time >= self.now, "event queue returned the past");
            self.now = item.time;
            self.events_processed += 1;

            let mut sched = Scheduler {
                now: self.now,
                pending: std::mem::take(&mut self.scratch),
                next_seq: self.next_seq,
            };
            model.handle(self.now, item.event, &mut sched);
            self.next_seq = sched.next_seq;
            for p in sched.pending.drain(..) {
                self.queue.push(p);
            }
            self.scratch = sched.pending;
        }
    }

    /// Like [`Engine::run`] but stops once simulated time would exceed
    /// `deadline` (a convenience for watchdog-style callers).
    pub fn run_until<M: Model<Event = E>>(
        &mut self,
        model: &mut M,
        deadline: SimTime,
    ) -> RunOutcome {
        let saved = self.horizon;
        self.horizon = deadline.min(saved);
        let outcome = self.run(model);
        self.horizon = saved;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that counts down: event `n` schedules `n-1` after 10 ns.
    struct Countdown {
        fired: Vec<(u64, u64)>, // (time, value)
    }

    impl Model for Countdown {
        type Event = u64;
        fn handle(&mut self, now: SimTime, ev: u64, sched: &mut Scheduler<u64>) {
            self.fired.push((now.nanos(), ev));
            if ev > 0 {
                sched.schedule(SimDuration::from_nanos(10), ev - 1);
            }
        }
    }

    #[test]
    fn countdown_runs_to_completion_on_both_backends() {
        for kind in [QueueKind::BinaryHeap, QueueKind::Calendar] {
            let mut engine = Engine::new(kind);
            engine.seed(SimTime(5), 3u64);
            let mut model = Countdown { fired: Vec::new() };
            assert_eq!(engine.run(&mut model), RunOutcome::Drained);
            assert_eq!(model.fired, vec![(5, 3), (15, 2), (25, 1), (35, 0)]);
            assert_eq!(engine.now(), SimTime(35));
            assert_eq!(engine.events_processed(), 4);
        }
    }

    #[test]
    fn horizon_stops_the_run() {
        let mut engine = Engine::new(QueueKind::BinaryHeap);
        engine.horizon = SimTime(20);
        engine.seed(SimTime(5), 3u64);
        let mut model = Countdown { fired: Vec::new() };
        assert_eq!(engine.run(&mut model), RunOutcome::HorizonReached);
        assert_eq!(model.fired, vec![(5, 3), (15, 2)]);
        assert_eq!(engine.pending(), 1);
        assert_eq!(engine.now(), SimTime(20));
    }

    #[test]
    fn event_budget_guards_runaway_models() {
        struct Forever;
        impl Model for Forever {
            type Event = ();
            fn handle(&mut self, _: SimTime, _: (), sched: &mut Scheduler<()>) {
                sched.schedule(SimDuration::from_nanos(1), ());
            }
        }
        let mut engine = Engine::new(QueueKind::BinaryHeap);
        engine.max_events = 1000;
        engine.seed(SimTime::ZERO, ());
        assert_eq!(engine.run(&mut Forever), RunOutcome::BudgetExhausted);
        assert_eq!(engine.events_processed(), 1000);
    }

    #[test]
    fn same_instant_events_fire_in_schedule_order() {
        struct Recorder(Vec<u32>);
        impl Model for Recorder {
            type Event = u32;
            fn handle(&mut self, _: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
                self.0.push(ev);
                if ev == 0 {
                    // Three events at the same instant must pop FIFO.
                    sched.schedule_now(1);
                    sched.schedule_now(2);
                    sched.schedule_now(3);
                }
            }
        }
        let mut engine = Engine::new(QueueKind::BinaryHeap);
        engine.seed(SimTime::ZERO, 0u32);
        let mut m = Recorder(Vec::new());
        engine.run(&mut m);
        assert_eq!(m.0, vec![0, 1, 2, 3]);
    }

    #[test]
    fn run_until_respects_deadline_and_restores_horizon() {
        let mut engine = Engine::new(QueueKind::BinaryHeap);
        engine.seed(SimTime(5), 3u64);
        let mut model = Countdown { fired: Vec::new() };
        assert_eq!(
            engine.run_until(&mut model, SimTime(20)),
            RunOutcome::HorizonReached
        );
        assert_eq!(engine.now(), SimTime(20));
        assert_eq!(engine.horizon, SimTime::MAX, "horizon must be restored");
        // Resuming finishes the countdown.
        assert_eq!(engine.run(&mut model), RunOutcome::Drained);
        assert_eq!(model.fired.len(), 4);
    }

    #[test]
    fn pending_and_counters_track_queue_state() {
        let mut engine: Engine<u64> = Engine::new(QueueKind::Calendar);
        assert_eq!(engine.pending(), 0);
        engine.seed(SimTime(1), 1);
        engine.seed(SimTime(2), 2);
        assert_eq!(engine.pending(), 2);
        assert_eq!(engine.events_processed(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot seed into the past")]
    fn seeding_into_the_past_panics() {
        let mut engine = Engine::new(QueueKind::BinaryHeap);
        engine.seed(SimTime(10), 0u64);
        let mut model = Countdown { fired: Vec::new() };
        engine.run(&mut model);
        engine.seed(SimTime(5), 1u64);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), sched: &mut Scheduler<()>) {
                sched.schedule_at(SimTime(now.nanos() - 1), ());
            }
        }
        let mut engine = Engine::new(QueueKind::BinaryHeap);
        engine.seed(SimTime(10), ());
        engine.run(&mut Bad);
    }
}
