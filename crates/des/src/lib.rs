//! # parsched-des
//!
//! The deterministic discrete-event simulation kernel underneath the
//! `parsched` reproduction of Chan, Dandamudi & Majumdar (IPPS 1997).
//!
//! The kernel is domain-agnostic: it provides simulated [time](time),
//! interchangeable [pending-event set](queue) implementations (heap,
//! calendar, and an adaptive hybrid), a [timing wheel](wheel) with an
//! [adaptive heap fallback](timers) for cancellable timers, the
//! [event loop](engine), a conservative
//! [sharded parallel engine](shard) with barrier lookahead windows,
//! [output statistics](stats),
//! a [deterministic RNG](rng) with labelled substreams, and a bounded
//! [trace](trace) buffer. Everything Transputer-specific lives in
//! `parsched-machine` on top of this crate.
//!
//! ## Determinism
//!
//! Simulations built on this kernel are bit-for-bit reproducible: integer
//! nanosecond timestamps, sequence-number tiebreaks for simultaneous events,
//! and seeded RNG substreams. All queue backends — and the engine's
//! now-queue/wheel/queue merge — produce identical event orders (asserted
//! by tests), so backend choice is purely a performance knob.
//!
//! ## Example
//!
//! ```
//! use parsched_des::prelude::*;
//!
//! struct Pinger { pongs: u32 }
//! impl Model for Pinger {
//!     type Event = &'static str;
//!     fn handle(
//!         &mut self,
//!         _now: SimTime,
//!         ev: &'static str,
//!         s: &mut impl EventScheduler<&'static str>,
//!     ) {
//!         match ev {
//!             "ping" => s.schedule(SimDuration::from_micros(10), "pong"),
//!             "pong" => self.pongs += 1,
//!             _ => unreachable!(),
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(QueueKind::BinaryHeap);
//! engine.seed(SimTime::ZERO, "ping");
//! let mut model = Pinger { pongs: 0 };
//! assert_eq!(engine.run(&mut model), RunOutcome::Drained);
//! assert_eq!(model.pongs, 1);
//! assert_eq!(engine.now(), SimTime::ZERO + SimDuration::from_micros(10));
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod queue;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
pub mod timers;
pub mod trace;
pub mod wheel;

/// The kernel's commonly used names in one import.
pub mod prelude {
    pub use crate::engine::{
        Engine, EventScheduler, EventSeeder, Model, QueueKind, RunOutcome, Scheduler,
    };
    pub use crate::queue::{AdaptiveQueue, BinaryHeapQueue, CalendarQueue, EventQueue, Scheduled};
    pub use crate::shard::{Lookahead, ShardCtx, ShardModel, ShardTiming, ShardedEngine, Solo};
    pub use crate::timers::AdaptiveTimers;
    pub use crate::wheel::{TimerHandle, TimerWheel};
    pub use crate::rng::DetRng;
    pub use crate::stats::{percentile, Histogram, Summary, TimeWeighted, Welford};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{Trace, TraceRecord};
}

pub use prelude::*;
