//! Conservative parallel simulation: one [`Engine`] per shard, each on its
//! own thread, synchronized by barrier lookahead windows.
//!
//! # The protocol
//!
//! The machine is partitioned into `K` shards. Each shard owns a private
//! engine (clock, pending-event set, seq counter) and a private model. A
//! run proceeds in *windows*:
//!
//! 1. **Floor.** Every shard publishes the timestamp of its earliest
//!    pending event; the leader takes the global minimum `t_min`. If every
//!    shard is drained the run is over.
//! 2. **Window.** With [`Lookahead::Finite`] `L`, every event strictly
//!    before `t_min + L` is *safe*: no cross-shard send made at or after
//!    `t_min` can influence it, because a remote send takes at least `L`
//!    of simulated time (the store-and-forward hop cost). Each shard runs
//!    its engine up to the inclusive horizon `t_min + L − 1` ns in
//!    parallel, buffering remote sends in an outbox. With
//!    [`Lookahead::Independent`] there is a single unbounded window.
//! 3. **Exchange.** At the barrier, outboxes are routed to the destination
//!    shards, sorted by `(deliver_time, source_shard, emit_index)` — a
//!    total order independent of thread interleaving — and seeded into the
//!    destination engines. Repeat from step 1.
//!
//! Because every shard processes a deterministic event sequence between
//! barriers and mail is merged in a fixed order, a `K`-shard run is
//! bit-for-bit reproducible for a fixed `K`, regardless of how the OS
//! schedules the threads. No null messages are needed: the nonzero
//! lookahead plus the barrier make every window self-sufficient.
//!
//! Models run under a shard via the [`ShardModel`] trait, whose handler
//! receives a [`ShardCtx`] — a normal [`EventScheduler`] plus
//! [`ShardCtx::send`] for cross-shard messages. A plain [`Model`] that
//! never needs to send remotely lifts via [`Solo`].

use crate::engine::{Engine, EventScheduler, Model, QueueKind, RunOutcome};
use crate::time::{SimDuration, SimTime};
use crate::wheel::TimerHandle;
use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// How far ahead of the global window floor every shard may safely run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookahead {
    /// The shards cannot influence each other at all (no cross-shard
    /// channels exist). The run is a single unbounded window with no
    /// barrier traffic; cross-shard sends panic.
    Independent,
    /// A cross-shard interaction takes at least this much simulated time
    /// (must be nonzero). Derived from the minimum store-and-forward hop
    /// cost across the shard boundary.
    Finite(SimDuration),
}

/// A model driven by one shard of a [`ShardedEngine`].
///
/// Identical to [`Model`] except the scheduling handle is a [`ShardCtx`],
/// which adds cross-shard [`send`](ShardCtx::send). The handler is generic
/// over the inner scheduler for the same reason `Model::handle` is: zero
/// dynamic dispatch on the hot path.
pub trait ShardModel {
    /// The event alphabet of this model.
    type Event;

    /// Process one event at simulated time `now`.
    fn handle<S: EventScheduler<Self::Event>>(
        &mut self,
        now: SimTime,
        event: Self::Event,
        ctx: &mut ShardCtx<'_, Self::Event, S>,
    );
}

/// Adapter lifting a plain [`Model`] into a [`ShardModel`] that never
/// sends cross-shard (the shard-local case, e.g. one driver per shard
/// over disjoint partitions).
pub struct Solo<M>(pub M);

impl<M: Model> ShardModel for Solo<M> {
    type Event = M::Event;

    fn handle<S: EventScheduler<M::Event>>(
        &mut self,
        now: SimTime,
        event: M::Event,
        ctx: &mut ShardCtx<'_, M::Event, S>,
    ) {
        self.0.handle(now, event, ctx);
    }
}

/// An outgoing cross-shard message, buffered until the window barrier.
struct OutMail<E> {
    dst: usize,
    time: SimTime,
    event: E,
}

/// An incoming cross-shard message with its deterministic merge key.
struct InMail<E> {
    time: SimTime,
    src: usize,
    idx: usize,
    event: E,
}

/// The scheduling handle a [`ShardModel`] sees: the shard-local
/// [`EventScheduler`] plus cross-shard [`send`](Self::send).
pub struct ShardCtx<'a, E, S: EventScheduler<E>> {
    sched: &'a mut S,
    outbox: &'a mut Vec<OutMail<E>>,
    shard: usize,
    shards: usize,
    lookahead: Lookahead,
}

impl<E, S: EventScheduler<E>> ShardCtx<'_, E, S> {
    /// The index of the shard this handler is running on.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Total number of shards in the run.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Deliver `event` to shard `dst` after `delay`.
    ///
    /// A send to the local shard is an ordinary
    /// [`schedule`](EventScheduler::schedule). A remote send must respect
    /// the lookahead: `delay` must be at least [`Lookahead::Finite`]'s
    /// bound (and is forbidden entirely under
    /// [`Lookahead::Independent`]) — that is the contract that makes the
    /// windows safe.
    pub fn send(&mut self, dst: usize, delay: SimDuration, event: E) {
        assert!(dst < self.shards, "shard {dst} out of range");
        if dst == self.shard {
            self.sched.schedule(delay, event);
            return;
        }
        match self.lookahead {
            Lookahead::Independent => {
                panic!("cross-shard send under Lookahead::Independent: the shard plan promised isolation")
            }
            Lookahead::Finite(min) => assert!(
                delay >= min,
                "cross-shard send with delay {delay} below the lookahead {min}"
            ),
        }
        self.outbox.push(OutMail {
            dst,
            time: self.sched.now() + delay,
            event,
        });
    }
}

impl<E, S: EventScheduler<E>> EventScheduler<E> for ShardCtx<'_, E, S> {
    fn now(&self) -> SimTime {
        self.sched.now()
    }
    fn schedule_at(&mut self, time: SimTime, event: E) {
        self.sched.schedule_at(time, event);
    }
    fn schedule_timer_at(&mut self, time: SimTime, event: E) -> TimerHandle {
        self.sched.schedule_timer_at(time, event)
    }
    fn cancel_timer(&mut self, handle: TimerHandle) -> bool {
        self.sched.cancel_timer(handle)
    }
    fn timer_count(&self) -> usize {
        self.sched.timer_count()
    }
    fn request_pause(&mut self) {
        self.sched.request_pause();
    }
}

/// Bridges a [`ShardModel`] to the plain [`Model`] interface
/// [`Engine::run_until`] expects, routing remote sends into the outbox.
struct WindowShim<'a, M: ShardModel> {
    inner: &'a mut M,
    outbox: &'a mut Vec<OutMail<M::Event>>,
    shard: usize,
    shards: usize,
    lookahead: Lookahead,
}

impl<M: ShardModel> Model for WindowShim<'_, M> {
    type Event = M::Event;

    fn handle(
        &mut self,
        now: SimTime,
        event: Self::Event,
        sched: &mut impl EventScheduler<Self::Event>,
    ) {
        let mut ctx = ShardCtx {
            sched,
            outbox: self.outbox,
            shard: self.shard,
            shards: self.shards,
            lookahead: self.lookahead,
        };
        self.inner.handle(now, event, &mut ctx);
    }
}

/// Wall-clock breakdown of one shard thread's run, for diagnosing where a
/// sharded run spends its time: simulating (`work_ns`), blocked on the
/// window barriers (`barrier_ns`), or routing/merging cross-shard mail
/// (`merge_ns`). Wall-clock only — it never feeds a simulated result or a
/// fingerprint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardTiming {
    /// Time spent inside `Engine::run_until` (event processing).
    pub work_ns: u64,
    /// Time spent waiting at the three window barriers.
    pub barrier_ns: u64,
    /// Time spent routing the outbox and sorting/seeding inbound mail.
    pub merge_ns: u64,
}

/// `K` independent engines plus the window/barrier/mailbox machinery.
///
/// Seed each shard through [`shard_mut`](Self::shard_mut) (an [`Engine`]
/// is an [`EventSeeder`](crate::engine::EventSeeder), so engine-agnostic
/// setup code works unchanged), then [`run`](Self::run) with one
/// [`ShardModel`] per shard.
pub struct ShardedEngine<E> {
    cells: Vec<Engine<E>>,
    lookahead: Lookahead,
    timings: Vec<ShardTiming>,
}

impl<E> ShardedEngine<E> {
    /// `shards` fresh engines at time zero, all on the given backend.
    ///
    /// # Panics
    /// Panics when `shards` is zero or a [`Lookahead::Finite`] bound is
    /// zero (a zero lookahead admits no safe window).
    pub fn new(shards: usize, kind: QueueKind, lookahead: Lookahead) -> Self {
        Self::from_engines((0..shards).map(|_| Engine::new(kind)).collect(), lookahead)
    }

    /// Wrap pre-built (possibly pre-seeded) engines as shards.
    pub fn from_engines(engines: Vec<Engine<E>>, lookahead: Lookahead) -> Self {
        assert!(!engines.is_empty(), "need at least one shard");
        if let Lookahead::Finite(l) = lookahead {
            assert!(l.nanos() > 0, "a zero lookahead admits no safe window");
        }
        let timings = vec![ShardTiming::default(); engines.len()];
        ShardedEngine { cells: engines, lookahead, timings }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.cells.len()
    }

    /// The engine of shard `i`.
    pub fn shard(&self, i: usize) -> &Engine<E> {
        &self.cells[i]
    }

    /// Mutable access to shard `i`'s engine, for seeding and budgets.
    pub fn shard_mut(&mut self, i: usize) -> &mut Engine<E> {
        &mut self.cells[i]
    }

    /// The latest shard clock — the global virtual time of the run.
    pub fn now(&self) -> SimTime {
        self.cells.iter().map(|e| e.now()).max().unwrap_or(SimTime::ZERO)
    }

    /// Total events processed across all shards.
    pub fn events_processed(&self) -> u64 {
        self.cells.iter().map(|e| e.events_processed()).sum()
    }

    /// Per-shard wall-clock breakdown of the most recent [`run`](Self::run)
    /// (work vs. barrier-wait vs. mail merge). All zeros before a run.
    pub fn timings(&self) -> &[ShardTiming] {
        &self.timings
    }

    /// Drive one model per shard until every shard drains (or a budget
    /// runs out). Blocks until all shard threads join.
    ///
    /// A panic on any shard thread aborts the remaining windows and is
    /// re-raised on the calling thread.
    pub fn run<M>(&mut self, models: &mut [M]) -> RunOutcome
    where
        M: ShardModel<Event = E> + Send,
        E: Send,
    {
        let k = self.cells.len();
        assert_eq!(models.len(), k, "one model per shard");
        let lookahead = self.lookahead;
        let barrier = Barrier::new(k);
        // Earliest pending event per shard, u64::MAX when drained.
        let floors: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(u64::MAX)).collect();
        // Inclusive horizon of the current window, written by the leader.
        let window = AtomicU64::new(0);
        let done = AtomicBool::new(false);
        let budget_hit = AtomicBool::new(false);
        let inboxes: Vec<Mutex<Vec<InMail<E>>>> = (0..k).map(|_| Mutex::new(Vec::new())).collect();
        let panic_box: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        let timing_out: Vec<Mutex<ShardTiming>> =
            (0..k).map(|_| Mutex::new(ShardTiming::default())).collect();

        std::thread::scope(|scope| {
            for (i, (engine, model)) in self.cells.iter_mut().zip(models.iter_mut()).enumerate() {
                let (barrier, floors, window, done, budget_hit, inboxes, panic_box, timing_out) = (
                    &barrier, &floors, &window, &done, &budget_hit, &inboxes, &panic_box,
                    &timing_out,
                );
                scope.spawn(move || {
                    let mut outbox: Vec<OutMail<E>> = Vec::new();
                    let mut timing = ShardTiming::default();
                    // Set when this shard's model panicked: keep joining the
                    // barriers (so the others aren't deadlocked) but stop
                    // touching the poisoned engine/model.
                    let mut poisoned = false;
                    loop {
                        let floor = if poisoned {
                            u64::MAX
                        } else {
                            engine.next_event_time().map_or(u64::MAX, |t| t.nanos())
                        };
                        floors[i].store(floor, Ordering::Relaxed);
                        let wait = std::time::Instant::now();
                        barrier.wait();
                        timing.barrier_ns += wait.elapsed().as_nanos() as u64;
                        if i == 0 {
                            let t_min = floors
                                .iter()
                                .map(|f| f.load(Ordering::Relaxed))
                                .min()
                                .expect("at least one shard");
                            let abort = budget_hit.load(Ordering::Relaxed)
                                || panic_box.lock().expect("panic box").is_some();
                            if t_min == u64::MAX || abort {
                                done.store(true, Ordering::Relaxed);
                            } else {
                                let end = match lookahead {
                                    // One unbounded window; the next floor
                                    // round finds every shard drained.
                                    Lookahead::Independent => u64::MAX,
                                    // Events strictly before t_min + L are
                                    // safe; the horizon is inclusive.
                                    Lookahead::Finite(l) => {
                                        t_min.saturating_add(l.nanos()).saturating_sub(1)
                                    }
                                };
                                window.store(end, Ordering::Relaxed);
                            }
                        }
                        let wait = std::time::Instant::now();
                        barrier.wait();
                        timing.barrier_ns += wait.elapsed().as_nanos() as u64;
                        if done.load(Ordering::Relaxed) {
                            break;
                        }
                        let end = SimTime(window.load(Ordering::Relaxed));
                        if !poisoned {
                            let mut shim = WindowShim {
                                inner: model,
                                outbox: &mut outbox,
                                shard: i,
                                shards: k,
                                lookahead,
                            };
                            let work = std::time::Instant::now();
                            let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                engine.run_until(&mut shim, end)
                            }));
                            timing.work_ns += work.elapsed().as_nanos() as u64;
                            match run {
                                Ok(RunOutcome::BudgetExhausted) => {
                                    budget_hit.store(true, Ordering::Relaxed);
                                }
                                Ok(_) => {}
                                Err(payload) => {
                                    poisoned = true;
                                    outbox.clear();
                                    let mut slot = panic_box.lock().expect("panic box");
                                    if slot.is_none() {
                                        *slot = Some(payload);
                                    }
                                }
                            }
                        }
                        let route = std::time::Instant::now();
                        for (idx, m) in outbox.drain(..).enumerate() {
                            inboxes[m.dst].lock().expect("inbox").push(InMail {
                                time: m.time,
                                src: i,
                                idx,
                                event: m.event,
                            });
                        }
                        timing.merge_ns += route.elapsed().as_nanos() as u64;
                        let wait = std::time::Instant::now();
                        barrier.wait();
                        timing.barrier_ns += wait.elapsed().as_nanos() as u64;
                        let merge = std::time::Instant::now();
                        let mut mail = std::mem::take(&mut *inboxes[i].lock().expect("inbox"));
                        if !poisoned {
                            // (time, src, idx) is a total order independent
                            // of thread interleaving, and the engine seeds in
                            // this order, so seq allocation is deterministic.
                            mail.sort_by_key(|m| (m.time, m.src, m.idx));
                            for m in mail {
                                engine.seed(m.time, m.event);
                            }
                        }
                        timing.merge_ns += merge.elapsed().as_nanos() as u64;
                    }
                    *timing_out[i].lock().expect("timing slot") = timing;
                });
            }
        });

        self.timings = timing_out
            .into_iter()
            .map(|m| m.into_inner().expect("timing slot"))
            .collect();
        if let Some(payload) = panic_box.into_inner().expect("panic box") {
            std::panic::resume_unwind(payload);
        }
        if budget_hit.into_inner() {
            RunOutcome::BudgetExhausted
        } else {
            RunOutcome::Drained
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ping-pong across two shards: on hop `h`, send `h + 1` to the peer
    /// after exactly the lookahead, plus a same-window local echo.
    struct PingPong {
        max_hops: u32,
        delay: SimDuration,
        log: Vec<(u64, u32)>,
    }

    impl ShardModel for PingPong {
        type Event = u32;
        fn handle<S: EventScheduler<u32>>(
            &mut self,
            now: SimTime,
            hop: u32,
            ctx: &mut ShardCtx<'_, u32, S>,
        ) {
            self.log.push((now.nanos(), hop));
            // Odd values are local echoes; even values are hops.
            if hop.is_multiple_of(2) && hop < self.max_hops {
                let peer = 1 - ctx.shard();
                ctx.send(peer, self.delay, hop + 2);
                // A zero-ish-delay local chain that must stay in-window.
                ctx.schedule(SimDuration::from_nanos(1), hop + 1);
            }
        }
    }

    fn ping_pong_run(hops: u32) -> Vec<Vec<(u64, u32)>> {
        let delay = SimDuration::from_micros(5);
        let mut sharded =
            ShardedEngine::new(2, QueueKind::Adaptive, Lookahead::Finite(delay));
        sharded.shard_mut(0).seed(SimTime::ZERO, 0u32);
        let mut models = vec![
            PingPong { max_hops: hops, delay, log: Vec::new() },
            PingPong { max_hops: hops, delay, log: Vec::new() },
        ];
        assert_eq!(sharded.run(&mut models), RunOutcome::Drained);
        models.into_iter().map(|m| m.log).collect()
    }

    #[test]
    fn finite_lookahead_ping_pong_crosses_windows() {
        let logs = ping_pong_run(8);
        let step = SimDuration::from_micros(5).nanos();
        // Shard 0 sees hops 0, 4, 8 (+ echoes 1, 5); shard 1 sees 2, 6 (+ 3, 7).
        assert_eq!(
            logs[0],
            vec![
                (0, 0),
                (1, 1),
                (2 * step, 4),
                (2 * step + 1, 5),
                (4 * step, 8)
            ]
        );
        assert_eq!(
            logs[1],
            vec![(step, 2), (step + 1, 3), (3 * step, 6), (3 * step + 1, 7)]
        );
    }

    #[test]
    fn sharded_runs_are_deterministic_across_interleavings() {
        let first = ping_pong_run(64);
        for _ in 0..4 {
            assert_eq!(ping_pong_run(64), first);
        }
    }

    #[test]
    fn independent_shards_drain_in_one_window() {
        struct Countdown(Vec<u64>);
        impl ShardModel for Countdown {
            type Event = u32;
            fn handle<S: EventScheduler<u32>>(
                &mut self,
                now: SimTime,
                n: u32,
                ctx: &mut ShardCtx<'_, u32, S>,
            ) {
                self.0.push(now.nanos());
                if n > 0 {
                    ctx.schedule(SimDuration::from_nanos(10), n - 1);
                }
            }
        }
        let mut sharded = ShardedEngine::new(4, QueueKind::Adaptive, Lookahead::Independent);
        for i in 0..4 {
            sharded.shard_mut(i).seed(SimTime(i as u64), 5u32);
        }
        let mut models: Vec<Countdown> = (0..4).map(|_| Countdown(Vec::new())).collect();
        assert_eq!(sharded.run(&mut models), RunOutcome::Drained);
        for (i, m) in models.iter().enumerate() {
            assert_eq!(m.0.len(), 6);
            assert_eq!(m.0[0], i as u64);
        }
        assert_eq!(sharded.events_processed(), 24);
        assert_eq!(sharded.now(), SimTime(53));
    }

    #[test]
    fn solo_adapter_matches_plain_engine() {
        struct Countdown(Vec<(u64, u64)>);
        impl Model for Countdown {
            type Event = u64;
            fn handle(&mut self, now: SimTime, ev: u64, sched: &mut impl EventScheduler<u64>) {
                self.0.push((now.nanos(), ev));
                if ev > 0 {
                    sched.schedule(SimDuration::from_nanos(10), ev - 1);
                }
            }
        }
        let mut plain = Engine::new(QueueKind::Adaptive);
        plain.seed(SimTime(5), 3u64);
        let mut reference = Countdown(Vec::new());
        assert_eq!(plain.run(&mut reference), RunOutcome::Drained);

        let mut sharded = ShardedEngine::new(1, QueueKind::Adaptive, Lookahead::Independent);
        sharded.shard_mut(0).seed(SimTime(5), 3u64);
        let mut models = vec![Solo(Countdown(Vec::new()))];
        assert_eq!(sharded.run(&mut models), RunOutcome::Drained);
        assert_eq!(models[0].0 .0, reference.0);
        assert_eq!(sharded.now(), plain.now());
        assert_eq!(sharded.events_processed(), plain.events_processed());
    }

    #[test]
    fn budget_exhaustion_surfaces_from_any_shard() {
        struct Forever;
        impl ShardModel for Forever {
            type Event = ();
            fn handle<S: EventScheduler<()>>(
                &mut self,
                _: SimTime,
                _: (),
                ctx: &mut ShardCtx<'_, (), S>,
            ) {
                ctx.schedule(SimDuration::from_nanos(1), ());
            }
        }
        let mut sharded = ShardedEngine::new(2, QueueKind::Adaptive, Lookahead::Independent);
        sharded.shard_mut(1).max_events = 100;
        sharded.shard_mut(1).seed(SimTime::ZERO, ());
        let mut models = vec![Forever, Forever];
        assert_eq!(sharded.run(&mut models), RunOutcome::BudgetExhausted);
    }

    #[test]
    #[should_panic(expected = "model exploded")]
    fn shard_panics_propagate_without_deadlock() {
        struct Bomb;
        impl ShardModel for Bomb {
            type Event = ();
            fn handle<S: EventScheduler<()>>(
                &mut self,
                _: SimTime,
                _: (),
                _: &mut ShardCtx<'_, (), S>,
            ) {
                panic!("model exploded");
            }
        }
        let mut sharded = ShardedEngine::new(4, QueueKind::Adaptive, Lookahead::Independent);
        sharded.shard_mut(2).seed(SimTime::ZERO, ());
        let mut models = vec![Bomb, Bomb, Bomb, Bomb];
        sharded.run(&mut models);
    }

    #[test]
    #[should_panic(expected = "below the lookahead")]
    fn undershooting_the_lookahead_is_rejected() {
        struct Eager;
        impl ShardModel for Eager {
            type Event = ();
            fn handle<S: EventScheduler<()>>(
                &mut self,
                _: SimTime,
                _: (),
                ctx: &mut ShardCtx<'_, (), S>,
            ) {
                ctx.send(1, SimDuration::from_nanos(1), ());
            }
        }
        let mut sharded = ShardedEngine::new(
            2,
            QueueKind::Adaptive,
            Lookahead::Finite(SimDuration::from_micros(1)),
        );
        sharded.shard_mut(0).seed(SimTime::ZERO, ());
        sharded.run(&mut [Eager, Eager]);
    }
}
