//! Hierarchical timing wheel for cancellable timers.
//!
//! The machine layer schedules enormous numbers of *timers* — quantum
//! expiries, message-timeout guards — that are usually either cancelled
//! before they fire or fire within a few milliseconds of being set. A
//! comparison-based pending-event set pays `O(log n)` per operation and has
//! no remove-by-handle at all (the machine historically left stale timers in
//! the queue and discarded them on pop). The [`TimerWheel`] gives both
//! missing operations:
//!
//! * `O(1)` insert: the firing time indexes directly into a slot array.
//! * `O(1)` cancel by [`TimerHandle`]. The handle carries the timer's
//!   packed `(time, seq)` key — globally unique and never reused, because
//!   the engine's sequence numbers only grow — so a stale handle simply
//!   fails to find its key and is reported, never aliased onto a stranger.
//!
//! ## Geometry
//!
//! Three levels of 256 slots each. Level `l` slots are `2^(20 + 8l)` ns wide
//! (1.05 ms, 268 ms, 68.7 s), so the wheel spans ~4.9 hours of simulated
//! time before spilling into an unordered overflow list. The granule is
//! matched to the machine layer's timer population: quantum expiries are
//! 2–32 ms out, so they land within the first level's 256 slots with a few
//! per slot, keeping both the append and the occupancy scan short. Slots are indexed
//! by the absolute firing time's bit-field — no per-tick rotation or cascade
//! pass exists.
//!
//! Correctness of `peek`/`pop` relies on one invariant: *all entries stored
//! in a level share that level's epoch* (the firing-time bits above the
//! level's slot field). Each level remembers the epoch of its current
//! population; an insert that does not match an occupied level's epoch moves
//! up to the next level (or overflow). Within a single epoch the slot index
//! is monotone in firing time, so a level's earliest entries live in its
//! first occupied slot — found by scanning the occupancy bitmap from a
//! monotone hint.
//!
//! Entries are `(key, event)` pairs stored *unsorted* in their slot, so an
//! insert is a plain `push` no matter how out-of-order the key is — keeping
//! a slot sorted costs an `O(slot)` `memmove` per insert, which collapses
//! once thousands of timers share a level (the `queue_hold_wheel_n4096`
//! cliff). Order is established lazily, per slot, exactly once: when a
//! level's minimum is popped, the slot holding it is *drained* — its entries
//! are sorted ascending in one pass and moved to the level's drain buffer,
//! from which subsequent pops of the same slot are `O(1)` front-pops (the
//! batch-pop of same-slot events). Inserts that land in the slot currently
//! draining binary-insert into the buffer; an insert into an *earlier* slot
//! (rare: keys usually march forward with `now`) simply flushes the buffer
//! back before the earlier slot drains in its turn.
//!
//! The wheel keeps each tier's minimum key in [`TimerWheel::mins`] — one
//! `u128` per level plus one for the overflow list, `u128::MAX` meaning
//! empty, all in a single cache line — so `peek_key` is three compares with
//! no slot walking. Per level the minimum is the lesser of the drain
//! buffer's front and the cached minimum over the unsorted slots; both are
//! maintained incrementally, and only a pop or cancel that consumes the
//! cached slot minimum rescans (one slot, the first occupied one).
//!
//! The wheel orders by the same packed `(time, seq)` key as the
//! [`queue`](crate::queue) backends, so the engine can merge-pop across
//! wheel and queue and preserve the exact global event order.

use crate::queue::Scheduled;
use crate::time::SimTime;
use std::collections::VecDeque;

/// log2 of the finest slot width in nanoseconds (1.05 ms).
const GRAN_BITS: u32 = 20;
/// log2 of the slot count per level.
const SLOT_BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of wheel levels; beyond them entries go to the overflow list.
const LEVELS: usize = 3;
/// `TimerHandle::level` value marking residence in the overflow list.
const OVERFLOW_LEVEL: u8 = LEVELS as u8;
/// `mins` sentinel for an empty tier. Unreachable by a real timer: it would
/// need both `time == u64::MAX` and `seq == u64::MAX`.
const EMPTY: u128 = u128::MAX;

#[inline]
fn pack(time: SimTime, seq: u64) -> u128 {
    ((time.nanos() as u128) << 64) | seq as u128
}

#[inline]
fn slot_shift(level: usize) -> u32 {
    GRAN_BITS + SLOT_BITS * level as u32
}

#[inline]
fn slot_of(t: u64, level: usize) -> usize {
    ((t >> slot_shift(level)) & (SLOTS as u64 - 1)) as usize
}

#[inline]
fn epoch_of(t: u64, level: usize) -> u64 {
    t >> (GRAN_BITS + SLOT_BITS * (level as u32 + 1))
}

/// A claim ticket for a pending timer, returned by
/// [`TimerWheel::insert`] (via `Scheduler::schedule_timer`).
///
/// Handles are `Copy` and cheap to store. The handle is the timer's packed
/// `(time, seq)` key plus the level it was filed under; keys are never
/// reused (sequence numbers only grow), so cancelling a timer that already
/// fired or was already cancelled is detected by the key lookup failing —
/// it never affects an unrelated timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerHandle {
    key: u128,
    level: u8,
}

impl TimerHandle {
    /// Build a handle for an engine that is *not* backed by a timing wheel
    /// (the differential oracle's flat queue). The level is pinned to the
    /// overflow list, the one tier [`TimerWheel::cancel`] resolves by a
    /// plain key scan, so a foreign handle accidentally passed to a real
    /// wheel degrades to a lookup miss instead of an out-of-bounds level.
    pub fn external(key: u128) -> TimerHandle {
        TimerHandle {
            key,
            level: OVERFLOW_LEVEL,
        }
    }

    /// The packed `(time, seq)` key this handle refers to.
    pub fn key(&self) -> u128 {
        self.key
    }
}

#[derive(Debug)]
struct Level<E> {
    /// `(key, event)` pairs per slot, *unsorted* (order is established on
    /// drain). Fixed-size boxed array: the masked slot index provably
    /// fits, so indexing compiles without a bounds check.
    slots: Box<[Vec<(u128, E)>; SLOTS]>,
    /// One bit per slot: set iff the slot vector is non-empty.
    occ: [u64; SLOTS / 64],
    /// Shared firing-time epoch of every entry in this level
    /// (meaningful only while `len > 0`).
    epoch: u64,
    /// Entries currently stored in this level (slots plus drain buffer).
    len: usize,
    /// Lower bound on the first occupied slot (tightened by
    /// [`first_occupied`](Self::first_occupied); only lowered by inserts,
    /// reset when the level empties). Lets the occupancy scan skip the
    /// permanently-drained low words as the population marches forward.
    min_slot_hint: usize,
    /// The slot currently being drained, sorted ascending by key; pops are
    /// front-pops, same-slot inserts binary-insert. Invariant: while
    /// non-empty, `slots[drain_slot]` is empty (its tenants moved here).
    drain: VecDeque<(u128, E)>,
    /// Which slot `drain` came from (meaningful while `drain` is
    /// non-empty).
    drain_slot: usize,
    /// Cached minimum key over the *unsorted slots only* ([`EMPTY`] when
    /// every entry sits in the drain buffer). The level minimum is
    /// `min(slot_min, drain.front())`.
    slot_min: u128,
}

impl<E> Level<E> {
    fn new() -> Self {
        let slots: Vec<Vec<(u128, E)>> = (0..SLOTS).map(|_| Vec::new()).collect();
        Level {
            slots: match slots.into_boxed_slice().try_into() {
                Ok(a) => a,
                Err(_) => unreachable!("built with exactly SLOTS entries"),
            },
            occ: [0; SLOTS / 64],
            epoch: 0,
            len: 0,
            min_slot_hint: 0,
            drain: VecDeque::new(),
            drain_slot: 0,
            slot_min: EMPTY,
        }
    }

    /// Index of the first non-empty slot; `None` when no slot holds
    /// anything (entries may still sit in the drain buffer). Starts at
    /// `min_slot_hint` (a proven lower bound) and tightens it.
    #[inline]
    fn first_occupied(&mut self) -> Option<usize> {
        for w in (self.min_slot_hint >> 6)..self.occ.len() {
            let word = self.occ[w];
            if word != 0 {
                let s = w * 64 + word.trailing_zeros() as usize;
                self.min_slot_hint = s;
                return Some(s);
            }
        }
        None
    }

    /// Recompute `slot_min` from scratch: the least key in the first
    /// occupied slot (one full scan of that slot — it is unsorted), or
    /// [`EMPTY`] when every slot is empty. Within one epoch the slot index
    /// is monotone in firing time, so no later slot can undercut it.
    #[inline]
    fn recompute_slot_min(&mut self) -> u128 {
        match self.first_occupied() {
            None => EMPTY,
            Some(s) => self.slots[s & (SLOTS - 1)]
                .iter()
                .map(|&(k, _)| k)
                .min()
                .expect("occupied slot"),
        }
    }

    /// The level's least key: the cheaper of the drain front and the
    /// cached slot minimum.
    #[inline]
    fn min_key(&self) -> u128 {
        match self.drain.front() {
            Some(&(k, _)) => k.min(self.slot_min),
            None => self.slot_min,
        }
    }
}

/// Hierarchical timing wheel; see the [module docs](self) for the design.
#[derive(Debug)]
pub struct TimerWheel<E> {
    levels: [Level<E>; LEVELS],
    /// Entries whose firing time is beyond every level's epoch (unordered).
    overflow: Vec<(u128, E)>,
    len: usize,
    /// Minimum key per tier — `mins[l]` for level `l`, `mins[LEVELS]` for
    /// the overflow list — with [`EMPTY`] meaning the tier holds nothing.
    /// One cache line; the global minimum is the least of the four.
    mins: [u128; LEVELS + 1],
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimerWheel<E> {
    /// An empty wheel.
    pub fn new() -> Self {
        TimerWheel {
            levels: [Level::new(), Level::new(), Level::new()],
            overflow: Vec::new(),
            len: 0,
            mins: [EMPTY; LEVELS + 1],
        }
    }

    /// Number of live timers.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no timers are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a timer firing at `time` with tiebreak `seq`. `seq` values
    /// must be unique across the wheel's lifetime (the engine's sequence
    /// counter guarantees this); key uniqueness is what makes handles safe.
    #[inline]
    pub fn insert(&mut self, time: SimTime, seq: u64, event: E) -> TimerHandle {
        let key = pack(time, seq);
        let t = time.nanos();
        let mut placed_level = OVERFLOW_LEVEL;
        for (l, level) in self.levels.iter().enumerate() {
            if level.len == 0 || level.epoch == epoch_of(t, l) {
                placed_level = l as u8;
                break;
            }
        }
        if placed_level == OVERFLOW_LEVEL {
            self.overflow.push((key, event));
        } else {
            let l = placed_level as usize;
            let level = &mut self.levels[l];
            let s = slot_of(t, l);
            if level.len == 0 {
                level.epoch = epoch_of(t, l);
                level.min_slot_hint = s;
                level.slot_min = EMPTY;
                debug_assert!(level.drain.is_empty());
            }
            if !level.drain.is_empty() && s == level.drain_slot {
                // The slot is mid-drain: keep the buffer sorted so pops
                // stay front-pops.
                let at = level
                    .drain
                    .binary_search_by(|&(k, _)| k.cmp(&key))
                    .unwrap_err();
                level.drain.insert(at, (key, event));
            } else {
                if s < level.min_slot_hint {
                    level.min_slot_hint = s;
                }
                level.slots[s & (SLOTS - 1)].push((key, event));
                level.occ[s >> 6] |= 1 << (s & 63);
                if key < level.slot_min {
                    level.slot_min = key;
                }
            }
            level.len += 1;
        }
        self.len += 1;
        let m = &mut self.mins[placed_level as usize];
        if key < *m {
            *m = key;
        }
        TimerHandle {
            key,
            level: placed_level,
        }
    }

    /// Entries sitting in the unordered overflow list (firing beyond every
    /// level's span). Every operation on them is a linear scan, so a large
    /// overflow population is the wheel's pathological regime — the
    /// adaptive timer layer watches this to decide when to migrate off the
    /// wheel.
    #[inline]
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Cancel by packed `(time, seq)` key alone, probing every tier. The
    /// adaptive timer layer hands out handles that may predate a
    /// wheel↔heap migration, so the level recorded in a handle can be
    /// stale; this resolves the key wherever it currently lives. At most
    /// one probe per level (each rejected in `O(1)` by the epoch check
    /// unless the key's slot really must be scanned) plus the overflow
    /// scan.
    pub fn cancel_by_key(&mut self, key: u128) -> bool {
        for l in 0..LEVELS as u8 {
            if self.cancel(TimerHandle { key, level: l }) {
                return true;
            }
        }
        self.cancel(TimerHandle {
            key,
            level: OVERFLOW_LEVEL,
        })
    }

    /// Cancel a pending timer. Returns `true` if the timer was still live
    /// (and is now removed), `false` if it already fired or was cancelled.
    pub fn cancel(&mut self, handle: TimerHandle) -> bool {
        let key = handle.key;
        if handle.level == OVERFLOW_LEVEL {
            let Some(at) = self.overflow.iter().position(|&(k, _)| k == key) else {
                return false;
            };
            self.overflow.swap_remove(at);
            if self.mins[LEVELS] == key {
                self.mins[LEVELS] = self
                    .overflow
                    .iter()
                    .map(|&(k, _)| k)
                    .min()
                    .unwrap_or(EMPTY);
            }
        } else {
            let l = handle.level as usize;
            let level = &mut self.levels[l];
            let t = (key >> 64) as u64;
            // A populated level whose epoch moved on cannot still hold the
            // timer (the level emptied in between, firing it).
            if level.len == 0 || level.epoch != epoch_of(t, l) {
                return false;
            }
            let s = slot_of(t, l);
            if !level.drain.is_empty() && s == level.drain_slot {
                // The victim's slot is mid-drain; the buffer is sorted.
                let Ok(at) = level.drain.binary_search_by(|&(k, _)| k.cmp(&key)) else {
                    return false;
                };
                level.drain.remove(at);
            } else {
                // Unsorted slot: linear scan, from the tail — timers are
                // typically cancelled soon after being set, so the victim
                // sits near the end of its slot's push order even when the
                // slot has grown large.
                let vec = &mut level.slots[s & (SLOTS - 1)];
                let Some(at) = vec.iter().rposition(|&(k, _)| k == key) else {
                    return false;
                };
                vec.swap_remove(at);
                if vec.is_empty() {
                    level.occ[s >> 6] &= !(1 << (s & 63));
                }
                if level.slot_min == key {
                    level.slot_min = level.recompute_slot_min();
                }
            }
            level.len -= 1;
            if self.mins[l] == key {
                self.mins[l] = level.min_key();
            }
        }
        self.len -= 1;
        true
    }

    /// The packed `(time, seq)` key of the earliest pending timer.
    #[inline]
    pub fn peek_key(&self) -> Option<u128> {
        let m = self.min_of_tiers();
        if m == EMPTY {
            None
        } else {
            Some(m)
        }
    }

    /// Remove and return the earliest pending timer.
    #[inline]
    pub fn pop_min(&mut self) -> Option<Scheduled<E>> {
        let key = self.min_of_tiers();
        if key == EMPTY {
            return None;
        }
        let tier = self
            .mins
            .iter()
            .position(|&m| m == key)
            .expect("minimum came from a tier");
        // A minimum can live in the overflow list only once the levels that
        // outlasted it drained — that rare case pays a linear scan.
        let event = if tier == LEVELS {
            let at = self
                .overflow
                .iter()
                .position(|&(k, _)| k == key)
                .expect("cached overflow minimum is live");
            let (_, event) = self.overflow.swap_remove(at);
            self.mins[LEVELS] = self
                .overflow
                .iter()
                .map(|&(k, _)| k)
                .min()
                .unwrap_or(EMPTY);
            event
        } else {
            let level = &mut self.levels[tier];
            let event = match level.drain.front() {
                // Batch-pop: the slot was sorted when draining began, so
                // the minimum is a front-pop.
                Some(&(k, _)) if k == key => level.drain.pop_front().expect("peeked front").1,
                _ => {
                    // The minimum sits in an unsorted slot: drain that
                    // slot — sort it once, pop from the front thereafter.
                    debug_assert_eq!(key, level.slot_min);
                    if let Some(&(front, _)) = level.drain.front() {
                        // Rare: an insert landed in an earlier slot after
                        // draining began; flush the remainder back.
                        let ds = level.drain_slot;
                        level.slots[ds & (SLOTS - 1)].extend(level.drain.drain(..));
                        level.occ[ds >> 6] |= 1 << (ds & 63);
                        if ds < level.min_slot_hint {
                            level.min_slot_hint = ds;
                        }
                        level.slot_min = level.slot_min.min(front);
                    }
                    let s = slot_of((key >> 64) as u64, tier);
                    let mut vec = std::mem::take(&mut level.slots[s & (SLOTS - 1)]);
                    vec.sort_unstable_by_key(|&(k, _)| k);
                    level.occ[s >> 6] &= !(1 << (s & 63));
                    level.drain = VecDeque::from(vec);
                    level.drain_slot = s;
                    level.slot_min = level.recompute_slot_min();
                    let (k, event) = level.drain.pop_front().expect("slot held the minimum");
                    debug_assert_eq!(k, key);
                    event
                }
            };
            level.len -= 1;
            self.mins[tier] = level.min_key();
            event
        };
        self.len -= 1;
        Some(Scheduled {
            time: SimTime((key >> 64) as u64),
            seq: key as u64,
            event,
        })
    }

    /// Least key across the four tier minima ([`EMPTY`] iff no timers).
    #[inline]
    fn min_of_tiers(&self) -> u128 {
        let m01 = self.mins[0].min(self.mins[1]);
        let m23 = self.mins[2].min(self.mins[3]);
        m01.min(m23)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel<u64>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(s) = w.pop_min() {
            out.push((s.time.nanos(), s.seq));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        w.insert(SimTime(1_000_000), 2, 2);
        w.insert(SimTime(50), 3, 3);
        w.insert(SimTime(1_000_000), 1, 1);
        w.insert(SimTime(50), 0, 0);
        assert_eq!(
            drain(&mut w),
            vec![(50, 0), (50, 3), (1_000_000, 1), (1_000_000, 2)]
        );
    }

    #[test]
    fn spans_levels_and_overflow() {
        let mut w = TimerWheel::new();
        // One entry per level plus one past the wheel's span.
        let times = [
            1u64 << 17,       // level 0
            1u64 << 25,       // level 1
            1u64 << 33,       // level 2
            1u64 << 45,       // overflow
            (1u64 << 17) + 7, // level 0 again
        ];
        for (i, &t) in times.iter().enumerate() {
            w.insert(SimTime(t), i as u64, i as u64);
        }
        let mut sorted: Vec<u64> = times.to_vec();
        sorted.sort_unstable();
        let popped: Vec<u64> = drain(&mut w).into_iter().map(|(t, _)| t).collect();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn cancel_removes_and_detects_staleness() {
        let mut w = TimerWheel::new();
        let h1 = w.insert(SimTime(100), 0, 0);
        let h2 = w.insert(SimTime(200), 1, 1);
        assert!(w.cancel(h1));
        assert!(!w.cancel(h1), "double cancel must fail");
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop_min().unwrap().seq, 1);
        assert!(!w.cancel(h2), "cancel after fire must fail");
        assert!(w.is_empty());
    }

    #[test]
    fn handle_reuse_does_not_alias() {
        let mut w = TimerWheel::new();
        let h1 = w.insert(SimTime(100), 0, 0);
        assert!(w.cancel(h1));
        // Same slot, different seq: the old handle must not cancel the
        // new tenant.
        let h2 = w.insert(SimTime(100), 1, 1);
        assert!(!w.cancel(h1));
        assert_eq!(w.len(), 1);
        assert!(w.cancel(h2));
        assert!(w.is_empty());
    }

    #[test]
    fn cancel_min_then_peek_recovers() {
        let mut w = TimerWheel::new();
        let h = w.insert(SimTime(10), 0, 0);
        w.insert(SimTime(20), 1, 1);
        assert_eq!(w.peek_key().map(|k| (k >> 64) as u64), Some(10));
        assert!(w.cancel(h));
        assert_eq!(w.peek_key().map(|k| (k >> 64) as u64), Some(20));
        assert_eq!(w.pop_min().unwrap().time, SimTime(20));
    }

    #[test]
    fn mixed_epoch_inserts_stay_ordered() {
        // Entries whose level-0 epochs differ must not alias into the same
        // level-0 slot window; the epoch rule pushes them up a level.
        let mut w = TimerWheel::new();
        let a = 3u64 << 24; // epoch 3 at level 0
        let b = (4u64 << 24) | 5; // epoch 4, would alias slot-wise
        w.insert(SimTime(b), 0, 0);
        w.insert(SimTime(a), 1, 1);
        let popped: Vec<u64> = drain(&mut w).into_iter().map(|(t, _)| t).collect();
        assert_eq!(popped, vec![a, b]);
    }

    #[test]
    fn cancel_against_reused_level_epoch_fails_cleanly() {
        // A timer fires, its level drains, the level is re-tenanted under a
        // different epoch: the old handle must report dead, not remove a
        // stranger filed in the same slot index.
        let mut w = TimerWheel::new();
        let t1 = 5u64 << 16; // level 0, slot 5, epoch 0
        let h = w.insert(SimTime(t1), 0, 0);
        assert_eq!(w.pop_min().unwrap().seq, 0);
        let t2 = (1u64 << 24) | (5u64 << 16); // level 0, slot 5, epoch 1
        w.insert(SimTime(t2), 1, 1);
        assert!(!w.cancel(h), "stale handle must miss re-tenanted level");
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn inserts_into_the_draining_slot_stay_ordered() {
        // Begin draining a dense slot, then keep inserting into it: the
        // late arrivals must merge into the sorted buffer, not jump the
        // queue or fall behind.
        let mut w = TimerWheel::new();
        let base = 5u64 << GRAN_BITS; // level 0, slot 5
        for i in 0..8u64 {
            w.insert(SimTime(base + i), i, i);
        }
        assert_eq!(w.pop_min().unwrap().seq, 0);
        assert_eq!(w.pop_min().unwrap().seq, 1); // slot now mid-drain
        w.insert(SimTime(base + 3), 100, 100); // ties time 3, higher seq
        w.insert(SimTime(base + 900), 101, 101); // same slot, latest time
        let rest: Vec<(u64, u64)> = drain(&mut w).into_iter().map(|(t, s)| (t - base, s)).collect();
        assert_eq!(
            rest,
            vec![(2, 2), (3, 3), (3, 100), (4, 4), (5, 5), (6, 6), (7, 7), (900, 101)]
        );
    }

    #[test]
    fn earlier_slot_insert_flushes_the_drain_back() {
        // After a slot starts draining, an insert into an *earlier* slot
        // undercuts the buffer; the next pop must serve the earlier slot
        // and re-file the buffered remainder without losing anything.
        let mut w = TimerWheel::new();
        let late = 5u64 << GRAN_BITS; // level 0, slot 5
        for i in 0..4u64 {
            w.insert(SimTime(late + i), i, i);
        }
        assert_eq!(w.pop_min().unwrap().seq, 0); // slot 5 mid-drain
        let early = (3u64 << GRAN_BITS) + 1; // level 0, slot 3
        w.insert(SimTime(early), 50, 50);
        assert_eq!(w.len(), 4);
        let order: Vec<u64> = drain(&mut w).into_iter().map(|(_, s)| s).collect();
        assert_eq!(order, vec![50, 1, 2, 3]);
    }

    #[test]
    fn dense_random_interleaving_matches_sorted_order() {
        use crate::rng::DetRng;
        let mut rng = DetRng::new(0x77EE);
        let mut w = TimerWheel::new();
        let mut live: Vec<(u64, u64, TimerHandle)> = Vec::new();
        let mut seq = 0u64;
        let mut expected: Vec<(u64, u64)> = Vec::new();
        for _ in 0..10_000 {
            match rng.uniform_u64(0, 3) {
                0 | 1 => {
                    let t = rng.uniform_u64(0, 1 << 30);
                    let h = w.insert(SimTime(t), seq, seq);
                    live.push((t, seq, h));
                    seq += 1;
                }
                _ => {
                    if !live.is_empty() {
                        let i = rng.uniform_u64(0, live.len() as u64) as usize;
                        let (_, _, h) = live.swap_remove(i);
                        assert!(w.cancel(h));
                    }
                }
            }
        }
        expected.extend(live.iter().map(|&(t, s, _)| (t, s)));
        expected.sort_unstable();
        assert_eq!(drain(&mut w), expected);
    }

    #[test]
    fn random_insert_pop_cancel_storm_matches_reference() {
        // Heavier mixed workload than the dense test: pops interleave with
        // inserts and cancels, exercising drain/flush-back continuously
        // against a sorted-Vec reference.
        use crate::rng::DetRng;
        let mut rng = DetRng::new(0xBEEF_CAFE);
        let mut w = TimerWheel::new();
        let mut reference: Vec<(u128, u64)> = Vec::new(); // (key, seq)
        let mut handles: Vec<TimerHandle> = Vec::new();
        let mut seq = 0u64;
        for _ in 0..20_000 {
            match rng.uniform_u64(0, 10) {
                0..=4 => {
                    let t = rng.uniform_u64(0, 1 << 32);
                    let h = w.insert(SimTime(t), seq, seq);
                    reference.push((pack(SimTime(t), seq), seq));
                    handles.push(h);
                    seq += 1;
                }
                5..=7 => {
                    let popped = w.pop_min();
                    if reference.is_empty() {
                        assert!(popped.is_none());
                    } else {
                        let at = reference
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, &(k, _))| k)
                            .map(|(i, _)| i)
                            .unwrap();
                        let (_, want_seq) = reference.swap_remove(at);
                        assert_eq!(popped.unwrap().seq, want_seq);
                    }
                }
                _ => {
                    if !handles.is_empty() {
                        let i = rng.uniform_u64(0, handles.len() as u64) as usize;
                        let h = handles.swap_remove(i);
                        let live = reference.iter().position(|&(k, _)| k == h.key());
                        assert_eq!(w.cancel(h), live.is_some());
                        if let Some(at) = live {
                            reference.swap_remove(at);
                        }
                    }
                }
            }
            assert_eq!(w.len(), reference.len());
        }
    }
}
