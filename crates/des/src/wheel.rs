//! Hierarchical timing wheel for cancellable timers.
//!
//! The machine layer schedules enormous numbers of *timers* — quantum
//! expiries, message-timeout guards — that are usually either cancelled
//! before they fire or fire within a few milliseconds of being set. A
//! comparison-based pending-event set pays `O(log n)` per operation and has
//! no remove-by-handle at all (the machine historically left stale timers in
//! the queue and discarded them on pop). The [`TimerWheel`] gives both
//! missing operations:
//!
//! * `O(1)` insert: the firing time indexes directly into a slot array.
//! * `O(1)` cancel by [`TimerHandle`]. The handle carries the timer's
//!   packed `(time, seq)` key — globally unique and never reused, because
//!   the engine's sequence numbers only grow — so a stale handle simply
//!   fails to find its key and is reported, never aliased onto a stranger.
//!
//! ## Geometry
//!
//! Three levels of 256 slots each. Level `l` slots are `2^(20 + 8l)` ns wide
//! (1.05 ms, 268 ms, 68.7 s), so the wheel spans ~4.9 hours of simulated
//! time before spilling into an unordered overflow list. The granule is
//! matched to the machine layer's timer population: quantum expiries are
//! 2–32 ms out, so they land within the first level's 256 slots with a few
//! per slot, keeping both the append and the occupancy scan short. Slots are indexed
//! by the absolute firing time's bit-field — no per-tick rotation or cascade
//! pass exists.
//!
//! Correctness of `peek`/`pop` relies on one invariant: *all entries stored
//! in a level share that level's epoch* (the firing-time bits above the
//! level's slot field). Each level remembers the epoch of its current
//! population; an insert that does not match an occupied level's epoch moves
//! up to the next level (or overflow). Within a single epoch the slot index
//! is monotone in firing time, so a level's earliest entry lives in its
//! first occupied slot — found by scanning the occupancy bitmap from a
//! monotone hint.
//!
//! Entries are `(key, event)` pairs stored *inline* in their slot, sorted
//! ascending by key, so a level's minimum is the first pair of its first
//! occupied slot and there is no side table to chase. Timer streams are
//! near-monotone in firing time (a quantum expiry is set at `now + quantum`
//! while `now` only grows), so the common insert is a plain append;
//! out-of-order keys pay a binary search plus a small `memmove` within one
//! slot (slots hold a handful of entries at the paper's scales). `pop`
//! shifts the first pair out — a few dozen bytes — and `cancel`, the rare
//! operation, recomputes its victim's slot from the time bits in the key
//! and binary-searches that one slot.
//!
//! The wheel keeps each tier's minimum key in [`TimerWheel::mins`] — one
//! `u128` per level plus one for the overflow list, `u128::MAX` meaning
//! empty, all in a single cache line — so `peek_key` is three compares with
//! no slot walking. The mins are maintained incrementally: an insert is one
//! compare; a pop re-reads the first pair of the slot it just shifted
//! (already hot) and only rescans the occupancy bitmap when the slot
//! drained.
//!
//! The wheel orders by the same packed `(time, seq)` key as the
//! [`queue`](crate::queue) backends, so the engine can merge-pop across
//! wheel and queue and preserve the exact global event order.

use crate::queue::Scheduled;
use crate::time::SimTime;

/// log2 of the finest slot width in nanoseconds (1.05 ms).
const GRAN_BITS: u32 = 20;
/// log2 of the slot count per level.
const SLOT_BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of wheel levels; beyond them entries go to the overflow list.
const LEVELS: usize = 3;
/// `TimerHandle::level` value marking residence in the overflow list.
const OVERFLOW_LEVEL: u8 = LEVELS as u8;
/// `mins` sentinel for an empty tier. Unreachable by a real timer: it would
/// need both `time == u64::MAX` and `seq == u64::MAX`.
const EMPTY: u128 = u128::MAX;

#[inline]
fn pack(time: SimTime, seq: u64) -> u128 {
    ((time.nanos() as u128) << 64) | seq as u128
}

#[inline]
fn slot_shift(level: usize) -> u32 {
    GRAN_BITS + SLOT_BITS * level as u32
}

#[inline]
fn slot_of(t: u64, level: usize) -> usize {
    ((t >> slot_shift(level)) & (SLOTS as u64 - 1)) as usize
}

#[inline]
fn epoch_of(t: u64, level: usize) -> u64 {
    t >> (GRAN_BITS + SLOT_BITS * (level as u32 + 1))
}

/// A claim ticket for a pending timer, returned by
/// [`TimerWheel::insert`] (via `Scheduler::schedule_timer`).
///
/// Handles are `Copy` and cheap to store. The handle is the timer's packed
/// `(time, seq)` key plus the level it was filed under; keys are never
/// reused (sequence numbers only grow), so cancelling a timer that already
/// fired or was already cancelled is detected by the key lookup failing —
/// it never affects an unrelated timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerHandle {
    key: u128,
    level: u8,
}

impl TimerHandle {
    /// Build a handle for an engine that is *not* backed by a timing wheel
    /// (the differential oracle's flat queue). The level is pinned to the
    /// overflow list, the one tier [`TimerWheel::cancel`] resolves by a
    /// plain key scan, so a foreign handle accidentally passed to a real
    /// wheel degrades to a lookup miss instead of an out-of-bounds level.
    pub fn external(key: u128) -> TimerHandle {
        TimerHandle {
            key,
            level: OVERFLOW_LEVEL,
        }
    }

    /// The packed `(time, seq)` key this handle refers to.
    pub fn key(&self) -> u128 {
        self.key
    }
}

#[derive(Debug)]
struct Level<E> {
    /// `(key, event)` pairs per slot, sorted ascending by key so the
    /// slot's minimum is its first pair and near-monotone inserts append.
    /// Fixed-size boxed array: the masked slot index provably fits, so
    /// indexing compiles without a bounds check.
    slots: Box<[Vec<(u128, E)>; SLOTS]>,
    /// One bit per slot: set iff the slot vector is non-empty.
    occ: [u64; SLOTS / 64],
    /// Shared firing-time epoch of every entry in this level
    /// (meaningful only while `len > 0`).
    epoch: u64,
    /// Entries currently stored in this level.
    len: usize,
    /// Lower bound on the first occupied slot (exact after every
    /// [`first_occupied`](Self::first_occupied); only lowered by inserts,
    /// reset when the level empties). Lets the occupancy scan skip the
    /// permanently-drained low words as the population marches forward.
    min_slot_hint: usize,
}

impl<E> Level<E> {
    fn new() -> Self {
        let slots: Vec<Vec<(u128, E)>> = (0..SLOTS).map(|_| Vec::new()).collect();
        Level {
            slots: match slots.into_boxed_slice().try_into() {
                Ok(a) => a,
                Err(_) => unreachable!("built with exactly SLOTS entries"),
            },
            occ: [0; SLOTS / 64],
            epoch: 0,
            len: 0,
            min_slot_hint: 0,
        }
    }

    /// Index of the first non-empty slot; `None` when the level is empty.
    /// Starts at `min_slot_hint` (a proven lower bound) and tightens it.
    #[inline]
    fn first_occupied(&mut self) -> Option<usize> {
        for w in (self.min_slot_hint >> 6)..self.occ.len() {
            let word = self.occ[w];
            if word != 0 {
                let s = w * 64 + word.trailing_zeros() as usize;
                self.min_slot_hint = s;
                return Some(s);
            }
        }
        None
    }

    /// The level's least key, recomputed from scratch: the first pair of
    /// the first occupied slot ([`EMPTY`] when the level holds nothing).
    #[inline]
    fn recompute_min(&mut self) -> u128 {
        if self.len == 0 {
            return EMPTY;
        }
        let s = self.first_occupied().expect("len > 0");
        self.slots[s & (SLOTS - 1)].first().expect("occupied slot").0
    }
}

/// Hierarchical timing wheel; see the [module docs](self) for the design.
#[derive(Debug)]
pub struct TimerWheel<E> {
    levels: [Level<E>; LEVELS],
    /// Entries whose firing time is beyond every level's epoch (unordered).
    overflow: Vec<(u128, E)>,
    len: usize,
    /// Minimum key per tier — `mins[l]` for level `l`, `mins[LEVELS]` for
    /// the overflow list — with [`EMPTY`] meaning the tier holds nothing.
    /// One cache line; the global minimum is the least of the four.
    mins: [u128; LEVELS + 1],
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimerWheel<E> {
    /// An empty wheel.
    pub fn new() -> Self {
        TimerWheel {
            levels: [Level::new(), Level::new(), Level::new()],
            overflow: Vec::new(),
            len: 0,
            mins: [EMPTY; LEVELS + 1],
        }
    }

    /// Number of live timers.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no timers are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a timer firing at `time` with tiebreak `seq`. `seq` values
    /// must be unique across the wheel's lifetime (the engine's sequence
    /// counter guarantees this); key uniqueness is what makes handles safe.
    #[inline]
    pub fn insert(&mut self, time: SimTime, seq: u64, event: E) -> TimerHandle {
        let key = pack(time, seq);
        let t = time.nanos();
        let mut placed_level = OVERFLOW_LEVEL;
        for (l, level) in self.levels.iter().enumerate() {
            if level.len == 0 || level.epoch == epoch_of(t, l) {
                placed_level = l as u8;
                break;
            }
        }
        if placed_level == OVERFLOW_LEVEL {
            self.overflow.push((key, event));
        } else {
            let l = placed_level as usize;
            let level = &mut self.levels[l];
            let s = slot_of(t, l);
            if level.len == 0 {
                level.epoch = epoch_of(t, l);
                level.min_slot_hint = s;
            } else if s < level.min_slot_hint {
                level.min_slot_hint = s;
            }
            let vec = &mut level.slots[s & (SLOTS - 1)];
            // Ascending order; timer streams fire in near-monotone order,
            // so appending is the overwhelmingly common case.
            match vec.last() {
                Some(&(k, _)) if k > key => {
                    let at = vec.partition_point(|&(k, _)| k < key);
                    vec.insert(at, (key, event));
                }
                _ => vec.push((key, event)),
            }
            level.occ[s >> 6] |= 1 << (s & 63);
            level.len += 1;
        }
        self.len += 1;
        let m = &mut self.mins[placed_level as usize];
        if key < *m {
            *m = key;
        }
        TimerHandle {
            key,
            level: placed_level,
        }
    }

    /// Cancel a pending timer. Returns `true` if the timer was still live
    /// (and is now removed), `false` if it already fired or was cancelled.
    pub fn cancel(&mut self, handle: TimerHandle) -> bool {
        let key = handle.key;
        if handle.level == OVERFLOW_LEVEL {
            let Some(at) = self.overflow.iter().position(|&(k, _)| k == key) else {
                return false;
            };
            self.overflow.swap_remove(at);
            if self.mins[LEVELS] == key {
                self.mins[LEVELS] = self
                    .overflow
                    .iter()
                    .map(|&(k, _)| k)
                    .min()
                    .unwrap_or(EMPTY);
            }
        } else {
            let l = handle.level as usize;
            let level = &mut self.levels[l];
            let t = (key >> 64) as u64;
            // A populated level whose epoch moved on cannot still hold the
            // timer (the level emptied in between, firing it).
            if level.len == 0 || level.epoch != epoch_of(t, l) {
                return false;
            }
            let s = slot_of(t, l);
            let vec = &mut level.slots[s & (SLOTS - 1)];
            let Ok(at) = vec.binary_search_by(|&(k, _)| k.cmp(&key)) else {
                return false;
            };
            vec.remove(at);
            if vec.is_empty() {
                level.occ[s >> 6] &= !(1 << (s & 63));
            }
            level.len -= 1;
            if self.mins[l] == key {
                self.mins[l] = match vec.first() {
                    // The victim was its level's minimum, i.e. the first
                    // pair of the first occupied slot; its successor in the
                    // same slot (if any) is the new minimum.
                    Some(&(k, _)) => k,
                    None => level.recompute_min(),
                };
            }
        }
        self.len -= 1;
        true
    }

    /// The packed `(time, seq)` key of the earliest pending timer.
    #[inline]
    pub fn peek_key(&self) -> Option<u128> {
        let m = self.min_of_tiers();
        if m == EMPTY {
            None
        } else {
            Some(m)
        }
    }

    /// Remove and return the earliest pending timer.
    #[inline]
    pub fn pop_min(&mut self) -> Option<Scheduled<E>> {
        let key = self.min_of_tiers();
        if key == EMPTY {
            return None;
        }
        let tier = self
            .mins
            .iter()
            .position(|&m| m == key)
            .expect("minimum came from a tier");
        // In-level minima are their slot's first pair (ascending order); a
        // minimum can live in the overflow list only once the levels that
        // outlasted it drained — that rare case pays a linear scan.
        let event = if tier == LEVELS {
            let at = self
                .overflow
                .iter()
                .position(|&(k, _)| k == key)
                .expect("cached overflow minimum is live");
            let (_, event) = self.overflow.swap_remove(at);
            self.mins[LEVELS] = self
                .overflow
                .iter()
                .map(|&(k, _)| k)
                .min()
                .unwrap_or(EMPTY);
            event
        } else {
            let level = &mut self.levels[tier];
            let s = slot_of((key >> 64) as u64, tier);
            let vec = &mut level.slots[s & (SLOTS - 1)];
            debug_assert_eq!(vec.first().map(|&(k, _)| k), Some(key));
            let (_, event) = vec.remove(0);
            level.len -= 1;
            self.mins[tier] = match vec.first() {
                // The shifted vector is still hot; its new first pair is
                // the level minimum unless the slot drained.
                Some(&(k, _)) => k,
                None => {
                    level.occ[s >> 6] &= !(1 << (s & 63));
                    level.recompute_min()
                }
            };
            event
        };
        self.len -= 1;
        Some(Scheduled {
            time: SimTime((key >> 64) as u64),
            seq: key as u64,
            event,
        })
    }

    /// Least key across the four tier minima ([`EMPTY`] iff no timers).
    #[inline]
    fn min_of_tiers(&self) -> u128 {
        let m01 = self.mins[0].min(self.mins[1]);
        let m23 = self.mins[2].min(self.mins[3]);
        m01.min(m23)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel<u64>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(s) = w.pop_min() {
            out.push((s.time.nanos(), s.seq));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        w.insert(SimTime(1_000_000), 2, 2);
        w.insert(SimTime(50), 3, 3);
        w.insert(SimTime(1_000_000), 1, 1);
        w.insert(SimTime(50), 0, 0);
        assert_eq!(
            drain(&mut w),
            vec![(50, 0), (50, 3), (1_000_000, 1), (1_000_000, 2)]
        );
    }

    #[test]
    fn spans_levels_and_overflow() {
        let mut w = TimerWheel::new();
        // One entry per level plus one past the wheel's span.
        let times = [
            1u64 << 17,       // level 0
            1u64 << 25,       // level 1
            1u64 << 33,       // level 2
            1u64 << 45,       // overflow
            (1u64 << 17) + 7, // level 0 again
        ];
        for (i, &t) in times.iter().enumerate() {
            w.insert(SimTime(t), i as u64, i as u64);
        }
        let mut sorted: Vec<u64> = times.to_vec();
        sorted.sort_unstable();
        let popped: Vec<u64> = drain(&mut w).into_iter().map(|(t, _)| t).collect();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn cancel_removes_and_detects_staleness() {
        let mut w = TimerWheel::new();
        let h1 = w.insert(SimTime(100), 0, 0);
        let h2 = w.insert(SimTime(200), 1, 1);
        assert!(w.cancel(h1));
        assert!(!w.cancel(h1), "double cancel must fail");
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop_min().unwrap().seq, 1);
        assert!(!w.cancel(h2), "cancel after fire must fail");
        assert!(w.is_empty());
    }

    #[test]
    fn handle_reuse_does_not_alias() {
        let mut w = TimerWheel::new();
        let h1 = w.insert(SimTime(100), 0, 0);
        assert!(w.cancel(h1));
        // Same slot, different seq: the old handle must not cancel the
        // new tenant.
        let h2 = w.insert(SimTime(100), 1, 1);
        assert!(!w.cancel(h1));
        assert_eq!(w.len(), 1);
        assert!(w.cancel(h2));
        assert!(w.is_empty());
    }

    #[test]
    fn cancel_min_then_peek_recovers() {
        let mut w = TimerWheel::new();
        let h = w.insert(SimTime(10), 0, 0);
        w.insert(SimTime(20), 1, 1);
        assert_eq!(w.peek_key().map(|k| (k >> 64) as u64), Some(10));
        assert!(w.cancel(h));
        assert_eq!(w.peek_key().map(|k| (k >> 64) as u64), Some(20));
        assert_eq!(w.pop_min().unwrap().time, SimTime(20));
    }

    #[test]
    fn mixed_epoch_inserts_stay_ordered() {
        // Entries whose level-0 epochs differ must not alias into the same
        // level-0 slot window; the epoch rule pushes them up a level.
        let mut w = TimerWheel::new();
        let a = 3u64 << 24; // epoch 3 at level 0
        let b = (4u64 << 24) | 5; // epoch 4, would alias slot-wise
        w.insert(SimTime(b), 0, 0);
        w.insert(SimTime(a), 1, 1);
        let popped: Vec<u64> = drain(&mut w).into_iter().map(|(t, _)| t).collect();
        assert_eq!(popped, vec![a, b]);
    }

    #[test]
    fn cancel_against_reused_level_epoch_fails_cleanly() {
        // A timer fires, its level drains, the level is re-tenanted under a
        // different epoch: the old handle must report dead, not remove a
        // stranger filed in the same slot index.
        let mut w = TimerWheel::new();
        let t1 = 5u64 << 16; // level 0, slot 5, epoch 0
        let h = w.insert(SimTime(t1), 0, 0);
        assert_eq!(w.pop_min().unwrap().seq, 0);
        let t2 = (1u64 << 24) | (5u64 << 16); // level 0, slot 5, epoch 1
        w.insert(SimTime(t2), 1, 1);
        assert!(!w.cancel(h), "stale handle must miss re-tenanted level");
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn dense_random_interleaving_matches_sorted_order() {
        use crate::rng::DetRng;
        let mut rng = DetRng::new(0x77EE);
        let mut w = TimerWheel::new();
        let mut live: Vec<(u64, u64, TimerHandle)> = Vec::new();
        let mut seq = 0u64;
        let mut expected: Vec<(u64, u64)> = Vec::new();
        for _ in 0..10_000 {
            match rng.uniform_u64(0, 3) {
                0 | 1 => {
                    let t = rng.uniform_u64(0, 1 << 30);
                    let h = w.insert(SimTime(t), seq, seq);
                    live.push((t, seq, h));
                    seq += 1;
                }
                _ => {
                    if !live.is_empty() {
                        let i = rng.uniform_u64(0, live.len() as u64) as usize;
                        let (_, _, h) = live.swap_remove(i);
                        assert!(w.cancel(h));
                    }
                }
            }
        }
        expected.extend(live.iter().map(|&(t, s, _)| (t, s)));
        expected.sort_unstable();
        assert_eq!(drain(&mut w), expected);
    }
}
