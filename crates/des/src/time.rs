//! Simulated time.
//!
//! The simulator measures time in integer **nanoseconds** from the start of a
//! run. Integer time keeps event ordering exact and the whole simulation
//! bit-for-bit deterministic; at nanosecond resolution a `u64` spans ~584
//! years of simulated time, far beyond any experiment in this repository.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since the start of the run.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// The duration from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; simulated time never runs
    /// backwards, so such a call is a logic error.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier instant is in the future"),
        )
    }

    /// Saturating version of [`SimTime::since`]: returns zero when `earlier`
    /// is in the future instead of panicking.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// This instant expressed in (floating-point) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from floating-point seconds, rounding to the nearest
    /// nanosecond and saturating on overflow or negative input.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns.round() as u64)
        }
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// This duration expressed in (floating-point) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This duration expressed in (floating-point) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this is the zero duration.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction; `None` on underflow.
    #[inline]
    pub fn checked_sub(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(rhs.0).map(SimDuration)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.min(rhs.0))
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.max(rhs.0))
    }

    /// Scale by a non-negative floating-point factor (saturating).
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: simulated run exceeded ~584 years"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

fn fmt_nanos(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns >= 1_000_000_000 {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else {
        write!(f, "{ns}ns")
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t=")?;
        fmt_nanos(self.0, f)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
    }

    #[test]
    fn time_arithmetic_roundtrips() {
        let t0 = SimTime(500);
        let d = SimDuration::from_nanos(250);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1.since(t0), d);
    }

    #[test]
    #[should_panic(expected = "earlier instant is in the future")]
    fn since_panics_on_backwards_time() {
        let _ = SimTime(1).since(SimTime(2));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(SimTime(1).saturating_since(SimTime(2)), SimDuration::ZERO);
        assert_eq!(
            SimTime(5).saturating_since(SimTime(2)),
            SimDuration::from_nanos(3)
        );
    }

    #[test]
    fn from_secs_f64_handles_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(1e-9), SimDuration::from_nanos(1));
        assert_eq!(SimDuration::from_secs_f64(2.5), SimDuration::from_millis(2_500));
    }

    #[test]
    fn duration_scalar_ops() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d * 3, SimDuration::from_micros(30));
        assert_eq!(d / 4, SimDuration::from_nanos(2_500));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(5));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&n| SimDuration::from_nanos(n))
            .sum();
        assert_eq!(total, SimDuration::from_nanos(6));
    }

    #[test]
    fn checked_and_saturating_sub() {
        let a = SimDuration::from_nanos(5);
        let b = SimDuration::from_nanos(7);
        assert_eq!(b.checked_sub(a), Some(SimDuration::from_nanos(2)));
        assert_eq!(a.checked_sub(b), None);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
    }
}
