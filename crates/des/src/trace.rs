//! Bounded event tracing.
//!
//! A cheap ring buffer of recent simulation events, used by the machine
//! model's deadlock watchdog to print what the system was doing when it
//! stalled, and by tests to assert on event sequences without paying for an
//! unbounded log.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the event happened.
    pub time: SimTime,
    /// Which component reported it (e.g. `"node3.cpu"`).
    pub source: String,
    /// Human-readable description.
    pub what: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>14}] {:<16} {}", self.time, self.source, self.what)
    }
}

/// A bounded ring buffer of [`TraceRecord`]s. A capacity of zero disables
/// tracing entirely (all pushes are no-ops), which is the default for
/// benchmark runs.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    cap: usize,
    buf: VecDeque<TraceRecord>,
    dropped: u64,
}

impl Trace {
    /// A trace keeping at most `cap` records (0 disables tracing).
    pub fn with_capacity(cap: usize) -> Self {
        Trace {
            cap,
            buf: VecDeque::with_capacity(cap.min(4096)),
            dropped: 0,
        }
    }

    /// Disabled trace.
    pub fn disabled() -> Self {
        Self::with_capacity(0)
    }

    /// True if pushes are recorded.
    pub fn enabled(&self) -> bool {
        self.cap > 0
    }

    /// Record an event (no-op when disabled).
    pub fn push(&mut self, time: SimTime, source: impl Into<String>, what: impl Into<String>) {
        if self.cap == 0 {
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(TraceRecord {
            time,
            source: source.into(),
            what: what.into(),
        });
    }

    /// Record an event, building the description lazily: `what` only runs
    /// when the trace is enabled, so disabled runs never format or
    /// allocate. Prefer this over [`Trace::push`] on hot paths.
    #[inline]
    pub fn push_with(
        &mut self,
        time: SimTime,
        source: impl Into<String>,
        what: impl FnOnce() -> String,
    ) {
        if self.cap == 0 {
            return;
        }
        self.push(time, source, what());
    }

    /// Records currently retained, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// Number of records evicted to honour the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the retained records, one per line.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!("... {} earlier records dropped ...\n", self.dropped));
        }
        for r in &self.buf {
            out.push_str(&format!("{r}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        assert!(!t.enabled());
        t.push(SimTime(1), "x", "y");
        assert_eq!(t.records().count(), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Trace::with_capacity(3);
        for i in 0..5u64 {
            t.push(SimTime(i), "src", format!("ev{i}"));
        }
        let whats: Vec<&str> = t.records().map(|r| r.what.as_str()).collect();
        assert_eq!(whats, vec!["ev2", "ev3", "ev4"]);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn push_with_is_lazy_when_disabled() {
        let mut t = Trace::disabled();
        let mut ran = false;
        t.push_with(SimTime(1), "x", || {
            ran = true;
            "never".into()
        });
        assert!(!ran, "closure must not run on a disabled trace");

        let mut t = Trace::with_capacity(2);
        t.push_with(SimTime(2), "x", || "formatted".into());
        assert_eq!(t.records().next().unwrap().what, "formatted");
    }

    #[test]
    fn dump_mentions_drops() {
        let mut t = Trace::with_capacity(1);
        t.push(SimTime(0), "a", "first");
        t.push(SimTime(1), "a", "second");
        let dump = t.dump();
        assert!(dump.contains("1 earlier records dropped"));
        assert!(dump.contains("second"));
        assert!(!dump.contains("first\n"));
    }
}
