//! Pending-event set implementations.
//!
//! The event queue is the hot data structure of a discrete-event simulator.
//! Three backends are provided behind the [`EventQueue`] trait:
//!
//! * [`BinaryHeapQueue`] — an `O(log n)` implicit heap; the robust choice
//!   for small pending sets.
//! * [`CalendarQueue`] — the classic Brown (1988) calendar queue with `O(1)`
//!   amortized enqueue/dequeue under stationary event-time distributions;
//!   wins once the pending set grows into the hundreds. Benchmarked against
//!   the heap by `cargo run --release -p parsched-bench --bin perf` (see the
//!   `queue_hold_*` scenarios and EXPERIMENTS.md "Performance").
//! * [`AdaptiveQueue`] — the default: starts as a heap and migrates to a
//!   calendar (and back) at the measured crossover, so callers no longer
//!   pick a backend per workload.
//!
//! ## The adaptive heuristic
//!
//! `queue_hold_*` measurements put the heap/calendar crossover between a few
//! hundred and ~1k pending events on this codebase's event mix. The
//! [`AdaptiveQueue`] samples its population every [`ADAPT_CHECK_EVERY`]
//! operations; [`ADAPT_STREAK`] consecutive samples above
//! [`ADAPT_PROMOTE_LEN`] migrate heap → calendar, the same number below
//! [`ADAPT_DEMOTE_LEN`] migrate back. The wide gap between the two
//! thresholds is deliberate hysteresis: a population oscillating near the
//! crossover must not thrash migrations (each migration drains and
//! re-inserts every pending event). On promotion the calendar's bucket
//! width is seeded from the drained events' observed time dispersion
//! (3× the mean inter-event gap, Brown's rule); a zero-dispersion sample
//! (all events simultaneous) vetoes promotion since day-indexing degenerates
//! when every event hashes to one bucket.
//!
//! All backends break ties on event time by the insertion sequence number,
//! so a simulation produces exactly the same event order regardless of the
//! backend — a property the integration tests assert. Migration preserves
//! order for the same reason: events are drained in `(time, seq)` order and
//! re-inserted into a structure that sorts by the same key.

use crate::time::SimTime;
use std::cmp::Ordering;

/// An event of type `E` scheduled for a particular simulated instant.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotone insertion sequence; the deterministic tiebreaker.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest event.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A pending-event set: a priority queue ordered by `(time, seq)`.
pub trait EventQueue<E> {
    /// Insert an event.
    fn push(&mut self, item: Scheduled<E>);
    /// Remove and return the earliest event, or `None` if empty.
    fn pop(&mut self) -> Option<Scheduled<E>>;
    /// The timestamp of the earliest event without removing it.
    fn peek_time(&self) -> Option<SimTime>;
    /// The packed `(time << 64) | seq` key of the earliest event without
    /// removing it. Takes `&mut self` so backends may cache the located
    /// minimum and reuse it in the following `pop`.
    fn peek_key(&mut self) -> Option<u128>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// True if no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Heap-backed pending-event set.
///
/// Internally a 4-ary implicit min-heap over the packed `(time, seq)` key
/// (one `u128` comparison instead of two chained `u64` compares): the
/// shallower tree halves the number of levels a sift touches, which is
/// where the time goes for the small-to-medium pending sets a machine
/// simulation keeps. The name predates the arity change; the observable
/// behaviour — pops ascending by `(time, seq)` — is that of any min-heap.
#[derive(Debug)]
pub struct BinaryHeapQueue<E> {
    /// `(packed key, payload)` in implicit 4-ary heap order.
    heap: Vec<(u128, E)>,
}

/// Pack `(time, seq)` so one integer compare gives the event order.
#[inline]
fn pack(time: SimTime, seq: u64) -> u128 {
    ((time.nanos() as u128) << 64) | seq as u128
}

#[inline]
fn unpack<E>((key, event): (u128, E)) -> Scheduled<E> {
    Scheduled {
        time: SimTime((key >> 64) as u64),
        seq: key as u64,
        event,
    }
}

const HEAP_ARITY: usize = 4;

impl<E> Default for BinaryHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BinaryHeapQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue { heap: Vec::new() }
    }

    /// Restore the heap property upward from `pos` (a freshly pushed slot).
    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / HEAP_ARITY;
            if self.heap[pos].0 >= self.heap[parent].0 {
                break;
            }
            self.heap.swap(pos, parent);
            pos = parent;
        }
    }

    /// Restore the heap property downward from the root (after a pop moved
    /// the last element there).
    fn sift_down(&mut self) {
        let len = self.heap.len();
        let mut pos = 0;
        loop {
            let first = pos * HEAP_ARITY + 1;
            if first >= len {
                break;
            }
            let mut min = first;
            let mut min_key = self.heap[first].0;
            for c in (first + 1)..(first + HEAP_ARITY).min(len) {
                let k = self.heap[c].0;
                if k < min_key {
                    min = c;
                    min_key = k;
                }
            }
            if min_key >= self.heap[pos].0 {
                break;
            }
            self.heap.swap(pos, min);
            pos = min;
        }
    }
}

impl<E> EventQueue<E> for BinaryHeapQueue<E> {
    fn push(&mut self, item: Scheduled<E>) {
        self.heap.push((pack(item.time, item.seq), item.event));
        self.sift_up(self.heap.len() - 1);
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        let len = self.heap.len();
        match len {
            0 => None,
            1 => self.heap.pop().map(unpack),
            _ => {
                self.heap.swap(0, len - 1);
                let top = self.heap.pop().expect("len >= 2");
                self.sift_down();
                Some(unpack(top))
            }
        }
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|&(key, _)| SimTime((key >> 64) as u64))
    }

    fn peek_key(&mut self) -> Option<u128> {
        self.heap.first().map(|&(key, _)| key)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Calendar-queue backed pending-event set (Brown 1988).
///
/// Events are hashed into day "buckets" by `time / bucket_width`; a dequeue
/// scans forward from the current day. The structure resizes (doubling or
/// halving the bucket count and re-estimating the width from a sample of
/// inter-event gaps) when the population crosses 2× or 0.5× the bucket count,
/// giving `O(1)` amortized operations for stationary distributions.
#[derive(Debug)]
pub struct CalendarQueue<E> {
    buckets: Vec<Vec<Scheduled<E>>>,
    /// Width of one bucket in nanoseconds (never zero).
    bucket_width: u64,
    /// Number of events stored.
    len: usize,
    /// Bucket index the next dequeue starts scanning from.
    current_bucket: usize,
    /// Start time of `current_bucket`'s current "year" window.
    current_year_start: u64,
    /// Population thresholds for resizing.
    grow_at: usize,
    shrink_at: usize,
    /// `(packed key, bucket)` of the located minimum; the minimum is the
    /// *last* element of that bucket. Invalidated by any pop or resize.
    cached_head: Option<(u128, usize)>,
    /// Buckets visited by `locate_min` since the last occupancy check.
    scan_steps: u64,
    /// Pops since the last occupancy check.
    scan_pops: u64,
}

const CQ_INITIAL_BUCKETS: usize = 16;
const CQ_INITIAL_WIDTH: u64 = 1_000; // 1 us
/// Pops between under-occupancy checks.
const CQ_SCAN_WINDOW: u64 = 256;
/// Mean buckets-visited-per-pop above which the calendar re-derives its
/// geometry. A well-tuned calendar finds the head in ~1 step; sustained
/// long walks mean the bucket count or width no longer fits the population
/// (e.g. after it shrank, or the event-time spread drifted), which the
/// population-threshold resizes alone do not catch.
const CQ_SCAN_RESIZE_THRESHOLD: u64 = 4;

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// An empty queue with default geometry.
    pub fn new() -> Self {
        Self::with_geometry(CQ_INITIAL_BUCKETS, CQ_INITIAL_WIDTH)
    }

    /// An empty queue with an explicit bucket count (rounded up to a power of
    /// two) and bucket width in nanoseconds.
    pub fn with_geometry(buckets: usize, width_ns: u64) -> Self {
        let n = buckets.next_power_of_two().max(2);
        CalendarQueue {
            buckets: (0..n).map(|_| Vec::new()).collect(),
            bucket_width: width_ns.max(1),
            len: 0,
            current_bucket: 0,
            current_year_start: 0,
            grow_at: n * 2,
            shrink_at: n / 2,
            cached_head: None,
            scan_steps: 0,
            scan_pops: 0,
        }
    }

    #[inline]
    fn bucket_of(&self, time: SimTime) -> usize {
        ((time.nanos() / self.bucket_width) as usize) & (self.buckets.len() - 1)
    }

    fn resize(&mut self, new_buckets: usize) {
        self.cached_head = None;
        self.scan_steps = 0;
        self.scan_pops = 0;
        let new_width = self.estimate_width();
        let mut all: Vec<Scheduled<E>> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            all.append(b);
        }
        let n = new_buckets.next_power_of_two().max(2);
        self.buckets = (0..n).map(|_| Vec::new()).collect();
        self.bucket_width = new_width;
        self.grow_at = n * 2;
        self.shrink_at = if n <= CQ_INITIAL_BUCKETS { 0 } else { n / 2 };
        self.len = 0;
        // Re-derive the scan position from the earliest event.
        let min_time = all.iter().map(|s| s.time).min().unwrap_or(SimTime::ZERO);
        self.set_scan_position(min_time);
        for item in all {
            self.insert_raw(item);
        }
    }

    /// Estimate a bucket width as ~the average gap between the next few
    /// events (the textbook heuristic), clamped to at least 1 ns.
    fn estimate_width(&self) -> u64 {
        let mut sample: Vec<u64> = self
            .buckets
            .iter()
            .flat_map(|b| b.iter().map(|s| s.time.nanos()))
            .collect();
        if sample.len() < 2 {
            return self.bucket_width;
        }
        sample.sort_unstable();
        let take = sample.len().min(64);
        let span = sample[take - 1].saturating_sub(sample[0]);
        let gap = span / (take as u64 - 1).max(1);
        // Three times the mean gap, per Brown's recommendation.
        (gap.saturating_mul(3)).clamp(1, u64::MAX / 4)
    }

    fn set_scan_position(&mut self, time: SimTime) {
        let day = time.nanos() / self.bucket_width;
        self.current_bucket = (day as usize) & (self.buckets.len() - 1);
        self.current_year_start = day * self.bucket_width;
    }

    fn insert_raw(&mut self, item: Scheduled<E>) {
        let key = pack(item.time, item.seq);
        let idx = self.bucket_of(item.time);
        // Keep each bucket sorted descending so pop_min is a cheap pop().
        let bucket = &mut self.buckets[idx];
        let pos = bucket
            .binary_search_by(|probe| {
                (item.time, item.seq).cmp(&(probe.time, probe.seq))
            })
            .unwrap_or_else(|p| p);
        bucket.insert(pos, item);
        self.len += 1;
        // A new global minimum lands at the end of its own bucket, so the
        // cached head can be updated in place; any other insert leaves the
        // located minimum where it was.
        if let Some((ck, _)) = self.cached_head {
            if key < ck {
                self.cached_head = Some((key, idx));
            }
        }
    }

    /// Find the bucket holding the earliest `(time, seq)` event (its last
    /// element), advancing the year scan position like a dequeue would.
    /// Caches the answer for the following `pop`. `None` iff empty.
    fn locate_min(&mut self) -> Option<(u128, usize)> {
        if self.len == 0 {
            return None;
        }
        if let Some(found) = self.cached_head {
            return Some(found);
        }
        let nbuckets = self.buckets.len();
        loop {
            // Scan one "year": every bucket once, honouring the day windows.
            let mut year_min: Option<(SimTime, u64, usize)> = None;
            for step in 0..nbuckets {
                let idx = (self.current_bucket + step) & (nbuckets - 1);
                let window_start =
                    self.current_year_start + (step as u64) * self.bucket_width;
                let window_end = window_start.saturating_add(self.bucket_width);
                if let Some(last) = self.buckets[idx].last() {
                    let t = last.time.nanos();
                    if t >= window_start && t < window_end {
                        // In its home-day window: guaranteed earliest overall.
                        self.current_bucket = idx;
                        self.current_year_start = window_start;
                        self.scan_steps += step as u64 + 1;
                        let found = (pack(last.time, last.seq), idx);
                        self.cached_head = Some(found);
                        return Some(found);
                    }
                    match year_min {
                        Some((mt, ms, _)) if (last.time, last.seq) >= (mt, ms) => {}
                        _ => year_min = Some((last.time, last.seq, idx)),
                    }
                }
            }
            self.scan_steps += nbuckets as u64;
            match year_min {
                // Nothing in its home window this year: jump straight to the
                // year of the globally earliest event (direct search).
                Some((t, s, idx)) => {
                    self.set_scan_position(t);
                    // Re-loop; the event is now inside its window. To avoid a
                    // pathological infinite loop on width-overflow, return
                    // directly if the window test would still fail.
                    if self.bucket_of(t) == idx {
                        continue;
                    }
                    let found = (pack(t, s), idx);
                    self.cached_head = Some(found);
                    return Some(found);
                }
                None => {
                    debug_assert_eq!(self.len, 0, "len out of sync with buckets");
                    return None;
                }
            }
        }
    }
}

impl<E> EventQueue<E> for CalendarQueue<E> {
    fn push(&mut self, item: Scheduled<E>) {
        if self.len + 1 > self.grow_at {
            let n = self.buckets.len() * 2;
            self.resize(n);
        }
        // An event earlier than the scan position must move the scan back,
        // otherwise it would only be found after a full wrap.
        if item.time.nanos() < self.current_year_start {
            self.set_scan_position(item.time);
        }
        self.insert_raw(item);
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        if self.len == 0 {
            return None;
        }
        if self.len < self.shrink_at {
            let n = (self.buckets.len() / 2).max(CQ_INITIAL_BUCKETS);
            if n < self.buckets.len() {
                self.resize(n);
            }
        }
        // Under-occupancy guard: if recent dequeues walked far through
        // empty buckets, the geometry is stale — re-derive it from the
        // current population regardless of the grow/shrink thresholds.
        self.scan_pops += 1;
        if self.scan_pops >= CQ_SCAN_WINDOW {
            if self.scan_steps > CQ_SCAN_RESIZE_THRESHOLD * self.scan_pops
                && self.len >= 2
            {
                self.resize(self.len);
            } else {
                self.scan_steps = 0;
                self.scan_pops = 0;
            }
        }
        let (_, idx) = self.locate_min()?;
        let item = self.buckets[idx].pop().expect("located minimum is live");
        self.len -= 1;
        self.cached_head = None;
        Some(item)
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.buckets
            .iter()
            .filter_map(|b| b.last().map(|s| s.time))
            .min()
    }

    fn peek_key(&mut self) -> Option<u128> {
        self.locate_min().map(|(key, _)| key)
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Operations between population checks of the [`AdaptiveQueue`].
pub const ADAPT_CHECK_EVERY: u32 = 256;
/// Consecutive agreeing checks required before a migration.
pub const ADAPT_STREAK: u32 = 4;
/// Population at or above which sustained checks promote heap → calendar.
pub const ADAPT_PROMOTE_LEN: usize = 1024;
/// Population at or below which sustained checks demote calendar → heap.
pub const ADAPT_DEMOTE_LEN: usize = 256;

#[derive(Debug)]
enum AdaptiveInner<E> {
    Heap(BinaryHeapQueue<E>),
    Calendar(CalendarQueue<E>),
}

/// Self-tuning pending-event set: a heap that becomes a calendar queue
/// when the population grows past the measured crossover, and reverts when
/// it falls back. See the [module docs](self) for the heuristic and its
/// rationale. Event order is identical to either fixed backend.
#[derive(Debug)]
pub struct AdaptiveQueue<E> {
    inner: AdaptiveInner<E>,
    ops_since_check: u32,
    streak: u32,
}

impl<E> Default for AdaptiveQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> AdaptiveQueue<E> {
    /// An empty queue (heap-backed until the population says otherwise).
    pub fn new() -> Self {
        AdaptiveQueue {
            inner: AdaptiveInner::Heap(BinaryHeapQueue::new()),
            ops_since_check: 0,
            streak: 0,
        }
    }

    /// True while the calendar backend is active (visible for tests and
    /// benchmarks; callers never need to ask).
    pub fn is_calendar(&self) -> bool {
        matches!(self.inner, AdaptiveInner::Calendar(_))
    }

    #[inline]
    fn tick(&mut self) {
        self.ops_since_check += 1;
        if self.ops_since_check >= ADAPT_CHECK_EVERY {
            self.ops_since_check = 0;
            self.check();
        }
    }

    #[cold]
    fn check(&mut self) {
        let wants_migration = match &self.inner {
            AdaptiveInner::Heap(q) => q.len() >= ADAPT_PROMOTE_LEN,
            AdaptiveInner::Calendar(q) => q.len() <= ADAPT_DEMOTE_LEN,
        };
        if !wants_migration {
            self.streak = 0;
            return;
        }
        self.streak += 1;
        if self.streak < ADAPT_STREAK {
            return;
        }
        self.streak = 0;
        match &mut self.inner {
            AdaptiveInner::Heap(q) => {
                let mut drained = Vec::with_capacity(q.len());
                while let Some(item) = q.pop() {
                    drained.push(item);
                }
                let (first, last) = match (drained.first(), drained.last()) {
                    (Some(f), Some(l)) => (f.time.nanos(), l.time.nanos()),
                    _ => return,
                };
                let span = last.saturating_sub(first);
                if span == 0 {
                    // Zero dispersion: every event would hash to one bucket
                    // and the calendar degenerates to a sorted Vec. Refill
                    // the heap (ascending inserts sift trivially) and stay.
                    for item in drained {
                        q.push(item);
                    }
                    return;
                }
                let gap = span / (drained.len() as u64 - 1).max(1);
                let width = gap.saturating_mul(3).clamp(1, u64::MAX / 4);
                let mut cal = CalendarQueue::with_geometry(drained.len(), width);
                cal.set_scan_position(SimTime(first));
                // Reverse order: each ascending-sorted item is its bucket's
                // minimum so the descending bucket insert is an append.
                for item in drained.into_iter().rev() {
                    cal.insert_raw(item);
                }
                self.inner = AdaptiveInner::Calendar(cal);
            }
            AdaptiveInner::Calendar(q) => {
                let mut heap = BinaryHeapQueue::new();
                // Ascending drain: every push is a new maximum, no sifting.
                while let Some(item) = q.pop() {
                    heap.push(item);
                }
                self.inner = AdaptiveInner::Heap(heap);
            }
        }
    }
}

impl<E> EventQueue<E> for AdaptiveQueue<E> {
    fn push(&mut self, item: Scheduled<E>) {
        match &mut self.inner {
            AdaptiveInner::Heap(q) => q.push(item),
            AdaptiveInner::Calendar(q) => q.push(item),
        }
        self.tick();
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        let item = match &mut self.inner {
            AdaptiveInner::Heap(q) => q.pop(),
            AdaptiveInner::Calendar(q) => q.pop(),
        };
        self.tick();
        item
    }

    fn peek_time(&self) -> Option<SimTime> {
        match &self.inner {
            AdaptiveInner::Heap(q) => q.peek_time(),
            AdaptiveInner::Calendar(q) => q.peek_time(),
        }
    }

    fn peek_key(&mut self) -> Option<u128> {
        match &mut self.inner {
            AdaptiveInner::Heap(q) => q.peek_key(),
            AdaptiveInner::Calendar(q) => q.peek_key(),
        }
    }

    fn len(&self) -> usize {
        match &self.inner {
            AdaptiveInner::Heap(q) => q.len(),
            AdaptiveInner::Calendar(q) => q.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(t: u64, seq: u64) -> Scheduled<u64> {
        Scheduled {
            time: SimTime(t),
            seq,
            event: seq,
        }
    }

    fn drain<Q: EventQueue<u64>>(q: &mut Q) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(s) = q.pop() {
            out.push((s.time.nanos(), s.seq));
        }
        out
    }

    #[test]
    fn heap_orders_by_time_then_seq() {
        let mut q = BinaryHeapQueue::new();
        q.push(sched(10, 2));
        q.push(sched(5, 3));
        q.push(sched(10, 1));
        q.push(sched(5, 0));
        assert_eq!(drain(&mut q), vec![(5, 0), (5, 3), (10, 1), (10, 2)]);
    }

    #[test]
    fn calendar_orders_by_time_then_seq() {
        let mut q = CalendarQueue::new();
        q.push(sched(10, 2));
        q.push(sched(5, 3));
        q.push(sched(10, 1));
        q.push(sched(5, 0));
        assert_eq!(drain(&mut q), vec![(5, 0), (5, 3), (10, 1), (10, 2)]);
    }

    #[test]
    fn calendar_handles_widely_spread_times() {
        let mut q = CalendarQueue::with_geometry(4, 10);
        for (i, t) in [1u64, 1_000_000, 3, 999, 500_000_000, 42].iter().enumerate() {
            q.push(sched(*t, i as u64));
        }
        let times: Vec<u64> = drain(&mut q).into_iter().map(|(t, _)| t).collect();
        assert_eq!(times, vec![1, 3, 42, 999, 1_000_000, 500_000_000]);
    }

    #[test]
    fn calendar_grows_and_shrinks() {
        let mut q = CalendarQueue::with_geometry(2, 100);
        for i in 0..1000u64 {
            q.push(sched(i * 7 % 997, i));
        }
        assert_eq!(q.len(), 1000);
        let mut prev = (0u64, 0u64);
        let mut first = true;
        while let Some(s) = q.pop() {
            let cur = (s.time.nanos(), s.seq);
            if !first {
                assert!(cur > prev, "out of order: {cur:?} after {prev:?}");
            }
            prev = cur;
            first = false;
        }
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = CalendarQueue::new();
        let mut seq = 0u64;
        let mut last_popped = 0u64;
        // Pops interleaved with pushes of future times only (as in a real
        // simulation, where events schedule later events).
        for round in 0..200u64 {
            for k in 0..5 {
                q.push(sched(last_popped + 1 + (round * 31 + k * 17) % 1000, seq));
                seq += 1;
            }
            for _ in 0..3 {
                if let Some(s) = q.pop() {
                    assert!(s.time.nanos() >= last_popped);
                    last_popped = s.time.nanos();
                }
            }
        }
        while let Some(s) = q.pop() {
            assert!(s.time.nanos() >= last_popped);
            last_popped = s.time.nanos();
        }
    }

    #[test]
    fn empty_queues_behave() {
        let mut h: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
        let mut c: CalendarQueue<u64> = CalendarQueue::new();
        assert!(h.pop().is_none());
        assert!(c.pop().is_none());
        assert_eq!(h.peek_time(), None);
        assert_eq!(c.peek_time(), None);
        assert!(h.is_empty() && c.is_empty());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        q.push(sched(9, 0));
        q.push(sched(3, 1));
        assert_eq!(q.peek_time(), Some(SimTime(3)));
        assert_eq!(q.pop().unwrap().time, SimTime(3));
        assert_eq!(q.peek_time(), Some(SimTime(9)));
    }
}
