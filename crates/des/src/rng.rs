//! Deterministic random-number support.
//!
//! Every stochastic element of an experiment draws from a [`DetRng`] seeded
//! from the experiment configuration, so any run is exactly reproducible.
//! Independent substreams (one per job, per node, ...) are derived by
//! hashing a label into the master seed — changing how many draws one
//! component makes can then never perturb another component's stream.
//!
//! The generator is an in-tree xoshiro256++ (Blackman & Vigna) whose
//! 256-bit state is expanded from the 64-bit master seed with SplitMix64,
//! the seeding procedure its authors recommend. Keeping the implementation
//! in-tree (no external crate) makes every byte of the stream part of this
//! repository's contract: the pinned-output tests below lock the exact
//! sequence a seed produces, so results can never drift with a dependency
//! upgrade — and the workspace builds with no registry access at all.

/// A deterministic RNG with labelled substream derivation.
///
/// ```
/// use parsched_des::rng::DetRng;
///
/// let root = DetRng::new(42);
/// let mut a = root.substream("arrivals");
/// let mut b = root.substream("arrivals");
/// assert_eq!(a.uniform01(), b.uniform01()); // same label, same stream
/// let mut c = root.substream("service");
/// assert_ne!(a.uniform01(), c.uniform01()); // labels are independent
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    seed: u64,
    state: [u64; 4],
}

impl DetRng {
    /// A generator for the given master seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64-expand the seed into the 256-bit xoshiro state. The
        // sequential SplitMix64 outputs are independent enough that no
        // all-zero or otherwise degenerate state can arise.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            splitmix64_mix(sm)
        };
        let state = [next(), next(), next(), next()];
        DetRng { seed, state }
    }

    /// The master seed this stream was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent substream for `label`.
    ///
    /// Uses SplitMix64 finalization over `seed ^ hash(label)`; the same
    /// `(seed, label)` pair always yields the same substream.
    pub fn substream(&self, label: &str) -> DetRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let derived = splitmix64(self.seed ^ h);
        DetRng::new(derived)
    }

    /// Derive an independent substream for an integer index.
    pub fn substream_idx(&self, label: &str, idx: u64) -> DetRng {
        let base = self.substream(label);
        DetRng::new(splitmix64(base.seed ^ idx.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// The next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` (53-bit resolution, the float-conversion
    /// convention the xoshiro authors recommend).
    pub fn uniform01(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform01()
    }

    /// Uniform integer in `[lo, hi)` (unbiased, Lemire's multiply-shift
    /// with rejection).
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "uniform_u64: empty range");
        let range = hi - lo;
        let mut x = self.next_u64();
        let mut m = (x as u128) * (range as u128);
        let mut low = m as u64;
        if low < range {
            let threshold = range.wrapping_neg() % range;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (range as u128);
                low = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Exponential with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential: mean must be positive");
        let u = 1.0 - self.uniform01(); // avoid ln(0)
        -mean * u.ln()
    }

    /// Erlang-k (sum of `k` exponentials), mean `mean`, CV `1/sqrt(k)`.
    pub fn erlang(&mut self, k: u32, mean: f64) -> f64 {
        assert!(k > 0, "erlang: k must be positive");
        let stage_mean = mean / k as f64;
        (0..k).map(|_| self.exponential(stage_mean)).sum()
    }

    /// Two-stage balanced hyperexponential with the given mean and
    /// coefficient of variation `cv >= 1`.
    ///
    /// Uses the standard balanced-means construction: with probability `p`
    /// draw from an exponential of rate `2p/mean`, else rate `2(1-p)/mean`,
    /// where `p = (1 + sqrt((cv^2-1)/(cv^2+1))) / 2`.
    pub fn hyperexponential(&mut self, mean: f64, cv: f64) -> f64 {
        assert!(cv >= 1.0, "hyperexponential: cv must be >= 1");
        let c2 = cv * cv;
        let p = 0.5 * (1.0 + ((c2 - 1.0) / (c2 + 1.0)).sqrt());
        let mean_branch = if self.uniform01() < p {
            mean / (2.0 * p)
        } else {
            mean / (2.0 * (1.0 - p))
        };
        self.exponential(mean_branch)
    }

    /// A sample with the given mean and coefficient of variation: degenerate
    /// (constant) for `cv == 0`, Erlang for `cv < 1`, exponential for
    /// `cv == 1`, hyperexponential for `cv > 1`.
    pub fn with_cv(&mut self, mean: f64, cv: f64) -> f64 {
        assert!(cv >= 0.0 && mean > 0.0);
        if cv == 0.0 {
            mean
        } else if cv < 1.0 {
            // Erlang-k has CV 1/sqrt(k); pick the k closest from above.
            let k = (1.0 / (cv * cv)).round().max(1.0) as u32;
            self.erlang(k, mean)
        } else if cv == 1.0 {
            self.exponential(mean)
        } else {
            self.hyperexponential(mean, cv)
        }
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.uniform_u64(0, i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// SplitMix64: one full step (advance + mix) of the stream seeded at `z`.
fn splitmix64(z: u64) -> u64 {
    splitmix64_mix(z.wrapping_add(0x9e37_79b9_7f4a_7c15))
}

/// The SplitMix64 output (finalization) function.
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Welford;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform01(), b.uniform01());
        }
    }

    /// Pin the exact raw outputs for a fixed seed: the stream is part of
    /// this repository's reproducibility contract. If this test ever fails,
    /// every recorded stochastic table (EXPERIMENTS.md A1/A10) is stale.
    #[test]
    fn pinned_first_outputs_for_seed_42() {
        let mut rng = DetRng::new(42);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                0xd076_4d4f_4476_689f,
                0x519e_4174_576f_3791,
                0xfbe0_7cfb_0c24_ed8c,
                0xb37d_9f60_0cd8_35b8,
            ],
            "xoshiro256++(splitmix64-seeded) stream for seed 42 drifted"
        );
    }

    /// Pin the first `uniform01` draws for the doc-example seed.
    #[test]
    fn pinned_uniform01_for_seed_7() {
        let mut rng = DetRng::new(7);
        let got: Vec<f64> = (0..3).map(|_| rng.uniform01()).collect();
        assert_eq!(
            got,
            vec![
                0.05536043647833311,
                0.17211585444811772,
                0.7175761283586594,
            ],
            "uniform01 stream for seed 7 drifted"
        );
    }

    #[test]
    fn substreams_are_stable_and_distinct() {
        let root = DetRng::new(7);
        let mut s1 = root.substream("jobs");
        let mut s1b = root.substream("jobs");
        let mut s2 = root.substream("nodes");
        let x1: Vec<f64> = (0..10).map(|_| s1.uniform01()).collect();
        let x1b: Vec<f64> = (0..10).map(|_| s1b.uniform01()).collect();
        let x2: Vec<f64> = (0..10).map(|_| s2.uniform01()).collect();
        assert_eq!(x1, x1b);
        assert_ne!(x1, x2);
    }

    #[test]
    fn indexed_substreams_distinct() {
        let root = DetRng::new(7);
        let a: f64 = root.substream_idx("job", 0).uniform01();
        let b: f64 = root.substream_idx("job", 1).uniform01();
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_u64_stays_in_range_and_covers_it() {
        let mut rng = DetRng::new(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.uniform_u64(10, 18);
            assert!((10..18).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some values never drawn: {seen:?}");
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = DetRng::new(1);
        let mut w = Welford::new();
        for _ in 0..20_000 {
            w.record(rng.exponential(5.0));
        }
        assert!((w.mean() - 5.0).abs() < 0.2, "mean {}", w.mean());
        assert!((w.cv() - 1.0).abs() < 0.1, "cv {}", w.cv());
    }

    #[test]
    fn erlang_reduces_cv() {
        let mut rng = DetRng::new(2);
        let mut w = Welford::new();
        for _ in 0..20_000 {
            w.record(rng.erlang(4, 8.0));
        }
        assert!((w.mean() - 8.0).abs() < 0.3, "mean {}", w.mean());
        assert!((w.cv() - 0.5).abs() < 0.1, "cv {}", w.cv());
    }

    #[test]
    fn hyperexponential_hits_target_cv() {
        let mut rng = DetRng::new(3);
        let mut w = Welford::new();
        for _ in 0..100_000 {
            w.record(rng.hyperexponential(10.0, 3.0));
        }
        assert!((w.mean() - 10.0).abs() < 0.5, "mean {}", w.mean());
        assert!((w.cv() - 3.0).abs() < 0.4, "cv {}", w.cv());
    }

    #[test]
    fn with_cv_dispatches() {
        let mut rng = DetRng::new(4);
        assert_eq!(rng.with_cv(5.0, 0.0), 5.0);
        let mut lo = Welford::new();
        let mut hi = Welford::new();
        for _ in 0..20_000 {
            lo.record(rng.with_cv(5.0, 0.25));
            hi.record(rng.with_cv(5.0, 2.0));
        }
        assert!(lo.cv() < 0.35, "low-cv stream cv {}", lo.cv());
        assert!(hi.cv() > 1.5, "high-cv stream cv {}", hi.cv());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(5);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "shuffle did nothing");
    }
}
