//! Differential property tests: the calendar queue must behave exactly like
//! the binary heap (the obviously-correct reference) under arbitrary
//! operation sequences, including the simulation-realistic constraint that
//! pushes never go behind the last popped time.

use parsched_des::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Cmd {
    /// Push an event `delta` beyond the current low-water mark.
    Push(u64),
    /// Pop the earliest event.
    Pop,
}

fn arb_cmds() -> impl Strategy<Value = Vec<Cmd>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0u64..5_000_000).prop_map(Cmd::Push),
            2 => Just(Cmd::Pop),
        ],
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn calendar_matches_heap_exactly(cmds in arb_cmds()) {
        let mut heap: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        let mut seq = 0u64;
        let mut low_water = 0u64; // last popped time: pushes are >= this
        for cmd in cmds {
            match cmd {
                Cmd::Push(delta) => {
                    let time = SimTime(low_water + delta);
                    seq += 1;
                    heap.push(Scheduled { time, seq, event: seq });
                    cal.push(Scheduled { time, seq, event: seq });
                }
                Cmd::Pop => {
                    let a = heap.pop();
                    let b = cal.pop();
                    match (a, b) {
                        (None, None) => {}
                        (Some(x), Some(y)) => {
                            prop_assert_eq!(x.time, y.time);
                            prop_assert_eq!(x.seq, y.seq);
                            prop_assert_eq!(x.event, y.event);
                            low_water = x.time.nanos();
                        }
                        (x, y) => prop_assert!(
                            false,
                            "backends disagree on emptiness: {x:?} vs {y:?}"
                        ),
                    }
                }
            }
            prop_assert_eq!(heap.len(), cal.len());
            prop_assert_eq!(heap.peek_time(), cal.peek_time());
        }
        // Drain both completely; orders must match to the end.
        loop {
            match (heap.pop(), cal.pop()) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    prop_assert_eq!((x.time, x.seq), (y.time, y.seq));
                }
                (x, y) => prop_assert!(
                    false,
                    "backends disagree while draining: {x:?} vs {y:?}"
                ),
            }
        }
    }

    /// The calendar queue also tolerates pushes *earlier* than the scan
    /// position (legal for a bare queue even though the engine forbids it).
    #[test]
    fn calendar_handles_unconstrained_times(
        times in proptest::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let mut heap: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        // Interleave: push half, pop a few, push the rest (some earlier).
        let half = times.len() / 2;
        for (i, &t) in times[..half].iter().enumerate() {
            let s = Scheduled { time: SimTime(t), seq: i as u64, event: i as u64 };
            heap.push(s.clone());
            cal.push(s);
        }
        for _ in 0..half / 3 {
            let a = heap.pop().map(|s| (s.time, s.seq));
            let b = cal.pop().map(|s| (s.time, s.seq));
            prop_assert_eq!(a, b);
        }
        for (i, &t) in times[half..].iter().enumerate() {
            let seq = (half + i) as u64;
            let s = Scheduled { time: SimTime(t), seq, event: seq };
            heap.push(s.clone());
            cal.push(s);
        }
        loop {
            let a = heap.pop().map(|s| (s.time, s.seq));
            let b = cal.pop().map(|s| (s.time, s.seq));
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
