//! Differential property tests: the calendar queue must behave exactly like
//! the binary heap (the obviously-correct reference) under arbitrary
//! operation sequences, including the simulation-realistic constraint that
//! pushes never go behind the last popped time.
//!
//! Ported from proptest to seeded [`DetRng`] loops so the suite runs with
//! no external dependencies; each iteration derives its own substream, so
//! a failure report's iteration index is enough to replay it exactly.

use parsched_des::prelude::*;
use parsched_des::rng::DetRng;

#[derive(Debug, Clone, Copy)]
enum Cmd {
    /// Push an event `delta` beyond the current low-water mark.
    Push(u64),
    /// Pop the earliest event.
    Pop,
}

/// A random command sequence: pushes outnumber pops 3:2, like the original
/// proptest weighting.
fn random_cmds(rng: &mut DetRng) -> Vec<Cmd> {
    let len = rng.uniform_u64(1, 400) as usize;
    (0..len)
        .map(|_| {
            if rng.uniform_u64(0, 5) < 3 {
                Cmd::Push(rng.uniform_u64(0, 5_000_000))
            } else {
                Cmd::Pop
            }
        })
        .collect()
}

#[test]
fn calendar_matches_heap_exactly() {
    let root = DetRng::new(0xD1FF);
    for case in 0..256u64 {
        let mut rng = root.substream_idx("calendar-vs-heap", case);
        let cmds = random_cmds(&mut rng);
        let mut heap: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        let mut seq = 0u64;
        let mut low_water = 0u64; // last popped time: pushes are >= this
        for cmd in &cmds {
            match *cmd {
                Cmd::Push(delta) => {
                    let time = SimTime(low_water + delta);
                    seq += 1;
                    heap.push(Scheduled { time, seq, event: seq });
                    cal.push(Scheduled { time, seq, event: seq });
                }
                Cmd::Pop => {
                    let a = heap.pop();
                    let b = cal.pop();
                    match (a, b) {
                        (None, None) => {}
                        (Some(x), Some(y)) => {
                            assert_eq!(x.time, y.time, "case {case}");
                            assert_eq!(x.seq, y.seq, "case {case}");
                            assert_eq!(x.event, y.event, "case {case}");
                            low_water = x.time.nanos();
                        }
                        (x, y) => panic!(
                            "case {case}: backends disagree on emptiness: {x:?} vs {y:?}"
                        ),
                    }
                }
            }
            assert_eq!(heap.len(), cal.len(), "case {case}");
            assert_eq!(heap.peek_time(), cal.peek_time(), "case {case}");
        }
        // Drain both completely; orders must match to the end.
        loop {
            match (heap.pop(), cal.pop()) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!((x.time, x.seq), (y.time, y.seq), "case {case}");
                }
                (x, y) => panic!(
                    "case {case}: backends disagree while draining: {x:?} vs {y:?}"
                ),
            }
        }
    }
}

/// Pop the next event that was never cancelled, discarding cancelled ones
/// (the lazy-invalidation idiom comparison-based queues are stuck with).
fn pop_live<Q: EventQueue<u64>>(
    q: &mut Q,
    cancelled: &std::collections::HashSet<u64>,
) -> Option<(SimTime, u64)> {
    loop {
        let s = q.pop()?;
        if !cancelled.contains(&s.seq) {
            return Some((s.time, s.seq));
        }
    }
}

/// Random schedule/cancel/pop interleavings must produce the identical
/// stream of live events from all three pending-set shapes: a binary heap
/// and a calendar queue (both emulating cancellation lazily, by discarding
/// popped corpses) and the timing wheel (cancelling eagerly by handle).
#[test]
fn cancel_interleavings_match_across_backends() {
    let root = DetRng::new(0xCC3);
    for case in 0..128u64 {
        let mut rng = root.substream_idx("cancel-differential", case);
        let len = rng.uniform_u64(1, 400) as usize;
        let mut heap: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        let mut wheel: TimerWheel<u64> = TimerWheel::new();
        let mut cancelled = std::collections::HashSet::new();
        // Timers still pending in the wheel, by (seq, handle).
        let mut live: Vec<(u64, TimerHandle)> = Vec::new();
        let mut seq = 0u64;
        let mut low_water = 0u64;
        for _ in 0..len {
            match rng.uniform_u64(0, 5) {
                0..=2 => {
                    let time = SimTime(low_water + rng.uniform_u64(0, 100_000_000));
                    seq += 1;
                    heap.push(Scheduled { time, seq, event: seq });
                    cal.push(Scheduled { time, seq, event: seq });
                    let h = wheel.insert(time, seq, seq);
                    live.push((seq, h));
                }
                3 => {
                    if !live.is_empty() {
                        let i = rng.uniform_u64(0, live.len() as u64) as usize;
                        let (s, h) = live.swap_remove(i);
                        assert!(wheel.cancel(h), "case {case}: live timer must cancel");
                        cancelled.insert(s);
                    }
                }
                _ => {
                    let w = wheel.pop_min().map(|s| (s.time, s.seq));
                    let a = pop_live(&mut heap, &cancelled);
                    let b = pop_live(&mut cal, &cancelled);
                    assert_eq!(w, a, "case {case}: wheel vs heap");
                    assert_eq!(a, b, "case {case}: heap vs calendar");
                    if let Some((t, s)) = w {
                        low_water = t.nanos();
                        live.retain(|&(ls, _)| ls != s);
                    }
                }
            }
            assert_eq!(wheel.len(), live.len(), "case {case}: wheel occupancy");
        }
        // Drain all three; the tails must agree exactly.
        loop {
            let w = wheel.pop_min().map(|s| (s.time, s.seq));
            let a = pop_live(&mut heap, &cancelled);
            let b = pop_live(&mut cal, &cancelled);
            assert_eq!(w, a, "case {case}: drain wheel vs heap");
            assert_eq!(a, b, "case {case}: drain heap vs calendar");
            if w.is_none() {
                break;
            }
        }
    }
}

/// The calendar queue also tolerates pushes *earlier* than the scan
/// position (legal for a bare queue even though the engine forbids it).
#[test]
fn calendar_handles_unconstrained_times() {
    let root = DetRng::new(0xCA1);
    for case in 0..256u64 {
        let mut rng = root.substream_idx("unconstrained", case);
        let len = rng.uniform_u64(1, 200) as usize;
        let times: Vec<u64> = (0..len).map(|_| rng.uniform_u64(0, 1_000_000)).collect();
        let mut heap: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        // Interleave: push half, pop a few, push the rest (some earlier).
        let half = times.len() / 2;
        for (i, &t) in times[..half].iter().enumerate() {
            let s = Scheduled { time: SimTime(t), seq: i as u64, event: i as u64 };
            heap.push(s.clone());
            cal.push(s);
        }
        for _ in 0..half / 3 {
            let a = heap.pop().map(|s| (s.time, s.seq));
            let b = cal.pop().map(|s| (s.time, s.seq));
            assert_eq!(a, b, "case {case}");
        }
        for (i, &t) in times[half..].iter().enumerate() {
            let seq = (half + i) as u64;
            let s = Scheduled { time: SimTime(t), seq, event: seq };
            heap.push(s.clone());
            cal.push(s);
        }
        loop {
            let a = heap.pop().map(|s| (s.time, s.seq));
            let b = cal.pop().map(|s| (s.time, s.seq));
            assert_eq!(a, b, "case {case}");
            if a.is_none() {
                break;
            }
        }
    }
}
