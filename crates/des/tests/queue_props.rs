//! Differential property tests: the calendar queue must behave exactly like
//! the binary heap (the obviously-correct reference) under arbitrary
//! operation sequences, including the simulation-realistic constraint that
//! pushes never go behind the last popped time.
//!
//! Ported from proptest to seeded [`DetRng`] loops so the suite runs with
//! no external dependencies; each iteration derives its own substream, so
//! a failure report's iteration index is enough to replay it exactly.
//!
//! The adaptive backend gets its own section at the bottom: its
//! heap↔calendar migrations are driven through phase-aligned operation
//! windows so the hysteresis (sustained-streak requirement, dead band
//! between the promote and demote thresholds) is pinned in both
//! directions, with every pop mirrored against the reference heap.

use parsched_des::prelude::*;
use parsched_des::queue::{ADAPT_CHECK_EVERY, ADAPT_DEMOTE_LEN, ADAPT_PROMOTE_LEN, ADAPT_STREAK};
use parsched_des::rng::DetRng;

#[derive(Debug, Clone, Copy)]
enum Cmd {
    /// Push an event `delta` beyond the current low-water mark.
    Push(u64),
    /// Pop the earliest event.
    Pop,
}

/// A random command sequence: pushes outnumber pops 3:2, like the original
/// proptest weighting.
fn random_cmds(rng: &mut DetRng) -> Vec<Cmd> {
    let len = rng.uniform_u64(1, 400) as usize;
    (0..len)
        .map(|_| {
            if rng.uniform_u64(0, 5) < 3 {
                Cmd::Push(rng.uniform_u64(0, 5_000_000))
            } else {
                Cmd::Pop
            }
        })
        .collect()
}

#[test]
fn calendar_matches_heap_exactly() {
    let root = DetRng::new(0xD1FF);
    for case in 0..256u64 {
        let mut rng = root.substream_idx("calendar-vs-heap", case);
        let cmds = random_cmds(&mut rng);
        let mut heap: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        let mut seq = 0u64;
        let mut low_water = 0u64; // last popped time: pushes are >= this
        for cmd in &cmds {
            match *cmd {
                Cmd::Push(delta) => {
                    let time = SimTime(low_water + delta);
                    seq += 1;
                    heap.push(Scheduled { time, seq, event: seq });
                    cal.push(Scheduled { time, seq, event: seq });
                }
                Cmd::Pop => {
                    let a = heap.pop();
                    let b = cal.pop();
                    match (a, b) {
                        (None, None) => {}
                        (Some(x), Some(y)) => {
                            assert_eq!(x.time, y.time, "case {case}");
                            assert_eq!(x.seq, y.seq, "case {case}");
                            assert_eq!(x.event, y.event, "case {case}");
                            low_water = x.time.nanos();
                        }
                        (x, y) => panic!(
                            "case {case}: backends disagree on emptiness: {x:?} vs {y:?}"
                        ),
                    }
                }
            }
            assert_eq!(heap.len(), cal.len(), "case {case}");
            assert_eq!(heap.peek_time(), cal.peek_time(), "case {case}");
        }
        // Drain both completely; orders must match to the end.
        loop {
            match (heap.pop(), cal.pop()) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!((x.time, x.seq), (y.time, y.seq), "case {case}");
                }
                (x, y) => panic!(
                    "case {case}: backends disagree while draining: {x:?} vs {y:?}"
                ),
            }
        }
    }
}

/// Pop the next event that was never cancelled, discarding cancelled ones
/// (the lazy-invalidation idiom comparison-based queues are stuck with).
fn pop_live<Q: EventQueue<u64>>(
    q: &mut Q,
    cancelled: &std::collections::HashSet<u64>,
) -> Option<(SimTime, u64)> {
    loop {
        let s = q.pop()?;
        if !cancelled.contains(&s.seq) {
            return Some((s.time, s.seq));
        }
    }
}

/// Random schedule/cancel/pop interleavings must produce the identical
/// stream of live events from all three pending-set shapes: a binary heap
/// and a calendar queue (both emulating cancellation lazily, by discarding
/// popped corpses) and the timing wheel (cancelling eagerly by handle).
#[test]
fn cancel_interleavings_match_across_backends() {
    let root = DetRng::new(0xCC3);
    for case in 0..128u64 {
        let mut rng = root.substream_idx("cancel-differential", case);
        let len = rng.uniform_u64(1, 400) as usize;
        let mut heap: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        let mut wheel: TimerWheel<u64> = TimerWheel::new();
        let mut cancelled = std::collections::HashSet::new();
        // Timers still pending in the wheel, by (seq, handle).
        let mut live: Vec<(u64, TimerHandle)> = Vec::new();
        let mut seq = 0u64;
        let mut low_water = 0u64;
        for _ in 0..len {
            match rng.uniform_u64(0, 5) {
                0..=2 => {
                    let time = SimTime(low_water + rng.uniform_u64(0, 100_000_000));
                    seq += 1;
                    heap.push(Scheduled { time, seq, event: seq });
                    cal.push(Scheduled { time, seq, event: seq });
                    let h = wheel.insert(time, seq, seq);
                    live.push((seq, h));
                }
                3 => {
                    if !live.is_empty() {
                        let i = rng.uniform_u64(0, live.len() as u64) as usize;
                        let (s, h) = live.swap_remove(i);
                        assert!(wheel.cancel(h), "case {case}: live timer must cancel");
                        cancelled.insert(s);
                    }
                }
                _ => {
                    let w = wheel.pop_min().map(|s| (s.time, s.seq));
                    let a = pop_live(&mut heap, &cancelled);
                    let b = pop_live(&mut cal, &cancelled);
                    assert_eq!(w, a, "case {case}: wheel vs heap");
                    assert_eq!(a, b, "case {case}: heap vs calendar");
                    if let Some((t, s)) = w {
                        low_water = t.nanos();
                        live.retain(|&(ls, _)| ls != s);
                    }
                }
            }
            assert_eq!(wheel.len(), live.len(), "case {case}: wheel occupancy");
        }
        // Drain all three; the tails must agree exactly.
        loop {
            let w = wheel.pop_min().map(|s| (s.time, s.seq));
            let a = pop_live(&mut heap, &cancelled);
            let b = pop_live(&mut cal, &cancelled);
            assert_eq!(w, a, "case {case}: drain wheel vs heap");
            assert_eq!(a, b, "case {case}: drain heap vs calendar");
            if w.is_none() {
                break;
            }
        }
    }
}

/// The calendar queue also tolerates pushes *earlier* than the scan
/// position (legal for a bare queue even though the engine forbids it).
#[test]
fn calendar_handles_unconstrained_times() {
    let root = DetRng::new(0xCA1);
    for case in 0..256u64 {
        let mut rng = root.substream_idx("unconstrained", case);
        let len = rng.uniform_u64(1, 200) as usize;
        let times: Vec<u64> = (0..len).map(|_| rng.uniform_u64(0, 1_000_000)).collect();
        let mut heap: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        // Interleave: push half, pop a few, push the rest (some earlier).
        let half = times.len() / 2;
        for (i, &t) in times[..half].iter().enumerate() {
            let s = Scheduled { time: SimTime(t), seq: i as u64, event: i as u64 };
            heap.push(s.clone());
            cal.push(s);
        }
        for _ in 0..half / 3 {
            let a = heap.pop().map(|s| (s.time, s.seq));
            let b = cal.pop().map(|s| (s.time, s.seq));
            assert_eq!(a, b, "case {case}");
        }
        for (i, &t) in times[half..].iter().enumerate() {
            let seq = (half + i) as u64;
            let s = Scheduled { time: SimTime(t), seq, event: seq };
            heap.push(s.clone());
            cal.push(s);
        }
        loop {
            let a = heap.pop().map(|s| (s.time, s.seq));
            let b = cal.pop().map(|s| (s.time, s.seq));
            assert_eq!(a, b, "case {case}");
            if a.is_none() {
                break;
            }
        }
    }
}

/// The [`AdaptiveQueue`] under test, mirrored op-for-op against the
/// reference heap. Times strictly increase, so calendar promotion always
/// sees nonzero dispersion and every `(time, seq)` key is unique.
struct Mirrored {
    adaptive: AdaptiveQueue<u64>,
    reference: BinaryHeapQueue<u64>,
    seq: u64,
    clock: u64,
}

impl Mirrored {
    fn new() -> Self {
        Mirrored {
            adaptive: AdaptiveQueue::new(),
            reference: BinaryHeapQueue::new(),
            seq: 0,
            clock: 0,
        }
    }

    fn push(&mut self) {
        self.clock += 7;
        self.seq += 1;
        let s = Scheduled {
            time: SimTime(self.clock),
            seq: self.seq,
            event: self.seq,
        };
        self.adaptive.push(s.clone());
        self.reference.push(s);
    }

    fn pop(&mut self) {
        let a = self.adaptive.pop().map(|s| (s.time, s.seq, s.event));
        let b = self.reference.pop().map(|s| (s.time, s.seq, s.event));
        assert_eq!(a, b, "adaptive backend diverged from the reference heap");
    }

    /// One push + one pop: two operations, population unchanged.
    fn pair(&mut self) {
        self.push();
        self.pop();
    }

    fn len(&self) -> usize {
        assert_eq!(self.adaptive.len(), self.reference.len());
        self.adaptive.len()
    }
}

/// Promote on sustained high population, hold through the dead band, demote
/// on sustained low population, refuse to re-promote from the dead band —
/// the full hysteresis loop, with exactness checked on every pop.
#[test]
fn adaptive_migrates_both_directions_with_hysteresis() {
    let window = ADAPT_CHECK_EVERY as usize;
    let sustain = (ADAPT_STREAK as usize + 1) * window;

    let mut m = Mirrored::new();
    for _ in 0..ADAPT_PROMOTE_LEN + 476 {
        m.push();
    }
    // Sustained high population promotes heap -> calendar.
    for _ in 0..sustain / 2 {
        m.pair();
    }
    assert!(m.adaptive.is_calendar(), "sustained high load must promote");

    // Dead band (demote < len < promote): the calendar must persist.
    while m.len() > (ADAPT_PROMOTE_LEN + ADAPT_DEMOTE_LEN) / 2 {
        m.pop();
    }
    for _ in 0..sustain / 2 {
        m.pair();
    }
    assert!(
        m.adaptive.is_calendar(),
        "population inside the dead band must not demote"
    );

    // Sustained low population demotes calendar -> heap.
    while m.len() > ADAPT_DEMOTE_LEN - 56 {
        m.pop();
    }
    for _ in 0..sustain / 2 {
        m.pair();
    }
    assert!(!m.adaptive.is_calendar(), "sustained low load must demote");

    // Dead band from the other side: the heap must persist.
    while m.len() < (ADAPT_PROMOTE_LEN + ADAPT_DEMOTE_LEN) / 2 {
        m.push();
    }
    for _ in 0..sustain / 2 {
        m.pair();
    }
    assert!(
        !m.adaptive.is_calendar(),
        "population inside the dead band must not promote"
    );

    // Both backends drain to identical tails after two migrations.
    while m.len() > 0 {
        m.pop();
    }
    m.pop(); // both empty
}

/// A population that keeps dipping below the promote threshold right when
/// the queue samples it never accumulates the required streak, no matter
/// how much total time it spends above: migration needs *consecutive*
/// agreeing checks. Phase-aligned: population checks fire on every
/// `ADAPT_CHECK_EVERY`-th operation, and this test counts operations so
/// each dip lands exactly on a check.
#[test]
fn adaptive_promotion_requires_consecutive_checks() {
    let window = ADAPT_CHECK_EVERY as usize; // operations between checks
    let mut m = Mirrored::new();

    // Growth: checks during this see a sub-threshold population until the
    // very last one, which starts the streak at 1 (len == ADAPT_PROMOTE_LEN
    // exactly at the check). Requires window | ADAPT_PROMOTE_LEN.
    assert_eq!(ADAPT_PROMOTE_LEN % window, 0);
    for _ in 0..ADAPT_PROMOTE_LEN {
        m.push();
    }

    for round in 0..2 {
        // Two whole windows at the threshold: streak grows to 3.
        for _ in 0..window {
            m.pair();
        }
        assert!(!m.adaptive.is_calendar(), "round {round}: streak 2 too early");
        // Third window ends with two pops, so the check that would have
        // completed the streak samples len below threshold and resets it.
        for _ in 0..(window - 2) / 2 {
            m.pair();
        }
        m.pop();
        m.pop();
        assert!(
            !m.adaptive.is_calendar(),
            "round {round}: a dip at the sampling instant must reset the streak"
        );
        // Recovery window: restore the population; its check restarts the
        // streak at 1, same state as after growth.
        m.push();
        m.push();
        for _ in 0..(window - 2) / 2 {
            m.pair();
        }
    }

    // Control: the same population *without* dips promotes after
    // ADAPT_STREAK consecutive checks (streak is at 1 from the recovery
    // window's check).
    for _ in 0..(ADAPT_STREAK as usize - 1) * window / 2 {
        m.pair();
    }
    assert!(
        m.adaptive.is_calendar(),
        "uninterrupted streak must promote"
    );
}
