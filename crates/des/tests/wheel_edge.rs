//! Edge-case tests for the timing wheel *as driven through the engine*:
//! epoch rollover at level boundaries, handle staleness across
//! fire/cancel/reuse, and the interaction between the wheel, the backend
//! queue, and the schedule-at-now bypass. The wheel's unit tests exercise
//! it in isolation; these exercise the three-tier merge the engine
//! actually runs.

use parsched_des::prelude::*;

/// Level-0 epoch width: slot field covers bits 20..28, so the epoch (the
/// bits above) rolls every 2^28 ns (~268 ms).
const L0_EPOCH: u64 = 1 << 28;
/// Level-1 epoch width (~68.7 s).
const L1_EPOCH: u64 = 1 << 36;
/// Beyond every level's span (~4.9 h): the overflow list.
const PAST_WHEEL: u64 = 1 << 45;

/// Fires a batch of timers handed to it at event 0 and records the order
/// in which they come back.
struct TimerBatch {
    at: Vec<u64>,
    fired: Vec<u64>,
}

impl Model for TimerBatch {
    type Event = u64;
    fn handle(&mut self, now: SimTime, ev: u64, sched: &mut impl EventScheduler<u64>) {
        if ev == u64::MAX {
            for &t in &self.at {
                sched.schedule_timer_at(SimTime(t), t);
            }
        } else {
            assert_eq!(now.nanos(), ev, "timer fired at the wrong instant");
            self.fired.push(ev);
        }
    }
}

fn run_batch(at: Vec<u64>) -> Vec<u64> {
    let mut model = TimerBatch {
        at,
        fired: Vec::new(),
    };
    let mut engine = Engine::new(QueueKind::BinaryHeap);
    engine.seed(SimTime::ZERO, u64::MAX);
    assert_eq!(engine.run(&mut model), RunOutcome::Drained);
    model.fired
}

#[test]
fn timers_straddling_level_epoch_boundaries_fire_in_time_order() {
    // Two timers on each side of the level-0 epoch boundary, inserted in
    // an order that forces the epoch rule to push mismatched entries up a
    // level rather than aliasing them into the same slot window.
    let at = vec![
        L0_EPOCH + 5,
        L0_EPOCH - 5,
        2 * L0_EPOCH + 1,
        L0_EPOCH - 1,
        L0_EPOCH,
    ];
    let mut sorted = at.clone();
    sorted.sort_unstable();
    assert_eq!(run_batch(at), sorted);
}

#[test]
fn timers_straddling_level1_and_overflow_fire_in_time_order() {
    let at = vec![
        PAST_WHEEL + 3, // overflow list
        L1_EPOCH + 9,   // level 1 epoch 1
        L1_EPOCH - 9,   // level 1 epoch 0 (level 0 already tenanted)
        7,              // level 0
        PAST_WHEEL - 1, // level 2
    ];
    let mut sorted = at.clone();
    sorted.sort_unstable();
    assert_eq!(run_batch(at), sorted);
}

#[test]
fn epoch_rollover_after_drain_retenants_cleanly() {
    // The wheel's level-0 population drains completely inside epoch 0;
    // timers set afterwards live in epoch 1 and reuse the same slots.
    struct Rollover {
        fired: Vec<u64>,
    }
    impl Model for Rollover {
        type Event = u64;
        fn handle(&mut self, now: SimTime, ev: u64, sched: &mut impl EventScheduler<u64>) {
            self.fired.push(now.nanos());
            if ev == 0 {
                // Re-tenant the level across the epoch boundary, slots
                // *below* the ones just vacated.
                sched.schedule_timer_at(SimTime(L0_EPOCH + 10), 1);
                sched.schedule_timer_at(SimTime(L0_EPOCH + 5), 1);
            }
        }
    }
    let mut model = Rollover { fired: Vec::new() };
    let mut engine = Engine::new(QueueKind::BinaryHeap);
    engine.seed(SimTime(L0_EPOCH - 100), 1);
    engine.seed(SimTime(L0_EPOCH - 50), 0);
    assert_eq!(engine.run(&mut model), RunOutcome::Drained);
    assert_eq!(
        model.fired,
        vec![L0_EPOCH - 100, L0_EPOCH - 50, L0_EPOCH + 5, L0_EPOCH + 10]
    );
    assert_eq!(engine.pending(), 0);
}

#[test]
fn stale_handles_stay_dead_across_fire_and_reuse() {
    // A handle outlives its timer (fired or cancelled); cancelling it
    // later must fail and must not touch a newer timer in the same slot.
    #[derive(Default)]
    struct Stale {
        first: Option<TimerHandle>,
        cancelled_early: Option<TimerHandle>,
        fired: Vec<u64>,
        stale_results: Vec<bool>,
    }
    impl Model for Stale {
        type Event = u64;
        fn handle(&mut self, now: SimTime, ev: u64, sched: &mut impl EventScheduler<u64>) {
            match ev {
                0 => {
                    self.first = Some(sched.schedule_timer_at(SimTime(1000), 1));
                    let doomed = sched.schedule_timer_at(SimTime(2000), 9);
                    assert!(sched.cancel_timer(doomed), "live timer cancels");
                    self.cancelled_early = Some(doomed);
                    sched.schedule_at(SimTime(3000), 2);
                }
                1 => self.fired.push(now.nanos()),
                2 => {
                    // Both handles are now stale (one fired, one cancelled).
                    // Re-tenant time 1000's slot region before probing.
                    sched.schedule_timer_at(SimTime(4000), 1);
                    self.stale_results
                        .push(sched.cancel_timer(self.first.unwrap()));
                    self.stale_results
                        .push(sched.cancel_timer(self.cancelled_early.unwrap()));
                    assert_eq!(sched.timer_count(), 1, "new tenant untouched");
                }
                _ => unreachable!(),
            }
        }
    }
    let mut model = Stale::default();
    let mut engine = Engine::new(QueueKind::Adaptive);
    engine.seed(SimTime::ZERO, 0);
    assert_eq!(engine.run(&mut model), RunOutcome::Drained);
    assert_eq!(model.stale_results, vec![false, false]);
    assert_eq!(model.fired, vec![1000, 4000]);
}

#[test]
fn schedule_at_now_merges_in_seq_order_across_all_tiers() {
    // At one instant, events land in all three tiers: the now-queue
    // (schedule_at(now) bypass), the wheel (schedule_timer_at(now)), and
    // the backend queue (a previously scheduled event at the same time).
    // Delivery must follow creation (seq) order exactly.
    struct Mixer {
        order: Vec<u64>,
    }
    impl Model for Mixer {
        type Event = u64;
        fn handle(&mut self, now: SimTime, ev: u64, sched: &mut impl EventScheduler<u64>) {
            self.order.push(ev);
            if ev == 0 {
                assert_eq!(now, SimTime(100));
                sched.schedule_at(SimTime(100), 10); // now-queue, seq 2
                sched.schedule_timer_at(SimTime(100), 11); // wheel, seq 3
                sched.schedule_at(SimTime(100), 12); // now-queue, seq 4
                sched.schedule_at(SimTime(200), 13); // backend, seq 5
            }
        }
    }
    let mut model = Mixer { order: Vec::new() };
    let mut engine = Engine::new(QueueKind::BinaryHeap);
    engine.seed(SimTime(100), 0); // seq 0
    engine.seed(SimTime(100), 1); // seq 1: backend event at the same time
    assert_eq!(engine.run(&mut model), RunOutcome::Drained);
    // Seq order at t=100: the seeded 1 (seq 1) precedes the bypassed 10
    // (seq 2) even though the now-queue is the cheapest tier to peek.
    assert_eq!(model.order, vec![0, 1, 10, 11, 12, 13]);
}

#[test]
fn zero_delay_schedule_is_the_now_queue_bypass() {
    // schedule(0, ..) and schedule_now(..) route through schedule_at(now)
    // and must behave identically to it: same-time FIFO, no backend churn.
    struct Zero {
        order: Vec<u64>,
    }
    impl Model for Zero {
        type Event = u64;
        fn handle(&mut self, _now: SimTime, ev: u64, sched: &mut impl EventScheduler<u64>) {
            self.order.push(ev);
            if ev == 0 {
                sched.schedule_now(1);
                sched.schedule(SimDuration::ZERO, 2);
                sched.schedule_now(3);
            }
        }
    }
    let mut model = Zero { order: Vec::new() };
    let mut engine = Engine::new(QueueKind::Calendar);
    engine.seed(SimTime(50), 0);
    assert_eq!(engine.run(&mut model), RunOutcome::Drained);
    assert_eq!(model.order, vec![0, 1, 2, 3]);
    assert_eq!(engine.now(), SimTime(50), "zero-delay events do not advance time");
}
