//! # parsched-arrivals
//!
//! Open-system workload generation for the scheduling testbed: *when* jobs
//! arrive ([`ArrivalProcess`]) and *how much* service they demand
//! ([`ServiceDemand`]).
//!
//! Everything here draws from the in-tree deterministic RNG
//! ([`parsched_des::rng::DetRng`]), so a `(seed, configuration)` pair always
//! reproduces the identical arrival stream and demand sequence — the same
//! bit-identical-replay contract the rest of the workspace keeps. The
//! samplers are pure generators: they know nothing about the machine or the
//! driver. `parsched-core`'s `run_open_system` turns their output into
//! scheduled arrival events against the live `Driver`.
//!
//! ## Offered load
//!
//! The conventional open-system knob is the offered load
//! `ρ = λ · E[S] / P` — arrival rate times mean sequential demand over the
//! processor count. [`mean_interarrival_for_load`] inverts it: given a
//! demand sampler's mean and a target ρ, it returns the mean interarrival
//! time an arrival process must use. ρ → 1 drives the system to saturation.

#![warn(missing_docs)]

use parsched_des::rng::DetRng;
use parsched_des::{SimDuration, SimTime};

/// A stream of job arrival instants.
///
/// Implementations must yield *nondecreasing* instants (asserted by the
/// property tests for every implementation in this crate): each call
/// returns the next arrival, or `None` once the stream is exhausted (only
/// the trace-driven process is finite).
pub trait ArrivalProcess {
    /// The next arrival instant, nondecreasing across calls; `None` when
    /// the stream has ended.
    fn next_arrival(&mut self) -> Option<SimTime>;

    /// Draw up to `count` arrivals into a vector (shorter if the stream
    /// ends first).
    fn take_arrivals(&mut self, count: usize) -> Vec<SimTime> {
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            match self.next_arrival() {
                Some(t) => out.push(t),
                None => break,
            }
        }
        out
    }
}

/// Seeded Poisson arrivals: i.i.d. exponential interarrival gaps.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rng: DetRng,
    mean_interarrival: SimDuration,
    next: SimTime,
}

impl PoissonArrivals {
    /// A Poisson stream with the given mean interarrival time, drawing
    /// from `rng` (pass a dedicated substream so other draws cannot
    /// perturb the arrivals).
    pub fn new(mean_interarrival: SimDuration, rng: DetRng) -> Self {
        assert!(
            mean_interarrival > SimDuration::ZERO,
            "mean interarrival must be positive"
        );
        PoissonArrivals {
            rng,
            mean_interarrival,
            next: SimTime::ZERO,
        }
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn next_arrival(&mut self) -> Option<SimTime> {
        let gap = self.rng.exponential(self.mean_interarrival.as_secs_f64());
        self.next += SimDuration::from_secs_f64(gap);
        Some(self.next)
    }
}

/// Deterministic-rate arrivals: one job every `period`, exactly.
#[derive(Debug, Clone)]
pub struct DeterministicArrivals {
    period: SimDuration,
    next: SimTime,
}

impl DeterministicArrivals {
    /// An arrival every `period`, the first at `period` (not t = 0, so an
    /// open run never races the warm-up boundary).
    pub fn new(period: SimDuration) -> Self {
        assert!(period > SimDuration::ZERO, "period must be positive");
        DeterministicArrivals {
            period,
            next: SimTime::ZERO,
        }
    }
}

impl ArrivalProcess for DeterministicArrivals {
    fn next_arrival(&mut self) -> Option<SimTime> {
        self.next += self.period;
        Some(self.next)
    }
}

/// Trace-driven arrivals: replay a recorded instant sequence.
#[derive(Debug, Clone)]
pub struct TraceArrivals {
    times: Vec<SimTime>,
    at: usize,
}

impl TraceArrivals {
    /// Replay `times` in order.
    ///
    /// # Panics
    /// Panics if the trace is not nondecreasing — a decreasing trace would
    /// silently violate the [`ArrivalProcess`] contract.
    pub fn new(times: Vec<SimTime>) -> Self {
        for w in times.windows(2) {
            assert!(w[0] <= w[1], "trace arrivals must be nondecreasing");
        }
        TraceArrivals { times, at: 0 }
    }
}

impl ArrivalProcess for TraceArrivals {
    fn next_arrival(&mut self) -> Option<SimTime> {
        let t = self.times.get(self.at).copied();
        if t.is_some() {
            self.at += 1;
        }
        t
    }
}

/// A per-job sequential service-demand sampler.
pub trait ServiceDemand {
    /// Draw the next job's total sequential demand.
    fn sample(&mut self) -> SimDuration;

    /// The distribution's mean (analytic, not empirical) — used to derive
    /// arrival rates for a target offered load.
    fn mean(&self) -> SimDuration;
}

/// Exponential service demand (CV 1, the queueing-theory baseline).
#[derive(Debug, Clone)]
pub struct ExponentialDemand {
    rng: DetRng,
    mean: SimDuration,
}

impl ExponentialDemand {
    /// Exponential demand with the given mean.
    pub fn new(mean: SimDuration, rng: DetRng) -> Self {
        assert!(mean > SimDuration::ZERO, "mean demand must be positive");
        ExponentialDemand { rng, mean }
    }
}

impl ServiceDemand for ExponentialDemand {
    fn sample(&mut self) -> SimDuration {
        SimDuration::from_secs_f64(self.rng.exponential(self.mean.as_secs_f64()))
    }

    fn mean(&self) -> SimDuration {
        self.mean
    }
}

/// Bounded Pareto service demand: the heavy-tailed workhorse of the
/// open-system literature (Harchol-Balter's task-assignment studies),
/// truncated to `[lo, hi]` so every draw is finite and the mean exists for
/// any shape `alpha`.
///
/// Sampled by inverting the CDF
/// `F(x) = (1 − (L/x)^α) / (1 − (L/H)^α)` on a `uniform01` draw — one
/// uniform per sample, no rejection, so the stream position is a pure
/// function of the sample count (replay-friendly).
#[derive(Debug, Clone)]
pub struct BoundedParetoDemand {
    rng: DetRng,
    alpha: f64,
    lo: SimDuration,
    hi: SimDuration,
    mean: SimDuration,
}

impl BoundedParetoDemand {
    /// Bounded Pareto with shape `alpha` on `[lo, hi]`.
    ///
    /// # Panics
    /// Panics unless `0 < lo < hi` and `alpha > 0`.
    pub fn new(alpha: f64, lo: SimDuration, hi: SimDuration, rng: DetRng) -> Self {
        assert!(alpha > 0.0, "bounded Pareto: alpha must be positive");
        assert!(
            lo > SimDuration::ZERO && lo < hi,
            "bounded Pareto: need 0 < lo < hi"
        );
        let l = lo.as_secs_f64();
        let h = hi.as_secs_f64();
        // Analytic mean of the truncated distribution; the alpha == 1 case
        // is the usual logarithmic limit.
        let mean = if (alpha - 1.0).abs() < 1e-9 {
            (l * h / (h - l)) * (h / l).ln()
        } else {
            let la = l.powf(alpha);
            (la / (1.0 - (l / h).powf(alpha)))
                * (alpha / (alpha - 1.0))
                * (l.powf(1.0 - alpha) - h.powf(1.0 - alpha))
        };
        BoundedParetoDemand {
            rng,
            alpha,
            lo,
            hi,
            mean: SimDuration::from_secs_f64(mean),
        }
    }

    /// The configured lower bound.
    pub fn lo(&self) -> SimDuration {
        self.lo
    }

    /// The configured upper bound.
    pub fn hi(&self) -> SimDuration {
        self.hi
    }
}

impl ServiceDemand for BoundedParetoDemand {
    fn sample(&mut self) -> SimDuration {
        let u = self.rng.uniform01();
        let l = self.lo.as_secs_f64();
        let h = self.hi.as_secs_f64();
        let ratio = (l / h).powf(self.alpha);
        // Inverse CDF; u in [0,1) keeps the denominator positive.
        let x = l / (1.0 - u * (1.0 - ratio)).powf(1.0 / self.alpha);
        SimDuration::from_secs_f64(x.clamp(l, h))
    }

    fn mean(&self) -> SimDuration {
        self.mean
    }
}

/// Two-stage balanced hyperexponential demand (CV ≥ 1): the paper's own
/// §5.2 high-variance ablation as an open-system generator.
#[derive(Debug, Clone)]
pub struct HyperexponentialDemand {
    rng: DetRng,
    mean: SimDuration,
    cv: f64,
}

impl HyperexponentialDemand {
    /// Hyperexponential demand with the given mean and coefficient of
    /// variation (`cv >= 1`).
    pub fn new(mean: SimDuration, cv: f64, rng: DetRng) -> Self {
        assert!(mean > SimDuration::ZERO, "mean demand must be positive");
        assert!(cv >= 1.0, "hyperexponential: cv must be >= 1");
        HyperexponentialDemand { rng, mean, cv }
    }
}

impl ServiceDemand for HyperexponentialDemand {
    fn sample(&mut self) -> SimDuration {
        SimDuration::from_secs_f64(
            self.rng.hyperexponential(self.mean.as_secs_f64(), self.cv),
        )
    }

    fn mean(&self) -> SimDuration {
        self.mean
    }
}

/// The mean interarrival time that produces offered load `rho` on
/// `processors` processors for jobs of mean sequential demand `mean_demand`:
/// `E[A] = E[S] / (ρ · P)`.
///
/// ```
/// use parsched_arrivals::mean_interarrival_for_load;
/// use parsched_des::SimDuration;
///
/// // 16 processors, 2 s mean demand, ρ = 0.5 → one arrival every 250 ms.
/// let a = mean_interarrival_for_load(0.5, SimDuration::from_secs(2), 16);
/// assert_eq!(a, SimDuration::from_millis(250));
/// ```
pub fn mean_interarrival_for_load(
    rho: f64,
    mean_demand: SimDuration,
    processors: usize,
) -> SimDuration {
    assert!(rho > 0.0, "offered load must be positive");
    assert!(processors > 0, "need at least one processor");
    SimDuration::from_secs_f64(mean_demand.as_secs_f64() / (rho * processors as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_des::Welford;

    fn rng(label: &str) -> DetRng {
        DetRng::new(0xA221).substream(label)
    }

    /// Every arrival process yields nondecreasing instants, from the first
    /// draw on.
    #[test]
    fn arrival_streams_are_monotone() {
        let mut streams: Vec<(&str, Box<dyn ArrivalProcess>)> = vec![
            (
                "poisson",
                Box::new(PoissonArrivals::new(SimDuration::from_millis(10), rng("p"))),
            ),
            (
                "deterministic",
                Box::new(DeterministicArrivals::new(SimDuration::from_millis(7))),
            ),
            (
                "trace",
                Box::new(TraceArrivals::new(
                    (0..500).map(|i| SimTime(i * 100 + i * 31 % 50)).collect(),
                )),
            ),
        ];
        for (name, s) in &mut streams {
            let arr = s.take_arrivals(400);
            assert!(!arr.is_empty(), "{name} produced nothing");
            for w in arr.windows(2) {
                assert!(w[0] <= w[1], "{name} went backwards: {:?} -> {:?}", w[0], w[1]);
            }
        }
    }

    /// Same seed → bit-identical stream, for arrivals and demands alike.
    #[test]
    fn seeded_streams_replay_identically() {
        let mk_arr = || PoissonArrivals::new(SimDuration::from_millis(5), rng("det"));
        assert_eq!(mk_arr().take_arrivals(200), mk_arr().take_arrivals(200));

        let mk_exp = || ExponentialDemand::new(SimDuration::from_secs(1), rng("e"));
        let mk_par = || {
            BoundedParetoDemand::new(
                1.5,
                SimDuration::from_millis(10),
                SimDuration::from_secs(100),
                rng("bp"),
            )
        };
        let mk_hyp = || HyperexponentialDemand::new(SimDuration::from_secs(1), 3.0, rng("h"));
        let draw = |mut s: Box<dyn ServiceDemand>| -> Vec<SimDuration> {
            (0..200).map(|_| s.sample()).collect()
        };
        assert_eq!(draw(Box::new(mk_exp())), draw(Box::new(mk_exp())));
        assert_eq!(draw(Box::new(mk_par())), draw(Box::new(mk_par())));
        assert_eq!(draw(Box::new(mk_hyp())), draw(Box::new(mk_hyp())));
    }

    /// Every bounded-Pareto draw respects the configured bounds.
    #[test]
    fn bounded_pareto_respects_bounds() {
        let lo = SimDuration::from_millis(2);
        let hi = SimDuration::from_secs(50);
        let mut s = BoundedParetoDemand::new(1.1, lo, hi, rng("bounds"));
        for _ in 0..20_000 {
            let x = s.sample();
            assert!(x >= lo && x <= hi, "out of bounds: {x}");
        }
    }

    /// Empirical means track the analytic means the samplers advertise.
    #[test]
    fn empirical_means_match_configured_means() {
        let cases: Vec<(&str, Box<dyn ServiceDemand>, f64)> = vec![
            (
                "exponential",
                Box::new(ExponentialDemand::new(SimDuration::from_secs(2), rng("me"))),
                0.05,
            ),
            (
                "hyperexponential",
                Box::new(HyperexponentialDemand::new(
                    SimDuration::from_secs(2),
                    2.0,
                    rng("mh"),
                )),
                0.10,
            ),
            (
                // Shape > 2 keeps the sample variance small enough for a
                // tight empirical check; heavier tails are exercised by the
                // bounds test above.
                "bounded-pareto",
                Box::new(BoundedParetoDemand::new(
                    2.5,
                    SimDuration::from_millis(500),
                    SimDuration::from_secs(200),
                    rng("mp"),
                )),
                0.10,
            ),
        ];
        for (name, mut s, tol) in cases {
            let mean = s.mean().as_secs_f64();
            let mut w = Welford::new();
            for _ in 0..100_000 {
                w.record(s.sample().as_secs_f64());
            }
            let rel = (w.mean() - mean).abs() / mean;
            assert!(
                rel < tol,
                "{name}: empirical mean {} vs analytic {mean} (rel {rel})",
                w.mean()
            );
        }
    }

    /// The Poisson process hits its configured rate.
    #[test]
    fn poisson_rate_is_calibrated() {
        let mut p = PoissonArrivals::new(SimDuration::from_millis(100), rng("rate"));
        let arr = p.take_arrivals(20_000);
        let span = arr.last().unwrap().as_secs_f64();
        let mean_gap = span / arr.len() as f64;
        assert!(
            (mean_gap - 0.1).abs() < 0.005,
            "mean interarrival {mean_gap}"
        );
    }

    #[test]
    fn trace_exhausts_cleanly() {
        let mut t = TraceArrivals::new(vec![SimTime(1), SimTime(5)]);
        assert_eq!(t.next_arrival(), Some(SimTime(1)));
        assert_eq!(t.next_arrival(), Some(SimTime(5)));
        assert_eq!(t.next_arrival(), None);
        assert_eq!(t.next_arrival(), None, "stays exhausted");
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn decreasing_trace_is_rejected() {
        let _ = TraceArrivals::new(vec![SimTime(5), SimTime(1)]);
    }

    #[test]
    fn deterministic_arrivals_are_periodic() {
        let mut d = DeterministicArrivals::new(SimDuration::from_millis(3));
        let arr = d.take_arrivals(4);
        assert_eq!(
            arr,
            vec![
                SimTime::ZERO + SimDuration::from_millis(3),
                SimTime::ZERO + SimDuration::from_millis(6),
                SimTime::ZERO + SimDuration::from_millis(9),
                SimTime::ZERO + SimDuration::from_millis(12),
            ]
        );
    }

    #[test]
    fn load_inversion_matches_definition() {
        // ρ = E[S] / (E[A] · P) must recover the requested load.
        for &rho in &[0.1, 0.5, 0.9, 1.2] {
            let s = SimDuration::from_secs(2);
            let a = mean_interarrival_for_load(rho, s, 16);
            let back = s.as_secs_f64() / (a.as_secs_f64() * 16.0);
            // Interarrivals round to integer nanoseconds, so recover the
            // load to ~1e-6, not exactly.
            assert!((back - rho).abs() < 1e-6, "rho {rho} -> {back}");
        }
    }

    /// The bounded-Pareto analytic mean is consistent across the
    /// alpha == 1 special case boundary.
    #[test]
    fn bounded_pareto_mean_continuous_at_alpha_one() {
        let lo = SimDuration::from_millis(10);
        let hi = SimDuration::from_secs(10);
        let at = |alpha: f64| BoundedParetoDemand::new(alpha, lo, hi, rng("c")).mean().as_secs_f64();
        let near = at(1.0 + 1e-7);
        let exact = at(1.0);
        assert!(
            (near - exact).abs() / exact < 1e-3,
            "mean discontinuous at alpha=1: {near} vs {exact}"
        );
    }
}
