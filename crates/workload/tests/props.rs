//! Property tests: every generator emits balanced, well-formed jobs for
//! arbitrary parameters, and the aggregate accounting identities hold.
//!
//! Ported from proptest to seeded [`DetRng`] loops so the suite runs with
//! no external dependencies; each case derives its own substream, so a
//! failure report's case index is enough to replay it exactly.

use parsched_des::rng::DetRng;
use parsched_des::SimDuration;
use parsched_workload::pipeline::{pipeline_job, PipelineParams};
use parsched_workload::prelude::*;

const CASES: u64 = 64;

#[test]
fn matmul_jobs_always_balanced() {
    let root = DetRng::new(0xA0);
    for case in 0..CASES {
        let mut rng = root.substream_idx("matmul", case);
        let t = 1usize << rng.uniform_u64(0, 5);
        // Mirror the original prop_assume!(n >= t): draw n above t.
        let n = rng.uniform_u64(t.max(16) as u64, 200) as usize;
        let cost = CostModel::default();
        let j = matmul_job("p", n, t, &cost);
        assert!(j.check_balanced().is_ok(), "case {case}");
        assert_eq!(j.width(), t, "case {case}");
        // Splitting never changes total work.
        assert_eq!(j.total_compute(), cost.mm_full(n), "case {case}");
        // Ship bytes never exceed the resident footprint and always cover
        // at least the data.
        assert!(j.effective_ship_bytes() <= j.total_mem(), "case {case}");
        assert!(
            j.effective_ship_bytes() >= cost.proc_overhead_mem,
            "case {case}"
        );
    }
}

#[test]
fn sort_jobs_always_balanced() {
    let root = DetRng::new(0xA1);
    for case in 0..CASES {
        let mut rng = root.substream_idx("sort", case);
        let t = 1usize << rng.uniform_u64(0, 5);
        let m = rng.uniform_u64(t.max(64) as u64, 20_000) as usize;
        let cost = CostModel::default();
        let j = sort_job("s", m, t, &cost);
        assert!(j.check_balanced().is_ok(), "case {case}");
        assert_eq!(j.width(), t, "case {case}");
        // Every divide send has a matching merge return: sends come in
        // pairs across the tree (t - 1 divides, t - 1 merges).
        let sends: u64 = j.procs.iter().map(|p| p.send_count()).sum();
        assert_eq!(sends, 2 * (t as u64 - 1), "case {case}");
    }
}

#[test]
fn pipeline_jobs_always_balanced() {
    let root = DetRng::new(0xA2);
    for case in 0..CASES {
        let mut rng = root.substream_idx("pipeline", case);
        let stages = rng.uniform_u64(1, 20) as usize;
        let waves = rng.uniform_u64(1, 20) as usize;
        let bytes = rng.uniform_u64(0, 100_000);
        let cost = CostModel::default();
        let params = PipelineParams {
            stages,
            waves,
            wave_bytes: bytes,
            stage_work: SimDuration::from_micros(500),
        };
        let j = pipeline_job("pl", &params, &cost);
        assert!(j.check_balanced().is_ok(), "case {case}");
        let sends: u64 = j.procs.iter().map(|p| p.send_count()).sum();
        assert_eq!(sends, (stages as u64 - 1) * waves as u64, "case {case}");
    }
}

#[test]
fn synthetic_jobs_split_demand_exactly() {
    let root = DetRng::new(0xA3);
    for case in 0..CASES {
        let mut rng = root.substream_idx("synthetic", case);
        let width = rng.uniform_u64(1, 17) as usize;
        let demand_ms = rng.uniform_u64(1, 5_000);
        let cost = CostModel::default();
        let params = SyntheticParams {
            width,
            ..SyntheticParams::default()
        };
        let demand = SimDuration::from_millis(demand_ms);
        let j = synthetic_job("syn", demand, &params, &cost);
        assert!(j.check_balanced().is_ok(), "case {case}");
        // Integer division may shave < width nanoseconds.
        let total = j.total_compute();
        assert!(total <= demand, "case {case}");
        assert!(demand.nanos() - total.nanos() < width as u64, "case {case}");
    }
}

#[test]
fn batches_respect_composition() {
    for small in 0usize..=16 {
        let sizes = BatchSizes {
            small_count: small,
            ..BatchSizes::default()
        };
        let cost = CostModel::default();
        let batch = paper_batch(App::Sort, Arch::Fixed, 4, &sizes, &cost);
        assert_eq!(batch.len(), sizes.jobs, "small={small}");
        let smalls = batch.iter().filter(|j| j.name.contains("-S")).count();
        assert_eq!(smalls, small.min(sizes.jobs), "small={small}");
    }
}

#[test]
fn arrivals_are_monotone_for_any_rate() {
    let root = DetRng::new(0xA4);
    for case in 0..CASES {
        let mut draw = root.substream_idx("arrivals", case);
        let count = draw.uniform_u64(1, 200) as usize;
        let mean_us = draw.uniform_u64(1, 1_000_000);
        let seed = draw.uniform_u64(0, 1000);
        let mut rng = DetRng::new(seed);
        let arr = poisson_arrivals(count, SimDuration::from_micros(mean_us), &mut rng);
        assert_eq!(arr.len(), count, "case {case}");
        for w in arr.windows(2) {
            assert!(w[0] <= w[1], "case {case}");
        }
        assert!(arr[0].nanos() > 0, "case {case}");
    }
}
