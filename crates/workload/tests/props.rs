//! Property tests: every generator emits balanced, well-formed jobs for
//! arbitrary parameters, and the aggregate accounting identities hold.

use parsched_des::rng::DetRng;
use parsched_des::SimDuration;
use parsched_workload::pipeline::{pipeline_job, PipelineParams};
use parsched_workload::prelude::*;
use proptest::prelude::*;

proptest! {
    #[test]
    fn matmul_jobs_always_balanced(
        n in 16usize..200,
        t_pow in 0u32..5,
    ) {
        let t = 1usize << t_pow;
        prop_assume!(n >= t);
        let cost = CostModel::default();
        let j = matmul_job("p", n, t, &cost);
        prop_assert!(j.check_balanced().is_ok());
        prop_assert_eq!(j.width(), t);
        // Splitting never changes total work.
        prop_assert_eq!(j.total_compute(), cost.mm_full(n));
        // Ship bytes never exceed the resident footprint and always cover
        // at least the data.
        prop_assert!(j.effective_ship_bytes() <= j.total_mem());
        prop_assert!(j.effective_ship_bytes() >= cost.proc_overhead_mem);
    }

    #[test]
    fn sort_jobs_always_balanced(
        m in 64usize..20_000,
        t_pow in 0u32..5,
    ) {
        let t = 1usize << t_pow;
        prop_assume!(m >= t);
        let cost = CostModel::default();
        let j = sort_job("s", m, t, &cost);
        prop_assert!(j.check_balanced().is_ok());
        prop_assert_eq!(j.width(), t);
        // Every divide send has a matching merge return: sends come in
        // pairs across the tree (t - 1 divides, t - 1 merges).
        let sends: u64 = j.procs.iter().map(|p| p.send_count()).sum();
        prop_assert_eq!(sends, 2 * (t as u64 - 1));
    }

    #[test]
    fn pipeline_jobs_always_balanced(
        stages in 1usize..20,
        waves in 1usize..20,
        bytes in 0u64..100_000,
    ) {
        let cost = CostModel::default();
        let params = PipelineParams {
            stages,
            waves,
            wave_bytes: bytes,
            stage_work: SimDuration::from_micros(500),
        };
        let j = pipeline_job("pl", &params, &cost);
        prop_assert!(j.check_balanced().is_ok());
        let sends: u64 = j.procs.iter().map(|p| p.send_count()).sum();
        prop_assert_eq!(sends, (stages as u64 - 1) * waves as u64);
    }

    #[test]
    fn synthetic_jobs_split_demand_exactly(
        width in 1usize..=16,
        demand_ms in 1u64..5_000,
    ) {
        let cost = CostModel::default();
        let params = SyntheticParams { width, ..SyntheticParams::default() };
        let demand = SimDuration::from_millis(demand_ms);
        let j = synthetic_job("syn", demand, &params, &cost);
        prop_assert!(j.check_balanced().is_ok());
        // Integer division may shave < width nanoseconds.
        let total = j.total_compute();
        prop_assert!(total <= demand);
        prop_assert!(demand.nanos() - total.nanos() < width as u64);
    }

    #[test]
    fn batches_respect_composition(
        small in 0usize..=16,
    ) {
        let sizes = BatchSizes {
            small_count: small,
            ..BatchSizes::default()
        };
        let cost = CostModel::default();
        let batch = paper_batch(App::Sort, Arch::Fixed, 4, &sizes, &cost);
        prop_assert_eq!(batch.len(), sizes.jobs);
        let smalls = batch.iter().filter(|j| j.name.contains("-S")).count();
        prop_assert_eq!(smalls, small.min(sizes.jobs));
    }

    #[test]
    fn arrivals_are_monotone_for_any_rate(
        count in 1usize..200,
        mean_us in 1u64..1_000_000,
        seed in 0u64..1000,
    ) {
        let mut rng = DetRng::new(seed);
        let arr = poisson_arrivals(
            count,
            SimDuration::from_micros(mean_us),
            &mut rng,
        );
        prop_assert_eq!(arr.len(), count);
        for w in arr.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert!(arr[0].nanos() > 0);
    }
}
