//! Synthetic fork-join jobs with controllable service-demand variance.
//!
//! The paper (§5.2) notes that its two-size batches have too little
//! service-demand variance to favour time-sharing, and points to the
//! companion reports [2, 3] for the high-variance regime where time-sharing
//! wins. This module generates fork-join jobs whose *total* demand is drawn
//! from a distribution with a chosen mean and coefficient of variation, so
//! the crossover can be reproduced (experiment A1 in DESIGN.md).

use crate::cost::CostModel;
use parsched_des::rng::DetRng;
use parsched_des::SimDuration;
use parsched_machine::program::{JobSpec, Op, ProcSpec, Rank, Tag};

/// Tag for the scatter messages.
pub const TAG_WORK: Tag = Tag(20);
/// Tag for the gather messages.
pub const TAG_DONE: Tag = Tag(21);

/// Parameters of a synthetic fork-join batch.
#[derive(Debug, Clone)]
pub struct SyntheticParams {
    /// Mean sequential service demand per job.
    pub mean_demand: SimDuration,
    /// Coefficient of variation of the per-job demand (0 = constant,
    /// 1 = exponential, >1 = hyperexponential).
    pub cv: f64,
    /// Processes per job.
    pub width: usize,
    /// Bytes scattered to each worker (and gathered back).
    pub msg_bytes: u64,
    /// Resident memory per process.
    pub mem_per_proc: u64,
}

impl Default for SyntheticParams {
    fn default() -> Self {
        SyntheticParams {
            mean_demand: SimDuration::from_secs(2),
            cv: 1.0,
            width: 16,
            msg_bytes: 4 * 1024,
            mem_per_proc: 4 * 1024,
        }
    }
}

/// Build one synthetic fork-join job with total demand `demand` split
/// evenly over `params.width` processes.
pub fn synthetic_job(
    name: impl Into<String>,
    demand: SimDuration,
    params: &SyntheticParams,
    cost: &CostModel,
) -> JobSpec {
    let t = params.width.max(1);
    let share = demand / t as u64;
    if t == 1 {
        return JobSpec {
            name: name.into(),
            ship_bytes: 0,
            procs: vec![ProcSpec {
                program: vec![Op::Compute(demand)],
                mem_bytes: params.mem_per_proc + cost.proc_overhead_mem,
            }],
        };
    }
    let mut procs = Vec::with_capacity(t);
    let mut coord = Vec::new();
    for w in 1..t {
        coord.push(Op::Send {
            to: Rank(w as u32),
            bytes: params.msg_bytes,
            tag: TAG_WORK,
        });
    }
    coord.push(Op::Compute(share));
    coord.push(Op::RecvAny {
        count: (t - 1) as u32,
        tag: TAG_DONE,
    });
    procs.push(ProcSpec {
        program: coord,
        mem_bytes: params.mem_per_proc + cost.proc_overhead_mem,
    });
    for _ in 1..t {
        procs.push(ProcSpec {
            program: vec![
                Op::Recv { tag: TAG_WORK },
                Op::Compute(share),
                Op::Send {
                    to: Rank(0),
                    bytes: params.msg_bytes,
                    tag: TAG_DONE,
                },
            ],
            mem_bytes: params.mem_per_proc + cost.proc_overhead_mem,
        });
    }
    let mut spec = JobSpec {
        name: name.into(),
        ship_bytes: 0,
        procs,
    };
    // Ship one code image plus the data; per-process workspaces are
    // allocated on the nodes, not transferred from the host.
    spec.ship_bytes = spec
        .total_mem()
        .saturating_sub((spec.width() as u64 - 1) * cost.proc_overhead_mem)
        .max(cost.proc_overhead_mem);
    spec
}

/// Draw `count` Poisson arrival instants with the given mean interarrival
/// time (deterministic given `rng`), in nondecreasing order starting after
/// t = 0.
pub fn poisson_arrivals(
    count: usize,
    mean_interarrival: SimDuration,
    rng: &mut DetRng,
) -> Vec<parsched_des::SimTime> {
    let mut t = parsched_des::SimTime::ZERO;
    (0..count)
        .map(|_| {
            t += SimDuration::from_secs_f64(
                rng.exponential(mean_interarrival.as_secs_f64()),
            );
            t
        })
        .collect()
}

/// Draw `count` jobs whose total demands follow the configured
/// mean/CV distribution (deterministic given `rng`).
pub fn synthetic_batch(
    count: usize,
    params: &SyntheticParams,
    cost: &CostModel,
    rng: &mut DetRng,
) -> Vec<JobSpec> {
    (0..count)
        .map(|i| {
            let demand =
                SimDuration::from_secs_f64(rng.with_cv(params.mean_demand.as_secs_f64(), params.cv));
            // Floor at one quantum's worth of work so every job is real.
            let demand = demand.max(SimDuration::from_millis(2));
            synthetic_job(format!("syn{i}"), demand, params, cost)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_des::Welford;

    #[test]
    fn job_demand_splits_evenly() {
        let params = SyntheticParams {
            width: 4,
            ..SyntheticParams::default()
        };
        let j = synthetic_job("s", SimDuration::from_millis(400), &params, &CostModel::default());
        assert_eq!(j.width(), 4);
        assert!(j.check_balanced().is_ok());
        assert_eq!(j.total_compute(), SimDuration::from_millis(400));
        for p in &j.procs {
            assert_eq!(p.compute_demand(), SimDuration::from_millis(100));
        }
    }

    #[test]
    fn width_one_is_local() {
        let params = SyntheticParams {
            width: 1,
            ..SyntheticParams::default()
        };
        let j = synthetic_job("s", SimDuration::from_millis(100), &params, &CostModel::default());
        assert_eq!(j.total_bytes(), 0);
    }

    #[test]
    fn batch_hits_target_mean_and_cv() {
        let params = SyntheticParams {
            cv: 2.0,
            ..SyntheticParams::default()
        };
        let mut rng = DetRng::new(7).substream("synthetic");
        let jobs = synthetic_batch(2000, &params, &CostModel::default(), &mut rng);
        let mut w = Welford::new();
        for j in &jobs {
            w.record(j.total_compute().as_secs_f64());
        }
        assert!((w.mean() - 2.0).abs() < 0.2, "mean {}", w.mean());
        assert!((w.cv() - 2.0).abs() < 0.3, "cv {}", w.cv());
    }

    #[test]
    fn poisson_arrivals_are_ordered_and_scale() {
        let mut rng = DetRng::new(11);
        let arr = poisson_arrivals(500, SimDuration::from_millis(100), &mut rng);
        assert_eq!(arr.len(), 500);
        for w in arr.windows(2) {
            assert!(w[0] <= w[1], "arrivals must be nondecreasing");
        }
        // Mean interarrival within 15% of the target.
        let total = arr.last().unwrap().as_secs_f64();
        let mean = total / 500.0;
        assert!((mean - 0.1).abs() < 0.015, "mean interarrival {mean}");
    }

    #[test]
    fn batch_is_deterministic() {
        let params = SyntheticParams::default();
        let cost = CostModel::default();
        let a: Vec<_> = synthetic_batch(10, &params, &cost, &mut DetRng::new(3))
            .iter()
            .map(|j| j.total_compute())
            .collect();
        let b: Vec<_> = synthetic_batch(10, &params, &cost, &mut DetRng::new(3))
            .iter()
            .map(|j| j.total_compute())
            .collect();
        assert_eq!(a, b);
    }
}
