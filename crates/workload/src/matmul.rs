//! The matrix-multiplication application (§4.1 of the paper).
//!
//! Fork-and-join structure: a coordinator (rank 0) distributes matrix `B`
//! in full to every worker plus a block of `R/T` rows of `A`, every process
//! (coordinator included) computes its block of `C = A x B`, and the
//! coordinator gathers the result blocks. Chosen by the paper to represent
//! workloads with *low* communication among workers — all traffic flows
//! through the coordinator.

use crate::cost::CostModel;
use parsched_machine::program::{JobSpec, Op, ProcSpec, Rank, Tag};

/// Mailbox tag for the broadcast of matrix `B`.
pub const TAG_B: Tag = Tag(1);
/// Mailbox tag for a worker's block of matrix `A`.
pub const TAG_A: Tag = Tag(2);
/// Mailbox tag for a result block of `C`.
pub const TAG_C: Tag = Tag(3);

/// Split `n` rows over `t` processes: earlier ranks get the remainder.
pub fn row_split(n: usize, t: usize) -> Vec<usize> {
    assert!(t >= 1 && n >= 1);
    let base = n / t;
    let extra = n % t;
    (0..t).map(|r| base + usize::from(r < extra)).collect()
}

/// Build the matrix-multiplication job: multiply two `n x n` matrices with
/// `t` processes.
///
/// With `t == 1` the job is a single local computation (no messages). The
/// *fixed* software architecture always passes `t = 16`; the *adaptive* one
/// passes `t = partition size`.
///
/// ```
/// use parsched_workload::{matmul_job, CostModel};
///
/// let cost = CostModel::default();
/// let job = matmul_job("demo", 64, 4, &cost);
/// assert_eq!(job.width(), 4);
/// job.check_balanced().unwrap();
/// // Total compute is the sequential demand regardless of the split.
/// assert_eq!(job.total_compute(), cost.mm_full(64));
/// ```
pub fn matmul_job(name: impl Into<String>, n: usize, t: usize, cost: &CostModel) -> JobSpec {
    assert!(t >= 1, "need at least one process");
    assert!(n >= t, "cannot split {n} rows over {t} processes");
    let rows = row_split(n, t);
    let b_bytes = cost.matrix_bytes(n, n);

    if t == 1 {
        return JobSpec {
            name: name.into(),
            ship_bytes: 0,
            procs: vec![ProcSpec {
                program: vec![Op::Compute(cost.mm_full(n))],
                // A, B and C resident.
                mem_bytes: 3 * b_bytes + cost.proc_overhead_mem,
            }],
        };
    }

    let mut procs = Vec::with_capacity(t);
    // Coordinator: scatter B and the A-blocks, compute its own block,
    // gather the C-blocks. It computes *after* distributing work, exactly
    // like the paper's coordinator.
    let mut coord = Vec::with_capacity(2 * (t - 1) + 2);
    for (w, &w_rows) in rows.iter().enumerate().skip(1) {
        coord.push(Op::Send { to: Rank(w as u32), bytes: b_bytes, tag: TAG_B });
        coord.push(Op::Send {
            to: Rank(w as u32),
            bytes: cost.matrix_bytes(w_rows, n),
            tag: TAG_A,
        });
    }
    coord.push(Op::Compute(cost.mm_compute(rows[0], n)));
    coord.push(Op::RecvAny { count: (t - 1) as u32, tag: TAG_C });
    procs.push(ProcSpec {
        program: coord,
        // The coordinator holds all of A, B and C.
        mem_bytes: 3 * b_bytes + cost.proc_overhead_mem,
    });

    for &w_rows in rows.iter().skip(1) {
        let program = vec![
            Op::Recv { tag: TAG_B },
            Op::Recv { tag: TAG_A },
            Op::Compute(cost.mm_compute(w_rows, n)),
            Op::Send {
                to: Rank(0),
                bytes: cost.matrix_bytes(w_rows, n),
                tag: TAG_C,
            },
        ];
        procs.push(ProcSpec {
            program,
            // A worker holds its copy of B plus its A- and C-blocks.
            mem_bytes: b_bytes
                + 2 * cost.matrix_bytes(w_rows, n)
                + cost.proc_overhead_mem,
        });
    }

    let mut spec = JobSpec {
        name: name.into(),
        ship_bytes: 0,
        procs,
    };
    // Ship one code image plus the data; per-process workspaces are
    // allocated on the nodes, not transferred from the host.
    spec.ship_bytes = spec
        .total_mem()
        .saturating_sub((spec.width() as u64 - 1) * cost.proc_overhead_mem)
        .max(cost.proc_overhead_mem);
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_des::SimDuration;

    #[test]
    fn row_split_covers_everything() {
        assert_eq!(row_split(100, 16).iter().sum::<usize>(), 100);
        assert_eq!(row_split(50, 16).iter().sum::<usize>(), 50);
        assert_eq!(row_split(100, 1), vec![100]);
        let s = row_split(10, 3);
        assert_eq!(s, vec![4, 3, 3]);
    }

    #[test]
    fn single_process_job_is_local() {
        let cost = CostModel::default();
        let j = matmul_job("mm1", 100, 1, &cost);
        assert_eq!(j.width(), 1);
        assert_eq!(j.total_bytes(), 0);
        assert_eq!(j.total_compute(), SimDuration::from_secs(5));
        assert!(j.check_balanced().is_ok());
    }

    #[test]
    fn parallel_job_is_balanced_and_complete() {
        let cost = CostModel::default();
        for t in [2, 4, 8, 16] {
            let j = matmul_job("mm", 100, t, &cost);
            assert_eq!(j.width(), t);
            assert!(j.check_balanced().is_ok(), "t={t}");
            // Total compute is exactly the sequential demand regardless of t.
            assert_eq!(j.total_compute(), SimDuration::from_secs(5), "t={t}");
        }
    }

    #[test]
    fn communication_scales_with_process_count() {
        // B goes to every worker: the fixed architecture (t=16) moves far
        // more data than the adaptive one at small partitions (paper §5.2).
        let cost = CostModel::default();
        let j4 = matmul_job("mm4", 100, 4, &cost);
        let j16 = matmul_job("mm16", 100, 16, &cost);
        assert!(j16.total_bytes() > 3 * j4.total_bytes());
    }

    #[test]
    fn memory_footprint_fits_paper_constraint() {
        // 16 large jobs must (barely) fit the 16 x 4 MB machine: that is how
        // the paper chose its matrix sizes (footnote in §5.2).
        let cost = CostModel::default();
        let j = matmul_job("mm", 100, 16, &cost);
        let per_job = j.total_mem();
        assert!(
            16 * per_job <= 16 * 4 * 1024 * 1024,
            "16 jobs need {} bytes",
            16 * per_job
        );
        // ...but they are a large fraction of it, so buffer memory is tight.
        assert!(16 * per_job >= 8 * 4 * 1024 * 1024 / 2);
    }

    #[test]
    fn coordinator_computes_after_distributing() {
        let cost = CostModel::default();
        let j = matmul_job("mm", 64, 4, &cost);
        let coord = &j.procs[0].program;
        let first_compute = coord.iter().position(|o| matches!(o, Op::Compute(_))).unwrap();
        let last_send = coord
            .iter()
            .rposition(|o| matches!(o, Op::Send { .. }))
            .unwrap();
        assert!(last_send < first_compute);
        assert!(matches!(coord.last(), Some(Op::RecvAny { count: 3, .. })));
    }
}
