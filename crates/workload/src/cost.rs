//! The T805 cost model.
//!
//! Converts algorithmic work (multiply-accumulates, comparisons, element
//! moves) into CPU time on the simulated node. Values are calibrated to a
//! 25 MHz T805 running compiled occam/C with 2-D array indexing: ~5 us per
//! floating multiply-accumulate and ~3 us per inner-loop step of integer
//! compare/swap code (the integer multiply behind every array index costs
//! 38 cycles alone). The experiments depend on cost *ratios* (compute vs.
//! link time vs. software messaging overheads), which these values keep in
//! the regime the paper reports; EXPERIMENTS.md records the calibration.

use parsched_des::SimDuration;

/// Per-operation costs and element sizes.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// One inner-loop multiply-accumulate of the matrix multiply
    /// (load, multiply, add, index arithmetic).
    pub mm_mac: SimDuration,
    /// One inner-loop step of selection sort (compare + bookkeeping).
    pub sort_cmp: SimDuration,
    /// Per-element cost of the divide phase (splitting an array).
    pub divide_step: SimDuration,
    /// Per-element cost of merging two sorted runs.
    pub merge_step: SimDuration,
    /// Bytes per matrix element (double precision).
    pub elem_matrix: u64,
    /// Bytes per sort key (32-bit integer).
    pub elem_key: u64,
    /// Resident code + stack footprint per process.
    pub proc_overhead_mem: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            mm_mac: SimDuration::from_nanos(5_000),
            sort_cmp: SimDuration::from_nanos(3_000),
            divide_step: SimDuration::from_nanos(500),
            merge_step: SimDuration::from_nanos(3_000),
            elem_matrix: 8,
            elem_key: 4,
            proc_overhead_mem: 64 * 1024,
        }
    }
}

impl CostModel {
    /// CPU time to compute `rows` rows of an `n x n` result matrix
    /// (`rows * n` dot products of length `n`).
    pub fn mm_compute(&self, rows: usize, n: usize) -> SimDuration {
        self.mm_mac * (rows as u64 * n as u64 * n as u64)
    }

    /// CPU time for a full sequential `n x n` matrix multiplication.
    pub fn mm_full(&self, n: usize) -> SimDuration {
        self.mm_compute(n, n)
    }

    /// CPU time to selection-sort `m` keys: `m (m - 1) / 2` inner steps.
    pub fn selection_sort(&self, m: usize) -> SimDuration {
        let m = m as u64;
        self.sort_cmp * (m * m.saturating_sub(1) / 2)
    }

    /// CPU time to split an `m`-key array for the divide phase.
    pub fn divide(&self, m: usize) -> SimDuration {
        self.divide_step * m as u64
    }

    /// CPU time to merge two sorted runs totalling `m` keys.
    pub fn merge(&self, m: usize) -> SimDuration {
        self.merge_step * m as u64
    }

    /// Bytes of an `r x c` matrix block.
    pub fn matrix_bytes(&self, r: usize, c: usize) -> u64 {
        self.elem_matrix * r as u64 * c as u64
    }

    /// Bytes of `m` sort keys.
    pub fn keys_bytes(&self, m: usize) -> u64 {
        self.elem_key * m as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm_costs_scale_cubically() {
        let c = CostModel::default();
        let small = c.mm_full(50);
        let large = c.mm_full(100);
        assert_eq!(large.nanos(), small.nanos() * 8);
        // 100^3 MACs at 5 us each = 5 s sequential: T805-with-occam scale.
        assert_eq!(large, SimDuration::from_secs(5));
    }

    #[test]
    fn partial_mm_matches_split() {
        let c = CostModel::default();
        let whole = c.mm_full(64);
        let parts: SimDuration = (0..4).map(|_| c.mm_compute(16, 64)).sum();
        assert_eq!(whole, parts);
    }

    #[test]
    fn selection_sort_is_quadratic() {
        let c = CostModel::default();
        let t1 = c.selection_sort(1000);
        let t2 = c.selection_sort(2000);
        let ratio = t2.nanos() as f64 / t1.nanos() as f64;
        assert!((ratio - 4.0).abs() < 0.01, "ratio {ratio}");
        assert_eq!(c.selection_sort(0), SimDuration::ZERO);
        assert_eq!(c.selection_sort(1), SimDuration::ZERO);
    }

    #[test]
    fn fixed_partitioning_reduces_total_sort_work() {
        // The paper's §5.3 observation: sorting 16 pieces of n/16 keys costs
        // far less than 4 pieces of n/4.
        let c = CostModel::default();
        let n = 1400;
        let w16: SimDuration = (0..16).map(|_| c.selection_sort(n / 16)).sum();
        let w4: SimDuration = (0..4).map(|_| c.selection_sort(n / 4)).sum();
        assert!(w16.nanos() * 3 < w4.nanos(), "w16={w16} w4={w4}");
    }

    #[test]
    fn byte_sizes() {
        let c = CostModel::default();
        assert_eq!(c.matrix_bytes(100, 100), 80_000);
        assert_eq!(c.keys_bytes(1400), 5_600);
    }
}
