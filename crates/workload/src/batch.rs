//! The paper's experimental batches (§5.1).
//!
//! Every experiment submits a batch of 16 jobs — 12 small and 4 large, to
//! introduce service-demand variance — of one application in one software
//! architecture. Job sizes (§5.2/§5.3, digits reconstructed per DESIGN.md):
//! matrix multiplication 50x50 / 100x100, sort 6000 / 14000 keys.

use crate::cost::CostModel;
use crate::matmul::matmul_job;
use crate::sort::sort_job;
use parsched_machine::program::JobSpec;

/// Which application a batch runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// Fork-join matrix multiplication.
    MatMul,
    /// Divide-and-conquer selection sort.
    Sort,
}

impl App {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            App::MatMul => "matmul",
            App::Sort => "sort",
        }
    }
}

/// The paper's two software architectures (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// Process count fixed at 16 regardless of the partition size.
    Fixed,
    /// Process count equals the number of processors allocated.
    Adaptive,
}

impl Arch {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Arch::Fixed => "fixed",
            Arch::Adaptive => "adaptive",
        }
    }

    /// Processes per job for a given partition size.
    pub fn width(self, partition_size: usize) -> usize {
        match self {
            Arch::Fixed => 16,
            Arch::Adaptive => partition_size,
        }
    }
}

/// Problem sizes of a batch.
#[derive(Debug, Clone)]
pub struct BatchSizes {
    /// Jobs per batch.
    pub jobs: usize,
    /// How many of them are small.
    pub small_count: usize,
    /// Matrix dimension of a small / large matmul job.
    pub mm_small: usize,
    /// Large matrix dimension.
    pub mm_large: usize,
    /// Keys in a small / large sort job.
    pub sort_small: usize,
    /// Large key count.
    pub sort_large: usize,
}

impl Default for BatchSizes {
    fn default() -> Self {
        BatchSizes {
            jobs: 16,
            small_count: 12,
            mm_small: 50,
            mm_large: 100,
            sort_small: 6000,
            sort_large: 14000,
        }
    }
}

/// Build one paper batch: `small_count` small jobs followed by the large
/// ones (submission *order* is chosen by the policy under test — the static
/// policy is evaluated under both best and worst orderings).
pub fn paper_batch(
    app: App,
    arch: Arch,
    partition_size: usize,
    sizes: &BatchSizes,
    cost: &CostModel,
) -> Vec<JobSpec> {
    let t = arch.width(partition_size);
    (0..sizes.jobs)
        .map(|i| {
            let small = i < sizes.small_count;
            let tagname = |sz: &str| format!("{}-{}-{}{}", app.label(), arch.label(), sz, i);
            match (app, small) {
                (App::MatMul, true) => matmul_job(tagname("S"), sizes.mm_small, t, cost),
                (App::MatMul, false) => matmul_job(tagname("L"), sizes.mm_large, t, cost),
                (App::Sort, true) => sort_job(tagname("S"), sizes.sort_small, t, cost),
                (App::Sort, false) => sort_job(tagname("L"), sizes.sort_large, t, cost),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_batch_is_12_plus_4() {
        let sizes = BatchSizes::default();
        let cost = CostModel::default();
        let batch = paper_batch(App::MatMul, Arch::Adaptive, 4, &sizes, &cost);
        assert_eq!(batch.len(), 16);
        let small: Vec<_> = batch.iter().filter(|j| j.name.contains("-S")).collect();
        let large: Vec<_> = batch.iter().filter(|j| j.name.contains("-L")).collect();
        assert_eq!(small.len(), 12);
        assert_eq!(large.len(), 4);
        // Adaptive at p=4 -> 4 processes each.
        assert!(batch.iter().all(|j| j.width() == 4));
    }

    #[test]
    fn fixed_arch_always_16_processes() {
        let sizes = BatchSizes::default();
        let cost = CostModel::default();
        for p in [1, 2, 4, 8, 16] {
            let batch = paper_batch(App::Sort, Arch::Fixed, p, &sizes, &cost);
            assert!(batch.iter().all(|j| j.width() == 16), "p={p}");
        }
    }

    #[test]
    fn adaptive_width_tracks_partition() {
        assert_eq!(Arch::Adaptive.width(8), 8);
        assert_eq!(Arch::Fixed.width(8), 16);
        assert_eq!(Arch::Adaptive.width(1), 1);
    }

    #[test]
    fn all_batches_are_balanced() {
        let sizes = BatchSizes::default();
        let cost = CostModel::default();
        for app in [App::MatMul, App::Sort] {
            for arch in [Arch::Fixed, Arch::Adaptive] {
                for p in [1, 2, 4, 8, 16] {
                    for j in paper_batch(app, arch, p, &sizes, &cost) {
                        j.check_balanced().unwrap_or_else(|e| {
                            panic!("{app:?}/{arch:?}/p={p}: {e}")
                        });
                    }
                }
            }
        }
    }

    #[test]
    fn variance_exists_between_sizes() {
        let sizes = BatchSizes::default();
        let cost = CostModel::default();
        let batch = paper_batch(App::MatMul, Arch::Adaptive, 16, &sizes, &cost);
        let small = batch[0].total_compute();
        let large = batch[15].total_compute();
        assert!(large.nanos() > 5 * small.nanos());
    }
}
