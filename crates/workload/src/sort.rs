//! The sorting application (§4.2 of the paper).
//!
//! Divide-and-conquer structure over `t = 2^k` processes: a coordinator
//! splits its array in half, ships one half to a partner process, recurses
//! on its own half, and merges the partner's sorted half on return. Leaves
//! run *selection sort* — deliberately O(n²), which is why the paper's
//! fixed architecture (always 16 small pieces) beats the adaptive one for
//! this application (§5.3). Coordinators double as workers at deeper levels
//! (the shaded processes of the paper's Figure 2).

use crate::cost::CostModel;
use parsched_machine::program::{JobSpec, Op, ProcSpec, Rank, Tag};

/// Mailbox tag for the divide-phase array halves.
pub const TAG_DIVIDE: Tag = Tag(10);
/// Base tag for merge-phase returns: the child sending its sorted run uses
/// `Tag(TAG_MERGE_BASE.0 + child_rank)`, so a parent waiting on two children
/// cannot confuse their results.
pub const TAG_MERGE_BASE: Tag = Tag(100);

/// Build the sort job: sort `m` keys with `t` processes (`t` a power of 2).
///
/// ```
/// use parsched_workload::{sort_job, CostModel};
///
/// let cost = CostModel::default();
/// let wide = sort_job("wide", 8000, 16, &cost);
/// let narrow = sort_job("narrow", 8000, 2, &cost);
/// wide.check_balanced().unwrap();
/// // O(n^2) leaves: more, smaller pieces mean less total work (§5.3).
/// assert!(wide.total_compute() < narrow.total_compute());
/// ```
pub fn sort_job(name: impl Into<String>, m: usize, t: usize, cost: &CostModel) -> JobSpec {
    assert!(t >= 1 && t.is_power_of_two(), "sort needs a power-of-two width");
    assert!(m >= t, "cannot split {m} keys over {t} processes");
    let mut programs: Vec<Vec<Op>> = vec![Vec::new(); t];
    let mut footprints: Vec<u64> = vec![0; t];
    build(&mut programs, &mut footprints, 0, m, t, cost);
    let procs = programs
        .into_iter()
        .zip(footprints)
        .map(|(program, fp)| ProcSpec {
            program,
            // Held array plus merge buffer, plus code/stack.
            mem_bytes: 2 * fp + cost.proc_overhead_mem,
        })
        .collect();
    let mut spec = JobSpec {
        name: name.into(),
        ship_bytes: 0,
        procs,
    };
    // Ship one code image plus the data; per-process workspaces are
    // allocated on the nodes, not transferred from the host.
    spec.ship_bytes = spec
        .total_mem()
        .saturating_sub((spec.width() as u64 - 1) * cost.proc_overhead_mem)
        .max(cost.proc_overhead_mem);
    spec
}

/// Recursively emit the ops for the subtree rooted at `rank`, which owns
/// `elems` keys and `span` processes (`rank .. rank + span`).
fn build(
    programs: &mut Vec<Vec<Op>>,
    footprints: &mut Vec<u64>,
    rank: usize,
    elems: usize,
    span: usize,
    cost: &CostModel,
) {
    footprints[rank] = footprints[rank].max(cost.keys_bytes(elems));
    if span == 1 {
        programs[rank].push(Op::Compute(cost.selection_sort(elems)));
        return;
    }
    let half_span = span / 2;
    let partner = rank + half_span;
    let sent = elems / 2;
    let kept = elems - sent;

    // Divide: split the array and ship half to the partner.
    programs[rank].push(Op::Compute(cost.divide(elems)));
    programs[rank].push(Op::Send {
        to: Rank(partner as u32),
        bytes: cost.keys_bytes(sent),
        tag: TAG_DIVIDE,
    });
    programs[partner].push(Op::Recv { tag: TAG_DIVIDE });

    // Both halves recurse; the partner then returns its sorted run.
    build(programs, footprints, partner, sent, half_span, cost);
    programs[partner].push(Op::Send {
        to: Rank(rank as u32),
        bytes: cost.keys_bytes(sent),
        tag: Tag(TAG_MERGE_BASE.0 + partner as u32),
    });
    build(programs, footprints, rank, kept, half_span, cost);

    // Merge the partner's run with our own.
    programs[rank].push(Op::Recv {
        tag: Tag(TAG_MERGE_BASE.0 + partner as u32),
    });
    programs[rank].push(Op::Compute(cost.merge(elems)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_des::SimDuration;

    #[test]
    fn single_process_is_one_big_sort() {
        let cost = CostModel::default();
        let j = sort_job("s1", 1000, 1, &cost);
        assert_eq!(j.width(), 1);
        assert_eq!(j.total_bytes(), 0);
        assert_eq!(j.total_compute(), cost.selection_sort(1000));
        assert!(j.check_balanced().is_ok());
    }

    #[test]
    fn trees_are_balanced_for_all_widths() {
        let cost = CostModel::default();
        for t in [2, 4, 8, 16] {
            let j = sort_job("s", 1400, t, &cost);
            assert_eq!(j.width(), t);
            assert!(j.check_balanced().is_ok(), "t={t}");
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        sort_job("bad", 100, 3, &CostModel::default());
    }

    #[test]
    fn more_processes_means_less_total_work() {
        // O(n^2) leaves: quadrupling the process count roughly quarters the
        // sort work (divide/merge overheads grow only linearly).
        let cost = CostModel::default();
        let w1 = sort_job("a", 1400, 1, &cost).total_compute();
        let w4 = sort_job("b", 1400, 4, &cost).total_compute();
        let w16 = sort_job("c", 1400, 16, &cost).total_compute();
        assert!(w4.nanos() * 3 < w1.nanos(), "w1={w1} w4={w4}");
        assert!(w16.nanos() * 3 < w4.nanos(), "w4={w4} w16={w16}");
    }

    #[test]
    fn every_rank_participates() {
        let cost = CostModel::default();
        let j = sort_job("s", 1600, 8, &cost);
        for (r, p) in j.procs.iter().enumerate() {
            assert!(
                p.compute_demand() > SimDuration::ZERO,
                "rank {r} does no work"
            );
            assert!(p.mem_bytes > 0);
        }
        // Rank 0 merges the full array last.
        let last_ops = &j.procs[0].program;
        assert!(matches!(last_ops.last(), Some(Op::Compute(_))));
        assert!(matches!(
            last_ops[last_ops.len() - 2],
            Op::Recv { tag } if tag.0 >= TAG_MERGE_BASE.0
        ));
    }

    #[test]
    fn divide_tree_matches_figure_2() {
        // t=4: rank 0 ships half to rank 2 and a quarter to rank 1;
        // rank 2 ships a quarter to rank 3 (the paper's Figure 2 shape).
        let cost = CostModel::default();
        let j = sort_job("fig2", 1024, 4, &cost);
        let sends = |r: usize| -> Vec<(u32, u64)> {
            j.procs[r]
                .program
                .iter()
                .filter_map(|o| match o {
                    Op::Send { to, bytes, tag } if *tag == TAG_DIVIDE => {
                        Some((to.0, *bytes))
                    }
                    _ => None,
                })
                .collect()
        };
        assert_eq!(sends(0), vec![(2, 512 * 4), (1, 256 * 4)]);
        assert_eq!(sends(2), vec![(3, 256 * 4)]);
        assert!(sends(1).is_empty());
        assert!(sends(3).is_empty());
    }

    #[test]
    fn footprints_halve_down_the_tree() {
        let cost = CostModel::default();
        let j = sort_job("fp", 1024, 4, &cost);
        // rank0 holds the full array, rank2 half, ranks 1 and 3 a quarter.
        let fp: Vec<u64> = j.procs.iter().map(|p| p.mem_bytes - cost.proc_overhead_mem).collect();
        assert_eq!(fp[0], 2 * 1024 * 4);
        assert_eq!(fp[2], 2 * 512 * 4);
        assert_eq!(fp[1], 2 * 256 * 4);
        assert_eq!(fp[3], 2 * 256 * 4);
    }
}
