//! # parsched-workload
//!
//! The applications of the scheduling study, compiled to the machine's
//! program model:
//!
//! * [`matmul`] — fork-join matrix multiplication (the paper's low-worker-
//!   communication representative, §4.1);
//! * [`sort`] — divide-and-conquer selection sort (§4.2), whose O(n²) work
//!   phase makes the fixed software architecture shine;
//! * [`pipeline`] — a streaming pipeline (extension): the third classic
//!   parallel structure, with steady neighbour-to-neighbour traffic;
//! * [`synthetic`] — fork-join jobs with controllable service-demand
//!   variance for the time-sharing crossover ablation;
//! * [`batch`] — the paper's 12-small + 4-large batches in both software
//!   architectures;
//! * [`cost`] — the T805 cost model converting algorithmic work to time.
//!
//! ```
//! use parsched_workload::prelude::*;
//!
//! let cost = CostModel::default();
//! let batch = paper_batch(App::MatMul, Arch::Adaptive, 8, &BatchSizes::default(), &cost);
//! assert_eq!(batch.len(), 16);
//! assert!(batch.iter().all(|job| job.check_balanced().is_ok()));
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod cost;
pub mod matmul;
pub mod pipeline;
pub mod sort;
pub mod synthetic;

/// The workload crate's commonly used names in one import.
pub mod prelude {
    pub use crate::batch::{paper_batch, App, Arch, BatchSizes};
    pub use crate::cost::CostModel;
    pub use crate::matmul::matmul_job;
    pub use crate::pipeline::{pipeline_job, PipelineParams};
    pub use crate::sort::sort_job;
    pub use crate::synthetic::{
        poisson_arrivals, synthetic_batch, synthetic_job, SyntheticParams,
    };
}

pub use prelude::*;
