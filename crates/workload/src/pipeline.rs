//! A pipeline application (extension).
//!
//! The paper studies fork-join (matrix multiplication) and
//! divide-and-conquer (sort) structures; the third classic structure its
//! introduction's "parallel programs" space contains is the *pipeline*:
//! `t` stages in a chain, `w` data waves streaming through, every stage
//! computing on each wave and passing it to the next. Its communication is
//! steady neighbour-to-neighbour traffic — the pattern that rewards
//! topology locality most and (under time-sharing) suffers most when
//! producer and consumer are never co-scheduled.

use crate::cost::CostModel;
use parsched_des::SimDuration;
use parsched_machine::program::{JobSpec, Op, ProcSpec, Rank, Tag};

/// Mailbox tag for inter-stage hand-offs; stage `s` receives on
/// `Tag(TAG_STAGE_BASE.0 + s)`.
pub const TAG_STAGE_BASE: Tag = Tag(300);

/// Parameters of a pipeline job.
#[derive(Debug, Clone)]
pub struct PipelineParams {
    /// Pipeline depth (= process count).
    pub stages: usize,
    /// Number of data waves streamed through.
    pub waves: usize,
    /// Payload bytes handed from stage to stage per wave.
    pub wave_bytes: u64,
    /// CPU work per stage per wave.
    pub stage_work: SimDuration,
}

impl Default for PipelineParams {
    fn default() -> Self {
        PipelineParams {
            stages: 8,
            waves: 16,
            wave_bytes: 8 * 1024,
            stage_work: SimDuration::from_millis(20),
        }
    }
}

/// Build a pipeline job: stage `s` is rank `s`; rank 0 produces the waves,
/// the last rank consumes them.
pub fn pipeline_job(
    name: impl Into<String>,
    params: &PipelineParams,
    cost: &CostModel,
) -> JobSpec {
    assert!(params.stages >= 1, "need at least one stage");
    assert!(params.waves >= 1, "need at least one wave");
    let t = params.stages;
    let mut procs = Vec::with_capacity(t);
    for s in 0..t {
        let mut program = Vec::with_capacity(3 * params.waves);
        for _ in 0..params.waves {
            if s > 0 {
                program.push(Op::Recv {
                    tag: Tag(TAG_STAGE_BASE.0 + s as u32),
                });
            }
            program.push(Op::Compute(params.stage_work));
            if s + 1 < t {
                program.push(Op::Send {
                    to: Rank(s as u32 + 1),
                    bytes: params.wave_bytes,
                    tag: Tag(TAG_STAGE_BASE.0 + s as u32 + 1),
                });
            }
        }
        procs.push(ProcSpec {
            program,
            // Double-buffered wave storage plus workspace.
            mem_bytes: 2 * params.wave_bytes + cost.proc_overhead_mem,
        });
    }
    let mut spec = JobSpec {
        name: name.into(),
        ship_bytes: 0,
        procs,
    };
    spec.ship_bytes = spec
        .total_mem()
        .saturating_sub((spec.width() as u64 - 1) * cost.proc_overhead_mem)
        .max(cost.proc_overhead_mem);
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_is_balanced_for_all_depths() {
        let cost = CostModel::default();
        for stages in [1usize, 2, 5, 16] {
            let params = PipelineParams {
                stages,
                ..PipelineParams::default()
            };
            let j = pipeline_job("p", &params, &cost);
            assert_eq!(j.width(), stages);
            j.check_balanced().unwrap_or_else(|e| panic!("stages={stages}: {e}"));
        }
    }

    #[test]
    fn work_scales_with_stages_and_waves() {
        let cost = CostModel::default();
        let base = PipelineParams::default();
        let j = pipeline_job("p", &base, &cost);
        assert_eq!(
            j.total_compute(),
            base.stage_work * (base.stages as u64 * base.waves as u64)
        );
        let deep = PipelineParams {
            stages: base.stages * 2,
            ..base.clone()
        };
        let jd = pipeline_job("pd", &deep, &cost);
        assert_eq!(jd.total_compute().nanos(), 2 * j.total_compute().nanos());
    }

    #[test]
    fn message_volume_is_waves_times_internal_edges() {
        let cost = CostModel::default();
        let params = PipelineParams::default();
        let j = pipeline_job("p", &params, &cost);
        let sends: u64 = j.procs.iter().map(|p| p.send_count()).sum();
        assert_eq!(sends, (params.stages as u64 - 1) * params.waves as u64);
        assert_eq!(
            j.total_bytes(),
            sends * params.wave_bytes
        );
    }

    #[test]
    fn single_stage_pipeline_is_pure_compute() {
        let cost = CostModel::default();
        let params = PipelineParams {
            stages: 1,
            waves: 4,
            ..PipelineParams::default()
        };
        let j = pipeline_job("solo", &params, &cost);
        assert_eq!(j.total_bytes(), 0);
        assert_eq!(j.procs[0].recv_count(), 0);
    }
}
