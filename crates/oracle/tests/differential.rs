//! The differential sweep: randomized scenarios through both engines.
//!
//! * `differential_sweep_fast` — the deterministic tier-1 subset (96
//!   cases, two full passes over the covered cross product). Runs on
//!   every `cargo test`.
//! * `differential_sweep_full` — the long randomized sweep, `#[ignore]`d
//!   by default; `scripts/tier1.sh tier1-full` runs it with elevated case
//!   counts. `ORACLE_CASES` sets the count, `ORACLE_SEED` the root seed,
//!   `ORACLE_ONLY_CASE` replays a single case (all three read by both
//!   sweeps, so a failure's printed replay line works verbatim).
//!
//! Every failing case panics with a self-contained replay description and
//! dumps the full report under `target/repro/oracle_case_<n>.txt`.

use parsched_oracle::{dump_repro, run_differential, Scenario};

/// Root seed of the sweeps (override with `ORACLE_SEED`, hex or decimal).
const DEFAULT_SEED: u64 = 0x0DD5_0F0A;

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let parsed = raw
        .strip_prefix("0x")
        .map(|h| u64::from_str_radix(h, 16))
        .unwrap_or_else(|| raw.parse());
    Some(parsed.unwrap_or_else(|e| panic!("bad {name}={raw}: {e}")))
}

fn sweep(default_cases: u64) {
    let seed = env_u64("ORACLE_SEED").unwrap_or(DEFAULT_SEED);
    let cases: Vec<u64> = match env_u64("ORACLE_ONLY_CASE") {
        Some(case) => {
            // Print the knobs before running: a replayed case that hangs or
            // crashes should still have identified itself.
            eprintln!("{}", Scenario::generate(seed, case).describe());
            vec![case]
        }
        None => (0..env_u64("ORACLE_CASES").unwrap_or(default_cases)).collect(),
    };
    let mut divergences = 0u32;
    for &case in &cases {
        let scenario = Scenario::generate(seed, case);
        if let Err(div) = run_differential(&scenario) {
            divergences += 1;
            match dump_repro(&scenario, &div) {
                Ok(path) => eprintln!("{div}\nrepro dumped to {}", path.display()),
                Err(io) => eprintln!("{div}\n(repro dump failed: {io})"),
            }
        }
    }
    assert_eq!(
        divergences,
        0,
        "{divergences} of {} scenarios diverged from the oracle (see above)",
        cases.len()
    );
}

#[test]
fn differential_sweep_fast() {
    // Two passes over the 48-cell cross product; ~seconds in debug.
    sweep(96);
}

#[test]
#[ignore = "long sweep; run via scripts/tier1.sh tier1-full or ORACLE_CASES=N cargo test -- --include-ignored"]
fn differential_sweep_full() {
    sweep(240);
}

/// The invariant checkers hold on randomized scenarios too, not just the
/// handpicked integration configurations: every closed-batch case in one
/// cross-product pass runs instrumented and must satisfy conservation,
/// causality, and FCFS admission.
/// Shard-count invariance: an eligible scenario produces bit-identical
/// observables at every shard count K ∈ {1, 2, 4, 8}, and every sharded
/// run is deterministic across thread interleavings (each K runs twice
/// and the fingerprints must agree).
#[test]
fn sharded_runs_are_bit_identical_across_shard_counts() {
    use parsched_core::{run_batch_sharded, shard_eligibility};
    let seed = env_u64("ORACLE_SEED").unwrap_or(DEFAULT_SEED);
    let mut checked = 0;
    for case in 0..96 {
        let scenario = Scenario::generate(seed, case);
        let config = scenario.config();
        if !scenario.arrivals.is_empty() || shard_eligibility(&config).is_err() {
            continue;
        }
        let batch = scenario.batch();
        let seq = run_batch_sharded(&config, batch.clone(), 1)
            .unwrap_or_else(|e| panic!("{e}\n{}", scenario.describe()));
        for k in [2usize, 4, 8] {
            let mut fingerprints = Vec::new();
            for pass in 0..2 {
                let par = run_batch_sharded(&config, batch.clone(), k)
                    .unwrap_or_else(|e| panic!("{e}\n{}", scenario.describe()));
                assert!(par.shards > 1, "eligible case must actually shard");
                assert_eq!(
                    par.response_times,
                    seq.response_times,
                    "K={k} pass={pass}\n{}",
                    scenario.describe()
                );
                assert_eq!(par.makespan, seq.makespan, "K={k}");
                assert_eq!(par.counters, seq.counters, "K={k}");
                assert_eq!(par.events, seq.events, "K={k}");
                fingerprints.push(par.fingerprint());
            }
            assert_eq!(
                fingerprints[0],
                fingerprints[1],
                "interleaving nondeterminism at K={k}\n{}",
                scenario.describe()
            );
            assert_eq!(fingerprints[0], seq.fingerprint(), "K={k}");
        }
        checked += 1;
        if checked >= 6 {
            break; // bounded test time; the sweep covers the rest
        }
    }
    assert!(checked >= 3, "too few eligible scenarios: {checked}");
}

/// Targeted coverage for the widened shard-eligibility gate: every
/// coordinated class — static space-sharing, the hybrid discipline
/// (time-sharing under an MPL cap), an MPL-capped static run, and
/// time-sharing under crash and flaky-link fault plans — must match the
/// oracle AND be bit-identical to its sequential run at K ∈ {2, 4, 8}.
/// Hand-built scenarios, not sweep draws, so the coverage holds on every
/// `cargo test` regardless of the dice: a 16-node linear machine in eight
/// 2-node partitions, so even K = 8 cuts along real partition boundaries.
#[test]
fn coordinated_classes_shard_bit_identically() {
    use parsched_core::{shard_eligibility, Discipline, Placement, ShardMode};
    use parsched_des::{QueueKind, SimTime};
    use parsched_machine::{FaultPlan, LinkWindow, NodeCrash, Switching};
    use parsched_oracle::{Order, PolicyClass};
    use parsched_topology::TopologyKind;
    use parsched_workload::{App, Arch, BatchSizes};

    let crash_plan = FaultPlan {
        crashes: vec![NodeCrash {
            node: 3,
            at: SimTime(30_000_000), // 30 ms: mid-batch, kills a running job
        }],
        ..FaultPlan::default()
    };
    let flaky_plan = FaultPlan {
        links: vec![LinkWindow {
            from: 0,
            to: 1,
            down_at: SimTime(5_000_000),
            up_at: SimTime(12_000_000),
        }],
        drop_prob: 0.03,
        drop_seed: 7,
        ..FaultPlan::default()
    };
    let classes: [(&str, PolicyClass, Option<usize>, FaultPlan); 5] = [
        ("static", PolicyClass::Static, None, FaultPlan::default()),
        ("hybrid (MPL-2 time-sharing)", PolicyClass::Hybrid, Some(2), FaultPlan::default()),
        ("MPL-capped static", PolicyClass::Static, Some(2), FaultPlan::default()),
        ("crash fault plan", PolicyClass::Hybrid, None, crash_plan),
        ("flaky-link fault plan", PolicyClass::Hybrid, None, flaky_plan),
    ];
    for (what, class, mpl, faults) in classes {
        for shards in [2usize, 4, 8] {
            let scenario = Scenario {
                case: 9000 + shards as u64, // marks hand-built cases in reports
                seed: 0,
                topology: TopologyKind::Linear,
                system_size: 16,
                partition_size: 2,
                class,
                app: App::MatMul,
                arch: Arch::Fixed,
                sizes: BatchSizes {
                    jobs: 6,
                    small_count: 3,
                    mm_small: 20,
                    mm_large: 40,
                    sort_small: 600,
                    sort_large: 2000,
                },
                order: Order::AsGiven,
                queue: QueueKind::Adaptive,
                switching: Switching::PacketizedSaf,
                discipline: Discipline::Uncoordinated,
                placement: Placement::RoundRobin,
                mpl,
                arrivals: Vec::new(),
                faults: faults.clone(),
                shards,
            };
            assert_eq!(
                shard_eligibility(&scenario.config()),
                Ok(ShardMode::Coordinated),
                "{what}: must be coordinated-eligible"
            );
            if let Err(div) = run_differential(&scenario) {
                panic!("{what} at K={shards}: {div}");
            }
            // run_differential proves bit-identity even through a runtime
            // fallback; additionally demand these classes really shard.
            let par = parsched_core::run_batch_sharded(
                &scenario.config(),
                scenario.batch(),
                shards,
            )
            .unwrap_or_else(|e| panic!("{what} at K={shards}: {e}"));
            assert_eq!(par.fallback, None, "{what} at K={shards} fell back");
            assert_eq!(par.shards, shards, "{what} at K={shards}");
        }
    }
}

#[test]
fn invariants_hold_on_random_scenarios() {
    use parsched_core::run_batch_observed;
    use parsched_oracle::invariants;
    let seed = env_u64("ORACLE_SEED").unwrap_or(DEFAULT_SEED);
    let mut checked = 0;
    for case in 0..48 {
        let scenario = Scenario::generate(seed, case);
        if !scenario.arrivals.is_empty() {
            // run_batch_observed models the paper's closed setting.
            continue;
        }
        let (result, obs) = run_batch_observed(&scenario.config(), scenario.batch())
            .unwrap_or_else(|e| panic!("{e}\n{}", scenario.describe()));
        invariants::check_event_stream(&obs.events);
        invariants::check_fcfs_admission(&obs.events);
        invariants::check_cpu_conservation(&obs.metrics, obs.layout.node_count, result.makespan);
        checked += 1;
    }
    assert!(checked >= 24, "too few closed-batch cases: {checked}");
}
