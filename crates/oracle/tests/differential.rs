//! The differential sweep: randomized scenarios through both engines.
//!
//! * `differential_sweep_fast` — the deterministic tier-1 subset (96
//!   cases, two full passes over the covered cross product). Runs on
//!   every `cargo test`.
//! * `differential_sweep_full` — the long randomized sweep, `#[ignore]`d
//!   by default; `scripts/tier1.sh tier1-full` runs it with elevated case
//!   counts. `ORACLE_CASES` sets the count, `ORACLE_SEED` the root seed,
//!   `ORACLE_ONLY_CASE` replays a single case (all three read by both
//!   sweeps, so a failure's printed replay line works verbatim).
//!
//! Every failing case panics with a self-contained replay description and
//! dumps the full report under `target/repro/oracle_case_<n>.txt`.

use parsched_oracle::{dump_repro, run_differential, Scenario};

/// Root seed of the sweeps (override with `ORACLE_SEED`, hex or decimal).
const DEFAULT_SEED: u64 = 0x0DD5_0F0A;

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let parsed = raw
        .strip_prefix("0x")
        .map(|h| u64::from_str_radix(h, 16))
        .unwrap_or_else(|| raw.parse());
    Some(parsed.unwrap_or_else(|e| panic!("bad {name}={raw}: {e}")))
}

fn sweep(default_cases: u64) {
    let seed = env_u64("ORACLE_SEED").unwrap_or(DEFAULT_SEED);
    let cases: Vec<u64> = match env_u64("ORACLE_ONLY_CASE") {
        Some(case) => {
            // Print the knobs before running: a replayed case that hangs or
            // crashes should still have identified itself.
            eprintln!("{}", Scenario::generate(seed, case).describe());
            vec![case]
        }
        None => (0..env_u64("ORACLE_CASES").unwrap_or(default_cases)).collect(),
    };
    let mut divergences = 0u32;
    for &case in &cases {
        let scenario = Scenario::generate(seed, case);
        if let Err(div) = run_differential(&scenario) {
            divergences += 1;
            match dump_repro(&scenario, &div) {
                Ok(path) => eprintln!("{div}\nrepro dumped to {}", path.display()),
                Err(io) => eprintln!("{div}\n(repro dump failed: {io})"),
            }
        }
    }
    assert_eq!(
        divergences,
        0,
        "{divergences} of {} scenarios diverged from the oracle (see above)",
        cases.len()
    );
}

#[test]
fn differential_sweep_fast() {
    // Two passes over the 48-cell cross product; ~seconds in debug.
    sweep(96);
}

#[test]
#[ignore = "long sweep; run via scripts/tier1.sh tier1-full or ORACLE_CASES=N cargo test -- --include-ignored"]
fn differential_sweep_full() {
    sweep(240);
}

/// The invariant checkers hold on randomized scenarios too, not just the
/// handpicked integration configurations: every closed-batch case in one
/// cross-product pass runs instrumented and must satisfy conservation,
/// causality, and FCFS admission.
/// Shard-count invariance: an eligible scenario produces bit-identical
/// observables at every shard count K ∈ {1, 2, 4, 8}, and every sharded
/// run is deterministic across thread interleavings (each K runs twice
/// and the fingerprints must agree).
#[test]
fn sharded_runs_are_bit_identical_across_shard_counts() {
    use parsched_core::{run_batch_sharded, shard_eligibility};
    let seed = env_u64("ORACLE_SEED").unwrap_or(DEFAULT_SEED);
    let mut checked = 0;
    for case in 0..96 {
        let scenario = Scenario::generate(seed, case);
        let config = scenario.config();
        if !scenario.arrivals.is_empty() || shard_eligibility(&config).is_err() {
            continue;
        }
        let batch = scenario.batch();
        let seq = run_batch_sharded(&config, batch.clone(), 1)
            .unwrap_or_else(|e| panic!("{e}\n{}", scenario.describe()));
        for k in [2usize, 4, 8] {
            let mut fingerprints = Vec::new();
            for pass in 0..2 {
                let par = run_batch_sharded(&config, batch.clone(), k)
                    .unwrap_or_else(|e| panic!("{e}\n{}", scenario.describe()));
                assert!(par.shards > 1, "eligible case must actually shard");
                assert_eq!(
                    par.response_times,
                    seq.response_times,
                    "K={k} pass={pass}\n{}",
                    scenario.describe()
                );
                assert_eq!(par.makespan, seq.makespan, "K={k}");
                assert_eq!(par.counters, seq.counters, "K={k}");
                assert_eq!(par.events, seq.events, "K={k}");
                fingerprints.push(par.fingerprint());
            }
            assert_eq!(
                fingerprints[0],
                fingerprints[1],
                "interleaving nondeterminism at K={k}\n{}",
                scenario.describe()
            );
            assert_eq!(fingerprints[0], seq.fingerprint(), "K={k}");
        }
        checked += 1;
        if checked >= 6 {
            break; // bounded test time; the sweep covers the rest
        }
    }
    assert!(checked >= 3, "too few eligible scenarios: {checked}");
}

#[test]
fn invariants_hold_on_random_scenarios() {
    use parsched_core::run_batch_observed;
    use parsched_oracle::invariants;
    let seed = env_u64("ORACLE_SEED").unwrap_or(DEFAULT_SEED);
    let mut checked = 0;
    for case in 0..48 {
        let scenario = Scenario::generate(seed, case);
        if !scenario.arrivals.is_empty() {
            // run_batch_observed models the paper's closed setting.
            continue;
        }
        let (result, obs) = run_batch_observed(&scenario.config(), scenario.batch())
            .unwrap_or_else(|e| panic!("{e}\n{}", scenario.describe()));
        invariants::check_event_stream(&obs.events);
        invariants::check_fcfs_admission(&obs.events);
        invariants::check_cpu_conservation(&obs.metrics, obs.layout.node_count, result.makespan);
        checked += 1;
    }
    assert!(checked >= 24, "too few closed-batch cases: {checked}");
}
