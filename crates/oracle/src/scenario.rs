//! Seeded random scenario generation.
//!
//! A [`Scenario`] is everything needed to reproduce one differential case:
//! the experiment configuration (topology × partition size × policy ×
//! machine variation) and the workload (application × software
//! architecture × batch mix × arrival process). Scenarios derive from a
//! `(seed, case)` pair through labelled [`DetRng`] substreams, so a
//! failure report carrying those two numbers replays bit-exactly — see
//! [`Scenario::describe`] for the replay instructions it prints.
//!
//! The four paper topologies, the three policy classes (static
//! space-sharing, pure time-sharing of the whole machine, hybrid
//! time-sharing over sub-partitions), both applications, and both software
//! architectures are covered *by construction*: case `i` takes combination
//! `i mod 48` of that cross product, and only the remaining knobs
//! (partition size, batch mix, queue backend, switching, placement,
//! discipline, ordering, arrivals) are randomized.

use parsched_arrivals::{
    ArrivalProcess, BoundedParetoDemand, DeterministicArrivals, PoissonArrivals, ServiceDemand,
};
use parsched_core::{Discipline, ExperimentConfig, Placement, PolicyKind};
use parsched_des::rng::DetRng;
use parsched_des::{QueueKind, SimDuration, SimTime};
use parsched_machine::{FaultPlan, JobSpec, LinkWindow, NodeCrash, RetryPolicy, Switching};
use parsched_topology::TopologyKind;
use parsched_workload::{paper_batch, App, Arch, BatchSizes, CostModel};

/// The three scheduling strategies the paper compares (§4): its "static"
/// and "time-sharing" policy kinds, with time-sharing split by whether it
/// runs over the whole machine or over sub-partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyClass {
    /// Static space-sharing: one job per partition, run to completion.
    Static,
    /// Pure time-sharing: one whole-machine partition, RR-job quanta.
    PureTs,
    /// Hybrid: time-sharing within partitions smaller than the machine.
    Hybrid,
}

impl PolicyClass {
    /// The driver-level policy this class maps to.
    pub fn policy(self) -> PolicyKind {
        match self {
            PolicyClass::Static => PolicyKind::Static,
            PolicyClass::PureTs | PolicyClass::Hybrid => PolicyKind::TimeSharing,
        }
    }
}

/// Batch submission orderings (mirrors `parsched_core::BatchOrder`, which
/// the generator picks among uniformly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// As generated.
    AsGiven,
    /// Ascending demand.
    SmallestFirst,
    /// Descending demand.
    LargestFirst,
}

/// One fully-specified differential case.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Case index under `seed` (selects the covered cross-product cell).
    pub case: u64,
    /// Root seed of the sweep this case belongs to.
    pub seed: u64,
    /// Partition interconnect.
    pub topology: TopologyKind,
    /// Total processors. 16 (the paper's machine) except for wormhole
    /// cases on fat-tree/dragonfly partitions, whose geometry dictates
    /// the node count.
    pub system_size: usize,
    /// Processors per partition.
    pub partition_size: usize,
    /// Which of the paper's three strategies.
    pub class: PolicyClass,
    /// Application (matmul / sort).
    pub app: App,
    /// Software architecture (fixed 16 processes / adaptive).
    pub arch: Arch,
    /// Batch composition.
    pub sizes: BatchSizes,
    /// Submission ordering.
    pub order: Order,
    /// Backend of the *optimized* engine under test (the oracle always
    /// uses its flat heap).
    pub queue: QueueKind,
    /// Message switching scheme.
    pub switching: Switching,
    /// Time-sharing coordination discipline.
    pub discipline: Discipline,
    /// Process-to-processor mapping.
    pub placement: Placement,
    /// Per-partition MPL override.
    pub mpl: Option<usize>,
    /// Per-job arrival instants (empty = closed batch at t = 0).
    pub arrivals: Vec<SimTime>,
    /// Declared fault schedule (empty for roughly two cases in three).
    pub faults: FaultPlan,
    /// Shard count for the conservative-parallel runner (1 = sequential;
    /// drawn > 1 for roughly one closed-batch case in three). The
    /// differential harness re-runs such cases sharded and demands
    /// bit-identical observables.
    pub shards: usize,
}

/// Partition sizes realizable for each paper topology on the 16-node
/// machine (a 2-node ring or mesh degenerates, so those start at 4).
fn valid_sizes(topo_idx: usize) -> &'static [usize] {
    match topo_idx {
        0 => &[1, 2, 4, 8, 16], // linear
        _ => &[4, 8, 16],       // ring, mesh, hypercube
    }
}

fn pick<T: Copy>(rng: &mut DetRng, xs: &[T]) -> T {
    xs[rng.uniform_u64(0, xs.len() as u64) as usize]
}

impl Scenario {
    /// Derive case `case` of the sweep rooted at `seed`.
    pub fn generate(seed: u64, case: u64) -> Scenario {
        let mut rng = DetRng::new(seed).substream_idx("oracle-scenario", case);

        // Covered cross product: topology (4) x policy class (3) x
        // application (2) x architecture (2) = 48 cells, visited round
        // robin by case index so any sweep of >= 48 cases covers them all.
        let cell = case % 48;
        let topo_idx = (cell % 4) as usize;
        let class = [PolicyClass::Static, PolicyClass::PureTs, PolicyClass::Hybrid]
            [(cell / 4 % 3) as usize];
        let app = [App::MatMul, App::Sort][(cell / 12 % 2) as usize];
        let arch = [Arch::Fixed, Arch::Adaptive][(cell / 24) as usize];

        let topology = [
            TopologyKind::Linear,
            TopologyKind::Ring,
            TopologyKind::Mesh { rows: 0, cols: 0 },
            TopologyKind::Hypercube { dim: 0 },
        ][topo_idx];

        let partition_size = match class {
            PolicyClass::PureTs => 16,
            PolicyClass::Static => pick(&mut rng, valid_sizes(topo_idx)),
            PolicyClass::Hybrid => {
                let sizes: Vec<usize> = valid_sizes(topo_idx)
                    .iter()
                    .copied()
                    .filter(|&s| s < 16)
                    .collect();
                pick(&mut rng, &sizes)
            }
        };

        // Batch mix: small enough that a sweep of hundreds of cases stays
        // in test time, large enough to multiprogram every partition.
        let jobs = rng.uniform_u64(3, 7) as usize;
        let sizes = BatchSizes {
            jobs,
            small_count: rng.uniform_u64(0, jobs as u64 + 1) as usize,
            // Matrices must split over up to 16 processes (n >= width).
            mm_small: rng.uniform_u64(16, 29) as usize,
            mm_large: rng.uniform_u64(32, 57) as usize,
            sort_small: rng.uniform_u64(300, 1201) as usize,
            sort_large: rng.uniform_u64(1500, 4001) as usize,
        };

        let order = pick(
            &mut rng,
            &[Order::AsGiven, Order::SmallestFirst, Order::LargestFirst],
        );
        let queue = pick(
            &mut rng,
            &[QueueKind::BinaryHeap, QueueKind::Calendar, QueueKind::Adaptive],
        );
        let switching = pick(
            &mut rng,
            &[
                Switching::PacketizedSaf,
                Switching::StoreAndForward,
                Switching::CutThrough,
            ],
        );
        let placement = pick(&mut rng, &[Placement::RoundRobin, Placement::Staggered]);

        // Gang slots and MPL bounds only make sense under time-sharing.
        let time_sharing = class != PolicyClass::Static;
        let discipline = if time_sharing && rng.uniform_u64(0, 4) == 0 {
            Discipline::Gang {
                slot: SimDuration::from_millis(rng.uniform_u64(2, 9)),
            }
        } else {
            Discipline::Uncoordinated
        };
        let mpl = if time_sharing && rng.uniform_u64(0, 3) == 0 {
            Some(rng.uniform_u64(2, 4) as usize)
        } else {
            None
        };

        // One case in three runs open. Arrival instants come from the
        // arrivals crate's samplers on a dedicated substream: Poisson,
        // deterministic-rate, or bursty bounded-Pareto gaps. The main
        // stream draws only the gate, the process kind, and one shape
        // parameter — all inside the gate — so closed-batch cases keep
        // the exact draw sequence of earlier sweeps, and open cases
        // consume a fixed number of main-stream draws regardless of
        // batch size. FCFS order = index order by construction (every
        // process yields nondecreasing instants).
        let arrivals = if rng.uniform_u64(0, 3) == 0 {
            let kind = rng.uniform_u64(0, 3);
            let period_ms = rng.uniform_u64(4, 17); // ignored unless kind 1
            let arng = DetRng::new(seed).substream_idx("oracle-arrivals", case);
            match kind {
                0 => PoissonArrivals::new(SimDuration::from_millis(10), arng)
                    .take_arrivals(jobs),
                1 => DeterministicArrivals::new(SimDuration::from_millis(period_ms))
                    .take_arrivals(jobs),
                _ => {
                    // Bursty stream: heavy-tailed interarrival gaps.
                    let mut gaps = BoundedParetoDemand::new(
                        1.5,
                        SimDuration::from_millis(1),
                        SimDuration::from_millis(80),
                        arng,
                    );
                    let mut at = SimTime::ZERO;
                    (0..jobs)
                        .map(|_| {
                            at += gaps.sample();
                            at
                        })
                        .collect()
                }
            }
        } else {
            Vec::new()
        };

        // Fault plan (~one case in three): crash recovery, link outages and
        // corrupt-retry must be bit-identical across engines too. Drawn
        // *after* every other knob so fault-free scenarios keep the exact
        // draws (and thus behavior) of a sweep without fault coverage.
        let faults = if rng.uniform_u64(0, 3) == 0 {
            let mut plan = FaultPlan {
                // Generous budget: with drop_prob <= 8% the chance of a
                // message exhausting 16 retries is ~1e-18, so randomized
                // sweeps never fail a job permanently by bad luck.
                retry: RetryPolicy {
                    max_retries: 16,
                    ..RetryPolicy::default()
                },
                ..FaultPlan::default()
            };
            // One fail-stop crash, only when the partition keeps survivors
            // for the requeued job to land on.
            if partition_size >= 2 && rng.uniform_u64(0, 2) == 0 {
                plan.crashes.push(NodeCrash {
                    node: rng.uniform_u64(0, 16) as u32,
                    at: SimTime(rng.uniform_u64(1, 61) * 1_000_000), // 1..60 ms
                });
            }
            // Flaky links on (2k, 2k+1) pairs — adjacent in every paper
            // topology when both ends share a partition; pairs that are
            // not wired are ignored by the machine, so every draw is safe.
            for _ in 0..rng.uniform_u64(0, 3) {
                let pair = rng.uniform_u64(0, 8) as u32;
                let down = rng.uniform_u64(0, 21) * 1_000_000;
                let dur = rng.uniform_u64(1, 11) * 1_000_000;
                plan.links.push(LinkWindow {
                    from: 2 * pair,
                    to: 2 * pair + 1,
                    down_at: SimTime(down),
                    up_at: SimTime(down + dur),
                });
            }
            // Mild per-hop corruption through a dedicated seeded stream.
            if rng.uniform_u64(0, 2) == 0 {
                plan.drop_prob = rng.uniform_u64(1, 9) as f64 / 100.0;
                plan.drop_seed = rng.uniform_u64(0, u64::MAX);
            }
            // Occasionally arm the delivery timeout. The value must clear
            // the *congested* delivery tail, not just the longest outage: a
            // timeout below it marks attempts stale faster than they can
            // complete, and the owning job requeues and fails forever (a
            // 250 ms draw livelocked 16-node linear SAF matmul cases). At
            // 10 s it never fires here — the sweep's coverage is the
            // per-attempt arm/cancel timer churn staying bit-identical
            // across engines; unit tests cover the firing paths.
            if rng.uniform_u64(0, 3) == 0 {
                plan.retry.msg_timeout = Some(SimDuration::from_millis(10_000));
            }
            plan
        } else {
            FaultPlan::default()
        };

        // Sharded execution (~one closed-batch case in three): the
        // conservative-parallel runner must reproduce the sequential
        // observables bit-for-bit at any shard count — including via its
        // sequential fallback when the configuration is ineligible. Drawn
        // after every other knob so earlier draws stay stable.
        let shards = if arrivals.is_empty() && rng.uniform_u64(0, 3) == 0 {
            pick(&mut rng, &[2usize, 4, 8])
        } else {
            1
        };

        // Dynamic-quantum discipline (~one uncoordinated time-sharing
        // case in four): the per-partition quantum retunes to the mean
        // remaining demand at every membership change. Drawn after every
        // other knob so earlier draws stay stable; a sharded draw stays
        // valid — the runner's eligibility gate rejects the discipline
        // and its sequential fallback must match bit for bit like any
        // other ineligible case.
        let discipline = if time_sharing
            && matches!(discipline, Discipline::Uncoordinated)
            && rng.uniform_u64(0, 4) == 0
        {
            Discipline::DynamicQuantum {
                base: SimDuration::from_millis(rng.uniform_u64(1, 5)),
            }
        } else {
            discipline
        };

        // Wormhole interconnect draws (~one case in three): flit-level
        // switching over the topologies whose escape classes earn their
        // keep — torus (dateline VCs), fat-tree (up/down turn class) and
        // dragonfly (global-phase classes). The machine size follows the
        // partition geometry: fat-tree and dragonfly partitions are not
        // 16-node, so pure time-sharing gets one whole-fabric partition
        // and the space-sharing classes get two. Drawn after every other
        // knob so earlier sweeps keep their exact draw sequences.
        let mut system_size = 16;
        let mut topology = topology;
        let mut partition_size = partition_size;
        let mut switching = switching;
        let mut faults = faults;
        let mut arch = arch;
        if rng.uniform_u64(0, 3) == 0 {
            switching = Switching::Wormhole;
            let whole = class == PolicyClass::PureTs;
            match rng.uniform_u64(0, 3) {
                0 => {
                    topology = TopologyKind::Torus { rows: 0, cols: 0 };
                    partition_size = if whole {
                        16
                    } else {
                        pick(&mut rng, &[4usize, 8])
                    };
                }
                1 => {
                    topology = TopologyKind::FatTree { k: 2 };
                    partition_size = 7;
                    system_size = if whole { 7 } else { 14 };
                }
                _ => {
                    topology = TopologyKind::Dragonfly { a: 2, p: 1, h: 1 };
                    partition_size = 12;
                    system_size = if whole { 12 } else { 24 };
                }
            }
            // The fault draws above assumed the 16-node machine; keep
            // only the declared events whose nodes exist on this one
            // (non-adjacent survivors are ignored by the machine as
            // always).
            faults.crashes.retain(|c| (c.node as usize) < system_size);
            faults
                .links
                .retain(|w| (w.from as usize) < system_size && (w.to as usize) < system_size);
            // Sort's divide-and-conquer tree needs a power-of-two process
            // count, and the adaptive architecture sets it to the partition
            // size — which the 7-host fat-tree and 12-node dragonfly break.
            // Those cells fall back to the fixed 16-process architecture,
            // which runs on a partition of any size (§4.3).
            if app == App::Sort && !partition_size.is_power_of_two() {
                arch = Arch::Fixed;
            }
        }

        // Node-index widening (one case in 24): stretch the same scenario
        // onto a machine crossing the old 65 536-node index ceiling. The
        // occupied partitions keep their exact geometry — the machine just
        // gains thousands of idle sibling partitions — so any residual
        // 16-bit index assumption (a wrap aliasing high nodes onto low
        // ones) shows up as a divergence or invariant breach end to end.
        // Pure time-sharing keeps its whole-machine single partition, so
        // only the space-sharing classes stretch. Drawn last so earlier
        // sweeps keep their exact draw sequences.
        if class != PolicyClass::PureTs && rng.uniform_u64(0, 24) == 0 {
            system_size = 65_537usize.div_ceil(partition_size) * partition_size;
        }

        Scenario {
            case,
            seed,
            topology,
            system_size,
            partition_size,
            class,
            app,
            arch,
            sizes,
            order,
            queue,
            switching,
            discipline,
            placement,
            mpl,
            arrivals,
            faults,
            shards,
        }
    }

    /// The experiment configuration this scenario runs under.
    pub fn config(&self) -> ExperimentConfig {
        let mut config =
            ExperimentConfig::paper(self.partition_size, self.topology, self.class.policy());
        config.system_size = self.system_size;
        config.queue = self.queue;
        config.machine.switching = self.switching;
        config.discipline = self.discipline;
        config.placement = self.placement;
        config.mpl = self.mpl;
        config.machine.faults = self.faults.clone();
        config
    }

    /// The (ordered) batch this scenario submits.
    pub fn batch(&self) -> Vec<JobSpec> {
        let batch = paper_batch(
            self.app,
            self.arch,
            self.partition_size,
            &self.sizes,
            &CostModel::default(),
        );
        let order = match self.order {
            Order::AsGiven => parsched_core::BatchOrder::AsGiven,
            Order::SmallestFirst => parsched_core::BatchOrder::SmallestFirst,
            Order::LargestFirst => parsched_core::BatchOrder::LargestFirst,
        };
        parsched_core::order_batch(batch, order)
    }

    /// A self-contained description: every knob plus how to replay this
    /// exact case from its `(seed, case)` pair.
    pub fn describe(&self) -> String {
        format!(
            "oracle scenario case={case} seed={seed:#x}\n\
             topology={topology:?} system_size={n} partition_size={p} class={class:?}\n\
             app={app:?} arch={arch:?} sizes={sizes:?}\n\
             order={order:?} queue={queue:?} switching={switching:?}\n\
             discipline={discipline:?} placement={placement:?} mpl={mpl:?} \
             shards={shards}\n\
             arrivals={arrivals:?}\n\
             faults={faults:?}\n\
             replay: ORACLE_SEED={seed:#x} ORACLE_ONLY_CASE={case} \
             cargo test -p parsched-oracle --test differential -- --include-ignored --nocapture",
            case = self.case,
            seed = self.seed,
            topology = self.topology,
            n = self.system_size,
            p = self.partition_size,
            class = self.class,
            app = self.app,
            arch = self.arch,
            sizes = self.sizes,
            order = self.order,
            queue = self.queue,
            switching = self.switching,
            discipline = self.discipline,
            placement = self.placement,
            mpl = self.mpl,
            shards = self.shards,
            arrivals = self.arrivals,
            faults = self.faults,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for case in 0..16 {
            let a = Scenario::generate(0xABCD, case);
            let b = Scenario::generate(0xABCD, case);
            assert_eq!(a.describe(), b.describe());
            assert_eq!(a.batch().len(), b.batch().len());
        }
    }

    #[test]
    fn sweeps_cover_the_cross_product() {
        use std::collections::HashSet;
        // The wormhole draw (~1/3 of cases) replaces a case's topology
        // (and, for sort cells on non-power-of-two partitions, flips the
        // architecture to fixed), so per-cell topology coverage needs two
        // passes over the 48-cell round robin; the policy x app x arch
        // product survives a pass with high probability and is pinned by
        // the fixed seed.
        let mut paper_cells = HashSet::new();
        let mut workload_cells = HashSet::new();
        for case in 0..96 {
            let s = Scenario::generate(1, case);
            if case < 48 {
                workload_cells.insert((
                    s.class.policy() == PolicyKind::Static,
                    s.class == PolicyClass::Hybrid,
                    format!("{:?}", s.app),
                    format!("{:?}", s.arch),
                ));
            }
            if s.switching != Switching::Wormhole {
                paper_cells.insert((
                    format!("{:?}", s.topology),
                    s.class.policy() == PolicyKind::Static,
                    s.class == PolicyClass::Hybrid,
                    format!("{:?}", s.app),
                    format!("{:?}", s.arch),
                ));
            }
        }
        assert_eq!(workload_cells.len(), 12, "workload product not covered");
        // 48 cells, each surviving a pass with probability 2/3: two passes
        // leave a handful uncovered — demand the bulk, deterministically
        // pinned by the fixed seed.
        assert!(
            paper_cells.len() >= 40,
            "paper cross product too sparse: {}",
            paper_cells.len()
        );
    }

    #[test]
    fn partition_plans_are_always_realizable() {
        for case in 0..96 {
            let s = Scenario::generate(7, case);
            // `plan` panics on unrealizable combinations.
            let plan = s.config().plan();
            assert_eq!(plan.system_size, s.system_size);
            if s.switching != Switching::Wormhole {
                assert!(
                    s.system_size == 16 || s.system_size > 65_536,
                    "non-wormhole cases are 16-node or stretched past the \
                     old u16 ceiling, got {}",
                    s.system_size
                );
            }
        }
    }

    #[test]
    fn wormhole_draws_cover_the_new_interconnects() {
        use std::collections::HashSet;
        let mut wormhole = 0;
        let mut kinds = HashSet::new();
        for case in 0..96 {
            let s = Scenario::generate(7, case);
            if s.switching != Switching::Wormhole {
                assert!(s.system_size == 16 || s.system_size > 65_536);
                continue;
            }
            wormhole += 1;
            match s.topology {
                TopologyKind::Torus { .. } => {
                    kinds.insert("torus");
                    assert!(s.system_size == 16 || s.system_size > 65_536);
                    assert!([4, 8, 16].contains(&s.partition_size));
                }
                TopologyKind::FatTree { k: 2 } => {
                    kinds.insert("fat-tree");
                    assert_eq!(s.partition_size, 7);
                    assert!([7, 14].contains(&s.system_size) || s.system_size > 65_536);
                }
                TopologyKind::Dragonfly { a: 2, p: 1, h: 1 } => {
                    kinds.insert("dragonfly");
                    assert_eq!(s.partition_size, 12);
                    assert!([12, 24].contains(&s.system_size) || s.system_size > 65_536);
                }
                other => panic!("wormhole case drew topology {other:?}"),
            }
            // Whole-machine time-sharing really is whole-machine.
            if s.class == PolicyClass::PureTs {
                assert_eq!(s.partition_size, s.system_size);
            }
            // Resized machines keep only fault events their nodes cover.
            for c in &s.faults.crashes {
                assert!((c.node as usize) < s.system_size);
            }
            for l in &s.faults.links {
                assert!((l.from as usize) < s.system_size);
                assert!((l.to as usize) < s.system_size);
            }
        }
        // ~1 in 3 of 96 cases; generous slack.
        assert!((16..=50).contains(&wormhole), "wormhole cases: {wormhole}");
        assert_eq!(kinds.len(), 3, "missing interconnects: {kinds:?}");
    }

    #[test]
    fn shard_draws_cover_closed_batches() {
        let mut sharded = 0;
        for case in 0..96 {
            let s = Scenario::generate(7, case);
            if s.shards > 1 {
                assert!(s.arrivals.is_empty(), "sharded draw on an open case");
                assert!([2, 4, 8].contains(&s.shards), "bad count {}", s.shards);
                assert!(s.describe().contains("shards="));
                sharded += 1;
            }
        }
        // ~2/9 of 96 cases (closed × drawn); generous slack.
        assert!((10..=45).contains(&sharded), "sharded cases: {sharded}");
    }

    #[test]
    fn open_cases_draw_sampler_arrival_streams() {
        let mut open = 0;
        let mut deterministic = 0;
        for case in 0..192 {
            let s = Scenario::generate(7, case);
            if s.arrivals.is_empty() {
                continue;
            }
            open += 1;
            assert_eq!(s.arrivals.len(), s.sizes.jobs);
            assert!(s.arrivals[0] > SimTime::ZERO, "arrival races t = 0");
            assert!(
                s.arrivals.windows(2).all(|w| w[0] <= w[1]),
                "arrivals not FCFS-ordered: {:?}",
                s.arrivals
            );
            let gaps: Vec<u64> = s
                .arrivals
                .windows(2)
                .map(|w| w[1].nanos() - w[0].nanos())
                .collect();
            if gaps.len() > 1 && gaps.windows(2).all(|g| g[0] == g[1]) {
                deterministic += 1;
            }
        }
        // ~1 in 3 of 192 cases; generous slack.
        assert!((40..=90).contains(&open), "open cases: {open}");
        // All three process kinds must appear; the deterministic one is
        // the only one detectable from the instants alone.
        assert!(deterministic >= 1, "no deterministic-rate stream drawn");
        assert!(open > deterministic, "no randomized stream drawn");
    }

    #[test]
    fn dynamic_quantum_cases_are_drawn_under_time_sharing_only() {
        let mut dynq = 0;
        for case in 0..96 {
            let s = Scenario::generate(7, case);
            if let Discipline::DynamicQuantum { base } = s.discipline {
                assert!(s.class != PolicyClass::Static, "dynq on static policy");
                assert!(base > SimDuration::ZERO);
                dynq += 1;
            }
        }
        // 2/3 time-sharing x ~3/4 uncoordinated x 1/4 flip ≈ 12 of 96.
        assert!((4..=28).contains(&dynq), "dynamic-quantum cases: {dynq}");
    }

    #[test]
    fn fault_plans_are_drawn_and_well_formed() {
        let mut faulty = 0;
        for case in 0..96 {
            let s = Scenario::generate(7, case);
            assert_eq!(s.config().machine.faults.is_empty(), s.faults.is_empty());
            if s.faults.is_empty() {
                continue;
            }
            faulty += 1;
            for c in &s.faults.crashes {
                assert!(s.partition_size >= 2, "crash without survivors");
                assert!(c.node < 16);
            }
            assert!(s.faults.crashes.len() <= 1);
            for l in &s.faults.links {
                assert!(l.up_at > l.down_at, "degenerate outage window");
            }
            assert!(s.faults.drop_prob <= 0.08);
            assert!(s.describe().contains("faults=FaultPlan"));
        }
        // ~1 in 3 of 96 cases; generous slack for the plan-empty corner.
        assert!((14..=50).contains(&faulty), "faulty cases: {faulty}");
    }
}
