//! Runtime invariant checkers, usable from any test.
//!
//! Each checker asserts a law the simulation must obey regardless of
//! policy, topology, workload, or engine; a violation panics with a
//! message naming the law and the offending state, so these slot directly
//! into `#[test]` bodies. They come in two groups:
//!
//! * **machine-state checkers** ([`check_message_conservation`],
//!   [`check_work_conservation`]) read only the machine's public counters
//!   and job records — they work with observability recording *off*;
//! * **event-stream checkers** ([`check_event_stream`],
//!   [`check_fcfs_admission`]) and the gauge checker
//!   ([`check_cpu_conservation`]) consume what a `CollectRecorder` /
//!   `MachineMetrics` captured — recording *on*.

use parsched_des::SimDuration;
use parsched_machine::{Counters, JobState, JobSummary, Machine, MachineMetrics};
use parsched_obs::{ObsEvent, TimedEvent};
use std::collections::HashMap;

/// At quiesce every injected message has been consumed or declared
/// dropped by a fault: nothing is *silently* lost. On a fault-free run
/// `messages_dropped` is zero and this is the strict sent == consumed
/// law. Valid after a run that drained with all jobs in a terminal
/// state. Works with recording off.
pub fn check_message_conservation(machine: &Machine) {
    let c = &machine.counters;
    assert_eq!(
        c.messages_sent,
        c.messages_consumed + c.messages_dropped,
        "message conservation violated: {} sent != {} consumed + {} dropped at quiesce",
        c.messages_sent,
        c.messages_consumed,
        c.messages_dropped
    );
}

/// Flit and credit conservation under wormhole switching, from the
/// counters alone (recording off). Every flit a worm injected was either
/// ejected at a destination or accounted dropped by a drain (link outage
/// or job kill), and every credit a link transmit consumed was returned
/// by the downstream buffer drain — nothing leaks, nothing is minted.
/// Trivially true (all zeros) under the other switching modes, so it is
/// safe to call unconditionally after any drained run.
pub fn check_flit_conservation(counters: &Counters) {
    assert_eq!(
        counters.flits_injected,
        counters.flits_ejected + counters.flits_dropped,
        "flit conservation violated: {} injected != {} ejected + {} dropped",
        counters.flits_injected,
        counters.flits_ejected,
        counters.flits_dropped
    );
    assert_eq!(
        counters.credits_issued,
        counters.credits_returned,
        "credit conservation violated: {} issued != {} returned at quiesce",
        counters.credits_issued,
        counters.credits_returned
    );
}

/// Work conservation at completion, with recording off:
///
/// * every *completed* job accrued at least its sequential compute demand
///   (CPU time = compute + messaging software costs, so demand is a hard
///   floor — losing a quantum must never lose *work*); a fault-killed
///   incarnation (`Failed`) owes no floor, but the CPU it did burn still
///   counts against capacity;
/// * total CPU time across jobs fits in `nodes x makespan` (the machine
///   cannot mint CPU time, faults or not).
pub fn check_work_conservation(machine: &Machine, makespan: SimDuration) {
    let nodes = machine.net().nodes() as u64;
    let mut total = SimDuration::ZERO;
    for job in machine.jobs() {
        assert!(
            matches!(job.state, JobState::Done | JobState::Failed),
            "job {} not terminal at quiesce",
            job.name
        );
        let summary = JobSummary::capture(machine, job.id);
        if job.state == JobState::Done {
            assert!(
                summary.cpu_time >= summary.demand,
                "work lost: job {} accrued {} CPU < demand {}",
                job.name,
                summary.cpu_time,
                summary.demand
            );
        }
        total += summary.cpu_time;
    }
    let capacity = SimDuration::from_nanos(makespan.nanos() * nodes);
    assert!(
        total <= capacity,
        "CPU time minted: jobs accrued {total} > {nodes} nodes x {makespan} span"
    );
}

/// Causality and protocol well-formedness of a recorded event stream:
///
/// * timestamps never decrease;
/// * a message is delivered only after it was sent, to the node it was
///   sent to, under the job that sent it (message-id recycling respected:
///   an id may be reused only once its previous flight delivered);
/// * hops only move messages that are in flight or declared dropped (a
///   dropped message's in-flight references drain without acting on it);
/// * per node, handler and quantum start/end events strictly alternate
///   and agree on what was running;
/// * at the end of the stream nothing is left in flight or running —
///   undelivered messages are allowed only if a `MsgDropped` accounted
///   for them.
pub fn check_event_stream(events: &[TimedEvent]) {
    use std::collections::HashSet;
    let mut last = None;
    // msg id -> (job, dst) while in flight (sent, not yet delivered).
    let mut in_flight: HashMap<u32, (u32, u32)> = HashMap::new();
    // msg ids terminally dropped by a fault (slot may be recycled later).
    let mut dropped: HashSet<u32> = HashSet::new();
    // node -> msg of the running handler.
    let mut handler: HashMap<u32, u32> = HashMap::new();
    // node -> (job, rank) of the running low-priority slice.
    let mut quantum: HashMap<u32, (u32, u32)> = HashMap::new();
    for (i, (at, ev)) in events.iter().enumerate() {
        if let Some(prev) = last {
            assert!(
                *at >= prev,
                "event {i} at {at} precedes its predecessor at {prev}"
            );
        }
        last = Some(*at);
        match *ev {
            ObsEvent::MsgSend { msg, job, dst, .. } => {
                // A dropped message's slot may be recycled by a new send.
                dropped.remove(&msg);
                let stale = in_flight.insert(msg, (job, dst));
                assert!(
                    stale.is_none(),
                    "event {i}: msg {msg} re-sent while still in flight"
                );
            }
            ObsEvent::MsgDeliver { msg, job, node } => {
                let Some((sjob, sdst)) = in_flight.remove(&msg) else {
                    panic!("event {i}: msg {msg} delivered but never sent (causality)")
                };
                assert_eq!(
                    (sjob, sdst),
                    (job, node),
                    "event {i}: msg {msg} delivered to job {job}/node {node}, \
                     sent for job {sjob}/node {sdst}"
                );
            }
            ObsEvent::HopStart { msg, .. } | ObsEvent::HopEnd { msg, .. } => {
                assert!(
                    in_flight.contains_key(&msg) || dropped.contains(&msg),
                    "event {i}: hop of msg {msg} which is not in flight"
                );
            }
            // Wormhole protocol events name in-flight worms (a drain fires
            // before the retry/drop that disposes of the message, so its
            // message is still in flight at that point).
            ObsEvent::WormVcAlloc { msg, .. }
            | ObsEvent::WormStall { msg, .. }
            | ObsEvent::WormDrained { msg, .. } => {
                assert!(
                    in_flight.contains_key(&msg) || dropped.contains(&msg),
                    "event {i}: worm event for msg {msg} which is not in flight"
                );
            }
            ObsEvent::MsgDropped { msg, .. } => {
                // In flight (fault killed it mid-route) or already
                // delivered but never to be consumed (mailbox purge of a
                // killed job) — either way it is accounted, not lost.
                in_flight.remove(&msg);
                dropped.insert(msg);
            }
            ObsEvent::HandlerStart { node, msg } => {
                let prev = handler.insert(node, msg);
                assert!(
                    prev.is_none(),
                    "event {i}: handler for msg {msg} started on node {node} \
                     while handler for msg {prev:?} still runs"
                );
            }
            ObsEvent::HandlerEnd { node, msg } => {
                assert_eq!(
                    handler.remove(&node),
                    Some(msg),
                    "event {i}: handler end on node {node} without matching start"
                );
            }
            ObsEvent::QuantumStart { node, job, rank } => {
                let prev = quantum.insert(node, (job, rank));
                assert!(
                    prev.is_none(),
                    "event {i}: quantum started on node {node} \
                     while {prev:?} still runs"
                );
            }
            ObsEvent::QuantumEnd { node, job, rank, .. } => {
                assert_eq!(
                    quantum.remove(&node),
                    Some((job, rank)),
                    "event {i}: quantum end on node {node} without matching start"
                );
            }
            ObsEvent::JobArrived { .. }
            | ObsEvent::JobLoaded { .. }
            | ObsEvent::JobFinished { .. }
            | ObsEvent::PartitionAdmit { .. }
            | ObsEvent::NodeCrashed { .. }
            | ObsEvent::LinkDown { .. }
            | ObsEvent::LinkUp { .. }
            | ObsEvent::MsgRetry { .. }
            | ObsEvent::MsgTimeout { .. }
            | ObsEvent::JobFailed { .. }
            | ObsEvent::JobRequeued { .. }
            | ObsEvent::JobSubmitted { .. }
            | ObsEvent::JobDeparted { .. }
            | ObsEvent::ShardPhase { .. } => {}
        }
    }
    assert!(
        in_flight.is_empty(),
        "{} messages still in flight at end of stream: {:?}",
        in_flight.len(),
        in_flight.keys().take(8).collect::<Vec<_>>()
    );
    assert!(handler.is_empty(), "handlers still running: {handler:?}");
    assert!(quantum.is_empty(), "quanta still open: {quantum:?}");
}

/// FCFS admission under the paper's policies: job ids are assigned in
/// arrival order and the super scheduler's queue never lets a later job
/// overtake an earlier one, so `PartitionAdmit` events carry strictly
/// increasing job ids. Valid for FCFS runs (any closed batch; open
/// arrivals seeded in index order).
pub fn check_fcfs_admission(events: &[TimedEvent]) {
    let mut last: Option<u32> = None;
    for (at, ev) in events {
        if let ObsEvent::PartitionAdmit { job, partition } = *ev {
            if let Some(prev) = last {
                assert!(
                    job > prev,
                    "FCFS violated at {at}: job {job} admitted to partition \
                     {partition} after job {prev}"
                );
            }
            last = Some(job);
        }
    }
}

/// Per-node CPU conservation from the time-weighted gauges: busy and idle
/// are exact complements, so their integrals sum to the run span exactly
/// (0/1 gauges stepped at integer-nanosecond instants are exact in f64).
/// Recording on.
pub fn check_cpu_conservation(metrics: &MachineMetrics, node_count: u32, span: SimDuration) {
    let span = span.nanos() as f64;
    for node in 0..node_count {
        let busy = metrics.registry.integral_ns(metrics.cpu_busy_id(node));
        let idle = metrics.registry.integral_ns(metrics.cpu_idle_id(node));
        assert_eq!(
            busy + idle,
            span,
            "CPU conservation violated on node {node}: busy {busy} + idle {idle} != span {span}"
        );
    }
}
