//! # parsched-oracle
//!
//! The correctness backstop for the optimized simulation stack: PRs keep
//! rewriting the hot paths (slab messaging, calendar/adaptive queues,
//! now-queue bypass, timing wheel with eager cancel) under a promise of
//! bit-identical simulated results, and this crate is what holds them to
//! it.
//!
//! Three layers:
//!
//! * [`engine`] — a deliberately naive reference engine (one flat
//!   `BinaryHeap`, tombstone cancellation, nothing else) that honors the
//!   same [`parsched_des::EventScheduler`] contract as the optimized
//!   engine, so the *same* machine/driver code runs under both;
//! * [`scenario`] + [`diff`] — a seeded generator over topology ×
//!   partition size × policy × workload × software architecture × batch
//!   mix, and a differential harness asserting bit-identical event order,
//!   response times, and final stats between the two engines, with
//!   self-contained replay seeds on failure;
//! * [`invariants`] — runtime checkers for conservation laws, causality,
//!   and FCFS admission ordering, callable from any test with recording
//!   on or off.
//!
//! Run the fast sweep with `cargo test -p parsched-oracle`; the long
//! randomized sweep with `ORACLE_CASES=400 cargo test -p parsched-oracle
//! -- --include-ignored` (or `scripts/tier1.sh tier1-full`). A failing
//! case prints its `(seed, case)` replay line and dumps the report under
//! `target/repro/`.

#![warn(missing_docs)]

pub mod diff;
pub mod engine;
pub mod invariants;
pub mod scenario;

pub use diff::{dump_repro, run_differential, Divergence, RunCapture, TraceModel};
pub use engine::OracleEngine;
pub use scenario::{Order, PolicyClass, Scenario};
