//! The differential harness: one scenario, two engines, zero tolerance.
//!
//! Both runs construct identical machines and drivers; the only difference
//! is the engine driving them — the optimized three-tier
//! [`parsched_des::Engine`] versus the naive [`OracleEngine`]. The
//! [`TraceModel`] wrapper records every `(time, event)` the engine hands
//! the model, so a comparison failure points at the *first* event where
//! the histories fork, not just at diverged end-of-run statistics.
//!
//! On divergence, [`run_differential`] returns a [`Divergence`] whose
//! `detail` embeds the scenario's replay line, and [`dump_repro`] writes
//! the whole report under `target/repro/` for offline triage.

use crate::engine::OracleEngine;
use crate::scenario::Scenario;
use parsched_core::{run_batch_sharded, Driver, ExperimentConfig};
use parsched_des::{
    Engine, EventScheduler, EventSeeder, Model, QueueKind, RunOutcome, SimDuration, SimTime,
};
use parsched_machine::{Counters, Event, JobSpec, Machine, SystemNet};
use std::path::PathBuf;

/// A model wrapper that records every event the engine delivers, in
/// order, alongside its firing time. Recording is pure observation: the
/// wrapped model sees exactly the calls it would see bare.
pub struct TraceModel<M: Model> {
    /// The wrapped model.
    pub inner: M,
    /// Every `(time, event)` handled so far, in simulation order.
    pub trace: Vec<(SimTime, M::Event)>,
}

impl<M: Model> TraceModel<M> {
    /// Wrap `inner` with an empty trace.
    pub fn new(inner: M) -> Self {
        TraceModel {
            inner,
            trace: Vec::new(),
        }
    }
}

impl<M: Model> Model for TraceModel<M>
where
    M::Event: Clone,
{
    type Event = M::Event;

    fn handle(
        &mut self,
        now: SimTime,
        event: Self::Event,
        sched: &mut impl EventScheduler<Self::Event>,
    ) {
        self.trace.push((now, event.clone()));
        self.inner.handle(now, event, sched);
    }
}

/// Everything one run produces that the other run must reproduce exactly.
#[derive(Debug, Clone)]
pub struct RunCapture {
    /// The full event history.
    pub trace: Vec<(SimTime, Event)>,
    /// Per-job response times in submission order.
    pub response_times: Vec<SimDuration>,
    /// Batch completion time.
    pub makespan: SimDuration,
    /// Machine-wide counters at completion.
    pub counters: Counters,
    /// Engine events processed.
    pub events: u64,
}

/// The engine surface the harness needs, implemented by both engines so
/// one generic runner drives either.
trait DiffEngine<E>: EventSeeder<E> {
    fn set_max_events(&mut self, n: u64);
    fn run_model<M: Model<Event = E>>(&mut self, model: &mut M) -> RunOutcome;
    fn now(&self) -> SimTime;
    fn events_processed(&self) -> u64;
}

impl<E> DiffEngine<E> for Engine<E> {
    fn set_max_events(&mut self, n: u64) {
        self.max_events = n;
    }
    fn run_model<M: Model<Event = E>>(&mut self, model: &mut M) -> RunOutcome {
        self.run(model)
    }
    fn now(&self) -> SimTime {
        Engine::now(self)
    }
    fn events_processed(&self) -> u64 {
        Engine::events_processed(self)
    }
}

impl<E> DiffEngine<E> for OracleEngine<E> {
    fn set_max_events(&mut self, n: u64) {
        self.max_events = n;
    }
    fn run_model<M: Model<Event = E>>(&mut self, model: &mut M) -> RunOutcome {
        self.run(model)
    }
    fn now(&self) -> SimTime {
        OracleEngine::now(self)
    }
    fn events_processed(&self) -> u64 {
        OracleEngine::events_processed(self)
    }
}

fn run_capture<Eng: DiffEngine<Event>>(
    mut engine: Eng,
    config: &ExperimentConfig,
    batch: Vec<JobSpec>,
    arrivals: &[SimTime],
) -> Result<RunCapture, String> {
    let plan = config.plan();
    let net = SystemNet::from_plan(&plan);
    let machine = Machine::new(config.machine.clone(), net);
    let mut driver = Driver::new(
        machine,
        plan,
        config.policy,
        config.rule,
        config.placement,
        batch,
    );
    if let Some(mpl) = config.mpl {
        driver = driver.with_mpl(mpl);
    }
    driver = driver.with_discipline(config.discipline);
    if !arrivals.is_empty() {
        driver = driver.with_arrivals(arrivals.to_vec());
    }
    engine.set_max_events(config.machine.max_events);
    driver.start(&mut engine);
    let mut model = TraceModel::new(driver);
    let outcome = engine.run_model(&mut model);
    let TraceModel { inner: driver, trace } = model;
    if outcome != RunOutcome::Drained || !driver.all_done() {
        return Err(format!(
            "run failed ({outcome:?}):\n{}",
            driver.diagnose()
        ));
    }
    Ok(RunCapture {
        trace,
        response_times: driver.response_times(),
        makespan: engine.now().since(SimTime::ZERO),
        counters: driver.machine.counters.clone(),
        events: engine.events_processed(),
    })
}

/// Run `scenario` under the optimized engine with the scenario's backend.
pub fn run_optimized(scenario: &Scenario) -> Result<RunCapture, String> {
    let config = scenario.config();
    run_capture(
        Engine::new(config.queue),
        &config,
        scenario.batch(),
        &scenario.arrivals,
    )
}

/// Run `scenario` under the naive reference engine.
pub fn run_oracle(scenario: &Scenario) -> Result<RunCapture, String> {
    let mut config = scenario.config();
    // The backend knob is meaningless to the oracle; normalize it so the
    // capture metadata can't suggest otherwise.
    config.queue = QueueKind::BinaryHeap;
    run_capture(
        OracleEngine::new(),
        &config,
        scenario.batch(),
        &scenario.arrivals,
    )
}

/// A confirmed difference between the two engines on one scenario.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// One-line classification (which comparison failed).
    pub summary: String,
    /// Full report: mismatch context plus the scenario replay line.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}\n{}", self.summary, self.detail)
    }
}

fn diverge(scenario: &Scenario, summary: &str, context: String) -> Divergence {
    Divergence {
        summary: summary.to_string(),
        detail: format!("{context}\n{}", scenario.describe()),
    }
}

/// Compare two event histories; on mismatch, show a window around the
/// first forked index.
fn compare_traces(
    scenario: &Scenario,
    opt: &[(SimTime, Event)],
    ora: &[(SimTime, Event)],
) -> Result<(), Divergence> {
    let n = opt.len().min(ora.len());
    for i in 0..n {
        if opt[i] != ora[i] {
            let lo = i.saturating_sub(3);
            let mut ctx = format!(
                "event histories fork at index {i} (of {} opt / {} oracle):\n",
                opt.len(),
                ora.len()
            );
            for j in lo..(i + 4).min(n) {
                let mark = if j == i { ">>" } else { "  " };
                ctx.push_str(&format!(
                    "{mark} [{j}] opt    {:?} @ {}\n{mark} [{j}] oracle {:?} @ {}\n",
                    opt[j].1, opt[j].0, ora[j].1, ora[j].0
                ));
            }
            return Err(diverge(scenario, "event-order divergence", ctx));
        }
    }
    if opt.len() != ora.len() {
        let ctx = format!(
            "histories agree for {n} events but lengths differ: \
             optimized {} vs oracle {}; first extra event: {:?}",
            opt.len(),
            ora.len(),
            if opt.len() > n { &opt[n] } else { &ora[n] }
        );
        return Err(diverge(scenario, "event-count divergence", ctx));
    }
    Ok(())
}

/// Re-run a `shards > 1` scenario through the conservative-parallel
/// runner — twice, so a thread-interleaving nondeterminism shows up as a
/// fingerprint mismatch between the two passes — and demand the
/// observables match the sequential capture bit for bit. Ineligible
/// configurations exercise the runner's sequential fallback, which must
/// match just the same.
fn compare_sharded(scenario: &Scenario, capture: &RunCapture) -> Result<(), Divergence> {
    if scenario.shards <= 1 {
        return Ok(());
    }
    let config = scenario.config();
    let first = run_batch_sharded(&config, scenario.batch(), scenario.shards)
        .map_err(|e| diverge(scenario, "sharded run failed", e.to_string()))?;
    let second = run_batch_sharded(&config, scenario.batch(), scenario.shards)
        .map_err(|e| diverge(scenario, "sharded rerun failed", e.to_string()))?;
    if first.fingerprint() != second.fingerprint() {
        return Err(diverge(
            scenario,
            "sharded interleaving nondeterminism",
            format!(
                "two identical {}-shard runs fingerprint {:#018x} vs {:#018x}",
                first.shards,
                first.fingerprint(),
                second.fingerprint()
            ),
        ));
    }
    if first.response_times != capture.response_times {
        return Err(diverge(
            scenario,
            "sharded response-time divergence",
            format!(
                "sharded    {:?}\nsequential {:?}\n(shards used: {}, fallback: {:?})",
                first.response_times, capture.response_times, first.shards, first.fallback
            ),
        ));
    }
    if first.makespan != capture.makespan {
        return Err(diverge(
            scenario,
            "sharded makespan divergence",
            format!("sharded {} vs sequential {}", first.makespan, capture.makespan),
        ));
    }
    if first.counters != capture.counters {
        return Err(diverge(
            scenario,
            "sharded counter divergence",
            format!(
                "sharded    {:?}\nsequential {:?}",
                first.counters, capture.counters
            ),
        ));
    }
    if first.events != capture.events {
        return Err(diverge(
            scenario,
            "sharded events-processed divergence",
            format!("sharded {} vs sequential {}", first.events, capture.events),
        ));
    }
    Ok(())
}

/// Run one scenario through both engines and assert bit-identical
/// behavior: event order, per-job response times, makespan, machine
/// counters, and events-processed accounting. Scenarios drawn with
/// `shards > 1` additionally run through the conservative-parallel
/// runner (twice) and must reproduce the same observables. Returns the
/// (shared) capture on success for further invariant checking.
pub fn run_differential(scenario: &Scenario) -> Result<RunCapture, Divergence> {
    let opt = run_optimized(scenario)
        .map_err(|e| diverge(scenario, "optimized run failed", e))?;
    let ora = run_oracle(scenario)
        .map_err(|e| diverge(scenario, "oracle run failed", e))?;

    compare_traces(scenario, &opt.trace, &ora.trace)?;
    if opt.response_times != ora.response_times {
        return Err(diverge(
            scenario,
            "response-time divergence",
            format!(
                "optimized {:?}\noracle    {:?}",
                opt.response_times, ora.response_times
            ),
        ));
    }
    if opt.makespan != ora.makespan {
        return Err(diverge(
            scenario,
            "makespan divergence",
            format!("optimized {} vs oracle {}", opt.makespan, ora.makespan),
        ));
    }
    if opt.counters != ora.counters {
        return Err(diverge(
            scenario,
            "counter divergence",
            format!("optimized {:?}\noracle    {:?}", opt.counters, ora.counters),
        ));
    }
    if opt.events != ora.events {
        return Err(diverge(
            scenario,
            "events-processed divergence",
            format!("optimized {} vs oracle {}", opt.events, ora.events),
        ));
    }
    // Conservation is an absolute law, not a relative one: both engines
    // agreeing on leaked flits would pass every comparison above.
    crate::invariants::check_flit_conservation(&opt.counters);
    compare_sharded(scenario, &opt)?;
    Ok(opt)
}

/// Write a failing scenario's full report to
/// `target/repro/oracle_case_<case>.txt` (workspace-relative) and return
/// the path. Best-effort: IO failure returns the error instead of
/// masking the divergence.
pub fn dump_repro(scenario: &Scenario, divergence: &Divergence) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/repro"));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("oracle_case_{}.txt", scenario.case));
    std::fs::write(&path, format!("{divergence}\n"))?;
    Ok(path)
}
