//! The naive reference engine.
//!
//! [`OracleEngine`] is the simplest event loop that can honor the
//! [`EventScheduler`] contract: one `std::collections::BinaryHeap` ordered
//! by the packed `(time, seq)` key, nothing else. No now-queue bypass, no
//! timing wheel, no calendar buckets, no adaptive migration — every
//! optimization in `parsched-des` is deliberately absent, so any
//! divergence between the two engines on the same model is a bug in one of
//! them (and the smart money is on the optimized one).
//!
//! The only subtlety is cancellation. The optimized engine removes a
//! cancelled timer from its wheel *eagerly*, so the timer never occupies
//! the pending set nor counts toward `events_processed`. A bare heap
//! cannot remove from the middle, so the oracle keeps a tombstone set of
//! cancelled keys and discards matching corpses at peek time — before the
//! horizon check and before anything is counted — which reproduces the
//! eager semantics observably exactly: same event order, same
//! `events_processed`, same `pending()` at every step.

use parsched_des::{EventScheduler, EventSeeder, Model, RunOutcome, SimTime, TimerHandle};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// A pending event: the packed `(time, seq)` key plus the payload. Ordered
/// by key alone (keys are unique — `seq` never repeats).
struct Entry<E> {
    key: u128,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

#[inline]
fn pack(time: SimTime, seq: u64) -> u128 {
    ((time.nanos() as u128) << 64) | seq as u128
}

/// The reference engine: a flat min-heap and a simulation clock.
///
/// API mirrors [`parsched_des::Engine`] (`seed` / `run` / `run_until` /
/// `pending` / `events_processed` / public `horizon` and `max_events`), so
/// harness code can drive either engine through the same motions.
pub struct OracleEngine<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// Keys of cancelled timers whose corpses are still in the heap.
    cancelled: HashSet<u128>,
    /// Keys of pending (live) timers, for `cancel`'s return value and
    /// `timer_count`.
    timers: HashSet<u128>,
    now: SimTime,
    next_seq: u64,
    events_processed: u64,
    /// Stop processing events scheduled after this instant.
    pub horizon: SimTime,
    /// Abort after this many events.
    pub max_events: u64,
}

impl<E> Default for OracleEngine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> OracleEngine<E> {
    /// A fresh engine at time zero.
    pub fn new() -> Self {
        OracleEngine {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            timers: HashSet::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            events_processed: 0,
            horizon: SimTime::MAX,
            max_events: u64::MAX,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far (cancelled timers never count, same
    /// as the optimized engine's eager-cancel accounting).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of pending live events (tombstoned corpses excluded).
    pub fn pending(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Discard cancelled corpses sitting at the heap head so the next peek
    /// or pop sees a live event.
    fn purge_cancelled_head(&mut self) {
        while let Some(Reverse(head)) = self.heap.peek() {
            if self.cancelled.remove(&head.key) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }

    /// Drive `model` until the queue drains, the horizon passes, or the
    /// event budget runs out. Semantics identical to
    /// [`parsched_des::Engine::run`].
    pub fn run<M: Model<Event = E>>(&mut self, model: &mut M) -> RunOutcome {
        loop {
            if self.events_processed >= self.max_events {
                return RunOutcome::BudgetExhausted;
            }
            self.purge_cancelled_head();
            let Some(Reverse(head)) = self.heap.peek() else {
                return RunOutcome::Drained;
            };
            let time = SimTime((head.key >> 64) as u64);
            if time > self.horizon {
                self.now = self.horizon;
                return RunOutcome::HorizonReached;
            }
            let Reverse(entry) = self.heap.pop().expect("peeked the head");
            self.timers.remove(&entry.key);
            debug_assert!(time >= self.now, "event queue returned the past");
            self.now = time;
            self.events_processed += 1;

            let mut sched = OracleScheduler {
                now: self.now,
                next_seq: self.next_seq,
                heap: &mut self.heap,
                cancelled: &mut self.cancelled,
                timers: &mut self.timers,
            };
            model.handle(self.now, entry.event, &mut sched);
            self.next_seq = sched.next_seq;
        }
    }

    /// Like [`run`](Self::run) but stops once simulated time would exceed
    /// `deadline`.
    pub fn run_until<M: Model<Event = E>>(
        &mut self,
        model: &mut M,
        deadline: SimTime,
    ) -> RunOutcome {
        let saved = self.horizon;
        self.horizon = deadline.min(saved);
        let outcome = self.run(model);
        self.horizon = saved;
        outcome
    }
}

impl<E> EventSeeder<E> for OracleEngine<E> {
    fn seed(&mut self, time: SimTime, event: E) {
        assert!(time >= self.now, "cannot seed into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry {
            key: pack(time, seq),
            event,
        }));
    }
}

/// The scheduling handle the oracle passes to `Model::handle`. Allocates
/// sequence numbers exactly like the optimized engine's scheduler — one
/// per call, across plain events and timers alike — so both engines hand
/// identical `(time, seq)` keys to identical scheduling histories.
struct OracleScheduler<'h, E> {
    now: SimTime,
    next_seq: u64,
    heap: &'h mut BinaryHeap<Reverse<Entry<E>>>,
    cancelled: &'h mut HashSet<u128>,
    timers: &'h mut HashSet<u128>,
}

impl<E> EventScheduler<E> for OracleScheduler<'_, E> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn schedule_at(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry {
            key: pack(time, seq),
            event,
        }));
    }

    fn schedule_timer_at(&mut self, time: SimTime, event: E) -> TimerHandle {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = pack(time, seq);
        self.heap.push(Reverse(Entry { key, event }));
        self.timers.insert(key);
        TimerHandle::external(key)
    }

    fn cancel_timer(&mut self, handle: TimerHandle) -> bool {
        let key = handle.key();
        if self.timers.remove(&key) {
            self.cancelled.insert(key);
            true
        } else {
            false
        }
    }

    fn timer_count(&self) -> usize {
        self.timers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_des::SimDuration;

    struct Countdown {
        fired: Vec<(u64, u64)>,
    }

    impl Model for Countdown {
        type Event = u64;
        fn handle(&mut self, now: SimTime, ev: u64, sched: &mut impl EventScheduler<u64>) {
            self.fired.push((now.nanos(), ev));
            if ev > 0 {
                sched.schedule(SimDuration::from_nanos(10), ev - 1);
            }
        }
    }

    #[test]
    fn countdown_matches_reference_semantics() {
        let mut engine = OracleEngine::new();
        engine.seed(SimTime(5), 3u64);
        let mut model = Countdown { fired: Vec::new() };
        assert_eq!(engine.run(&mut model), RunOutcome::Drained);
        assert_eq!(model.fired, vec![(5, 3), (15, 2), (25, 1), (35, 0)]);
        assert_eq!(engine.now(), SimTime(35));
        assert_eq!(engine.events_processed(), 4);
    }

    #[test]
    fn horizon_and_budget_mirror_the_optimized_engine() {
        let mut engine = OracleEngine::new();
        engine.horizon = SimTime(20);
        engine.seed(SimTime(5), 3u64);
        let mut model = Countdown { fired: Vec::new() };
        assert_eq!(engine.run(&mut model), RunOutcome::HorizonReached);
        assert_eq!(model.fired.len(), 2);
        assert_eq!(engine.pending(), 1);
        assert_eq!(engine.now(), SimTime(20));

        let mut engine = OracleEngine::new();
        engine.max_events = 2;
        engine.seed(SimTime(5), 3u64);
        let mut model = Countdown { fired: Vec::new() };
        assert_eq!(engine.run(&mut model), RunOutcome::BudgetExhausted);
        assert_eq!(engine.events_processed(), 2);
    }

    /// A model that schedules a timer and cancels it from a later event:
    /// the cancelled timer must not fire, must not count, and must leave
    /// the pending gauge.
    struct CancelHalf {
        handles: Vec<TimerHandle>,
        fired: Vec<u64>,
    }

    impl Model for CancelHalf {
        type Event = u64;
        fn handle(&mut self, _now: SimTime, ev: u64, sched: &mut impl EventScheduler<u64>) {
            match ev {
                0 => {
                    for i in 0..6u64 {
                        let h = sched.schedule_timer(
                            SimDuration::from_nanos(100 + i),
                            10 + i,
                        );
                        self.handles.push(h);
                    }
                    sched.schedule(SimDuration::from_nanos(50), 1);
                }
                1 => {
                    for h in self.handles.drain(..).step_by(2) {
                        assert!(sched.cancel_timer(h), "live timer must cancel");
                        assert!(!sched.cancel_timer(h), "double cancel must fail");
                    }
                    assert_eq!(sched.timer_count(), 3);
                }
                f => self.fired.push(f),
            }
        }
    }

    #[test]
    fn cancelled_timers_never_fire_and_never_count() {
        let mut engine = OracleEngine::new();
        engine.seed(SimTime::ZERO, 0u64);
        let mut model = CancelHalf {
            handles: Vec::new(),
            fired: Vec::new(),
        };
        assert_eq!(engine.run(&mut model), RunOutcome::Drained);
        assert_eq!(model.fired, vec![11, 13, 15]);
        // 0, 1, and the three surviving timers.
        assert_eq!(engine.events_processed(), 5);
        assert_eq!(engine.pending(), 0);
    }
}
