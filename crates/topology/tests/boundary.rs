//! Boundary properties around the old 16-bit node-index ceiling.
//!
//! Every shape, asked for 65 535 / 65 536 / 65 537 nodes, must either
//! construct a valid interconnect — real adjacency, minimal routes that
//! terminate, every hop an actual edge — or return the typed
//! [`TopologyError`] / unrealizable verdict. Never a silent index wrap,
//! never a panic. (Before `NodeId` was widened to `u32`, node 65 536
//! aliased onto node 0 through a bare `as u16` cast; the regression test
//! at the bottom pins that class of bug as fixed.)

use parsched_topology::{build, NodeId, Router, Topology, TopologyError, TopologyKind};

const BOUNDARY: [usize; 3] = [65_535, 65_536, 65_537];

fn kinds() -> Vec<(&'static str, TopologyKind)> {
    vec![
        ("linear", TopologyKind::Linear),
        ("ring", TopologyKind::Ring),
        ("mesh", TopologyKind::Mesh { rows: 0, cols: 0 }),
        ("hypercube", TopologyKind::Hypercube { dim: 0 }),
        ("torus", TopologyKind::Torus { rows: 0, cols: 0 }),
        ("tree", TopologyKind::Tree),
        ("star", TopologyKind::Star),
        ("complete", TopologyKind::Complete),
        ("fat-tree", TopologyKind::FatTree { k: 0 }),
        ("dragonfly", TopologyKind::Dragonfly { a: 0, p: 0, h: 0 }),
    ]
}

/// Routes between a boundary-heavy sample of node pairs must terminate at
/// the destination with every hop crossing a real edge of the adjacency.
fn assert_routes_valid(name: &str, topo: &Topology) {
    let n = topo.len();
    let router = Router::for_topology(topo);
    let samples: Vec<usize> = [0, 1, n / 2, 65_534, 65_535, 65_536, n - 1]
        .into_iter()
        .filter(|&v| v < n)
        .collect();
    for &s in &samples {
        for &d in &samples {
            let (src, dst) = (NodeId::from_index(s), NodeId::from_index(d));
            let mut cur = src;
            let mut hops = 0usize;
            while cur != dst {
                let next = router
                    .next_hop(cur, dst)
                    .unwrap_or_else(|| panic!("{name}: no hop at {cur} toward {dst}"));
                assert!(
                    topo.neighbors(cur).contains(&next),
                    "{name}: hop {cur} -> {next} is not an edge"
                );
                cur = next;
                hops += 1;
                assert!(hops <= n, "{name}: route {src} -> {dst} does not terminate");
            }
            assert_eq!(router.hops(src, dst), hops, "{name}: hops() disagrees with walk");
        }
    }
}

/// Every shape at every boundary size: valid construction or typed error.
#[test]
fn every_builder_is_sound_at_the_u16_boundary() {
    for (name, kind) in kinds() {
        for n in BOUNDARY {
            match build::by_kind(kind, n) {
                Ok(topo) => {
                    assert_eq!(topo.len(), n, "{name}({n}): wrong node count");
                    // Adjacency indices in range (a u16 wrap would have
                    // folded high neighbors onto low indices, which the
                    // route validation below would catch as a non-edge).
                    for v in [0, n / 2, 65_535, 65_536, n - 1].into_iter().filter(|&v| v < n) {
                        for &w in topo.neighbors(NodeId::from_index(v)) {
                            assert!(w.idx() < n, "{name}({n}): neighbor {w} out of range");
                        }
                    }
                    assert_routes_valid(name, &topo);
                }
                Err(err) => {
                    // The typed verdict must identify the shape; the sizes
                    // themselves are all addressable, so only realizability
                    // (hypercube power-of-two, exact fat-tree/dragonfly
                    // vertex counts, the complete-graph cap) may refuse.
                    assert!(
                        matches!(
                            err,
                            TopologyError::Unrealizable { .. } | TopologyError::TooManyNodes { .. }
                        ),
                        "{name}({n}): unexpected error {err}"
                    );
                }
            }
        }
    }
}

/// The exact boundary outcomes per shape (pinned so a future realizability
/// change is a conscious one).
#[test]
fn boundary_outcomes_are_the_expected_ones() {
    use TopologyKind::*;
    // 65 536 = 2^16 is a hypercube; its neighbors are not.
    assert_eq!(build::by_kind(Hypercube { dim: 0 }, 65_536).unwrap().len(), 65_536);
    assert!(build::by_kind(Hypercube { dim: 0 }, 65_535).is_err());
    assert!(build::by_kind(Hypercube { dim: 0 }, 65_537).is_err());
    // Linear, ring, mesh, torus, tree, star realize every boundary size
    // (65 537 is prime, so its "squarest" mesh degenerates to 1 x 65 537).
    for n in BOUNDARY {
        for kind in [
            Linear,
            Ring,
            Mesh { rows: 0, cols: 0 },
            Torus { rows: 0, cols: 0 },
            Tree,
            Star,
        ] {
            assert_eq!(build::by_kind(kind, n).unwrap().len(), n, "{kind} at {n}");
        }
    }
    // No three-level fat-tree or balanced dragonfly has a vertex count in
    // the boundary window (k = 62 gives 64 387, k = 64 gives 70 656;
    // h = 11 gives 64 152, h = 12 gives 90 168): typed refusals.
    for n in BOUNDARY {
        assert!(build::by_kind(FatTree { k: 0 }, n).is_err(), "fat-tree at {n}");
        assert!(build::by_kind(Dragonfly { a: 0, p: 0, h: 0 }, n).is_err(), "dragonfly at {n}");
    }
    // The complete graph's quadratic adjacency is capped far below this.
    for n in BOUNDARY {
        assert!(matches!(
            build::by_kind(Complete, n),
            Err(TopologyError::TooManyNodes { shape: "complete", .. })
        ));
    }
}

/// The nearest fat-tree and dragonfly *above* the boundary construct and
/// route soundly — the hierarchical shapes cross 65 536 at their own
/// vertex counts, not at round numbers.
#[test]
fn hierarchical_shapes_cross_the_boundary_at_their_own_sizes() {
    let ft = build::fat_tree(64).unwrap();
    assert_eq!(ft.len(), 70_656);
    assert_routes_valid("fat-tree k=64", &ft);

    let df = build::dragonfly(24, 12, 12).unwrap();
    assert_eq!(df.len(), 90_168);
    assert_routes_valid("dragonfly h=12", &df);
}

/// Regression: the silent-wrap bug this crate used to have. A 70 000-node
/// linear array once aliased node 65 536 onto node 0 (`as u16` index
/// casts), giving node 0 a phantom third neighbor and non-terminating
/// "minimal" routes. Pin the fixed behavior.
#[test]
fn node_65536_no_longer_aliases_onto_node_0() {
    let topo = build::linear(70_000).unwrap();
    // Node 0 has exactly one neighbor: node 1. No phantom wrapped edge.
    assert_eq!(topo.neighbors(NodeId(0)), &[NodeId(1)]);
    // Node 65 536 sits between its true linear neighbors.
    assert_eq!(
        topo.neighbors(NodeId(65_536)),
        &[NodeId(65_535), NodeId(65_537)]
    );
    let router = Router::for_topology(&topo);
    assert_eq!(router.hops(NodeId(0), NodeId(69_999)), 69_999);
}

/// Requests past the *new* ceiling fail loudly with the typed error — for
/// every shape, including overflowing extent products.
#[test]
fn past_u32_requests_are_typed_errors() {
    let too_many = (1usize << 32) + 1;
    for (name, kind) in kinds() {
        let err = build::by_kind(kind, too_many).unwrap_err();
        assert!(
            matches!(err, TopologyError::TooManyNodes { .. }),
            "{name}: expected TooManyNodes, got {err}"
        );
    }
    // A mesh whose extent *product* overflows is caught before any
    // allocation, and reports the exact requested size.
    match build::mesh(1 << 16, 1 << 16).unwrap_err() {
        TopologyError::TooManyNodes { requested, .. } => assert_eq!(requested, 1u128 << 32),
        other => panic!("expected TooManyNodes, got {other}"),
    }
    assert!(build::torus(1 << 17, 1 << 17).is_err());
}
