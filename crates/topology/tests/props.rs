//! Property-based tests for topology construction and routing invariants.

use parsched_topology::{build, metrics, route::Router, types::NodeId, Topology, TopologyKind};
use proptest::prelude::*;

/// Strategy producing an arbitrary paper-relevant topology.
fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (1usize..=24).prop_map(build::linear),
        (1usize..=24).prop_map(build::ring),
        ((1usize..=5), (1usize..=5)).prop_map(|(r, c)| build::mesh(r, c)),
        (0u8..=4).prop_map(build::hypercube),
        (1usize..=16).prop_map(build::star),
        (1usize..=10).prop_map(build::complete),
        ((1usize..=4), (1usize..=5)).prop_map(|(r, c)| build::torus(r, c)),
        (1usize..=31).prop_map(build::binary_tree),
    ]
}

proptest! {
    #[test]
    fn topologies_are_connected_and_simple(topo in arb_topology()) {
        prop_assert!(topo.is_connected());
        // Adjacency symmetric and loop-free is enforced by the constructor;
        // re-check degree bookkeeping here.
        let total: usize = topo.nodes().map(|u| topo.degree(u)).sum();
        prop_assert_eq!(total, topo.edge_count() * 2);
    }

    #[test]
    fn preferred_router_is_minimal(topo in arb_topology()) {
        let router = Router::for_topology(&topo);
        for src in topo.nodes() {
            let dist = topo.bfs_distances(src);
            for dst in topo.nodes() {
                let path = router.path(src, dst);
                prop_assert_eq!(path.len() as u32, dist[dst.idx()]);
                let mut prev = src;
                for &hop in &path {
                    prop_assert!(topo.adjacent(prev, hop));
                    prev = hop;
                }
                prop_assert!(path.last().copied().unwrap_or(src) == dst);
            }
        }
    }

    #[test]
    fn routing_is_loop_free(topo in arb_topology()) {
        let router = Router::shortest_path(&topo);
        // Following next_hop must strictly decrease the BFS distance.
        for dst in topo.nodes() {
            let dist = topo.bfs_distances(dst);
            for src in topo.nodes() {
                if src == dst { continue; }
                let hop = router.next_hop(src, dst).unwrap();
                prop_assert!(dist[hop.idx()] < dist[src.idx()]);
            }
        }
    }

    #[test]
    fn diameter_bounds(topo in arb_topology()) {
        let m = metrics::metrics(&topo);
        prop_assert!(m.avg_distance <= m.diameter as f64);
        if topo.len() > 1 {
            prop_assert!(m.diameter >= 1);
            prop_assert!((m.diameter as usize) < topo.len());
        }
    }

    #[test]
    fn partition_plan_tiles_the_machine(
        psize in prop_oneof![Just(1usize), Just(2), Just(4), Just(8), Just(16)],
    ) {
        let plan = parsched_topology::PartitionPlan::equal(
            16, psize, TopologyKind::Ring,
        ).unwrap();
        prop_assert_eq!(plan.count() * psize, 16);
        let mut seen = [false; 16];
        for p in &plan.partitions {
            for l in 0..p.size() {
                let g = p.to_global(NodeId(l as u16));
                prop_assert!(!seen[g], "processor {} covered twice", g);
                seen[g] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}

#[test]
fn paper_topology_metrics_table() {
    // Table of the 16-node variants used throughout EXPERIMENTS.md.
    let rows = [
        ("linear", build::linear(16), 15u32, 1u32),
        ("ring", build::ring(16), 8, 2),
        ("mesh", build::mesh(4, 4), 6, 4),
        ("hypercube", build::hypercube(4), 4, 8),
    ];
    for (name, topo, diam, bisect) in rows {
        let m = metrics::metrics(&topo);
        assert_eq!(m.diameter, diam, "{name} diameter");
        assert_eq!(m.bisection_width, bisect, "{name} bisection");
        assert!(m.max_degree <= 4, "{name} exceeds transputer links");
    }
}
