//! Property-based tests for topology construction and routing invariants.
//!
//! Ported from proptest to seeded [`DetRng`] loops so the suite runs with
//! no external dependencies; each case derives its own substream, so a
//! failure report's case index is enough to replay it exactly.

use parsched_des::rng::DetRng;
use parsched_topology::{build, metrics, route::Router, types::NodeId, Topology, TopologyKind};

const CASES: u64 = 64;

/// Draw an arbitrary paper-relevant topology, mirroring the original
/// proptest strategy's shape families and size ranges.
fn random_topology(rng: &mut DetRng) -> Topology {
    match rng.uniform_u64(0, 8) {
        0 => build::linear(rng.uniform_u64(1, 25) as usize).unwrap(),
        1 => build::ring(rng.uniform_u64(1, 25) as usize).unwrap(),
        2 => build::mesh(
            rng.uniform_u64(1, 6) as usize,
            rng.uniform_u64(1, 6) as usize,
        )
        .unwrap(),
        3 => build::hypercube(rng.uniform_u64(0, 5) as u8).unwrap(),
        4 => build::star(rng.uniform_u64(1, 17) as usize).unwrap(),
        5 => build::complete(rng.uniform_u64(1, 11) as usize).unwrap(),
        6 => build::torus(
            rng.uniform_u64(1, 5) as usize,
            rng.uniform_u64(1, 6) as usize,
        )
        .unwrap(),
        _ => build::binary_tree(rng.uniform_u64(1, 32) as usize).unwrap(),
    }
}

#[test]
fn topologies_are_connected_and_simple() {
    let root = DetRng::new(0x70);
    for case in 0..CASES {
        let mut rng = root.substream_idx("connected", case);
        let topo = random_topology(&mut rng);
        assert!(topo.is_connected(), "case {case}");
        // Adjacency symmetric and loop-free is enforced by the constructor;
        // re-check degree bookkeeping here.
        let total: usize = topo.nodes().map(|u| topo.degree(u)).sum();
        assert_eq!(total, topo.edge_count() * 2, "case {case}");
    }
}

#[test]
fn preferred_router_is_minimal() {
    let root = DetRng::new(0x71);
    for case in 0..CASES {
        let mut rng = root.substream_idx("minimal", case);
        let topo = random_topology(&mut rng);
        let router = Router::for_topology(&topo);
        for src in topo.nodes() {
            let dist = topo.bfs_distances(src);
            for dst in topo.nodes() {
                let path = router.path(src, dst);
                assert_eq!(path.len() as u32, dist[dst.idx()], "case {case}");
                let mut prev = src;
                for &hop in &path {
                    assert!(topo.adjacent(prev, hop), "case {case}");
                    prev = hop;
                }
                assert!(path.last().copied().unwrap_or(src) == dst, "case {case}");
            }
        }
    }
}

#[test]
fn routing_is_loop_free() {
    let root = DetRng::new(0x72);
    for case in 0..CASES {
        let mut rng = root.substream_idx("loop-free", case);
        let topo = random_topology(&mut rng);
        let router = Router::shortest_path(&topo);
        // Following next_hop must strictly decrease the BFS distance.
        for dst in topo.nodes() {
            let dist = topo.bfs_distances(dst);
            for src in topo.nodes() {
                if src == dst {
                    continue;
                }
                let hop = router.next_hop(src, dst).unwrap();
                assert!(dist[hop.idx()] < dist[src.idx()], "case {case}");
            }
        }
    }
}

#[test]
fn diameter_bounds() {
    let root = DetRng::new(0x73);
    for case in 0..CASES {
        let mut rng = root.substream_idx("diameter", case);
        let topo = random_topology(&mut rng);
        let m = metrics::metrics(&topo);
        assert!(m.avg_distance <= m.diameter as f64, "case {case}");
        if topo.len() > 1 {
            assert!(m.diameter >= 1, "case {case}");
            assert!((m.diameter as usize) < topo.len(), "case {case}");
        }
    }
}

#[test]
fn partition_plan_tiles_the_machine() {
    for psize in [1usize, 2, 4, 8, 16] {
        let plan = parsched_topology::PartitionPlan::equal(16, psize, TopologyKind::Ring).unwrap();
        assert_eq!(plan.count() * psize, 16);
        let mut seen = [false; 16];
        for p in &plan.partitions {
            for l in 0..p.size() {
                let g = p.to_global(NodeId(l as u32));
                assert!(!seen[g], "processor {} covered twice", g);
                seen[g] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}

#[test]
fn paper_topology_metrics_table() {
    // Table of the 16-node variants used throughout EXPERIMENTS.md.
    let rows = [
        ("linear", build::linear(16).unwrap(), 15u32, 1u32),
        ("ring", build::ring(16).unwrap(), 8, 2),
        ("mesh", build::mesh(4, 4).unwrap(), 6, 4),
        ("hypercube", build::hypercube(4).unwrap(), 4, 8),
    ];
    for (name, topo, diam, bisect) in rows {
        let m = metrics::metrics(&topo);
        assert_eq!(m.diameter, diam, "{name} diameter");
        assert_eq!(m.bisection_width, bisect, "{name} bisection");
        assert!(m.max_degree <= 4, "{name} exceeds transputer links");
    }
}
