//! Graph metrics used to reason about the paper's topology sensitivity:
//! diameter, average inter-node distance, and bisection width.

use crate::types::{NodeId, Topology};

/// Summary metrics of a topology.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyMetrics {
    /// Longest shortest path (hops).
    pub diameter: u32,
    /// Mean shortest-path length over ordered distinct pairs.
    pub avg_distance: f64,
    /// Edges crossing the worst balanced cut found (exact for <= 20 nodes,
    /// lower-bound heuristic above).
    pub bisection_width: u32,
    /// Maximum node degree.
    pub max_degree: usize,
    /// Undirected edge count.
    pub edges: usize,
}

/// Compute [`TopologyMetrics`] for a connected topology.
///
/// ```
/// use parsched_topology::{build, metrics::metrics};
///
/// let cube = metrics(&build::hypercube(4).unwrap());
/// assert_eq!(cube.diameter, 4);
/// assert_eq!(cube.bisection_width, 8);
/// ```
///
/// # Panics
/// Panics if the topology is disconnected (metrics are undefined).
pub fn metrics(topo: &Topology) -> TopologyMetrics {
    assert!(topo.is_connected(), "metrics: topology must be connected");
    let n = topo.len();
    let mut diameter = 0u32;
    let mut total = 0u64;
    for src in topo.nodes() {
        for d in topo.bfs_distances(src) {
            diameter = diameter.max(d);
            total += d as u64;
        }
    }
    let pairs = (n * n).saturating_sub(n);
    TopologyMetrics {
        diameter,
        avg_distance: if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        },
        bisection_width: bisection_width(topo),
        max_degree: topo.max_degree(),
        edges: topo.edge_count(),
    }
}

/// Minimum number of edges crossing any balanced bipartition.
///
/// Exact exhaustive search for up to 20 nodes (the paper's machine has 16);
/// for larger graphs a deterministic greedy refinement gives an upper bound.
pub fn bisection_width(topo: &Topology) -> u32 {
    let n = topo.len();
    if n < 2 {
        return 0;
    }
    if n <= 20 {
        exact_bisection(topo)
    } else {
        greedy_bisection(topo)
    }
}

fn cut_size(topo: &Topology, in_a: impl Fn(usize) -> bool) -> u32 {
    let mut cut = 0;
    for u in topo.nodes() {
        for &v in topo.neighbors(u) {
            if u < v && in_a(u.idx()) != in_a(v.idx()) {
                cut += 1;
            }
        }
    }
    cut
}

fn exact_bisection(topo: &Topology) -> u32 {
    let n = topo.len();
    let half = n / 2;
    let mut best = u32::MAX;
    // Fix node 0 in side A to halve the search space.
    let full: u32 = (1u32 << n) - 1;
    let mut mask: u32 = 0;
    while mask <= full {
        if mask & 1 == 1 && mask.count_ones() as usize == half || n % 2 == 1 && mask & 1 == 1 && mask.count_ones() as usize == half + 1 {
            let cut = cut_size(topo, |i| mask >> i & 1 == 1);
            best = best.min(cut);
        }
        if mask == full {
            break;
        }
        mask += 1;
    }
    best
}

fn greedy_bisection(topo: &Topology) -> u32 {
    let n = topo.len();
    let half = n / 2;
    // Start with the first half, then hill-climb by swapping pairs.
    let mut side = vec![false; n];
    for s in side.iter_mut().take(half) {
        *s = true;
    }
    let mut best = cut_size(topo, |i| side[i]);
    let mut improved = true;
    while improved {
        improved = false;
        for a in 0..n {
            if !side[a] {
                continue;
            }
            for b in 0..n {
                if side[b] {
                    continue;
                }
                side[a] = false;
                side[b] = true;
                let cut = cut_size(topo, |i| side[i]);
                if cut < best {
                    best = cut;
                    improved = true;
                } else {
                    side[a] = true;
                    side[b] = false;
                }
            }
        }
    }
    best
}

/// Convenience: the diameter alone.
pub fn diameter(topo: &Topology) -> u32 {
    metrics(topo).diameter
}

/// Distance between two nodes.
pub fn distance(topo: &Topology, a: NodeId, b: NodeId) -> u32 {
    topo.bfs_distances(a)[b.idx()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;

    #[test]
    fn known_diameters() {
        assert_eq!(diameter(&build::linear(16).unwrap()), 15);
        assert_eq!(diameter(&build::ring(16).unwrap()), 8);
        assert_eq!(diameter(&build::mesh(4, 4).unwrap()), 6);
        assert_eq!(diameter(&build::hypercube(4).unwrap()), 4);
        assert_eq!(diameter(&build::complete(16).unwrap()), 1);
        assert_eq!(diameter(&build::star(16).unwrap()), 2);
    }

    #[test]
    fn known_bisections() {
        assert_eq!(bisection_width(&build::linear(16).unwrap()), 1);
        assert_eq!(bisection_width(&build::ring(16).unwrap()), 2);
        assert_eq!(bisection_width(&build::mesh(4, 4).unwrap()), 4);
        assert_eq!(bisection_width(&build::hypercube(4).unwrap()), 8);
    }

    #[test]
    fn avg_distance_orders_paper_topologies() {
        // The paper's intuition: linear is the "low degree, long diameter"
        // worst case; hypercube the best.
        let l = metrics(&build::linear(16).unwrap()).avg_distance;
        let r = metrics(&build::ring(16).unwrap()).avg_distance;
        let m = metrics(&build::mesh(4, 4).unwrap()).avg_distance;
        let h = metrics(&build::hypercube(4).unwrap()).avg_distance;
        assert!(l > r && r > m && m > h, "l={l} r={r} m={m} h={h}");
    }

    #[test]
    fn avg_distance_linear_formula() {
        // Mean distance of a path graph on n nodes is (n+1)/3.
        let n = 10usize;
        let got = metrics(&build::linear(n).unwrap()).avg_distance;
        let expect = (n as f64 + 1.0) / 3.0;
        assert!((got - expect).abs() < 1e-9, "got {got}, expect {expect}");
    }

    #[test]
    fn single_node_metrics() {
        let m = metrics(&build::linear(1).unwrap());
        assert_eq!(m.diameter, 0);
        assert_eq!(m.avg_distance, 0.0);
        assert_eq!(m.bisection_width, 0);
    }

    #[test]
    fn greedy_bisection_reasonable_on_large_ring() {
        let t = build::ring(32).unwrap();
        let w = bisection_width(&t);
        assert!((2..=4).contains(&w), "ring-32 bisection came out {w}");
    }
}
