//! Routing.
//!
//! The store-and-forward network needs, at every node, the next hop toward
//! any destination. A [`Router`] is a full next-hop table. Three builders
//! are provided:
//!
//! * [`Router::shortest_path`] — BFS-based minimal routing for any topology,
//!   deterministic (smallest-index neighbor wins ties).
//! * [`Router::dimension_order`] — X-then-Y routing for meshes (minimal and
//!   deadlock-free under hop-by-hop buffering).
//! * [`Router::ecube`] — e-cube routing for hypercubes (fix address bits
//!   lowest-first; minimal and deadlock-free).
//!
//! For linear arrays and rings, shortest-path BFS already yields the natural
//! route (rings break distance ties toward the lower-index neighbor).

use crate::types::{NodeId, Topology, TopologyKind};

/// Sentinel marking "no route" / "self" entries in the next-hop table.
const NO_HOP: u16 = u16::MAX;

/// A complete next-hop table for one topology.
#[derive(Debug, Clone)]
pub struct Router {
    n: usize,
    /// `table[src * n + dst]` = next hop from `src` toward `dst`.
    table: Vec<u16>,
}

impl Router {
    /// Minimal routing for an arbitrary connected topology via per-
    /// destination BFS. Ties broken toward the smallest neighbor index, so
    /// tables are deterministic.
    pub fn shortest_path(topo: &Topology) -> Router {
        let n = topo.len();
        let mut table = vec![NO_HOP; n * n];
        for dst in topo.nodes() {
            // BFS from the destination; each node's parent-side neighbor on
            // the BFS tree is its next hop toward dst.
            let dist = topo.bfs_distances(dst);
            for src in topo.nodes() {
                if src == dst || dist[src.idx()] == u32::MAX {
                    continue;
                }
                let hop = topo
                    .neighbors(src)
                    .iter()
                    .copied()
                    .filter(|nb| dist[nb.idx()] + 1 == dist[src.idx()])
                    .min()
                    .expect("BFS tree must provide a downhill neighbor");
                table[src.idx() * n + dst.idx()] = hop.0;
            }
        }
        Router { n, table }
    }

    /// Dimension-order (X-Y) routing for a mesh: correct columns first, then
    /// rows.
    ///
    /// # Panics
    /// Panics if `topo` is not a mesh.
    pub fn dimension_order(topo: &Topology) -> Router {
        let TopologyKind::Mesh { rows, cols } = topo.kind() else {
            panic!("dimension_order: not a mesh: {}", topo.kind());
        };
        let (rows, cols) = (rows as usize, cols as usize);
        let n = topo.len();
        assert_eq!(n, rows * cols);
        let mut table = vec![NO_HOP; n * n];
        for src in 0..n {
            let (sr, sc) = (src / cols, src % cols);
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let (dr, dc) = (dst / cols, dst % cols);
                let hop = if sc < dc {
                    src + 1
                } else if sc > dc {
                    src - 1
                } else if sr < dr {
                    src + cols
                } else {
                    src - cols
                };
                table[src * n + dst] = hop as u16;
            }
        }
        Router { n, table }
    }

    /// E-cube routing for a hypercube: flip the lowest differing address bit.
    ///
    /// # Panics
    /// Panics if `topo` is not a hypercube.
    pub fn ecube(topo: &Topology) -> Router {
        let TopologyKind::Hypercube { .. } = topo.kind() else {
            panic!("ecube: not a hypercube: {}", topo.kind());
        };
        let n = topo.len();
        let mut table = vec![NO_HOP; n * n];
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let diff = src ^ dst;
                let bit = diff.trailing_zeros();
                table[src * n + dst] = (src ^ (1 << bit)) as u16;
            }
        }
        Router { n, table }
    }

    /// Dimension-order routing for a torus: correct columns first (shortest
    /// way around the ring), then rows.
    ///
    /// # Panics
    /// Panics if `topo` is not a torus.
    pub fn dimension_order_torus(topo: &Topology) -> Router {
        let TopologyKind::Torus { rows, cols } = topo.kind() else {
            panic!("dimension_order_torus: not a torus: {}", topo.kind());
        };
        let (rows, cols) = (rows as usize, cols as usize);
        let n = topo.len();
        assert_eq!(n, rows * cols);
        // One step along a ring of length `len`, the shortest way from `a`
        // toward `b` (ties go up, matching BFS's smaller-index preference
        // often enough for tests to pin separately).
        fn step(a: usize, b: usize, len: usize) -> usize {
            let fwd = (b + len - a) % len;
            let bwd = (a + len - b) % len;
            if fwd <= bwd {
                (a + 1) % len
            } else {
                (a + len - 1) % len
            }
        }
        let mut table = vec![NO_HOP; n * n];
        for src in 0..n {
            let (sr, sc) = (src / cols, src % cols);
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let (dr, dc) = (dst / cols, dst % cols);
                let hop = if sc != dc {
                    sr * cols + step(sc, dc, cols)
                } else {
                    step(sr, dr, rows) * cols + sc
                };
                table[src * n + dst] = hop as u16;
            }
        }
        Router { n, table }
    }

    /// The preferred router for a topology: dimension-order for meshes and
    /// tori, e-cube for hypercubes, BFS otherwise.
    pub fn for_topology(topo: &Topology) -> Router {
        match topo.kind() {
            TopologyKind::Mesh { .. } => Router::dimension_order(topo),
            TopologyKind::Torus { .. } => Router::dimension_order_torus(topo),
            TopologyKind::Hypercube { .. } => Router::ecube(topo),
            _ => Router::shortest_path(topo),
        }
    }

    /// Number of nodes this table covers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the empty table.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Next hop from `src` toward `dst`; `None` when `src == dst` or no
    /// route exists.
    #[inline]
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        let v = self.table[src.idx() * self.n + dst.idx()];
        (v != NO_HOP).then_some(NodeId(v))
    }

    /// The full hop sequence from `src` to `dst` (exclusive of `src`,
    /// inclusive of `dst`); empty when `src == dst`.
    ///
    /// # Panics
    /// Panics if the table has no route or contains a loop (both are
    /// construction bugs).
    pub fn path(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let mut path = Vec::new();
        let mut cur = src;
        while cur != dst {
            let hop = self
                .next_hop(cur, dst)
                .unwrap_or_else(|| panic!("no route {cur} -> {dst}"));
            path.push(hop);
            cur = hop;
            assert!(
                path.len() <= self.n,
                "routing loop detected between {src} and {dst}"
            );
        }
        path
    }

    /// Hop count from `src` to `dst`.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        self.path(src, dst).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;

    fn check_minimal(topo: &Topology, router: &Router) {
        for src in topo.nodes() {
            let dist = topo.bfs_distances(src);
            for dst in topo.nodes() {
                let path = router.path(src, dst);
                assert_eq!(
                    path.len() as u32,
                    dist[dst.idx()],
                    "non-minimal path {src}->{dst} on {}",
                    topo.kind()
                );
                // Each hop must be a real edge.
                let mut prev = src;
                for &hop in &path {
                    assert!(topo.adjacent(prev, hop), "phantom edge {prev}->{hop}");
                    prev = hop;
                }
            }
        }
    }

    #[test]
    fn bfs_router_minimal_on_all_shapes() {
        for topo in [
            build::linear(7),
            build::ring(8),
            build::mesh(3, 5),
            build::hypercube(3),
            build::star(6),
            build::complete(5),
            build::nap_backbone(),
        ] {
            let r = Router::shortest_path(&topo);
            check_minimal(&topo, &r);
        }
    }

    #[test]
    fn dimension_order_minimal_and_xy() {
        let topo = build::mesh(4, 4);
        let r = Router::dimension_order(&topo);
        check_minimal(&topo, &r);
        // From (0,0)=0 to (2,3)=11: must move in X (columns) first.
        let path = r.path(NodeId(0), NodeId(11));
        assert_eq!(path, vec![NodeId(1), NodeId(2), NodeId(3), NodeId(7), NodeId(11)]);
    }

    #[test]
    fn ecube_minimal_and_bit_ordered() {
        let topo = build::hypercube(4);
        let r = Router::ecube(&topo);
        check_minimal(&topo, &r);
        // 0b0000 -> 0b1010 must fix bit 1 then bit 3.
        let path = r.path(NodeId(0b0000), NodeId(0b1010));
        assert_eq!(path, vec![NodeId(0b0010), NodeId(0b1010)]);
    }

    #[test]
    fn ring_routes_take_short_way_round() {
        let topo = build::ring(8);
        let r = Router::shortest_path(&topo);
        assert_eq!(r.hops(NodeId(0), NodeId(3)), 3);
        assert_eq!(r.hops(NodeId(0), NodeId(6)), 2); // around the back
        assert_eq!(r.hops(NodeId(0), NodeId(4)), 4); // tie: either way is 4
    }

    #[test]
    fn self_route_is_empty() {
        let topo = build::linear(4);
        let r = Router::shortest_path(&topo);
        assert!(r.path(NodeId(2), NodeId(2)).is_empty());
        assert_eq!(r.next_hop(NodeId(2), NodeId(2)), None);
    }

    #[test]
    fn for_topology_picks_specialized_tables() {
        let mesh = build::mesh(2, 4);
        let hc = build::hypercube(3);
        let lin = build::linear(4);
        // All must produce minimal, loop-free routes.
        check_minimal(&mesh, &Router::for_topology(&mesh));
        check_minimal(&hc, &Router::for_topology(&hc));
        check_minimal(&lin, &Router::for_topology(&lin));
    }

    #[test]
    fn torus_dimension_order_minimal() {
        for (r, c) in [(3usize, 3usize), (4, 4), (2, 5)] {
            let topo = build::torus(r, c);
            let router = Router::dimension_order_torus(&topo);
            check_minimal(&topo, &router);
        }
        // Wraparound is actually used: 0 -> 3 on a 4x4 torus is one hop.
        let topo = build::torus(4, 4);
        let router = Router::dimension_order_torus(&topo);
        assert_eq!(router.hops(NodeId(0), NodeId(3)), 1);
        assert_eq!(router.hops(NodeId(0), NodeId(15)), 2);
    }

    #[test]
    #[should_panic(expected = "not a torus")]
    fn torus_router_rejects_non_torus() {
        let _ = Router::dimension_order_torus(&build::mesh(2, 2));
    }

    #[test]
    #[should_panic(expected = "not a mesh")]
    fn dimension_order_rejects_non_mesh() {
        let _ = Router::dimension_order(&build::ring(4));
    }

    #[test]
    #[should_panic(expected = "not a hypercube")]
    fn ecube_rejects_non_hypercube() {
        let _ = Router::ecube(&build::mesh(2, 2));
    }

    #[test]
    fn deterministic_tie_break() {
        let topo = build::ring(4);
        let a = Router::shortest_path(&topo);
        let b = Router::shortest_path(&topo);
        for s in topo.nodes() {
            for d in topo.nodes() {
                assert_eq!(a.next_hop(s, d), b.next_hop(s, d));
            }
        }
        // Distance-2 tie on a 4-ring resolves toward the smaller neighbor.
        assert_eq!(a.next_hop(NodeId(0), NodeId(2)), Some(NodeId(1)));
    }
}
