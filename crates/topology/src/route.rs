//! Routing.
//!
//! The store-and-forward network needs, at every node, the next hop toward
//! any destination. A [`Router`] is a full next-hop table. Three builders
//! are provided:
//!
//! * [`Router::shortest_path`] — BFS-based minimal routing for any topology,
//!   deterministic (smallest-index neighbor wins ties).
//! * [`Router::dimension_order`] — X-then-Y routing for meshes (minimal and
//!   deadlock-free under hop-by-hop buffering).
//! * [`Router::ecube`] — e-cube routing for hypercubes (fix address bits
//!   lowest-first; minimal and deadlock-free).
//!
//! For linear arrays and rings, shortest-path BFS already yields the natural
//! route (rings break distance ties toward the lower-index neighbor).

use crate::build::{DragonflyGeom, FatTreeGeom};
use crate::types::{NodeId, Topology, TopologyKind};

/// Sentinel marking "no route" / "self" entries in the next-hop table.
const NO_HOP: u16 = u16::MAX;

/// One up*/down* step from `cur` toward `dst` (`cur != dst`). Applied
/// hop-by-hop, so the table walk is self-consistent by construction.
fn fat_tree_hop(g: &FatTreeGeom, cur: usize, dst: usize) -> usize {
    // Deterministic steering index for uphill fan-out choices.
    let steer = dst % g.half;
    match g.level(cur) {
        // A host's only link is its edge switch.
        0 => g.edge(g.pod(cur), g.index(cur)),
        1 => {
            let p = g.pod(cur);
            match g.level(dst) {
                // My own host: deliver. Anything else below goes up first.
                0 if g.pod(dst) == p && g.index(dst) == g.index(cur) => dst,
                // An agg in my pod is directly above me.
                2 if g.pod(dst) == p => dst,
                // Core group and foreign-pod aggs pick the agg index that
                // reaches the destination's column directly.
                3 => g.agg(p, g.index(dst)),
                2 => g.agg(p, g.index(dst)),
                _ => g.agg(p, steer),
            }
        }
        2 => {
            let p = g.pod(cur);
            let j = g.index(cur);
            match g.level(dst) {
                // Down-cone: descend, steered by the destination.
                1 if g.pod(dst) == p => dst,
                0 if g.pod(dst) == p => g.edge(p, g.index(dst)),
                // My core group: directly above.
                3 if g.index(dst) == j => dst,
                // Sibling agg in my pod: one down step, then back up.
                2 if g.pod(dst) == p => g.edge(p, steer),
                // Same column in another pod: reachable through my cores.
                2 if g.index(dst) == j => g.core(j, steer),
                // Different column: turn through an edge switch, which
                // climbs to the right column.
                2 => g.edge(p, steer),
                3 => g.edge(p, steer),
                // Host or edge in a foreign pod: climb into my core group.
                _ => g.core(j, steer),
            }
        }
        _ => {
            let grp = g.index(cur);
            match g.level(dst) {
                // Another core: descend into a deterministic pod, whose
                // agg either sees the core directly (same group) or turns.
                3 => g.agg(dst % g.k, grp),
                2 if g.index(dst) == grp => dst,
                _ => g.agg(g.pod(dst), grp),
            }
        }
    }
}

/// One minimal (or Valiant) dragonfly step from `cur` toward `dst`
/// (`cur != dst`). The Valiant detour group is a deterministic function of
/// the destination alone, so the hop rule stays consistent table-wide.
fn dragonfly_hop(g: &DragonflyGeom, cur: usize, dst: usize, valiant: bool) -> usize {
    // Terminals climb to their router.
    if !g.is_router(cur) {
        return g.router_of(cur);
    }
    let (gc, gd) = (g.group(cur), g.group(dst));
    if gc == gd {
        let rd = g.router_of(dst);
        // My terminal, or a sibling router / its terminal's router — the
        // intra-group graph is complete, so one hop reaches any router.
        return if rd == cur { dst } else { rd };
    }
    let target = if valiant {
        // Detour group: never the destination's group; routers already in
        // the detour (or destination) group head straight for `gd`.
        let via = (gd + 1 + dst % (g.groups - 1)) % g.groups;
        if gc == via { gd } else { via }
    } else {
        gd
    };
    let gw = g.gateway(gc, target);
    if cur == gw {
        g.gateway(target, gc)
    } else {
        gw
    }
}

/// A complete next-hop table for one topology.
#[derive(Debug, Clone)]
pub struct Router {
    n: usize,
    /// `table[src * n + dst]` = next hop from `src` toward `dst`.
    table: Vec<u16>,
}

impl Router {
    /// Minimal routing for an arbitrary connected topology via per-
    /// destination BFS. Ties broken toward the smallest neighbor index, so
    /// tables are deterministic.
    pub fn shortest_path(topo: &Topology) -> Router {
        let n = topo.len();
        let mut table = vec![NO_HOP; n * n];
        for dst in topo.nodes() {
            // BFS from the destination; each node's parent-side neighbor on
            // the BFS tree is its next hop toward dst.
            let dist = topo.bfs_distances(dst);
            for src in topo.nodes() {
                if src == dst || dist[src.idx()] == u32::MAX {
                    continue;
                }
                let hop = topo
                    .neighbors(src)
                    .iter()
                    .copied()
                    .filter(|nb| dist[nb.idx()] + 1 == dist[src.idx()])
                    .min()
                    .expect("BFS tree must provide a downhill neighbor");
                table[src.idx() * n + dst.idx()] = hop.0;
            }
        }
        Router { n, table }
    }

    /// Dimension-order (X-Y) routing for a mesh: correct columns first, then
    /// rows.
    ///
    /// # Panics
    /// Panics if `topo` is not a mesh.
    pub fn dimension_order(topo: &Topology) -> Router {
        let TopologyKind::Mesh { rows, cols } = topo.kind() else {
            panic!("dimension_order: not a mesh: {}", topo.kind());
        };
        let (rows, cols) = (rows as usize, cols as usize);
        let n = topo.len();
        assert_eq!(n, rows * cols);
        let mut table = vec![NO_HOP; n * n];
        for src in 0..n {
            let (sr, sc) = (src / cols, src % cols);
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let (dr, dc) = (dst / cols, dst % cols);
                let hop = if sc < dc {
                    src + 1
                } else if sc > dc {
                    src - 1
                } else if sr < dr {
                    src + cols
                } else {
                    src - cols
                };
                table[src * n + dst] = hop as u16;
            }
        }
        Router { n, table }
    }

    /// E-cube routing for a hypercube: flip the lowest differing address bit.
    ///
    /// # Panics
    /// Panics if `topo` is not a hypercube.
    pub fn ecube(topo: &Topology) -> Router {
        let TopologyKind::Hypercube { .. } = topo.kind() else {
            panic!("ecube: not a hypercube: {}", topo.kind());
        };
        let n = topo.len();
        let mut table = vec![NO_HOP; n * n];
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let diff = src ^ dst;
                let bit = diff.trailing_zeros();
                table[src * n + dst] = (src ^ (1 << bit)) as u16;
            }
        }
        Router { n, table }
    }

    /// Dimension-order routing for a torus: correct columns first (shortest
    /// way around the ring), then rows.
    ///
    /// # Panics
    /// Panics if `topo` is not a torus.
    pub fn dimension_order_torus(topo: &Topology) -> Router {
        let TopologyKind::Torus { rows, cols } = topo.kind() else {
            panic!("dimension_order_torus: not a torus: {}", topo.kind());
        };
        let (rows, cols) = (rows as usize, cols as usize);
        let n = topo.len();
        assert_eq!(n, rows * cols);
        // One step along a ring of length `len`, the shortest way from `a`
        // toward `b` (ties go up, matching BFS's smaller-index preference
        // often enough for tests to pin separately).
        fn step(a: usize, b: usize, len: usize) -> usize {
            let fwd = (b + len - a) % len;
            let bwd = (a + len - b) % len;
            if fwd <= bwd {
                (a + 1) % len
            } else {
                (a + len - 1) % len
            }
        }
        let mut table = vec![NO_HOP; n * n];
        for src in 0..n {
            let (sr, sc) = (src / cols, src % cols);
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let (dr, dc) = (dst / cols, dst % cols);
                let hop = if sc != dc {
                    sr * cols + step(sc, dc, cols)
                } else {
                    step(sr, dr, rows) * cols + sc
                };
                table[src * n + dst] = hop as u16;
            }
        }
        Router { n, table }
    }

    /// Up*/down* routing for a fat-tree: climb toward the core exactly as
    /// far as needed, then descend. Every path makes at most one down→up
    /// turn (sibling switches route through a lower level), so two virtual
    /// channel classes suffice for deadlock freedom (see `flow`). Uphill
    /// choices are steered by a deterministic function of the destination,
    /// spreading load without randomness.
    ///
    /// # Panics
    /// Panics if `topo` is not a fat-tree.
    pub fn fat_tree_updown(topo: &Topology) -> Router {
        let TopologyKind::FatTree { k } = topo.kind() else {
            panic!("fat_tree_updown: not a fat-tree: {}", topo.kind());
        };
        let g = FatTreeGeom::new(k as usize);
        let n = topo.len();
        assert_eq!(n, crate::build::fat_tree_size(k as usize));
        let mut table = vec![NO_HOP; n * n];
        for src in 0..n {
            for dst in 0..n {
                if src != dst {
                    table[src * n + dst] = fat_tree_hop(&g, src, dst) as u16;
                }
            }
        }
        Router { n, table }
    }

    /// Minimal routing for a dragonfly: local hop to the gateway router,
    /// one global hop, local hop to the destination router (skipping local
    /// hops when the current router already is the gateway).
    ///
    /// # Panics
    /// Panics if `topo` is not a dragonfly.
    pub fn dragonfly_minimal(topo: &Topology) -> Router {
        Router::dragonfly_table(topo, false)
    }

    /// Valiant routing for a dragonfly: traffic to a remote group detours
    /// through a deterministic intermediate group chosen from the
    /// destination address, bounding per-link load under adversarial
    /// patterns at the cost of up to two global hops.
    ///
    /// # Panics
    /// Panics if `topo` is not a dragonfly.
    pub fn dragonfly_valiant(topo: &Topology) -> Router {
        Router::dragonfly_table(topo, true)
    }

    fn dragonfly_table(topo: &Topology, valiant: bool) -> Router {
        let TopologyKind::Dragonfly { a, p, h } = topo.kind() else {
            panic!("dragonfly router: not a dragonfly: {}", topo.kind());
        };
        let g = DragonflyGeom::new(a as usize, p as usize, h as usize);
        let n = topo.len();
        assert_eq!(n, crate::build::dragonfly_size(a as usize, p as usize, h as usize));
        let mut table = vec![NO_HOP; n * n];
        for src in 0..n {
            for dst in 0..n {
                if src != dst {
                    table[src * n + dst] = dragonfly_hop(&g, src, dst, valiant) as u16;
                }
            }
        }
        Router { n, table }
    }

    /// The preferred router for a topology: dimension-order for meshes and
    /// tori, e-cube for hypercubes, up*/down* for fat-trees, minimal for
    /// dragonflies, BFS otherwise.
    pub fn for_topology(topo: &Topology) -> Router {
        match topo.kind() {
            TopologyKind::Mesh { .. } => Router::dimension_order(topo),
            TopologyKind::Torus { .. } => Router::dimension_order_torus(topo),
            TopologyKind::Hypercube { .. } => Router::ecube(topo),
            TopologyKind::FatTree { .. } => Router::fat_tree_updown(topo),
            TopologyKind::Dragonfly { .. } => Router::dragonfly_minimal(topo),
            _ => Router::shortest_path(topo),
        }
    }

    /// Number of nodes this table covers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the empty table.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Next hop from `src` toward `dst`; `None` when `src == dst` or no
    /// route exists.
    #[inline]
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        let v = self.table[src.idx() * self.n + dst.idx()];
        (v != NO_HOP).then_some(NodeId(v))
    }

    /// The full hop sequence from `src` to `dst` (exclusive of `src`,
    /// inclusive of `dst`); empty when `src == dst`.
    ///
    /// # Panics
    /// Panics if the table has no route or contains a loop (both are
    /// construction bugs).
    pub fn path(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let mut path = Vec::new();
        let mut cur = src;
        while cur != dst {
            let hop = self
                .next_hop(cur, dst)
                .unwrap_or_else(|| panic!("no route {cur} -> {dst}"));
            path.push(hop);
            cur = hop;
            assert!(
                path.len() <= self.n,
                "routing loop detected between {src} and {dst}"
            );
        }
        path
    }

    /// Hop count from `src` to `dst`.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        self.path(src, dst).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;

    fn check_minimal(topo: &Topology, router: &Router) {
        for src in topo.nodes() {
            let dist = topo.bfs_distances(src);
            for dst in topo.nodes() {
                let path = router.path(src, dst);
                assert_eq!(
                    path.len() as u32,
                    dist[dst.idx()],
                    "non-minimal path {src}->{dst} on {}",
                    topo.kind()
                );
                // Each hop must be a real edge.
                let mut prev = src;
                for &hop in &path {
                    assert!(topo.adjacent(prev, hop), "phantom edge {prev}->{hop}");
                    prev = hop;
                }
            }
        }
    }

    #[test]
    fn bfs_router_minimal_on_all_shapes() {
        for topo in [
            build::linear(7),
            build::ring(8),
            build::mesh(3, 5),
            build::hypercube(3),
            build::star(6),
            build::complete(5),
            build::nap_backbone(),
        ] {
            let r = Router::shortest_path(&topo);
            check_minimal(&topo, &r);
        }
    }

    #[test]
    fn dimension_order_minimal_and_xy() {
        let topo = build::mesh(4, 4);
        let r = Router::dimension_order(&topo);
        check_minimal(&topo, &r);
        // From (0,0)=0 to (2,3)=11: must move in X (columns) first.
        let path = r.path(NodeId(0), NodeId(11));
        assert_eq!(path, vec![NodeId(1), NodeId(2), NodeId(3), NodeId(7), NodeId(11)]);
    }

    #[test]
    fn ecube_minimal_and_bit_ordered() {
        let topo = build::hypercube(4);
        let r = Router::ecube(&topo);
        check_minimal(&topo, &r);
        // 0b0000 -> 0b1010 must fix bit 1 then bit 3.
        let path = r.path(NodeId(0b0000), NodeId(0b1010));
        assert_eq!(path, vec![NodeId(0b0010), NodeId(0b1010)]);
    }

    #[test]
    fn ring_routes_take_short_way_round() {
        let topo = build::ring(8);
        let r = Router::shortest_path(&topo);
        assert_eq!(r.hops(NodeId(0), NodeId(3)), 3);
        assert_eq!(r.hops(NodeId(0), NodeId(6)), 2); // around the back
        assert_eq!(r.hops(NodeId(0), NodeId(4)), 4); // tie: either way is 4
    }

    #[test]
    fn self_route_is_empty() {
        let topo = build::linear(4);
        let r = Router::shortest_path(&topo);
        assert!(r.path(NodeId(2), NodeId(2)).is_empty());
        assert_eq!(r.next_hop(NodeId(2), NodeId(2)), None);
    }

    #[test]
    fn for_topology_picks_specialized_tables() {
        let mesh = build::mesh(2, 4);
        let hc = build::hypercube(3);
        let lin = build::linear(4);
        // All must produce minimal, loop-free routes.
        check_minimal(&mesh, &Router::for_topology(&mesh));
        check_minimal(&hc, &Router::for_topology(&hc));
        check_minimal(&lin, &Router::for_topology(&lin));
    }

    #[test]
    fn torus_dimension_order_minimal() {
        for (r, c) in [(3usize, 3usize), (4, 4), (2, 5)] {
            let topo = build::torus(r, c);
            let router = Router::dimension_order_torus(&topo);
            check_minimal(&topo, &router);
        }
        // Wraparound is actually used: 0 -> 3 on a 4x4 torus is one hop.
        let topo = build::torus(4, 4);
        let router = Router::dimension_order_torus(&topo);
        assert_eq!(router.hops(NodeId(0), NodeId(3)), 1);
        assert_eq!(router.hops(NodeId(0), NodeId(15)), 2);
    }

    #[test]
    #[should_panic(expected = "not a torus")]
    fn torus_router_rejects_non_torus() {
        let _ = Router::dimension_order_torus(&build::mesh(2, 2));
    }

    #[test]
    #[should_panic(expected = "not a mesh")]
    fn dimension_order_rejects_non_mesh() {
        let _ = Router::dimension_order(&build::ring(4));
    }

    #[test]
    #[should_panic(expected = "not a hypercube")]
    fn ecube_rejects_non_hypercube() {
        let _ = Router::ecube(&build::mesh(2, 2));
    }

    /// Path validity without a minimality claim: up*/down* and Valiant
    /// routes legitimately exceed BFS distance. Samples node pairs on large
    /// topologies to keep debug-build runtime bounded.
    fn check_routes(topo: &Topology, r: &Router) {
        let n = topo.len();
        assert_eq!(r.len(), n);
        let stride = (n / 48).max(1);
        let mut sample: Vec<NodeId> = (0..n).step_by(stride).map(|i| NodeId(i as u16)).collect();
        sample.push(NodeId((n - 1) as u16));
        for &src in &sample {
            for &dst in &sample {
                let path = r.path(src, dst); // panics on loops and missing routes
                if src == dst {
                    assert!(path.is_empty());
                    continue;
                }
                assert_eq!(*path.last().unwrap(), dst, "path must end at {dst}");
                let mut prev = src;
                for &hop in &path {
                    assert!(
                        topo.adjacent(prev, hop),
                        "phantom edge {prev}->{hop} on {}",
                        topo.kind()
                    );
                    prev = hop;
                }
                assert_eq!(path.len(), r.hops(src, dst));
            }
        }
    }

    #[test]
    fn for_topology_routes_every_builder_sampled_2_to_4096() {
        let topos = [
            build::linear(2),
            build::linear(96),
            build::ring(3),
            build::ring(257),
            build::mesh(2, 2),
            build::mesh(17, 23),
            build::torus(3, 3),
            build::torus(64, 64),
            build::hypercube(1),
            build::hypercube(12),
            build::binary_tree(511),
            build::star(129),
            build::complete(65),
            build::nap_backbone(),
            build::fat_tree(2),
            build::fat_tree(4),
            build::fat_tree(8),
            build::fat_tree(16),
            build::dragonfly(1, 1, 1),
            build::dragonfly(3, 3, 1),
            build::dragonfly(4, 2, 2),
            build::dragonfly(10, 5, 5),
        ];
        for topo in &topos {
            check_routes(topo, &Router::for_topology(topo));
        }
    }

    #[test]
    fn fat_tree_updown_turns_at_most_once() {
        let topo = build::fat_tree(4);
        let g = FatTreeGeom::new(4);
        let r = Router::fat_tree_updown(&topo);
        for src in topo.nodes() {
            for dst in topo.nodes() {
                if src == dst {
                    continue;
                }
                let path = r.path(src, dst);
                // Count down->up direction reversals along the path.
                let mut turns = 0;
                let mut prev = src;
                let mut going_down = false;
                for &hop in &path {
                    let up = g.level(hop.idx()) > g.level(prev.idx());
                    if up && going_down {
                        turns += 1;
                    }
                    going_down = !up;
                    prev = hop;
                }
                assert!(turns <= 1, "{src}->{dst} turned {turns} times: {path:?}");
            }
        }
        // Host-to-host across pods is the canonical 6-hop route.
        assert_eq!(r.hops(NodeId(0), NodeId(15)), 6);
        // Hosts under one edge switch share it as their only meeting point.
        assert_eq!(r.hops(NodeId(0), NodeId(1)), 2);
    }

    #[test]
    fn dragonfly_minimal_and_valiant_global_hop_budget() {
        let topo = build::dragonfly(3, 3, 1);
        let g = DragonflyGeom::new(3, 3, 1);
        let minimal = Router::dragonfly_minimal(&topo);
        let valiant = Router::dragonfly_valiant(&topo);
        for src in topo.nodes() {
            for dst in topo.nodes() {
                if src == dst {
                    continue;
                }
                for (r, max_globals, max_hops) in
                    [(&minimal, 1, 5), (&valiant, 2, 8)]
                {
                    let path = r.path(src, dst);
                    let mut globals = 0;
                    let mut prev = src;
                    for &hop in &path {
                        if g.group(prev.idx()) != g.group(hop.idx()) {
                            globals += 1;
                        }
                        prev = hop;
                    }
                    assert!(
                        globals <= max_globals && path.len() <= max_hops,
                        "{src}->{dst}: {globals} globals over {} hops",
                        path.len()
                    );
                }
            }
        }
        check_routes(&topo, &valiant);
    }

    #[test]
    #[should_panic(expected = "not a fat-tree")]
    fn fat_tree_router_rejects_other_shapes() {
        let _ = Router::fat_tree_updown(&build::mesh(2, 2));
    }

    #[test]
    #[should_panic(expected = "not a dragonfly")]
    fn dragonfly_router_rejects_other_shapes() {
        let _ = Router::dragonfly_minimal(&build::ring(4));
    }

    #[test]
    fn deterministic_tie_break() {
        let topo = build::ring(4);
        let a = Router::shortest_path(&topo);
        let b = Router::shortest_path(&topo);
        for s in topo.nodes() {
            for d in topo.nodes() {
                assert_eq!(a.next_hop(s, d), b.next_hop(s, d));
            }
        }
        // Distance-2 tie on a 4-ring resolves toward the smaller neighbor.
        assert_eq!(a.next_hop(NodeId(0), NodeId(2)), Some(NodeId(1)));
    }
}
