//! Routing.
//!
//! The store-and-forward network needs, at every node, the next hop toward
//! any destination. A [`Router`] answers that query either from a full
//! next-hop table (BFS shortest paths, for arbitrary adjacency) or — for
//! every canonical builder shape — *algorithmically*, from the same pure
//! per-kind hop formulas that used to fill the tables. The algorithmic
//! strategies need O(1) memory instead of the table's O(n²), which is what
//! lets routers exist at 16k–64k nodes (a 64k-node table would be 17 GB);
//! because they evaluate the exact formulas the tables were filled from,
//! next hops are bit-identical to the tabled ones.
//!
//! * [`Router::shortest_path`] — BFS-based minimal routing for any topology,
//!   deterministic (smallest-index neighbor wins ties). Tabled.
//! * [`Router::dimension_order`] — X-then-Y routing for meshes (minimal and
//!   deadlock-free under hop-by-hop buffering).
//! * [`Router::ecube`] — e-cube routing for hypercubes (fix address bits
//!   lowest-first; minimal and deadlock-free).
//! * [`Router::dimension_order_torus`], [`Router::fat_tree_updown`],
//!   [`Router::dragonfly_minimal`] / [`Router::dragonfly_valiant`] — the
//!   per-shape strategies from PR 9.
//!
//! [`Router::for_topology`] additionally recognizes canonical linear
//! arrays, rings, binary trees, stars and complete graphs (validating the
//! adjacency in O(E)) and routes them with closed-form hops that reproduce
//! BFS's tie-breaking exactly; a hand-built non-canonical adjacency falls
//! back to the BFS table, as before.

use crate::build::{DragonflyGeom, FatTreeGeom};
use crate::types::{NodeId, Topology, TopologyKind};

/// Sentinel marking "no route" / "self" entries in the next-hop table.
const NO_HOP: u32 = u32::MAX;

/// One up*/down* step from `cur` toward `dst` (`cur != dst`). Applied
/// hop-by-hop, so the table walk is self-consistent by construction.
fn fat_tree_hop(g: &FatTreeGeom, cur: usize, dst: usize) -> usize {
    // Deterministic steering index for uphill fan-out choices.
    let steer = dst % g.half;
    match g.level(cur) {
        // A host's only link is its edge switch.
        0 => g.edge(g.pod(cur), g.index(cur)),
        1 => {
            let p = g.pod(cur);
            match g.level(dst) {
                // My own host: deliver. Anything else below goes up first.
                0 if g.pod(dst) == p && g.index(dst) == g.index(cur) => dst,
                // An agg in my pod is directly above me.
                2 if g.pod(dst) == p => dst,
                // Core group and foreign-pod aggs pick the agg index that
                // reaches the destination's column directly.
                3 => g.agg(p, g.index(dst)),
                2 => g.agg(p, g.index(dst)),
                _ => g.agg(p, steer),
            }
        }
        2 => {
            let p = g.pod(cur);
            let j = g.index(cur);
            match g.level(dst) {
                // Down-cone: descend, steered by the destination.
                1 if g.pod(dst) == p => dst,
                0 if g.pod(dst) == p => g.edge(p, g.index(dst)),
                // My core group: directly above.
                3 if g.index(dst) == j => dst,
                // Sibling agg in my pod: one down step, then back up.
                2 if g.pod(dst) == p => g.edge(p, steer),
                // Same column in another pod: reachable through my cores.
                2 if g.index(dst) == j => g.core(j, steer),
                // Different column: turn through an edge switch, which
                // climbs to the right column.
                2 => g.edge(p, steer),
                3 => g.edge(p, steer),
                // Host or edge in a foreign pod: climb into my core group.
                _ => g.core(j, steer),
            }
        }
        _ => {
            let grp = g.index(cur);
            match g.level(dst) {
                // Another core: descend into a deterministic pod, whose
                // agg either sees the core directly (same group) or turns.
                3 => g.agg(dst % g.k, grp),
                2 if g.index(dst) == grp => dst,
                _ => g.agg(g.pod(dst), grp),
            }
        }
    }
}

/// One minimal (or Valiant) dragonfly step from `cur` toward `dst`
/// (`cur != dst`). The Valiant detour group is a deterministic function of
/// the destination alone, so the hop rule stays consistent table-wide.
fn dragonfly_hop(g: &DragonflyGeom, cur: usize, dst: usize, valiant: bool) -> usize {
    // Terminals climb to their router.
    if !g.is_router(cur) {
        return g.router_of(cur);
    }
    let (gc, gd) = (g.group(cur), g.group(dst));
    if gc == gd {
        let rd = g.router_of(dst);
        // My terminal, or a sibling router / its terminal's router — the
        // intra-group graph is complete, so one hop reaches any router.
        return if rd == cur { dst } else { rd };
    }
    let target = if valiant {
        // Detour group: never the destination's group; routers already in
        // the detour (or destination) group head straight for `gd`.
        let via = (gd + 1 + dst % (g.groups - 1)) % g.groups;
        if gc == via { gd } else { via }
    } else {
        gd
    };
    let gw = g.gateway(gc, target);
    if cur == gw {
        g.gateway(target, gc)
    } else {
        gw
    }
}

/// One dimension-order mesh step (columns first, then rows).
#[inline]
fn mesh_hop(cols: usize, src: usize, dst: usize) -> usize {
    let (sr, sc) = (src / cols, src % cols);
    let (dr, dc) = (dst / cols, dst % cols);
    if sc < dc {
        src + 1
    } else if sc > dc {
        src - 1
    } else if sr < dr {
        src + cols
    } else {
        src - cols
    }
}

/// One step along a ring of length `len`, the shortest way from `a` toward
/// `b` (ties go up/forward, matching the torus table builder).
#[inline]
fn ring_step(a: usize, b: usize, len: usize) -> usize {
    let fwd = (b + len - a) % len;
    let bwd = (a + len - b) % len;
    if fwd <= bwd {
        (a + 1) % len
    } else {
        (a + len - 1) % len
    }
}

/// One dimension-order torus step (columns first, shortest way around each
/// ring).
#[inline]
fn torus_hop(rows: usize, cols: usize, src: usize, dst: usize) -> usize {
    let (sr, sc) = (src / cols, src % cols);
    let (dr, dc) = (dst / cols, dst % cols);
    if sc != dc {
        sr * cols + ring_step(sc, dc, cols)
    } else {
        ring_step(sr, dr, rows) * cols + sc
    }
}

/// One shortest-way ring hop with BFS tie-breaking: at the antipode of an
/// even ring both directions are downhill and BFS picks the smaller
/// neighbor index.
#[inline]
fn ring_hop(n: usize, src: usize, dst: usize) -> usize {
    let fwd = (dst + n - src) % n;
    let bwd = n - fwd;
    let up = (src + 1) % n;
    let down = (src + n - 1) % n;
    if fwd < bwd {
        up
    } else if bwd < fwd {
        down
    } else {
        up.min(down)
    }
}

/// One hop down (or up) the complete binary tree rooted at 0: descend into
/// the child whose subtree holds `dst`, else climb to the parent. The tree
/// path is unique, so this matches BFS exactly.
fn tree_hop(src: usize, dst: usize) -> usize {
    let mut v = dst;
    while v > src {
        let parent = (v - 1) / 2;
        if parent == src {
            return v; // v is src's child on the (unique) path to dst
        }
        v = parent;
    }
    (src - 1) / 2 // src is not an ancestor of dst: go up
}

/// How a [`Router`] answers next-hop queries. Table for BFS (arbitrary
/// adjacency); everything else is the closed-form hop rule of one
/// canonical shape, evaluated on demand.
#[derive(Debug, Clone)]
enum Strategy {
    /// `table[src * n + dst]` = next hop from `src` toward `dst`.
    Table(Vec<u32>),
    Linear,
    Ring,
    Mesh { cols: usize },
    Torus { rows: usize, cols: usize },
    Hypercube,
    Tree,
    Star,
    Complete,
    FatTree(FatTreeGeom),
    Dragonfly { geom: DragonflyGeom, valiant: bool },
}

/// A next-hop oracle for one topology.
#[derive(Debug, Clone)]
pub struct Router {
    n: usize,
    strategy: Strategy,
}

impl Router {
    /// Minimal routing for an arbitrary connected topology via per-
    /// destination BFS. Ties broken toward the smallest neighbor index, so
    /// tables are deterministic. This is the only strategy that
    /// materializes an O(n²) table; the canonical shapes route
    /// algorithmically.
    pub fn shortest_path(topo: &Topology) -> Router {
        let n = topo.len();
        let mut table = vec![NO_HOP; n * n];
        for dst in topo.nodes() {
            // BFS from the destination; each node's parent-side neighbor on
            // the BFS tree is its next hop toward dst.
            let dist = topo.bfs_distances(dst);
            for src in topo.nodes() {
                if src == dst || dist[src.idx()] == u32::MAX {
                    continue;
                }
                let hop = topo
                    .neighbors(src)
                    .iter()
                    .copied()
                    .filter(|nb| dist[nb.idx()] + 1 == dist[src.idx()])
                    .min()
                    .expect("BFS tree must provide a downhill neighbor");
                table[src.idx() * n + dst.idx()] = hop.0;
            }
        }
        Router { n, strategy: Strategy::Table(table) }
    }

    /// Dimension-order (X-Y) routing for a mesh: correct columns first, then
    /// rows.
    ///
    /// # Panics
    /// Panics if `topo` is not a mesh.
    pub fn dimension_order(topo: &Topology) -> Router {
        let TopologyKind::Mesh { rows, cols } = topo.kind() else {
            panic!("dimension_order: not a mesh: {}", topo.kind());
        };
        let (rows, cols) = (rows as usize, cols as usize);
        let n = topo.len();
        assert_eq!(n, rows * cols);
        Router { n, strategy: Strategy::Mesh { cols } }
    }

    /// E-cube routing for a hypercube: flip the lowest differing address bit.
    ///
    /// # Panics
    /// Panics if `topo` is not a hypercube.
    pub fn ecube(topo: &Topology) -> Router {
        let TopologyKind::Hypercube { .. } = topo.kind() else {
            panic!("ecube: not a hypercube: {}", topo.kind());
        };
        Router { n: topo.len(), strategy: Strategy::Hypercube }
    }

    /// Dimension-order routing for a torus: correct columns first (shortest
    /// way around the ring), then rows.
    ///
    /// # Panics
    /// Panics if `topo` is not a torus.
    pub fn dimension_order_torus(topo: &Topology) -> Router {
        let TopologyKind::Torus { rows, cols } = topo.kind() else {
            panic!("dimension_order_torus: not a torus: {}", topo.kind());
        };
        let (rows, cols) = (rows as usize, cols as usize);
        let n = topo.len();
        assert_eq!(n, rows * cols);
        Router { n, strategy: Strategy::Torus { rows, cols } }
    }

    /// Up*/down* routing for a fat-tree: climb toward the core exactly as
    /// far as needed, then descend. Every path makes at most one down→up
    /// turn (sibling switches route through a lower level), so two virtual
    /// channel classes suffice for deadlock freedom (see `flow`). Uphill
    /// choices are steered by a deterministic function of the destination,
    /// spreading load without randomness.
    ///
    /// # Panics
    /// Panics if `topo` is not a fat-tree.
    pub fn fat_tree_updown(topo: &Topology) -> Router {
        let TopologyKind::FatTree { k } = topo.kind() else {
            panic!("fat_tree_updown: not a fat-tree: {}", topo.kind());
        };
        let g = FatTreeGeom::new(k as usize);
        let n = topo.len();
        assert_eq!(n, crate::build::fat_tree_size(k as usize));
        Router { n, strategy: Strategy::FatTree(g) }
    }

    /// Minimal routing for a dragonfly: local hop to the gateway router,
    /// one global hop, local hop to the destination router (skipping local
    /// hops when the current router already is the gateway).
    ///
    /// # Panics
    /// Panics if `topo` is not a dragonfly.
    pub fn dragonfly_minimal(topo: &Topology) -> Router {
        Router::dragonfly_router(topo, false)
    }

    /// Valiant routing for a dragonfly: traffic to a remote group detours
    /// through a deterministic intermediate group chosen from the
    /// destination address, bounding per-link load under adversarial
    /// patterns at the cost of up to two global hops.
    ///
    /// # Panics
    /// Panics if `topo` is not a dragonfly.
    pub fn dragonfly_valiant(topo: &Topology) -> Router {
        Router::dragonfly_router(topo, true)
    }

    fn dragonfly_router(topo: &Topology, valiant: bool) -> Router {
        let TopologyKind::Dragonfly { a, p, h } = topo.kind() else {
            panic!("dragonfly router: not a dragonfly: {}", topo.kind());
        };
        let g = DragonflyGeom::new(a as usize, p as usize, h as usize);
        let n = topo.len();
        assert_eq!(n, crate::build::dragonfly_size(a as usize, p as usize, h as usize));
        Router { n, strategy: Strategy::Dragonfly { geom: g, valiant } }
    }

    /// The preferred router for a topology: dimension-order for meshes and
    /// tori, e-cube for hypercubes, up*/down* for fat-trees, minimal for
    /// dragonflies; closed-form hops for canonical linear arrays, rings,
    /// binary trees, stars and complete graphs (validated in O(E), falling
    /// back to the BFS table for hand-built adjacencies); BFS otherwise.
    pub fn for_topology(topo: &Topology) -> Router {
        let n = topo.len();
        match topo.kind() {
            TopologyKind::Mesh { .. } => Router::dimension_order(topo),
            TopologyKind::Torus { .. } => Router::dimension_order_torus(topo),
            TopologyKind::Hypercube { .. } => Router::ecube(topo),
            TopologyKind::FatTree { .. } => Router::fat_tree_updown(topo),
            TopologyKind::Dragonfly { .. } => Router::dragonfly_minimal(topo),
            TopologyKind::Linear if is_canonical_linear(topo) => {
                Router { n, strategy: Strategy::Linear }
            }
            TopologyKind::Ring if is_canonical_ring(topo) => {
                Router { n, strategy: Strategy::Ring }
            }
            TopologyKind::Tree if is_canonical_tree(topo) => {
                Router { n, strategy: Strategy::Tree }
            }
            TopologyKind::Star if is_canonical_star(topo) => {
                Router { n, strategy: Strategy::Star }
            }
            TopologyKind::Complete if is_canonical_complete(topo) => {
                Router { n, strategy: Strategy::Complete }
            }
            _ => Router::shortest_path(topo),
        }
    }

    /// Number of nodes this router covers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the empty router.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Next hop from `src` toward `dst`; `None` when `src == dst` or no
    /// route exists.
    #[inline]
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        if src == dst {
            return None;
        }
        let (s, d) = (src.idx(), dst.idx());
        let hop = match &self.strategy {
            Strategy::Table(table) => {
                let v = table[s * self.n + d];
                return (v != NO_HOP).then_some(NodeId(v));
            }
            Strategy::Linear => {
                if d > s {
                    s + 1
                } else {
                    s - 1
                }
            }
            Strategy::Ring => ring_hop(self.n, s, d),
            Strategy::Mesh { cols } => mesh_hop(*cols, s, d),
            Strategy::Torus { rows, cols } => torus_hop(*rows, *cols, s, d),
            Strategy::Hypercube => s ^ (1 << (s ^ d).trailing_zeros()),
            Strategy::Tree => tree_hop(s, d),
            Strategy::Star => {
                if s == 0 {
                    d
                } else {
                    0
                }
            }
            Strategy::Complete => d,
            Strategy::FatTree(g) => fat_tree_hop(g, s, d),
            Strategy::Dragonfly { geom, valiant } => dragonfly_hop(geom, s, d, *valiant),
        };
        Some(NodeId::from_index(hop))
    }

    /// The full hop sequence from `src` to `dst` (exclusive of `src`,
    /// inclusive of `dst`); empty when `src == dst`.
    ///
    /// # Panics
    /// Panics if the router has no route or produces a loop (both are
    /// construction bugs).
    pub fn path(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let mut path = Vec::new();
        let mut cur = src;
        while cur != dst {
            let hop = self
                .next_hop(cur, dst)
                .unwrap_or_else(|| panic!("no route {cur} -> {dst}"));
            path.push(hop);
            cur = hop;
            assert!(
                path.len() <= self.n,
                "routing loop detected between {src} and {dst}"
            );
        }
        path
    }

    /// Hop count from `src` to `dst`.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        self.path(src, dst).len()
    }
}

/// Canonical-adjacency checks (O(E) each). `for_topology` uses these to
/// decide whether a kind's closed-form hop rule actually matches the graph
/// it was handed; `Topology::from_adjacency` already guarantees simplicity
/// and symmetry, so degree/membership checks suffice.
fn is_canonical_linear(topo: &Topology) -> bool {
    let n = topo.len();
    (0..n).all(|i| {
        let mut expect = Vec::with_capacity(2);
        if i > 0 {
            expect.push(NodeId::from_index(i - 1));
        }
        if i + 1 < n {
            expect.push(NodeId::from_index(i + 1));
        }
        topo.neighbors(NodeId::from_index(i)) == expect.as_slice()
    })
}

fn is_canonical_ring(topo: &Topology) -> bool {
    let n = topo.len();
    if n <= 2 {
        return is_canonical_linear(topo);
    }
    (0..n).all(|i| {
        let mut expect = [
            NodeId::from_index((i + n - 1) % n),
            NodeId::from_index((i + 1) % n),
        ];
        expect.sort_unstable();
        topo.neighbors(NodeId::from_index(i)) == expect.as_slice()
    })
}

fn is_canonical_tree(topo: &Topology) -> bool {
    let n = topo.len();
    (0..n).all(|i| {
        let mut expect = Vec::with_capacity(3);
        if i > 0 {
            expect.push(NodeId::from_index((i - 1) / 2));
        }
        if 2 * i + 1 < n {
            expect.push(NodeId::from_index(2 * i + 1));
        }
        if 2 * i + 2 < n {
            expect.push(NodeId::from_index(2 * i + 2));
        }
        expect.sort_unstable();
        topo.neighbors(NodeId::from_index(i)) == expect.as_slice()
    })
}

fn is_canonical_star(topo: &Topology) -> bool {
    let n = topo.len();
    topo.degree(NodeId(0)) == n - 1
        && (1..n).all(|i| topo.neighbors(NodeId::from_index(i)) == [NodeId(0)])
}

fn is_canonical_complete(topo: &Topology) -> bool {
    let n = topo.len();
    // Simple + symmetric + degree n-1 everywhere == complete.
    topo.nodes().all(|u| topo.degree(u) == n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;

    fn check_minimal(topo: &Topology, router: &Router) {
        for src in topo.nodes() {
            let dist = topo.bfs_distances(src);
            for dst in topo.nodes() {
                let path = router.path(src, dst);
                assert_eq!(
                    u32::try_from(path.len()).unwrap(),
                    dist[dst.idx()],
                    "non-minimal path {src}->{dst} on {}",
                    topo.kind()
                );
                // Each hop must be a real edge.
                let mut prev = src;
                for &hop in &path {
                    assert!(topo.adjacent(prev, hop), "phantom edge {prev}->{hop}");
                    prev = hop;
                }
            }
        }
    }

    #[test]
    fn bfs_router_minimal_on_all_shapes() {
        for topo in [
            build::linear(7).unwrap(),
            build::ring(8).unwrap(),
            build::mesh(3, 5).unwrap(),
            build::hypercube(3).unwrap(),
            build::star(6).unwrap(),
            build::complete(5).unwrap(),
            build::nap_backbone(),
        ] {
            let r = Router::shortest_path(&topo);
            check_minimal(&topo, &r);
        }
    }

    /// The load-bearing equivalence: on every canonical shape the
    /// algorithmic strategy `for_topology` now picks must answer exactly
    /// what the BFS table answers — same hop, every (src, dst) pair. (For
    /// mesh/torus/hypercube/fat-tree/dragonfly kinds `for_topology` keeps
    /// the same formulas it always used, so only the newly-algorithmic
    /// shapes need the sweep.)
    #[test]
    fn algorithmic_strategies_match_bfs_tables_exactly() {
        for topo in [
            build::linear(1).unwrap(),
            build::linear(2).unwrap(),
            build::linear(17).unwrap(),
            build::ring(2).unwrap(),
            build::ring(3).unwrap(),
            build::ring(16).unwrap(), // even: antipodal ties
            build::ring(17).unwrap(),
            build::binary_tree(1).unwrap(),
            build::binary_tree(2).unwrap(),
            build::binary_tree(31).unwrap(),
            build::binary_tree(40).unwrap(), // ragged last level
            build::star(2).unwrap(),
            build::star(9).unwrap(),
            build::complete(2).unwrap(),
            build::complete(7).unwrap(),
            build::nap_backbone(),
        ] {
            let fast = Router::for_topology(&topo);
            assert!(
                !matches!(fast.strategy, Strategy::Table(_)),
                "{} should route algorithmically",
                topo.kind()
            );
            let bfs = Router::shortest_path(&topo);
            for s in topo.nodes() {
                for d in topo.nodes() {
                    assert_eq!(
                        fast.next_hop(s, d),
                        bfs.next_hop(s, d),
                        "{}: {s}->{d}",
                        topo.kind()
                    );
                }
            }
        }
    }

    /// A hand-built adjacency whose kind lies about its shape must fall
    /// back to the BFS table, not trust the closed form.
    #[test]
    fn non_canonical_adjacency_falls_back_to_bfs() {
        // Kind says Linear, adjacency is a 4-star rooted at 0.
        let topo = Topology::from_adjacency(
            TopologyKind::Linear,
            vec![
                vec![NodeId(1), NodeId(2), NodeId(3)],
                vec![NodeId(0)],
                vec![NodeId(0)],
                vec![NodeId(0)],
            ],
        );
        let r = Router::for_topology(&topo);
        assert!(matches!(r.strategy, Strategy::Table(_)));
        assert_eq!(r.next_hop(NodeId(1), NodeId(3)), Some(NodeId(0)));
        check_minimal(&topo, &r);
    }

    #[test]
    fn dimension_order_minimal_and_xy() {
        let topo = build::mesh(4, 4).unwrap();
        let r = Router::dimension_order(&topo);
        check_minimal(&topo, &r);
        // From (0,0)=0 to (2,3)=11: must move in X (columns) first.
        let path = r.path(NodeId(0), NodeId(11));
        assert_eq!(path, vec![NodeId(1), NodeId(2), NodeId(3), NodeId(7), NodeId(11)]);
    }

    #[test]
    fn ecube_minimal_and_bit_ordered() {
        let topo = build::hypercube(4).unwrap();
        let r = Router::ecube(&topo);
        check_minimal(&topo, &r);
        // 0b0000 -> 0b1010 must fix bit 1 then bit 3.
        let path = r.path(NodeId(0b0000), NodeId(0b1010));
        assert_eq!(path, vec![NodeId(0b0010), NodeId(0b1010)]);
    }

    #[test]
    fn ring_routes_take_short_way_round() {
        let topo = build::ring(8).unwrap();
        let r = Router::shortest_path(&topo);
        assert_eq!(r.hops(NodeId(0), NodeId(3)), 3);
        assert_eq!(r.hops(NodeId(0), NodeId(6)), 2); // around the back
        assert_eq!(r.hops(NodeId(0), NodeId(4)), 4); // tie: either way is 4
    }

    #[test]
    fn self_route_is_empty() {
        let topo = build::linear(4).unwrap();
        let r = Router::shortest_path(&topo);
        assert!(r.path(NodeId(2), NodeId(2)).is_empty());
        assert_eq!(r.next_hop(NodeId(2), NodeId(2)), None);
    }

    #[test]
    fn for_topology_picks_specialized_tables() {
        let mesh = build::mesh(2, 4).unwrap();
        let hc = build::hypercube(3).unwrap();
        let lin = build::linear(4).unwrap();
        // All must produce minimal, loop-free routes.
        check_minimal(&mesh, &Router::for_topology(&mesh));
        check_minimal(&hc, &Router::for_topology(&hc));
        check_minimal(&lin, &Router::for_topology(&lin));
    }

    #[test]
    fn torus_dimension_order_minimal() {
        for (r, c) in [(3usize, 3usize), (4, 4), (2, 5)] {
            let topo = build::torus(r, c).unwrap();
            let router = Router::dimension_order_torus(&topo);
            check_minimal(&topo, &router);
        }
        // Wraparound is actually used: 0 -> 3 on a 4x4 torus is one hop.
        let topo = build::torus(4, 4).unwrap();
        let router = Router::dimension_order_torus(&topo);
        assert_eq!(router.hops(NodeId(0), NodeId(3)), 1);
        assert_eq!(router.hops(NodeId(0), NodeId(15)), 2);
    }

    #[test]
    #[should_panic(expected = "not a torus")]
    fn torus_router_rejects_non_torus() {
        let _ = Router::dimension_order_torus(&build::mesh(2, 2).unwrap());
    }

    #[test]
    #[should_panic(expected = "not a mesh")]
    fn dimension_order_rejects_non_mesh() {
        let _ = Router::dimension_order(&build::ring(4).unwrap());
    }

    #[test]
    #[should_panic(expected = "not a hypercube")]
    fn ecube_rejects_non_hypercube() {
        let _ = Router::ecube(&build::mesh(2, 2).unwrap());
    }

    /// Path validity without a minimality claim: up*/down* and Valiant
    /// routes legitimately exceed BFS distance. Samples node pairs on large
    /// topologies to keep debug-build runtime bounded.
    fn check_routes(topo: &Topology, r: &Router) {
        let n = topo.len();
        assert_eq!(r.len(), n);
        let stride = (n / 48).max(1);
        let mut sample: Vec<NodeId> =
            (0..n).step_by(stride).map(NodeId::from_index).collect();
        sample.push(NodeId::from_index(n - 1));
        for &src in &sample {
            for &dst in &sample {
                let path = r.path(src, dst); // panics on loops and missing routes
                if src == dst {
                    assert!(path.is_empty());
                    continue;
                }
                assert_eq!(*path.last().unwrap(), dst, "path must end at {dst}");
                let mut prev = src;
                for &hop in &path {
                    assert!(
                        topo.adjacent(prev, hop),
                        "phantom edge {prev}->{hop} on {}",
                        topo.kind()
                    );
                    prev = hop;
                }
                assert_eq!(path.len(), r.hops(src, dst));
            }
        }
    }

    #[test]
    fn for_topology_routes_every_builder_sampled_2_to_4096() {
        let topos = [
            build::linear(2).unwrap(),
            build::linear(96).unwrap(),
            build::ring(3).unwrap(),
            build::ring(257).unwrap(),
            build::mesh(2, 2).unwrap(),
            build::mesh(17, 23).unwrap(),
            build::torus(3, 3).unwrap(),
            build::torus(64, 64).unwrap(),
            build::hypercube(1).unwrap(),
            build::hypercube(12).unwrap(),
            build::binary_tree(511).unwrap(),
            build::star(129).unwrap(),
            build::complete(65).unwrap(),
            build::nap_backbone(),
            build::fat_tree(2).unwrap(),
            build::fat_tree(4).unwrap(),
            build::fat_tree(8).unwrap(),
            build::fat_tree(16).unwrap(),
            build::dragonfly(1, 1, 1).unwrap(),
            build::dragonfly(3, 3, 1).unwrap(),
            build::dragonfly(4, 2, 2).unwrap(),
            build::dragonfly(10, 5, 5).unwrap(),
        ];
        for topo in &topos {
            check_routes(topo, &Router::for_topology(topo));
        }
    }

    #[test]
    fn fat_tree_updown_turns_at_most_once() {
        let topo = build::fat_tree(4).unwrap();
        let g = FatTreeGeom::new(4);
        let r = Router::fat_tree_updown(&topo);
        for src in topo.nodes() {
            for dst in topo.nodes() {
                if src == dst {
                    continue;
                }
                let path = r.path(src, dst);
                // Count down->up direction reversals along the path.
                let mut turns = 0;
                let mut prev = src;
                let mut going_down = false;
                for &hop in &path {
                    let up = g.level(hop.idx()) > g.level(prev.idx());
                    if up && going_down {
                        turns += 1;
                    }
                    going_down = !up;
                    prev = hop;
                }
                assert!(turns <= 1, "{src}->{dst} turned {turns} times: {path:?}");
            }
        }
        // Host-to-host across pods is the canonical 6-hop route.
        assert_eq!(r.hops(NodeId(0), NodeId(15)), 6);
        // Hosts under one edge switch share it as their only meeting point.
        assert_eq!(r.hops(NodeId(0), NodeId(1)), 2);
    }

    #[test]
    fn dragonfly_minimal_and_valiant_global_hop_budget() {
        let topo = build::dragonfly(3, 3, 1).unwrap();
        let g = DragonflyGeom::new(3, 3, 1);
        let minimal = Router::dragonfly_minimal(&topo);
        let valiant = Router::dragonfly_valiant(&topo);
        for src in topo.nodes() {
            for dst in topo.nodes() {
                if src == dst {
                    continue;
                }
                for (r, max_globals, max_hops) in
                    [(&minimal, 1, 5), (&valiant, 2, 8)]
                {
                    let path = r.path(src, dst);
                    let mut globals = 0;
                    let mut prev = src;
                    for &hop in &path {
                        if g.group(prev.idx()) != g.group(hop.idx()) {
                            globals += 1;
                        }
                        prev = hop;
                    }
                    assert!(
                        globals <= max_globals && path.len() <= max_hops,
                        "{src}->{dst}: {globals} globals over {} hops",
                        path.len()
                    );
                }
            }
        }
        check_routes(&topo, &valiant);
    }

    #[test]
    #[should_panic(expected = "not a fat-tree")]
    fn fat_tree_router_rejects_other_shapes() {
        let _ = Router::fat_tree_updown(&build::mesh(2, 2).unwrap());
    }

    #[test]
    #[should_panic(expected = "not a dragonfly")]
    fn dragonfly_router_rejects_other_shapes() {
        let _ = Router::dragonfly_minimal(&build::ring(4).unwrap());
    }

    #[test]
    fn deterministic_tie_break() {
        let topo = build::ring(4).unwrap();
        let a = Router::shortest_path(&topo);
        let b = Router::shortest_path(&topo);
        for s in topo.nodes() {
            for d in topo.nodes() {
                assert_eq!(a.next_hop(s, d), b.next_hop(s, d));
            }
        }
        // Distance-2 tie on a 4-ring resolves toward the smaller neighbor.
        assert_eq!(a.next_hop(NodeId(0), NodeId(2)), Some(NodeId(1)));
    }
}
