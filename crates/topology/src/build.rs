//! Topology constructors.
//!
//! The paper's Transputer system hardwires sixteen T805s into four pipelines
//! of four ("naps") and uses INMOS C004 crossbar switches on the remaining
//! links so that "almost all commonly used network topologies can be
//! configured" (§3.1). We skip the switch-wiring detail and construct the
//! logical topologies directly; [`nap_backbone`] builds the hardwired base
//! configuration for tests that want it.

use crate::types::{NodeId, Topology, TopologyKind};

/// Linear array of `n` nodes: `0 - 1 - ... - n-1`.
pub fn linear(n: usize) -> Topology {
    assert!(n >= 1, "linear: need at least one node");
    let adj = (0..n)
        .map(|i| {
            let mut l = Vec::with_capacity(2);
            if i > 0 {
                l.push(NodeId((i - 1) as u16));
            }
            if i + 1 < n {
                l.push(NodeId((i + 1) as u16));
            }
            l
        })
        .collect();
    Topology::from_adjacency(TopologyKind::Linear, adj)
}

/// Ring of `n` nodes (for `n <= 2` this degenerates to the linear array,
/// since the graph is simple).
pub fn ring(n: usize) -> Topology {
    assert!(n >= 1, "ring: need at least one node");
    if n <= 2 {
        // Same adjacency as the linear array (the graph is simple), but keep
        // the requested kind for labelling.
        let base = linear(n);
        let adj = base.nodes().map(|u| base.neighbors(u).to_vec()).collect();
        return Topology::from_adjacency(TopologyKind::Ring, adj);
    }
    let adj = (0..n)
        .map(|i| {
            vec![
                NodeId(((i + n - 1) % n) as u16),
                NodeId(((i + 1) % n) as u16),
            ]
        })
        .collect();
    Topology::from_adjacency(TopologyKind::Ring, adj)
}

/// `rows x cols` 2-D mesh without wraparound. Node `(r, c)` has index
/// `r * cols + c`.
pub fn mesh(rows: usize, cols: usize) -> Topology {
    assert!(rows >= 1 && cols >= 1, "mesh: need positive extents");
    let n = rows * cols;
    let mut adj = vec![Vec::with_capacity(4); n];
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            if r > 0 {
                adj[i].push(NodeId((i - cols) as u16));
            }
            if r + 1 < rows {
                adj[i].push(NodeId((i + cols) as u16));
            }
            if c > 0 {
                adj[i].push(NodeId((i - 1) as u16));
            }
            if c + 1 < cols {
                adj[i].push(NodeId((i + 1) as u16));
            }
        }
    }
    Topology::from_adjacency(
        TopologyKind::Mesh {
            rows: rows as u16,
            cols: cols as u16,
        },
        adj,
    )
}

/// The squarest mesh for `n` nodes (the paper's partitions are powers of
/// two: 4 -> 2x2, 8 -> 2x4, 16 -> 4x4).
pub fn mesh_for(n: usize) -> Topology {
    assert!(n >= 1);
    let mut rows = (n as f64).sqrt() as usize;
    while rows > 1 && !n.is_multiple_of(rows) {
        rows -= 1;
    }
    mesh(rows.max(1), n / rows.max(1))
}

/// Binary hypercube with `2^dim` nodes; neighbors differ in one address bit.
pub fn hypercube(dim: u8) -> Topology {
    assert!(dim <= 15, "hypercube: dimension too large");
    let n = 1usize << dim;
    let adj = (0..n)
        .map(|i| (0..dim).map(|d| NodeId((i ^ (1 << d)) as u16)).collect())
        .collect();
    Topology::from_adjacency(TopologyKind::Hypercube { dim }, adj)
}

/// `rows x cols` 2-D torus (mesh with wraparound links). Degree 4 for
/// extents >= 3, so it fits the T805's four links — a configuration some
/// contemporary Transputer machines used.
pub fn torus(rows: usize, cols: usize) -> Topology {
    assert!(rows >= 1 && cols >= 1, "torus: need positive extents");
    let n = rows * cols;
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::with_capacity(4); n];
    let connect = |a: usize, b: usize, adj: &mut Vec<Vec<NodeId>>| {
        if a == b {
            return;
        }
        if !adj[a].contains(&NodeId(b as u16)) {
            adj[a].push(NodeId(b as u16));
            adj[b].push(NodeId(a as u16));
        }
    };
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            connect(i, r * cols + (c + 1) % cols, &mut adj);
            connect(i, ((r + 1) % rows) * cols + c, &mut adj);
        }
    }
    Topology::from_adjacency(
        TopologyKind::Torus {
            rows: rows as u16,
            cols: cols as u16,
        },
        adj,
    )
}

/// The squarest torus for `n` nodes.
pub fn torus_for(n: usize) -> Topology {
    assert!(n >= 1);
    let mut rows = (n as f64).sqrt() as usize;
    while rows > 1 && !n.is_multiple_of(rows) {
        rows -= 1;
    }
    torus(rows.max(1), n / rows.max(1))
}

/// Complete binary tree rooted at node 0 (children of `i` are `2i+1` and
/// `2i+2`). Degree <= 3.
pub fn binary_tree(n: usize) -> Topology {
    assert!(n >= 1, "binary_tree: need at least one node");
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::with_capacity(3); n];
    for i in 1..n {
        let parent = (i - 1) / 2;
        adj[i].push(NodeId(parent as u16));
        adj[parent].push(NodeId(i as u16));
    }
    Topology::from_adjacency(TopologyKind::Tree, adj)
}

/// Star: node 0 is the hub.
pub fn star(n: usize) -> Topology {
    assert!(n >= 1);
    let mut adj = vec![Vec::new(); n];
    for i in 1..n {
        adj[0].push(NodeId(i as u16));
        adj[i].push(NodeId(0));
    }
    Topology::from_adjacency(TopologyKind::Star, adj)
}

/// Complete graph (idealized crossbar).
pub fn complete(n: usize) -> Topology {
    assert!(n >= 1);
    let adj = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| j != i)
                .map(|j| NodeId(j as u16))
                .collect()
        })
        .collect();
    Topology::from_adjacency(TopologyKind::Complete, adj)
}

/// The hardwired base configuration of the paper's machine: four pipelines
/// ("naps") of four processors, chained nap-to-nap so the base machine is
/// connected (one inter-nap link between consecutive naps). The C004
/// switches let the real machine rewire the spare links into any of the
/// logical topologies; simulated experiments use those logical topologies
/// directly.
pub fn nap_backbone() -> Topology {
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); 16];
    let mut connect = |a: usize, b: usize| {
        adj[a].push(NodeId(b as u16));
        adj[b].push(NodeId(a as u16));
    };
    for nap in 0..4 {
        let base = nap * 4;
        for k in 0..3 {
            connect(base + k, base + k + 1);
        }
    }
    // Chain the naps: last node of nap i to first node of nap i+1.
    for nap in 0..3 {
        connect(nap * 4 + 3, (nap + 1) * 4);
    }
    Topology::from_adjacency(TopologyKind::Linear, adj)
}

/// Build the topology the paper calls `<n><letter>` (e.g. `8L`, `4H`).
///
/// Returns `None` for combinations the shape cannot realize (a hypercube
/// needs a power-of-two node count).
pub fn by_kind(kind: TopologyKind, n: usize) -> Option<Topology> {
    match kind {
        TopologyKind::Linear => Some(linear(n)),
        TopologyKind::Ring => Some(ring(n)),
        TopologyKind::Mesh { .. } => Some(mesh_for(n)),
        TopologyKind::Hypercube { .. } => {
            if n.is_power_of_two() {
                Some(hypercube(n.trailing_zeros() as u8))
            } else {
                None
            }
        }
        TopologyKind::Torus { .. } => Some(torus_for(n)),
        TopologyKind::Tree => Some(binary_tree(n)),
        TopologyKind::Star => Some(star(n)),
        TopologyKind::Complete => Some(complete(n)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shape() {
        let t = linear(5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.edge_count(), 4);
        assert_eq!(t.degree(NodeId(0)), 1);
        assert_eq!(t.degree(NodeId(2)), 2);
        assert!(t.is_connected());
    }

    #[test]
    fn single_node_topologies() {
        for t in [linear(1), ring(1), mesh(1, 1), hypercube(0), star(1), complete(1)] {
            assert_eq!(t.len(), 1);
            assert_eq!(t.edge_count(), 0);
            assert!(t.is_connected());
        }
    }

    #[test]
    fn ring_shape() {
        let t = ring(6);
        assert_eq!(t.edge_count(), 6);
        assert!(t.nodes().all(|u| t.degree(u) == 2));
        assert!(t.adjacent(NodeId(0), NodeId(5)));
    }

    #[test]
    fn ring_of_two_is_single_edge() {
        let t = ring(2);
        assert_eq!(t.edge_count(), 1);
        assert_eq!(t.kind(), TopologyKind::Ring);
    }

    #[test]
    fn mesh_shape() {
        let t = mesh(4, 4);
        assert_eq!(t.len(), 16);
        assert_eq!(t.edge_count(), 24);
        assert_eq!(t.degree(NodeId(0)), 2); // corner
        assert_eq!(t.degree(NodeId(1)), 3); // edge
        assert_eq!(t.degree(NodeId(5)), 4); // interior
        assert!(t.max_degree() <= 4, "mesh must fit 4 transputer links");
    }

    #[test]
    fn mesh_for_picks_squarest() {
        assert_eq!(mesh_for(16).kind(), TopologyKind::Mesh { rows: 4, cols: 4 });
        assert_eq!(mesh_for(8).kind(), TopologyKind::Mesh { rows: 2, cols: 4 });
        assert_eq!(mesh_for(4).kind(), TopologyKind::Mesh { rows: 2, cols: 2 });
        assert_eq!(mesh_for(2).kind(), TopologyKind::Mesh { rows: 1, cols: 2 });
    }

    #[test]
    fn hypercube_shape() {
        let t = hypercube(4);
        assert_eq!(t.len(), 16);
        assert_eq!(t.edge_count(), 32);
        assert!(t.nodes().all(|u| t.degree(u) == 4));
        assert!(t.adjacent(NodeId(0b0101), NodeId(0b0100)));
        assert!(!t.adjacent(NodeId(0b0101), NodeId(0b0110)));
    }

    #[test]
    fn transputer_link_budget() {
        // Every topology the paper configures must respect the T805's four
        // physical links per processor.
        for t in [
            linear(16),
            ring(16),
            mesh(4, 4),
            hypercube(4),
        ] {
            assert!(t.max_degree() <= 4, "{} exceeds 4 links", t.kind());
        }
    }

    #[test]
    fn nap_backbone_is_connected_16_node() {
        let t = nap_backbone();
        assert_eq!(t.len(), 16);
        assert!(t.is_connected());
        assert!(t.max_degree() <= 4);
        // A nap chain is a 16-node path.
        assert_eq!(t.edge_count(), 15);
    }

    #[test]
    fn by_kind_dispatch() {
        assert_eq!(
            by_kind(TopologyKind::Hypercube { dim: 0 }, 8).unwrap().len(),
            8
        );
        assert!(by_kind(TopologyKind::Hypercube { dim: 0 }, 6).is_none());
        assert_eq!(by_kind(TopologyKind::Linear, 3).unwrap().len(), 3);
        assert_eq!(
            by_kind(TopologyKind::Mesh { rows: 0, cols: 0 }, 8)
                .unwrap()
                .kind(),
            TopologyKind::Mesh { rows: 2, cols: 4 }
        );
    }

    #[test]
    fn torus_shape() {
        let t = torus(4, 4);
        assert_eq!(t.len(), 16);
        assert!(t.nodes().all(|u| t.degree(u) == 4), "torus is regular");
        assert!(t.max_degree() <= 4, "must fit 4 transputer links");
        assert_eq!(t.edge_count(), 32);
        assert!(t.adjacent(NodeId(0), NodeId(3)), "row wraparound");
        assert!(t.adjacent(NodeId(0), NodeId(12)), "column wraparound");
        // Degenerate extents collapse gracefully.
        assert_eq!(torus(1, 4).edge_count(), 4); // ring of 4
        assert_eq!(torus(2, 2).edge_count(), 4); // no double edges
    }

    #[test]
    fn torus_beats_mesh_on_distance() {
        let m = crate::metrics::metrics(&mesh(4, 4));
        let t = crate::metrics::metrics(&torus(4, 4));
        assert!(t.diameter < m.diameter, "wraparound halves the diameter");
        assert!(t.avg_distance < m.avg_distance);
    }

    #[test]
    fn binary_tree_shape() {
        let t = binary_tree(15);
        assert_eq!(t.edge_count(), 14);
        assert_eq!(t.degree(NodeId(0)), 2);
        assert_eq!(t.degree(NodeId(1)), 3);
        assert_eq!(t.degree(NodeId(14)), 1);
        assert!(t.max_degree() <= 3);
        assert!(t.is_connected());
        // Root to a deep leaf: down the left spine.
        assert_eq!(t.bfs_distances(NodeId(0))[7], 3);
    }

    #[test]
    fn complete_and_star() {
        let c = complete(5);
        assert_eq!(c.edge_count(), 10);
        let s = star(5);
        assert_eq!(s.edge_count(), 4);
        assert_eq!(s.degree(NodeId(0)), 4);
    }
}
